// Persistent serving demo: build-once, serve-forever across restarts.
//
// Act 1 — first boot: two polygon datasets ("zones", "census") are built
// from raw polygons (the expensive covering pipeline), served by one
// JoinService, and checkpointed to a SnapshotStore while traffic runs. A
// zone swap mid-serve shows the checkpointer persisting the new epoch in
// the background.
//
// Act 2 — restart: the process state is thrown away and a fresh service
// warm-starts from the store alone — no covering work, just file reads
// and trie re-derivation — then a JoinServer answers JOIN_BATCH per
// dataset id over loopback, LIST_DATASETS enumerates the catalog, and a
// join against a bogus dataset id comes back as a typed UNKNOWN_DATASET
// error with the connection intact. The punchline is the timing line:
// rebuild cost vs warm-start cost.
//
//   $ ./examples/persistent_serving
//   $ ./examples/persistent_serving --zones=600 --pings=300000
//
// Flags: --zones (polygons in the bigger dataset), --pings (points per
// batch), --store_dir.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "store/checkpointer.h"
#include "store/snapshot_store.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("zones", 289, "polygons in the census-style dataset");
  flags.AddInt("pings", 100'000, "points per JOIN_BATCH");
  flags.AddString("store_dir", "persistent_serving_store",
                  "snapshot store directory");
  flags.Parse(argc, argv);

  geo::Grid grid;
  // Both datasets share the NYC extent so one ping workload probes both.
  const double n = static_cast<double>(flags.GetInt("zones"));
  wl::PolygonDataset zones = wl::Neighborhoods(n / 289.0);
  wl::PolygonDataset census = wl::Census(n / 39184.0 * 4);
  wl::PointSet pings = wl::TaxiPoints(
      zones.mbr, static_cast<uint64_t>(flags.GetInt("pings")), grid, 7);

  // ---- Act 1: first boot — build from raw polygons, serve, checkpoint.
  std::printf("=== first boot: building from raw polygons ===\n");
  util::WallTimer build_timer;
  service::ShardingOptions shard_opts;
  shard_opts.num_shards = 4;
  auto zones_index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(zones.polygons, grid, shard_opts));
  auto census_index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(census.polygons, grid, shard_opts));
  const double build_s = build_timer.ElapsedSeconds();
  std::printf("built %zu + %zu polygons in %.1f ms\n", zones.polygons.size(),
              census.polygons.size(), build_s * 1e3);

  store::SnapshotStore store;
  std::string error;
  if (!store.Open({.dir = flags.GetString("store_dir")}, &error)) {
    std::fprintf(stderr, "store open failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t first_boot_pairs = 0;
  {
    service::ServiceOptions service_opts;
    service_opts.worker_threads = 2;
    service::JoinService service(service_opts);  // empty catalog
    service.catalog().Add("zones", zones_index);
    service.catalog().Add("census", census_index);

    store::CheckpointerOptions ckpt_opts;
    ckpt_opts.interval_ms = 50;
    store::Checkpointer checkpointer(&store, &service, ckpt_opts);

    // Serve while checkpoints happen in the background; swap the zones
    // dataset mid-serve (the checkpointer persists the new epoch too).
    for (int i = 0; i < 6; ++i) {
      service::QueryBatch batch{pings.cell_ids(), pings.points(),
                                act::JoinMode::kExact,
                                static_cast<uint16_t>(i % 2)};
      first_boot_pairs +=
          service.Submit(std::move(batch)).get().stats.result_pairs;
      // Publishing (even the same snapshot) advances the epoch; the next
      // background sweep persists it as a fresh generation.
      if (i == 3) service.SwapIndex(0, zones_index);
    }
    checkpointer.Stop();
    store::CheckpointerStats cs = checkpointer.stats();
    std::printf(
        "served 6 batches (%llu pairs); checkpointer: %llu snapshots "
        "persisted, %llu old files GC'd\n",
        static_cast<unsigned long long>(first_boot_pairs),
        static_cast<unsigned long long>(cs.checkpoints),
        static_cast<unsigned long long>(cs.files_removed));
  }  // service torn down: the "process" exits

  // ---- Act 2: restart — no polygons, no covering work, just the store.
  std::printf("\n=== restart: warm start from %s ===\n",
              flags.GetString("store_dir").c_str());
  util::WallTimer warm_timer;
  store::SnapshotStore reopened;
  if (!reopened.Open({.dir = flags.GetString("store_dir")}, &error)) {
    std::fprintf(stderr, "store reopen failed: %s\n", error.c_str());
    return 1;
  }
  service::ServiceOptions service_opts;
  service_opts.worker_threads = 2;
  service::JoinService service(service_opts);
  std::vector<std::string> failed;
  const size_t served = store::WarmStart(reopened, &service.catalog(), &failed);
  const double warm_s = warm_timer.ElapsedSeconds();
  std::printf(
      "warm start: %zu dataset(s) in %.1f ms — vs %.1f ms to rebuild "
      "(%.1fx)\n",
      served, warm_s * 1e3, build_s * 1e3,
      warm_s > 0 ? build_s / warm_s : 0.0);
  for (const std::string& f : failed) {
    std::fprintf(stderr, "  failed: %s\n", f.c_str());
  }

  net::JoinServer server(&service, net::ServerOptions{});
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  net::JoinClient client;
  if (!client.Connect(server.host(), server.port(), &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  std::vector<service::DatasetInfo> datasets;
  client.ListDatasets(&datasets, &error);
  std::printf("\ncatalog over the wire (LIST_DATASETS):\n");
  for (const service::DatasetInfo& ds : datasets) {
    std::printf("  id %u  %-8s epoch %llu  %llu polygons, %u shards\n",
                ds.id, ds.name.c_str(),
                static_cast<unsigned long long>(ds.epoch),
                static_cast<unsigned long long>(ds.num_polygons),
                ds.num_shards);
  }

  uint64_t restart_pairs = 0;
  for (const service::DatasetInfo& ds : datasets) {
    service::QueryBatch batch{pings.cell_ids(), pings.points(),
                              act::JoinMode::kExact, ds.id};
    net::JoinClient::Reply reply = client.Join(batch);
    if (!reply.ok) {
      std::fprintf(stderr, "join failed on '%s': %s\n", ds.name.c_str(),
                   reply.message.c_str());
      return 1;
    }
    restart_pairs += reply.result.stats.result_pairs;
    std::printf("JOIN_BATCH dataset %u -> %llu pairs in %.2f ms\n", ds.id,
                static_cast<unsigned long long>(reply.result.stats.result_pairs),
                reply.result.service_ms);
  }

  // A bogus dataset id: typed error, connection still usable.
  service::QueryBatch bogus{pings.cell_ids(), pings.points(),
                            act::JoinMode::kExact, 42};
  net::JoinClient::Reply reply = client.Join(bogus);
  std::printf("JOIN_BATCH dataset 42 -> %s (connection %s)\n",
              net::ToString(reply.error),
              client.Ping() ? "still alive" : "dead");

  server.Stop();
  if (served != 2 || restart_pairs == 0) {
    std::fprintf(stderr, "unexpected restart results\n");
    return 1;
  }
  std::printf("\nrestart served the same catalog without touching a single "
              "polygon file.\n");
  return 0;
}
