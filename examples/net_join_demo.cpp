// Network join demo: a JoinServer on an ephemeral loopback port, driven by
// JoinClient — first politely, then deliberately over the admission
// controller's rate limit to show typed rejections doing their job.
//
// The server is configured with a token-bucket rate limit; the client
// fires requests as fast as the socket allows. Admitted requests report
// QPS and latency quantiles; over-rate requests come back as typed
// RATE_LIMITED errors on the same connection — no blocking, no dropped
// connections, and the reject counters show up in the STATS response.
//
//   $ ./examples/net_join_demo
//   $ ./examples/net_join_demo --pings=200000 --rate_qps=50 --requests=400
//
// Flags: --pings (points in the workload), --batch (points per request),
// --rate_qps (admitted JOIN_BATCH/s), --requests (requests to fire).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("pings", 100'000, "points in the synthetic taxi workload");
  flags.AddInt("batch", 10'000, "points per JOIN_BATCH request");
  flags.AddDouble("rate_qps", 25.0, "admission rate limit, requests/s");
  flags.AddInt("requests", 200, "requests the client fires");
  flags.Parse(argc, argv);

  geo::Grid grid;
  wl::PolygonDataset city = wl::Neighborhoods(0.3);
  service::ShardingOptions shard_opts;
  shard_opts.num_shards = 4;
  shard_opts.build.precision_bound_m = 60.0;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(city.polygons, grid, shard_opts));

  service::ServiceOptions service_opts;
  service_opts.worker_threads = 2;
  // Sized to hold the whole workload's distinct leaf cells: the client
  // cycles through the same batches, so every recycled batch hits.
  service_opts.cell_cache_capacity = 1 << 17;
  service::JoinService service(index, service_opts);

  net::ServerOptions server_opts;  // port 0 => ephemeral
  server_opts.admission.rate_limit_qps = flags.GetDouble("rate_qps");
  server_opts.admission.rate_burst = 10;
  net::JoinServer server(&service, server_opts);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("JoinServer on %s:%u — %zu zones, %d shards, rate limit "
              "%.0f req/s (burst 10)\n\n",
              server.host().c_str(), server.port(), city.polygons.size(),
              shard_opts.num_shards, server_opts.admission.rate_limit_qps);

  wl::PointSet pings =
      wl::TaxiPoints(city.mbr, flags.GetInt("pings"), grid, 7);
  const uint64_t batch_points =
      std::max<int64_t>(1, flags.GetInt("batch"));

  net::JoinClient client;
  if (!client.Connect(server.host(), server.port(), &error)) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return 1;
  }

  // Fire flat out: an over-rate client by construction. Batches cycle
  // through the workload; rejected requests are counted, not retried.
  const int total_requests = std::max<int64_t>(1, flags.GetInt("requests"));
  uint64_t ok = 0, rate_limited = 0, other_errors = 0, points_served = 0;
  util::WallTimer wall;
  uint64_t begin = 0;
  for (int i = 0; i < total_requests; ++i) {
    uint64_t end = std::min(begin + batch_points, pings.size());
    service::QueryBatch batch;
    batch.cell_ids.assign(pings.cell_ids().begin() + begin,
                          pings.cell_ids().begin() + end);
    batch.points.assign(pings.points().begin() + begin,
                        pings.points().begin() + end);
    batch.mode = act::JoinMode::kApproximate;
    begin = end < pings.size() ? end : 0;

    net::JoinClient::Reply reply = client.Join(batch);
    if (reply.ok) {
      ++ok;
      points_served += reply.result.stats.num_points;
    } else if (reply.error == net::WireError::kRateLimited) {
      ++rate_limited;
    } else {
      ++other_errors;
      std::fprintf(stderr, "unexpected error: %s\n", reply.message.c_str());
    }
  }
  double seconds = wall.ElapsedSeconds();

  service::ServiceStats stats;
  if (!client.GetStats(&stats, &error)) {
    std::fprintf(stderr, "stats failed: %s\n", error.c_str());
    return 1;
  }

  std::printf("client fired %d requests in %.2f s (%.0f req/s offered)\n",
              total_requests, seconds, total_requests / seconds);
  std::printf("  admitted:      %llu (%.1f M points/s end to end)\n",
              static_cast<unsigned long long>(ok),
              seconds > 0 ? points_served / seconds / 1e6 : 0.0);
  std::printf("  rate limited:  %llu (typed wire error, connection kept)\n",
              static_cast<unsigned long long>(rate_limited));
  std::printf("server-side stats (STATS request over the wire):\n");
  std::printf("  qps %.1f | service p50 %.2f ms p99 %.2f ms | queue-wait "
              "p50 %.2f ms\n",
              stats.qps, stats.service_p50_ms, stats.service_p99_ms,
              stats.queue_wait_p50_ms);
  std::printf("  rejects: rate=%llu bytes=%llu watermark=%llu "
              "queue-full=%llu | cache hits/misses %llu/%llu\n",
              static_cast<unsigned long long>(stats.rejected_rate_limit),
              static_cast<unsigned long long>(stats.rejected_inflight_bytes),
              static_cast<unsigned long long>(
                  stats.rejected_queue_watermark),
              static_cast<unsigned long long>(stats.rejected_queue_full),
              static_cast<unsigned long long>(stats.cache_hits),
              static_cast<unsigned long long>(stats.cache_misses));

  bool sane = ok > 0 && other_errors == 0 &&
              stats.rejected_rate_limit == rate_limited &&
              stats.completed_requests == ok;
  if (!sane) {
    std::fprintf(stderr, "demo invariants violated\n");
    return 1;
  }
  std::printf("\nadmission control held: %llu over-rate requests bounced "
              "typed, every admitted one answered.\n",
              static_cast<unsigned long long>(rate_limited));
  server.Stop();
  return 0;
}
