// City fleet dashboard: the paper's motivating scenario. A ride-hailing
// operator maps a high-rate stream of vehicle positions to city zones for
// supply/demand accounting. GPS is imprecise anyway, so the *approximate*
// join with a precision bound removes every point-in-polygon test from the
// hot path.
//
//   $ ./examples/city_fleet_dashboard [--zones N] [--pings N] [--bound M]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("zones", 289, "number of city zones");
  flags.AddInt("pings", 2'000'000, "vehicle position updates per batch");
  flags.AddDouble("bound", 15.0, "precision bound in meters");
  flags.AddInt("threads", 0, "probe threads (0 = all cores)");
  flags.Parse(argc, argv);

  // Synthetic city: a jittered partition standing in for the operator's
  // zone shapefile (see workloads/datasets.h).
  wl::PolygonDataset city =
      wl::City("NYC", static_cast<int>(flags.GetInt("zones")), 42);
  std::printf("city: %zu zones, avg %.1f vertices\n", city.polygons.size(),
              city.AvgVertices());

  geo::Grid grid;
  act::BuildOptions options;
  options.precision_bound_m = flags.GetDouble("bound");
  util::WallTimer build_timer;
  act::PolygonIndex index =
      act::PolygonIndex::Build(city.polygons, grid, options);
  std::printf(
      "index built in %.2f s: %zu cells, %.1f MiB, %.0fm precision bound\n",
      build_timer.ElapsedSeconds(), index.covering().size(),
      index.MemoryBytes() / (1024.0 * 1024.0), flags.GetDouble("bound"));

  // One batch of pings (clustered like real fleet data: dense downtown,
  // airport hotspots, sparse elsewhere).
  wl::PointSet pings = wl::TaxiPoints(
      city.mbr, static_cast<uint64_t>(flags.GetInt("pings")), grid, 7);

  act::JoinOptions join_options{act::JoinMode::kApproximate,
                                static_cast<int>(flags.GetInt("threads"))};
  act::JoinStats stats = index.Join(pings.AsJoinInput(), join_options);

  std::printf(
      "\nbatch of %llu pings joined in %.3f s  ->  %.1f M pings/s, "
      "0 PIP tests\n",
      static_cast<unsigned long long>(stats.num_points), stats.seconds,
      stats.ThroughputMps());

  // The dashboard: top zones by current vehicle count.
  std::vector<std::pair<uint64_t, uint32_t>> top;
  for (uint32_t z = 0; z < stats.counts.size(); ++z) {
    top.emplace_back(stats.counts[z], z);
  }
  std::sort(top.rbegin(), top.rend());
  std::printf("\nbusiest zones:\n");
  for (int k = 0; k < 10 && k < static_cast<int>(top.size()); ++k) {
    std::printf("  zone %-4u %8llu vehicles\n", top[k].second,
                static_cast<unsigned long long>(top[k].first));
  }
  std::printf(
      "\n%llu of %llu pings inside the operating area (%.1f%%); "
      "%llu zone memberships (border pings may count in two zones)\n",
      static_cast<unsigned long long>(stats.matched_points),
      static_cast<unsigned long long>(stats.num_points),
      100.0 * stats.matched_points / stats.num_points,
      static_cast<unsigned long long>(stats.result_pairs));
  return 0;
}
