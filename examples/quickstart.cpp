// Quickstart: build an Adaptive Cell Trie index over a handful of polygons
// and join a few points, in both approximate and exact mode.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "geometry/polygon.h"

int main() {
  using namespace actjoin;

  // Three "city zones" in lng/lat degrees (x = lng, y = lat).
  std::vector<geom::Polygon> zones;
  zones.push_back(geom::Polygon({{-74.02, 40.70},
                                 {-73.97, 40.70},
                                 {-73.97, 40.76},
                                 {-74.02, 40.76}}));  // downtown
  zones.push_back(geom::Polygon({{-73.97, 40.70},
                                 {-73.93, 40.70},
                                 {-73.93, 40.78},
                                 {-73.97, 40.78}}));  // east side
  zones.push_back(geom::Polygon({{-74.05, 40.60},
                                 {-73.95, 40.60},
                                 {-73.98, 40.66},
                                 {-74.05, 40.66}}));  // airport area

  // Build the index: coverings + interior coverings are merged into the
  // super covering, refined to a 10 m precision bound, and loaded into the
  // radix tree (ACT4 layout by default).
  geo::Grid grid;
  act::BuildOptions options;
  options.precision_bound_m = 10.0;
  act::PolygonIndex index = act::PolygonIndex::Build(zones, grid, options);

  std::printf("index: %zu covering cells, %.2f MiB, built in %.3f s\n",
              index.covering().size(),
              index.MemoryBytes() / (1024.0 * 1024.0),
              index.timings().individual_coverings_s +
                  index.timings().super_covering_s +
                  index.timings().refine_s + index.timings().trie_build_s);

  // Incoming pings: (lng, lat) pairs. Cell ids are precomputed once.
  std::vector<geom::Point> pings = {
      {-74.00, 40.72},   // downtown
      {-73.95, 40.75},   // east side
      {-74.00, 40.63},   // airport
      {-73.90, 40.90},   // outside every zone
      {-73.97, 40.73},   // on the downtown/east-side border
  };
  std::vector<uint64_t> cell_ids;
  for (const geom::Point& p : pings) {
    cell_ids.push_back(grid.CellAt({p.y, p.x}).id());
  }
  act::JoinInput input{cell_ids, pings};

  // Exact join: candidate hits are refined with a point-in-polygon test.
  auto pairs = index.JoinPairs(input, act::JoinMode::kExact);
  std::printf("\nexact join results (%zu pairs):\n", pairs.size());
  for (const auto& [ping, zone] : pairs) {
    std::printf("  ping %llu (%.2f, %.2f) -> zone %u\n",
                static_cast<unsigned long long>(ping), pings[ping].x,
                pings[ping].y, zone);
  }

  // Approximate join: no PIP tests at all; any false positive is within
  // 10 m of its zone. Perfect for imprecise GPS pings.
  act::JoinStats stats =
      index.Join(input, {act::JoinMode::kApproximate, /*threads=*/1});
  std::printf("\napproximate join: %llu pairs, %llu PIP tests\n",
              static_cast<unsigned long long>(stats.result_pairs),
              static_cast<unsigned long long>(stats.pip_tests));
  for (uint32_t zone = 0; zone < zones.size(); ++zone) {
    std::printf("  zone %u: %llu pings\n", zone,
                static_cast<unsigned long long>(stats.counts[zone]));
  }
  return 0;
}
