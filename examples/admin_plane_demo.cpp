// Admin plane demo: a serving stack — JoinService + wire JoinServer —
// with the HTTP observability endpoint running beside it, plus a driver
// thread keeping the server warm so every route has something to show.
//
// While the demo serves, point any HTTP client at the admin port:
//
//   $ ./examples/admin_plane_demo --serve_seconds=30
//   $ curl http://127.0.0.1:<port>/healthz
//   $ curl http://127.0.0.1:<port>/metrics
//   $ curl http://127.0.0.1:<port>/statusz
//   $ curl "http://127.0.0.1:<port>/profilez?seconds=2" | flamegraph.pl > prof.svg
//
// The demo itself also scrapes every route once and prints a digest, so
// running it with no curl in hand still demonstrates the whole plane.
// CI runs it with --port_file and curls the live endpoint from the
// workflow (the admin-endpoint smoke step).
//
// Flags: --pings (workload points), --serve_seconds (how long to serve
// after the built-in scrapes; 0 = exit immediately), --admin_port
// (0 = ephemeral), --port_file (write the bound admin port there, for
// scripts that need to find the ephemeral port).

#include <sys/socket.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/admin_server.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "net/socket.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/flags.h"
#include "util/timer.h"
#include "workloads/datasets.h"

namespace {

std::string AdminGet(uint16_t port, const std::string& target) {
  using namespace actjoin::net;
  std::string error;
  UniqueFd fd = ConnectTcp("127.0.0.1", port, &error);
  if (!fd.valid()) return "GET failed: " + error;
  const std::string request =
      "GET " + target + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  if (!SendAll(fd.get(), reinterpret_cast<const uint8_t*>(request.data()),
               request.size(), &error)) {
    return "GET failed: " + error;
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd.get(), buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  return response;
}

size_t CountLines(const std::string& text) {
  size_t lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("pings", 100'000, "points in the synthetic taxi workload");
  flags.AddInt("serve_seconds", 0,
               "keep serving this long after the built-in scrapes");
  flags.AddInt("admin_port", 0, "admin HTTP port (0 = ephemeral)");
  flags.AddString("port_file", "",
                  "write the bound admin port to this file once listening");
  flags.Parse(argc, argv);

  geo::Grid grid;
  wl::PolygonDataset city = wl::Neighborhoods(0.3);
  service::ShardingOptions shard_opts;
  shard_opts.num_shards = 4;
  shard_opts.build.precision_bound_m = 60.0;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(city.polygons, grid, shard_opts));

  service::ServiceOptions service_opts;
  service_opts.worker_threads = 2;
  service_opts.stage_perf_counters = true;  // degrades typed if denied
  service::JoinService service(index, service_opts);

  net::JoinServer server(&service, net::ServerOptions{});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  net::AdminOptions admin_opts;
  admin_opts.port = static_cast<uint16_t>(flags.GetInt("admin_port"));
  net::AdminServer admin(&service, admin_opts, &server);
  if (!admin.Start(&error)) {
    std::fprintf(stderr, "admin start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("wire server on %s:%u, admin plane on http://127.0.0.1:%u\n",
              server.host().c_str(), server.port(), admin.port());

  const std::string port_file = flags.GetString("port_file");
  if (!port_file.empty()) {
    // The port is written only after both servers listen: a script that
    // sees the file may immediately connect to either plane.
    if (FILE* f = std::fopen(port_file.c_str(), "w")) {
      std::fprintf(f, "%u\n", admin.port());
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  // Background load: one client cycling traced joins keeps every route's
  // numbers moving (stage counters, slow-query ring, histograms).
  wl::PointSet pings = wl::TaxiPoints(
      city.mbr, static_cast<uint64_t>(flags.GetInt("pings")), grid, 17);
  std::atomic<bool> stop{false};
  std::thread load([&] {
    net::JoinClient client;
    if (!client.Connect(server.host(), server.port())) return;
    service::QueryBatch batch{pings.cell_ids(), pings.points(),
                              act::JoinMode::kApproximate};
    batch.trace = true;
    while (!stop.load(std::memory_order_relaxed)) client.Join(batch);
  });

  // Let a little traffic accumulate, then walk the routes.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::string health = AdminGet(admin.port(), "/healthz");
  const std::string ready = AdminGet(admin.port(), "/readyz");
  const std::string metrics = AdminGet(admin.port(), "/metrics");
  const std::string statusz = AdminGet(admin.port(), "/statusz");
  const std::string tracez = AdminGet(admin.port(), "/tracez");
  std::printf("/healthz -> %s\n", health.substr(0, health.find("\r\n")).c_str());
  std::printf("/readyz  -> %s\n", ready.substr(0, ready.find("\r\n")).c_str());
  std::printf("/metrics -> %zu exposition lines\n", CountLines(metrics));
  std::printf("/statusz -> %zu lines\n", CountLines(statusz));
  std::printf("/tracez  -> %zu lines\n", CountLines(tracez));
  const std::string profile = AdminGet(admin.port(), "/profilez?seconds=1");
  std::printf("/profilez (1s) -> %zu collapsed stacks\n", CountLines(profile));

  const int serve_seconds = static_cast<int>(flags.GetInt("serve_seconds"));
  if (serve_seconds > 0) {
    std::printf("serving for %d more seconds; try the curls above\n",
                serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }

  stop.store(true, std::memory_order_relaxed);
  load.join();
  admin.Stop();
  server.Stop();
  const bool ok = health.rfind("HTTP/1.1 200", 0) == 0 &&
                  ready.rfind("HTTP/1.1 200", 0) == 0 &&
                  CountLines(metrics) > 0 && CountLines(statusz) > 0;
  std::printf("%s\n", ok ? "admin plane OK" : "admin plane FAILED");
  return ok ? 0 : 1;
}
