// Geofence alerts: a fleet of moving devices against the borough
// geofences, served as a wire v6 continuous query.
//
// One connection SUBSCRIBEs to every borough (selector: all polygons,
// both directions) and then just listens; a second connection plays the
// role of the position ingestion pipeline, reporting the whole fleet's
// coordinates once per dispatch cycle. The server folds each report
// through the subscription matcher and pushes delta-only EVENT frames —
// the subscriber never asks, alerts simply arrive.
//
// The number this example exists to print is alert latency: the time
// from handing a position report to the socket until the ENTER/LEAVE it
// caused is delivered to the subscriber's handler, reported as p50 /
// p99 / p99.9 over the whole run. It closes with the server's own
// STATS view (standing queries, events pushed, drops) fetched over the
// same wire.
//
//   $ ./examples/geofence_alerts
//   $ ./examples/geofence_alerts --fleet=50000 --ticks=60
//
// Flags: --fleet (devices), --ticks (dispatch cycles), --scale
// (borough dataset scale).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "service/subscription_matcher.h"
#include "util/flags.h"
#include "util/latency_histogram.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;
  using Clock = std::chrono::steady_clock;

  util::Flags flags;
  flags.AddInt("fleet", 20'000, "devices reporting positions");
  flags.AddInt("ticks", 30, "dispatch cycles (one fleet report each)");
  flags.AddDouble("scale", 0.5, "borough dataset scale factor");
  flags.Parse(argc, argv);
  const uint64_t fleet = std::max<int64_t>(1, flags.GetInt("fleet"));
  const int ticks = std::max(2, static_cast<int>(flags.GetInt("ticks")));

  geo::Grid grid;
  wl::PolygonDataset boroughs = wl::Boroughs(flags.GetDouble("scale"), 11);
  service::ShardingOptions shard_opts;
  shard_opts.num_shards = 2;
  shard_opts.build.precision_bound_m = 60.0;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(boroughs.polygons, grid, shard_opts));

  service::ServiceOptions service_opts;
  service_opts.worker_threads = 2;
  service::JoinService service(index, service_opts);
  net::JoinServer server(&service, net::ServerOptions{});
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "server start failed: %s\n", error.c_str());
    return 1;
  }
  std::printf("JoinServer on %s:%u — %zu borough geofences, fleet of "
              "%llu, %d dispatch cycles\n\n",
              server.host().c_str(), server.port(),
              boroughs.polygons.size(),
              static_cast<unsigned long long>(fleet), ticks);

  // Fleet motion: every device has a home and an away position (two
  // clustered draws over the borough extent); each cycle one of eight
  // interleaved slices of the fleet commutes, so a steady ~12% of
  // devices cross boundaries per report while the rest hold position.
  constexpr int kSlices = 8;
  wl::PointSet home = wl::TaxiPoints(boroughs.mbr, fleet, grid, 41);
  wl::PointSet away = wl::TaxiPoints(boroughs.mbr, fleet, grid, 42);
  const act::JoinInput in_home = home.AsJoinInput();
  const act::JoinInput in_away = away.AsJoinInput();
  std::vector<service::QueryBatch> cycles(static_cast<size_t>(ticks));
  {
    std::vector<uint64_t> cells(in_home.cell_ids.begin(),
                                in_home.cell_ids.end());
    std::vector<geom::Point> points(in_home.points.begin(),
                                    in_home.points.end());
    std::vector<bool> commuted(kSlices, false);
    for (int t = 0; t < ticks; ++t) {
      const int slice = t % kSlices;
      commuted[slice] = !commuted[slice];
      const act::JoinInput& src = commuted[slice] ? in_away : in_home;
      for (uint64_t i = static_cast<uint64_t>(slice); i < fleet;
           i += kSlices) {
        cells[i] = src.cell_ids[i];
        points[i] = src.points[i];
      }
      cycles[static_cast<size_t>(t)].cell_ids = cells;
      cycles[static_cast<size_t>(t)].points = points;
      cycles[static_cast<size_t>(t)].mode = act::JoinMode::kApproximate;
    }
  }

  // The alert consumer: one standing subscription over every borough.
  // The handler runs on the client's reader thread the moment an EVENT
  // frame arrives; it timestamps against the current cycle's send time.
  net::JoinClient subscriber;
  if (!subscriber.Connect(server.host(), server.port(), &error)) {
    std::fprintf(stderr, "subscriber connect failed: %s\n", error.c_str());
    return 1;
  }
  std::atomic<int64_t> report_sent_ns{0};
  std::atomic<uint64_t> enters{0}, leaves{0}, gaps{0};
  std::mutex hist_mu;
  util::LatencyHistogram latency;
  service::SubscriptionSpec spec;  // defaults: all polygons, both ways
  auto reply = subscriber.Subscribe(
      0, spec,
      [&](const service::EventBatch& batch) {
        const int64_t now =
            Clock::now().time_since_epoch() / std::chrono::nanoseconds(1);
        const int64_t sent = report_sent_ns.load(std::memory_order_acquire);
        std::lock_guard<std::mutex> lock(hist_mu);
        for (const service::GeoEvent& ev : batch.events) {
          (ev.kind == service::GeoEventKind::kEnter ? enters : leaves)
              .fetch_add(1, std::memory_order_relaxed);
          latency.Record(static_cast<double>(now - sent) / 1e3);
        }
      },
      [&](const net::EventGap&) {
        gaps.fetch_add(1, std::memory_order_relaxed);
      });
  if (!reply.ok) {
    std::fprintf(stderr, "SUBSCRIBE failed: %s\n", reply.message.c_str());
    return 1;
  }
  std::printf("subscribed: id=%llu, watching %u polygons across %u "
              "coverage intervals\n",
              static_cast<unsigned long long>(reply.info.id),
              reply.info.watched_polygons, reply.info.coverage_intervals);

  // The ingestion pipeline: a second connection reports the fleet once
  // per cycle, then waits for the alerts that report caused to land
  // before starting the next cycle — so every alert's latency is
  // measured against the report that triggered it.
  net::JoinClient ingest;
  if (!ingest.Connect(server.host(), server.port(), &error)) {
    std::fprintf(stderr, "ingest connect failed: %s\n", error.c_str());
    return 1;
  }
  uint64_t delivered_target = 0;
  for (int t = 0; t < ticks; ++t) {
    report_sent_ns.store(
        Clock::now().time_since_epoch() / std::chrono::nanoseconds(1),
        std::memory_order_release);
    net::JoinClient::Reply r = ingest.Join(cycles[static_cast<size_t>(t)]);
    if (!r.ok) {
      std::fprintf(stderr, "cycle %d join failed: %s\n", t,
                   r.message.c_str());
      return 1;
    }
    // Emission is synchronous with the join; delivery is a push in
    // flight. Drain it before the next cycle re-stamps the send time.
    delivered_target = service.subscription_matcher()->events_emitted();
    const auto deadline = Clock::now() + std::chrono::seconds(10);
    while (enters.load(std::memory_order_relaxed) +
                   leaves.load(std::memory_order_relaxed) <
               delivered_target &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  const uint64_t total = enters.load() + leaves.load();
  if (total < delivered_target) {
    std::fprintf(stderr, "alerts stalled: %llu of %llu delivered\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(delivered_target));
    return 1;
  }
  if (total == 0) {
    std::fprintf(stderr, "no alerts fired — fleet never crossed a fence\n");
    return 1;
  }

  std::printf("\n%llu alerts over %d cycles (%llu ENTER, %llu LEAVE, "
              "%llu gap frames)\n",
              static_cast<unsigned long long>(total), ticks,
              static_cast<unsigned long long>(enters.load()),
              static_cast<unsigned long long>(leaves.load()),
              static_cast<unsigned long long>(gaps.load()));
  {
    std::lock_guard<std::mutex> lock(hist_mu);
    std::printf("alert latency (position report -> handler): "
                "p50 %.0f us, p99 %.0f us, p99.9 %.0f us\n",
                latency.P50Micros(), latency.P99Micros(),
                latency.P999Micros());
  }

  auto bye = subscriber.Unsubscribe(reply.info.id);
  if (!bye.ok) {
    std::fprintf(stderr, "UNSUBSCRIBE failed: %s\n", bye.message.c_str());
    return 1;
  }
  service::ServiceStats stats;
  if (subscriber.GetStats(&stats, &error)) {
    std::printf("\nserver STATS: %llu events pushed, %llu dropped, %llu "
                "standing queries remain\n",
                static_cast<unsigned long long>(stats.events_pushed),
                static_cast<unsigned long long>(stats.events_dropped),
                static_cast<unsigned long long>(stats.active_subscriptions));
  }
  return 0;
}
