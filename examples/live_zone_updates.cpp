// Live zone updates: the paper leaves runtime polygon updates as future
// work but sketches the mechanism ("cells of individual polygons are
// inserted one-by-one into ACT; the same procedure could be used to add new
// polygons at runtime"). This example exercises the implementation of that
// sketch: an operator expands into new districts and retires others while
// the join keeps serving.
//
//   $ ./examples/live_zone_updates

#include <cstdio>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "util/timer.h"
#include "workloads/datasets.h"

int main() {
  using namespace actjoin;

  geo::Grid grid;
  wl::PolygonDataset city = wl::Neighborhoods(0.3);
  const size_t initial_count = city.polygons.size() / 2;

  // Launch with the first half of the zones.
  std::vector<geom::Polygon> initial(city.polygons.begin(),
                                     city.polygons.begin() + initial_count);
  act::BuildOptions options;
  options.precision_bound_m = 20.0;
  act::PolygonIndex index = act::PolygonIndex::Build(initial, grid, options);

  wl::PointSet pings = wl::TaxiPoints(city.mbr, 500'000, grid, 7);
  auto serve = [&](const char* label) {
    act::JoinStats stats =
        index.Join(pings.AsJoinInput(), {act::JoinMode::kApproximate, 1});
    uint64_t matched = 0;
    for (uint64_t c : stats.counts) matched += c;
    std::printf("%-28s %3zu zones  %7.1f M pings/s  %6.1f%% pings matched\n",
                label, index.polygons().size(), stats.ThroughputMps(),
                100.0 * stats.matched_points / stats.num_points);
  };

  serve("launch (half the city)");

  // Expansion: add the remaining zones one batch at a time.
  util::WallTimer timer;
  std::vector<geom::Polygon> expansion(
      city.polygons.begin() + initial_count, city.polygons.end());
  uint32_t first_new = index.AddPolygons(expansion);
  std::printf("added %zu zones (ids %u..%zu) in %.2f s\n", expansion.size(),
              first_new, index.polygons().size() - 1,
              timer.ElapsedSeconds());
  serve("after expansion");

  // Contraction: retire every fifth zone.
  std::vector<uint32_t> retired;
  for (uint32_t pid = 0; pid < index.polygons().size(); pid += 5) {
    retired.push_back(pid);
  }
  timer.Restart();
  index.RemovePolygons(retired);
  std::printf("retired %zu zones in %.2f s\n", retired.size(),
              timer.ElapsedSeconds());
  serve("after retirement");

  return 0;
}
