// Live zone updates, served concurrently (src/service/).
//
// The original version of this example exercised runtime polygon updates
// with a stop-the-world pattern: AddPolygons / RemovePolygons mutate the
// one live PolygonIndex, so the operator could not serve queries while a
// rebuild ran. On top of service::JoinService the rebuild happens off to
// the side and goes live with one snapshot swap: a client thread keeps
// submitting ping batches the whole time, and the only "downtime" is the
// pointer swap itself. The example prints both numbers — rebuild seconds
// (the old unavailability window) vs swap milliseconds — plus the batches
// served *during* each rebuild.
//
//   $ ./examples/live_zone_updates

#include <atomic>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "act/join.h"
#include "geo/grid.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/timer.h"
#include "workloads/datasets.h"

int main() {
  using namespace actjoin;

  geo::Grid grid;
  wl::PolygonDataset city = wl::Neighborhoods(0.3);
  const size_t initial_count = city.polygons.size() / 2;
  std::vector<geom::Polygon> initial(city.polygons.begin(),
                                     city.polygons.begin() + initial_count);

  service::ShardingOptions shard_opts;
  shard_opts.num_shards = 4;
  shard_opts.build.precision_bound_m = 20.0;
  auto build = [&](const std::vector<geom::Polygon>& zones) {
    return std::make_shared<const service::ShardedIndex>(
        service::ShardedIndex::Build(zones, grid, shard_opts));
  };

  // Launch with the first half of the zones behind the serving layer.
  service::ServiceOptions server_opts;
  server_opts.worker_threads = 2;
  service::JoinService server(build(initial), server_opts);

  wl::PointSet pings = wl::TaxiPoints(city.mbr, 200'000, grid, 7);

  // A one-off synchronous probe of the current snapshot.
  auto serve = [&](const char* label) {
    service::JoinResult result =
        server
            .Submit({pings.cell_ids(), pings.points(),
                     act::JoinMode::kApproximate})
            .get();
    double mps = result.service_ms > 0
                     ? result.stats.num_points / result.service_ms / 1e3
                     : 0;
    std::printf(
        "%-28s epoch %llu  %3zu zones  %7.1f M pings/s  %5.1f%% matched\n",
        label, static_cast<unsigned long long>(result.epoch),
        server.CurrentIndex()->num_polygons(), mps,
        100.0 * result.stats.matched_points / result.stats.num_points);
  };

  // Background client hammering the service for the whole run: the point
  // of the serving layer is that this thread never notices a rebuild.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches_served{0};
  std::thread client([&] {
    constexpr uint64_t kBatch = 10'000;
    uint64_t begin = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t end = std::min(begin + kBatch, pings.size());
      service::QueryBatch batch;
      batch.cell_ids.assign(pings.cell_ids().begin() + begin,
                            pings.cell_ids().begin() + end);
      batch.points.assign(pings.points().begin() + begin,
                          pings.points().begin() + end);
      batch.mode = act::JoinMode::kApproximate;
      server.Submit(std::move(batch)).get();
      batches_served.fetch_add(1, std::memory_order_relaxed);
      begin = end == pings.size() ? 0 : end;
    }
  });

  serve("launch (half the city)");

  // Expansion: rebuild with all zones off to the side, then go live with
  // one snapshot swap.
  uint64_t before_rebuild = batches_served.load();
  util::WallTimer rebuild_timer;
  auto expanded = build(city.polygons);
  double rebuild_s = rebuild_timer.ElapsedSeconds();
  util::WallTimer swap_timer;
  server.SwapIndex(expanded);
  double swap_ms = swap_timer.ElapsedMillis();
  std::printf(
      "expansion: rebuild %.2f s (served %llu batches meanwhile), "
      "swap %.3f ms\n",
      rebuild_s,
      static_cast<unsigned long long>(batches_served.load() - before_rebuild),
      swap_ms);
  serve("after expansion");

  // Contraction: retire every fifth zone the same way.
  std::vector<geom::Polygon> kept;
  for (size_t pid = 0; pid < city.polygons.size(); ++pid) {
    if (pid % 5 != 0) kept.push_back(city.polygons[pid]);
  }
  before_rebuild = batches_served.load();
  rebuild_timer.Restart();
  auto contracted = build(kept);
  rebuild_s = rebuild_timer.ElapsedSeconds();
  swap_timer.Restart();
  server.SwapIndex(contracted);
  swap_ms = swap_timer.ElapsedMillis();
  std::printf(
      "retirement: rebuild %.2f s (served %llu batches meanwhile), "
      "swap %.3f ms\n",
      rebuild_s,
      static_cast<unsigned long long>(batches_served.load() - before_rebuild),
      swap_ms);
  serve("after retirement");

  stop.store(true, std::memory_order_relaxed);
  client.join();

  service::ServiceStats stats = server.Stats();
  std::printf(
      "totals: %llu requests, %.0f qps, service p50/p99 %.2f/%.2f ms, "
      "queue-wait p50/p99 %.2f/%.2f ms\n",
      static_cast<unsigned long long>(stats.completed_requests), stats.qps,
      stats.service_p50_ms, stats.service_p99_ms, stats.queue_wait_p50_ms,
      stats.queue_wait_p99_ms);
  return 0;
}
