// Command-line join over user data: WKT polygons x CSV points.
//
//   $ ./examples/wkt_join --polygons zones.wkt --points pings.csv
//
// zones.wkt:  one POLYGON/MULTIPOLYGON per line ('#' comments allowed)
// pings.csv:  one "lng,lat" pair per line
//
// Without arguments the example writes a small demo pair of files, joins
// them, and cleans up — a template for wiring real datasets (e.g. exported
// NYC neighborhood shapefiles) into the index.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "util/flags.h"
#include "workloads/wkt.h"

namespace {

using namespace actjoin;

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool ParsePointsCsv(const std::string& text, std::vector<geom::Point>* out) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    double lng = 0, lat = 0;
    if (std::sscanf(line.c_str(), "%lf,%lf", &lng, &lat) != 2) return false;
    out->push_back({lng, lat});
  }
  return true;
}

void WriteDemoFiles(const std::string& wkt_path, const std::string& csv_path) {
  std::ofstream wkt(wkt_path);
  wkt << "# two demo zones\n"
      << "POLYGON ((-74.02 40.70, -73.97 40.70, -73.97 40.76, -74.02 "
         "40.76, -74.02 40.70))\n"
      << "POLYGON ((-73.97 40.70, -73.93 40.70, -73.93 40.78, -73.97 "
         "40.78, -73.97 40.70))\n";
  std::ofstream csv(csv_path);
  csv << "-74.00,40.72\n-73.95,40.75\n-73.90,40.90\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::Flags flags;
  flags.AddString("polygons", "", "WKT polygon file (one per line)");
  flags.AddString("points", "", "CSV point file (lng,lat per line)");
  flags.AddDouble("bound", 0,
                  "precision bound in meters (0 = exact join)");
  flags.AddInt("threads", 1, "probe threads");
  flags.Parse(argc, argv);

  std::string wkt_path = flags.GetString("polygons");
  std::string csv_path = flags.GetString("points");
  bool demo = wkt_path.empty() || csv_path.empty();
  if (demo) {
    wkt_path = "/tmp/actjoin_demo_zones.wkt";
    csv_path = "/tmp/actjoin_demo_points.csv";
    WriteDemoFiles(wkt_path, csv_path);
    std::printf("no input given; using generated demo files\n");
  }

  std::string wkt_text, csv_text;
  if (!ReadFile(wkt_path, &wkt_text) || !ReadFile(csv_path, &csv_text)) {
    std::fprintf(stderr, "cannot read input files\n");
    return 1;
  }
  size_t error_line = 0;
  auto polygons = wl::ParseWktCollection(wkt_text, &error_line);
  if (!polygons.has_value()) {
    std::fprintf(stderr, "WKT parse error at %s:%zu\n", wkt_path.c_str(),
                 error_line);
    return 1;
  }
  std::vector<geom::Point> points;
  if (!ParsePointsCsv(csv_text, &points)) {
    std::fprintf(stderr, "CSV parse error in %s\n", csv_path.c_str());
    return 1;
  }
  std::printf("%zu polygons, %zu points\n", polygons->size(), points.size());

  geo::Grid grid;
  act::BuildOptions options;
  double bound = flags.GetDouble("bound");
  if (bound > 0) options.precision_bound_m = bound;
  act::PolygonIndex index =
      act::PolygonIndex::Build(*polygons, grid, options);

  std::vector<uint64_t> cell_ids;
  cell_ids.reserve(points.size());
  for (const geom::Point& p : points) {
    cell_ids.push_back(grid.CellAt({p.y, p.x}).id());
  }
  act::JoinMode mode =
      bound > 0 ? act::JoinMode::kApproximate : act::JoinMode::kExact;
  act::JoinStats stats =
      index.Join({cell_ids, points},
                 {mode, static_cast<int>(flags.GetInt("threads"))});

  std::printf("join (%s): %.2f M points/s, %llu pairs, %llu PIP tests\n",
              bound > 0 ? "approximate" : "exact", stats.ThroughputMps(),
              static_cast<unsigned long long>(stats.result_pairs),
              static_cast<unsigned long long>(stats.pip_tests));
  for (uint32_t pid = 0; pid < stats.counts.size(); ++pid) {
    if (stats.counts[pid] > 0) {
      std::printf("  polygon %u: %llu points\n", pid,
                  static_cast<unsigned long long>(stats.counts[pid]));
    }
  }
  if (demo) {
    std::remove(wkt_path.c_str());
    std::remove(csv_path.c_str());
  }
  return 0;
}
