// Geofence alerting with a trained exact index (paper Sec. 3.3).
//
// When results must be exact — billing, regulatory geofences — the join
// refines candidate hits with PIP tests. This example shows the paper's
// adaptive twist: training the index on yesterday's points concentrates
// precision where traffic actually is, cutting refinement work on today's
// traffic without giving up exactness.
//
//   $ ./examples/geofence_training [--history N] [--today N]

#include <cstdio>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "util/flags.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("history", 1'000'000, "historical (training) points");
  flags.AddInt("today", 2'000'000, "points to join after training");
  flags.Parse(argc, argv);

  wl::PolygonDataset zones = wl::Neighborhoods(0.5);
  geo::Grid grid;
  act::PolygonIndex index =
      act::PolygonIndex::Build(zones.polygons, grid, {});

  // Yesterday's and today's traffic share a distribution but not samples.
  wl::PointSet history = wl::TaxiPoints(
      zones.mbr, static_cast<uint64_t>(flags.GetInt("history")), grid, 2009);
  wl::PointSet today = wl::TaxiPoints(
      zones.mbr, static_cast<uint64_t>(flags.GetInt("today")), grid, 2010);

  auto report = [&](const char* label, const act::JoinStats& stats) {
    std::printf(
        "%-10s %8.2f M pts/s   %9llu PIP tests (%.2f%% of points)   "
        "STH %.1f%%   %llu matches\n",
        label, stats.ThroughputMps(),
        static_cast<unsigned long long>(stats.pip_tests),
        100.0 * stats.pip_tests / stats.num_points, stats.SthPercent(),
        static_cast<unsigned long long>(stats.result_pairs));
  };

  std::printf("exact geofence join over %zu zones, %.1f MiB index\n\n",
              zones.polygons.size(),
              index.MemoryBytes() / (1024.0 * 1024.0));

  act::JoinStats before =
      index.Join(today.AsJoinInput(), {act::JoinMode::kExact, 1});
  report("untrained", before);

  act::TrainStats tstats = index.Train(history.AsJoinInput());
  std::printf(
      "\ntrained on %llu historical points: %llu expensive-cell splits, "
      "index now %.1f MiB\n\n",
      static_cast<unsigned long long>(tstats.points_processed),
      static_cast<unsigned long long>(tstats.cells_split),
      index.MemoryBytes() / (1024.0 * 1024.0));

  act::JoinStats after =
      index.Join(today.AsJoinInput(), {act::JoinMode::kExact, 1});
  report("trained", after);

  std::printf("\nspeedup %.2fx, PIP tests reduced by %.1f%%\n",
              after.ThroughputMps() / before.ThroughputMps(),
              100.0 - 100.0 * after.pip_tests /
                          std::max<uint64_t>(before.pip_tests, 1));
  if (after.result_pairs != before.result_pairs) {
    std::printf("ERROR: training changed the join result!\n");
    return 1;
  }
  std::printf("results identical before/after training (exactness kept)\n");
  return 0;
}
