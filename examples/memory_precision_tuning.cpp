// Memory / precision / performance tuning: the trade-off the paper's two
// join modes expose. Sweeps the precision bound of the approximate index
// and compares against the exact join (untrained and trained), printing the
// memory each configuration costs and the accuracy it buys.
//
//   $ ./examples/memory_precision_tuning [--points N]

#include <algorithm>
#include <cstdio>
#include <vector>

#include "act/pipeline.h"
#include "geo/grid.h"
#include "geometry/pip.h"
#include "util/flags.h"
#include "util/table_printer.h"
#include "workloads/datasets.h"

int main(int argc, char** argv) {
  using namespace actjoin;

  util::Flags flags;
  flags.AddInt("points", 500'000, "points per measurement");
  flags.Parse(argc, argv);
  uint64_t n = static_cast<uint64_t>(flags.GetInt("points"));

  geo::Grid grid;
  wl::PolygonDataset zones = wl::Neighborhoods(0.3);
  wl::PointSet pts = wl::TaxiPoints(zones.mbr, n, grid, 11);
  act::JoinInput input = pts.AsJoinInput();

  // Ground truth for accuracy accounting.
  auto exact_pairs = act::BruteForceJoinPairs(input, zones.polygons);

  util::TablePrinter table({"configuration", "index [MiB]",
                            "throughput [M/s]", "PIP tests", "extra pairs",
                            "max error [m]"});

  auto add_row = [&](const std::string& label, const act::PolygonIndex& index,
                     act::JoinMode mode) {
    act::JoinStats stats = index.Join(input, {mode, 1});
    auto pairs = index.JoinPairs(input, mode);
    std::vector<std::pair<uint64_t, uint32_t>> extras;
    std::set_difference(pairs.begin(), pairs.end(), exact_pairs.begin(),
                        exact_pairs.end(), std::back_inserter(extras));
    double max_err = 0;
    for (const auto& [pi, pid] : extras) {
      max_err = std::max(max_err, geom::DistanceToPolygonMeters(
                                      zones.polygons[pid], pts.points()[pi]));
    }
    table.AddRow({label,
                  util::TablePrinter::Fmt(
                      index.MemoryBytes() / (1024.0 * 1024.0), 2),
                  util::TablePrinter::Fmt(stats.ThroughputMps(), 2),
                  util::TablePrinter::FmtInt(stats.pip_tests),
                  util::TablePrinter::FmtInt(extras.size()),
                  util::TablePrinter::Fmt(max_err, 1)});
  };

  for (double bound : {240.0, 60.0, 15.0, 4.0}) {
    act::BuildOptions options;
    options.precision_bound_m = bound;
    act::PolygonIndex index =
        act::PolygonIndex::Build(zones.polygons, grid, options);
    char label[64];
    std::snprintf(label, sizeof(label), "approx @ %.0fm", bound);
    add_row(label, index, act::JoinMode::kApproximate);
  }

  act::PolygonIndex exact_index =
      act::PolygonIndex::Build(zones.polygons, grid, {});
  add_row("exact (untrained)", exact_index, act::JoinMode::kExact);
  wl::PointSet history = wl::TaxiPoints(zones.mbr, n, grid, 12);
  exact_index.Train(history.AsJoinInput());
  add_row("exact (trained)", exact_index, act::JoinMode::kExact);

  table.Print();
  std::printf(
      "\nReading guide: tighter bounds buy accuracy with memory; the exact\n"
      "join trades throughput instead, and training claws much of it back.\n");
  return 0;
}
