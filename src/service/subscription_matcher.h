// SubscriptionMatcher: standing geofence queries over the catalog.
//
// A subscription names a dataset, a polygon selection (explicit ids, a
// leaf-cell-id region, or the whole dataset), and a direction filter; the
// matcher then turns every point batch the service executes — and every
// epoch swap a mutation publishes — into incremental ENTER / LEAVE
// transition events for the tracks (batch point indexes, i.e. device ids)
// it has seen.
//
// The matcher reuses the serving index instead of building its own: each
// subscription flattens the per-shard ACT coverings into a sorted,
// disjoint list of leaf-cell-id *coverage intervals* — the same
// clip-to-shard-interval walk join2::IntervalView::FromIndex does, reduced
// to a presence filter over the watched polygon set. A probed point whose
// leaf cell misses every interval is skipped with one binary search;
// points inside coverage replay ShardedIndex::ProbeCell (interior cells
// are definitive hits, candidate cells refine through geom::ContainsPoint
// — exactly the join's probe contract), diff the resulting membership set
// against the track's previous one, and emit the difference.
//
// Determinism contract (what the wire layer promises subscribers):
// per subscription, events are totally ordered — seq starts at 1 and
// increments by exactly 1 per *emitted* event (direction filtering
// happens before numbering, so a gap in seq always means delivery
// dropped, never "the matcher skipped one"). Within one transition
// (one point batch, or one epoch swap) events order by ascending track
// id, LEAVEs before ENTERs per track, each group in ascending polygon
// id. Every batch is tagged with the snapshot epoch it was computed
// against. A subscription's state is serialized by a per-subscription
// mutex, so seq monotonicity holds under concurrent batches; with a
// single driver the full event sequence is reproducible byte-for-byte
// (asserted against a recompute-from-scratch oracle in the tests).
//
// Epoch swaps: the matcher re-resolves coverage lazily — the first batch
// (or OnEpochSwap call) that observes a new epoch rebuilds the
// subscription's coverage and re-evaluates every known track against the
// new snapshot, so REMOVE_POLYGONS produces LEAVEs and ADD_POLYGONS
// produces ENTERs without any point traffic.

#ifndef ACTJOIN_SERVICE_SUBSCRIPTION_MATCHER_H_
#define ACTJOIN_SERVICE_SUBSCRIPTION_MATCHER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "geometry/point.h"
#include "service/service_catalog.h"
#include "service/sharded_index.h"
#include "util/metrics.h"

namespace actjoin::service {

/// Direction filter: which transitions a subscription wants delivered.
/// Filtering is emission-only — the matcher's membership state always
/// tracks both directions, so flipping the filter never desynchronizes.
enum class SubscriptionMode : uint8_t {
  kBoth = 0,
  kEnterOnly = 1,
  kLeaveOnly = 2,
};

enum class GeoEventKind : uint8_t { kEnter = 0, kLeave = 1 };

/// One transition: track `track_id` crossed the boundary of watched
/// polygon `polygon_id` (global id in the subscription's dataset).
struct GeoEvent {
  GeoEventKind kind = GeoEventKind::kEnter;
  uint32_t track_id = 0;
  uint32_t polygon_id = 0;

  friend bool operator==(const GeoEvent&, const GeoEvent&) = default;
};

/// One delivery to a subscription's sink: a dense run of events with
/// sequence numbers [first_seq, first_seq + events.size()), all computed
/// against `epoch`.
struct EventBatch {
  uint64_t subscription_id = 0;
  uint64_t first_seq = 1;
  uint64_t epoch = 0;
  std::vector<GeoEvent> events;

  friend bool operator==(const EventBatch&, const EventBatch&) = default;
};

/// What a subscription watches inside its dataset.
struct SubscriptionSpec {
  enum class Selector : uint8_t {
    kAll = 0,         // every polygon, including ones added later
    kPolygonIds = 1,  // the explicit id list (must exist at subscribe time)
    kCellRange = 2,   // polygons whose covering touches [cell_lo, cell_hi]
  };
  Selector selector = Selector::kAll;
  std::vector<uint32_t> polygon_ids;  // kPolygonIds
  uint64_t cell_lo = 0;               // kCellRange, inclusive leaf ids
  uint64_t cell_hi = 0;
  SubscriptionMode mode = SubscriptionMode::kBoth;
};

/// Add()'s receipt: the registry id plus the coverage figures resolved
/// against the subscribe-time snapshot (also the SUBSCRIPTION_RESULT wire
/// payload).
struct SubscriptionInfo {
  uint64_t id = 0;
  uint64_t epoch = 0;
  uint32_t watched_polygons = 0;
  uint32_t coverage_intervals = 0;

  friend bool operator==(const SubscriptionInfo&,
                         const SubscriptionInfo&) = default;
};

class SubscriptionMatcher {
 public:
  /// Delivery callback. Runs on whatever thread drove the transition (a
  /// service worker for point batches, the mutating thread for epoch
  /// swaps) with the subscription's lock held — sinks must be cheap and
  /// must never re-enter the matcher. The net layer's sink hands the
  /// batch to an event-loop inbox and returns.
  using EventSink = std::function<void(EventBatch&&)>;

  /// The catalog must outlive the matcher.
  explicit SubscriptionMatcher(const ServiceCatalog* catalog)
      : catalog_(catalog) {}

  SubscriptionMatcher(const SubscriptionMatcher&) = delete;
  SubscriptionMatcher& operator=(const SubscriptionMatcher&) = delete;

  /// Registers a standing query against a servable dataset. nullopt when
  /// the dataset has no published snapshot, or an explicit polygon id is
  /// out of range at subscribe time. Events begin with the next point
  /// batch — Add itself emits nothing (a track's initial memberships
  /// arrive as ENTERs on its first sighting).
  std::optional<SubscriptionInfo> Add(uint16_t dataset_id,
                                      SubscriptionSpec spec, EventSink sink);

  /// Unregisters; false for an id that was never assigned or was already
  /// removed. The sink is dropped under the subscription's lock, so no
  /// delivery starts after Remove returns.
  bool Remove(uint64_t subscription_id);

  /// Cheap serving-path gate: false ⇒ OnPointBatch would be a no-op for
  /// this dataset (one relaxed load when the matcher is globally idle).
  bool HasSubscriptions(uint16_t dataset_id) const;

  /// Feeds one executed point batch (parallel cell_ids / points arrays,
  /// track id = array index). Pins the dataset's current snapshot once
  /// and advances every subscription on it.
  void OnPointBatch(uint16_t dataset_id, std::span<const uint64_t> cell_ids,
                    std::span<const geom::Point> points);

  /// Re-evaluates every subscription on the dataset against its newest
  /// snapshot (coverage rebuild + full track resync). Call after any
  /// publish: delta mutations, full swaps, drops.
  void OnEpochSwap(uint16_t dataset_id);

  size_t active_subscriptions() const {
    return active_.load(std::memory_order_relaxed);
  }
  uint64_t events_emitted() const {
    return events_emitted_.load(std::memory_order_relaxed);
  }

  /// Gauges/counters for GET_METRICS; the matcher must outlive collection.
  void RegisterMetrics(util::MetricsRegistry* registry) const;

 private:
  /// One track's last known state: where it was probed and which watched
  /// polygons contained it (sorted global ids).
  struct Track {
    bool known = false;
    uint64_t cell = 0;
    geom::Point point{0, 0};
    std::vector<uint32_t> inside;
  };

  struct Sub {
    uint64_t id = 0;
    uint16_t dataset = 0;
    SubscriptionSpec spec;
    EventSink sink;
    std::mutex mu;  // serializes everything below
    uint64_t epoch = 0;  // snapshot the coverage was resolved against
    bool watch_all = false;
    std::vector<uint32_t> watched;  // sorted; unused when watch_all
    /// Sorted, disjoint, coalesced [lo, hi] leaf-cell-id intervals
    /// covering every covering cell that references a watched polygon.
    std::vector<std::pair<uint64_t, uint64_t>> coverage;
    std::vector<Track> tracks;  // index == track id
    uint64_t next_seq = 1;
  };

  /// Resolves watched set + coverage intervals against `index` (clip each
  /// shard's covering cells to the shard's Hilbert interval, keep cells
  /// referencing a watched id, coalesce). Caller holds sub.mu.
  static void BuildCoverage(const ShardedIndex& index, Sub* sub);

  /// Sorted watched membership of one probed point. Caller holds sub.mu.
  static void Membership(const ShardedIndex& index, const Sub& sub,
                         uint64_t cell, const geom::Point& pt,
                         std::vector<CellRef>* scratch,
                         std::vector<uint32_t>* out);

  /// Advances one subscription to `epoch`/`index` (coverage rebuild + track
  /// resync if the epoch moved), then applies the optional point batch.
  /// Emits at most one EventBatch. Caller holds sub.mu.
  void Process(Sub* sub, const ShardedIndex& index, uint64_t epoch,
               std::span<const uint64_t> cell_ids,
               std::span<const geom::Point> points);

  /// Subscriptions on one dataset, in id order (determinism of multi-sub
  /// delivery order within one driver thread).
  std::vector<std::shared_ptr<Sub>> SubsFor(uint16_t dataset_id) const;

  const ServiceCatalog* catalog_;
  mutable std::mutex registry_mu_;
  std::map<uint64_t, std::shared_ptr<Sub>> subs_;  // ordered: id order
  std::atomic<uint64_t> next_id_{1};
  std::atomic<size_t> active_{0};
  std::atomic<uint64_t> events_emitted_{0};
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_SUBSCRIPTION_MATCHER_H_
