// Always-on slow-query log: the top-K completed requests by service time,
// dumpable over the wire via GET_METRICS.
//
// The hot path pays one relaxed load per request: floor_us_ caches the
// smallest service time currently in the log (0 until the log fills), so
// the overwhelming majority of requests — anything faster than the current
// K-th slowest — skip the mutex entirely. Only qualifying requests take
// the lock to displace the minimum.

#ifndef ACTJOIN_SERVICE_SLOW_QUERY_LOG_H_
#define ACTJOIN_SERVICE_SLOW_QUERY_LOG_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace actjoin::service {

struct SlowQuery {
  uint64_t request_id = 0;
  uint16_t dataset_id = 0;
  uint64_t num_points = 0;
  uint64_t epoch = 0;
  double queue_wait_us = 0;
  double service_us = 0;

  friend bool operator==(const SlowQuery&, const SlowQuery&) = default;
};

class SlowQueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  explicit SlowQueryLog(size_t capacity = kDefaultCapacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  /// Records a completed request if it ranks among the top-K by service
  /// time. Lock-free rejection for anything below the current floor.
  void Record(const SlowQuery& q) {
    // Relaxed is enough: a stale floor only costs one needless lock
    // acquisition (floor moved up) or one missed borderline entry whose
    // service time equals the floor — never a wrong entry in the log.
    if (q.service_us <= floor_us_.load(std::memory_order_relaxed)) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() < capacity_) {
      entries_.push_back(q);
      if (entries_.size() == capacity_) UpdateFloorLocked();
      return;
    }
    size_t min_at = 0;
    for (size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].service_us < entries_[min_at].service_us) min_at = i;
    }
    if (q.service_us <= entries_[min_at].service_us) return;  // raced
    entries_[min_at] = q;
    UpdateFloorLocked();
  }

  /// Entries sorted by service time, slowest first.
  std::vector<SlowQuery> TopK() const {
    std::vector<SlowQuery> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      out = entries_;
    }
    std::sort(out.begin(), out.end(), [](const SlowQuery& a, const SlowQuery& b) {
      return a.service_us > b.service_us;
    });
    return out;
  }

  size_t capacity() const { return capacity_; }

 private:
  void UpdateFloorLocked() {
    // Only meaningful once full; while filling, everything qualifies.
    if (entries_.size() < capacity_) return;
    double floor = entries_[0].service_us;
    for (const SlowQuery& e : entries_) {
      if (e.service_us < floor) floor = e.service_us;
    }
    floor_us_.store(floor, std::memory_order_relaxed);
  }

  const size_t capacity_;
  std::atomic<double> floor_us_{0};
  mutable std::mutex mu_;
  std::vector<SlowQuery> entries_;
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_SLOW_QUERY_LOG_H_
