// Spatially sharded polygon index: N per-shard Adaptive Cell Tries behind
// a Hilbert-range router.
//
// A single trie's probe phase is bound by memory access latencies (paper
// Sec. 4.1); past one socket's memory bandwidth the way to scale is to
// shard. Cell ids already linearize space along a Hilbert curve, so a
// shard is simply a contiguous interval of the 64-bit id space: the id
// space is split into num_shards equal intervals, each polygon is assigned
// to every shard its (coarse) covering intersects, and each shard builds
// its own act::PolygonIndex over just its polygons.
//
// A join routes each point to exactly one shard by its leaf cell id —
// bucket-sorting the batch into shard order (which is Hilbert order, so
// per-shard probes stay spatially local) — then decomposes the routed
// batch into coarse (shard, sub-range) task units drained by a
// work-stealing pool, so the whole thread budget converges on whichever
// shard is hot instead of idling on a static per-shard slice (see
// docs/executor.md), and merges per-task results back to global polygon
// ids in fixed shard-then-range order. Because every polygon
// whose covering reaches a shard is indexed there, the exact-mode join is
// byte-identical to one index over the full set (both equal the PIP ground
// truth). Approximate-mode results keep the precision bound but may emit
// *fewer* false positives than the unsharded index: a point is only tested
// against the covering cells of its own shard.
//
// A ShardedIndex is immutable after Build, making it a snapshot type for
// SnapshotRegistry / JoinService hot swaps. Live mutation therefore never
// edits a published index: ApplyDelta clones only the shards a delta
// touches (clone-on-write at shard granularity — the covering, the
// expensive build phase, is reused and only extended for the new
// polygons), shares every untouched shard's trie with the base snapshot,
// and returns a new index to publish through the registry swap, plus the
// leaf-id ranges whose probe results changed so the hot-cell cache can
// invalidate exactly the touched (dataset, cell) entries.

#ifndef ACTJOIN_SERVICE_SHARDED_INDEX_H_
#define ACTJOIN_SERVICE_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "act/join.h"
#include "act/pipeline.h"
#include "geo/grid.h"
#include "geometry/polygon.h"
#include "util/perf_counters.h"
#include "util/work_stealing_pool.h"

namespace actjoin::service {

struct ShardingOptions {
  /// Number of Hilbert-range shards; clamped to >= 1. One shard reproduces
  /// the unsharded index behind the same routing interface.
  int num_shards = 1;
  /// Per-shard index build configuration (precision bound, fanout, ...).
  act::BuildOptions build;
  /// Cell budget for the coarse per-polygon covering used only to decide
  /// which shards a polygon belongs to. Small on purpose: routing coverings
  /// are conservative, so a too-coarse covering only over-assigns.
  int routing_cover_cells = 8;
};

/// One probe-visible polygon reference: shard-local polygon id (map through
/// shard_polygon_ids(ShardOf(cell)) for the global id) plus the interior
/// (true-hit) flag. The value type of the hot-cell result cache.
struct CellRef {
  uint32_t local_pid = 0;
  bool interior = false;
  friend bool operator==(const CellRef&, const CellRef&) = default;
};

class ShardedIndex {
 public:
  /// Builds num_shards per-shard indexes over the polygons. Polygon ids in
  /// join results are positions in `polygons`, exactly as with
  /// act::PolygonIndex::Build over the same vector.
  static ShardedIndex Build(const std::vector<geom::Polygon>& polygons,
                            const geo::Grid& grid,
                            const ShardingOptions& opts);

  /// One persisted shard: the (possibly null, for an empty shard) per-shard
  /// index plus its local-to-global polygon id map. The unit the snapshot
  /// store serializes. Shared ownership is what makes delta application
  /// cheap: an untouched shard's index is aliased into the next snapshot
  /// instead of copied.
  struct ShardParts {
    std::shared_ptr<const act::PolygonIndex> index;  // null when empty
    std::vector<uint32_t> global_ids;                // local pid -> global
  };

  /// Reassembles an index from persisted shards (src/store/): the inverse
  /// of decomposing via shard_index()/shard_polygon_ids(). `parts.size()`
  /// becomes the shard count and must match opts.num_shards (the routing
  /// function is derived from it); per-shard coverings are taken as-is, so
  /// no covering work is redone — that is the entire point of the store.
  /// Joins against the result are byte-identical to the saved index.
  static ShardedIndex FromParts(const geo::Grid& grid,
                                const ShardingOptions& opts,
                                size_t num_polygons,
                                std::vector<ShardParts> parts);

  /// One live mutation against a published snapshot: polygons to append
  /// (assigned the next global ids, in order) and/or global ids to remove.
  /// Ids are assign-only — a removed id keeps its slot (zero counts
  /// forever) and is never reused, exactly as with
  /// act::PolygonIndex::RemovePolygons.
  struct Delta {
    std::vector<geom::Polygon> add;
    std::vector<uint32_t> remove;  // global polygon ids, < num_polygons()
  };

  /// ApplyDelta's output: the next snapshot plus the cache-invalidation
  /// set. `touched_ranges` is a sorted, coalesced list of leaf-cell-id
  /// intervals [first, last] covering every covering cell whose reference
  /// list changed; a cached probe result for a leaf outside every range is
  /// still byte-identical against the new snapshot.
  struct DeltaResult {
    std::shared_ptr<const ShardedIndex> index;
    std::vector<std::pair<uint64_t, uint64_t>> touched_ranges;
    uint32_t first_added_id = 0;
  };

  /// Applies a delta copy-on-write: shards whose polygon set changes are
  /// cloned (reusing their already-computed coverings; only the added
  /// polygons' coverings are computed, which is what makes delta-apply ≪ a
  /// full rebuild) and re-encoded; untouched shards are shared with
  /// `base`. The result is a fully independent snapshot to publish through
  /// SnapshotRegistry; `base` is never modified and in-flight joins
  /// against it are unaffected. Incremental insertion and fresh build
  /// produce the same covering, so joins against the result are
  /// byte-identical to a from-scratch Build over the final polygon set
  /// with the same id assignment. Ids in `delta.remove` must be <
  /// base.num_polygons() (checked).
  static DeltaResult ApplyDelta(const ShardedIndex& base, const Delta& delta);

  /// Wall time per executor phase for one Join call, microseconds. The
  /// request-tracing seam: route covers bucket-sort + task decomposition,
  /// probe covers the work-stealing drain (wall, not CPU-sum), merge
  /// covers the fixed-order remap back to global ids.
  struct JoinPhaseTimes {
    double route_us = 0;
    double probe_us = 0;
    double merge_us = 0;
    /// Hardware-counter deltas per phase, from the caller-supplied
    /// StagePerfCounters group (valid only when `counters_valid`). The
    /// group counts the *calling* thread, so for a pool-parallel probe the
    /// probe delta covers this thread's share of the drain — the stealing
    /// workers' cycles are not attributed (documented limitation; the
    /// wall/CPU distinction the probe stage time already carries).
    bool counters_valid = false;
    util::StageCounterSample route_counters;
    util::StageCounterSample probe_counters;
    util::StageCounterSample merge_counters;
  };

  /// Routed equivalent of act::PolygonIndex::Join: bucket-sorts the batch
  /// by shard, splits each shard's slice into (shard, sub-range) task
  /// units, and drains them work-stealing-wide across the whole thread
  /// budget (opts.threads; library convention 0 => DefaultThreadCount()).
  /// Stats are merged in fixed shard-then-range order with counts remapped
  /// to global polygon ids, so results are byte-identical to the unsharded
  /// index regardless of which thread ran which task.
  ///
  /// When `pool` is non-null (and has workers) its workers execute the
  /// tasks, the calling thread helps, and the pool's width replaces
  /// opts.threads entirely — budget and task granularity both come from
  /// util::EffectiveWidth(pool, ...). A null pool spawns a transient pool
  /// of opts.threads for this call.
  ///
  /// A non-null `phases` receives the per-phase wall breakdown; timing is
  /// three WallTimer reads, so passing it costs nothing measurable. A
  /// non-null `stage_perf` (an available per-thread group opened by the
  /// calling thread) additionally fills the phase counter deltas — one
  /// group read() per phase boundary.
  act::JoinStats Join(const act::JoinInput& input, const act::JoinOptions& opts,
                      util::WorkStealingPool* pool = nullptr,
                      JoinPhaseTimes* phases = nullptr,
                      const util::StagePerfCounters* stage_perf = nullptr) const;

  /// The pre-work-stealing executor: shards run concurrently, each owning
  /// a static 1/num_shards slice of the thread budget. Kept as the A/B
  /// baseline the bench smoke compares the stealing executor against (and
  /// as the fallback should a pool regression ever need bisecting);
  /// results are byte-identical to Join.
  act::JoinStats JoinStaticSplit(const act::JoinInput& input,
                                 const act::JoinOptions& opts) const;

  /// Routed equivalent of act::PolygonIndex::JoinPairs: sorted (point
  /// index, global polygon id) pairs. Carries the same ordering contract
  /// as act::ExecuteJoinPairs — ascending by (point index, polygon id),
  /// duplicate-free — so results from any pair producer with that
  /// contract (including join2::CrossMatch pair output) are
  /// byte-comparable. `threads` follows the library
  /// convention (0 => DefaultThreadCount()); the default 1 preserves the
  /// historical single-threaded behavior. Output is identical at every
  /// width: per-task pair lists are concatenated in fixed shard-then-range
  /// order and the final sort canonicalizes.
  std::vector<std::pair<uint64_t, uint32_t>> JoinPairs(
      const act::JoinInput& input, act::JoinMode mode, int threads = 1,
      util::WorkStealingPool* pool = nullptr) const;

  /// Replaces `out` with the references the probe loop would visit for
  /// this leaf cell, in visit order. Empty output <=> a sentinel probe (a
  /// guaranteed miss). This is the seam the hot-cell result cache fills:
  /// replaying the list (interior flags included) is equivalent to the
  /// trie walk, for both join modes.
  void ProbeCell(uint64_t leaf_cell_id, std::vector<CellRef>* out) const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  size_t num_polygons() const { return num_polygons_; }

  /// Shard responsible for a leaf cell id.
  int ShardOf(uint64_t leaf_cell_id) const;

  /// Per-shard index; null for a shard with no polygons (its points cannot
  /// match anything and short-circuit in the router).
  const act::PolygonIndex* shard_index(int s) const {
    return shards_[s].index.get();
  }
  /// Global polygon ids indexed by shard `s` (shard-local id -> global id).
  const std::vector<uint32_t>& shard_polygon_ids(int s) const {
    return shards_[s].global_ids;
  }

  uint64_t MemoryBytes() const;
  double build_seconds() const { return build_seconds_; }
  const ShardingOptions& options() const { return opts_; }
  const geo::Grid& grid() const { return grid_; }

 private:
  struct Shard {
    std::shared_ptr<const act::PolygonIndex> index;  // null when empty
    std::vector<uint32_t> global_ids;                // local pid -> global
  };

  explicit ShardedIndex(const geo::Grid& grid) : grid_(grid) {}

  geo::Grid grid_;
  ShardingOptions opts_;
  size_t num_polygons_ = 0;
  std::vector<Shard> shards_;
  double build_seconds_ = 0;
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_SHARDED_INDEX_H_
