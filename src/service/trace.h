// Per-request tracing: a TraceContext allocated at frame decode rides the
// request through every serving stage and comes back inline in the
// JOIN_BATCH response when the client sets the trace flag.
//
// The stages tile the request's server-side lifetime: admission check,
// payload decode, queue wait, shard decomposition, probe/refine across
// task units, fixed-order merge, and response encode+write. Their sum is
// the server's view of end-to-end service time — the acceptance contract
// is that it lands within 10% of the wall time a loopback client measures
// around the call (the remainder is transport).

#ifndef ACTJOIN_SERVICE_TRACE_H_
#define ACTJOIN_SERVICE_TRACE_H_

#include <array>
#include <cstdint>

#include "util/perf_counters.h"

namespace actjoin::service {

enum class TraceStage : uint8_t {
  kAdmission = 0,  // admission-control decision (rate/bytes/watermark)
  kDecode = 1,     // wire payload -> QueryBatch
  kQueue = 2,      // bounded-queue wait until a worker picks it up
  kDecompose = 3,  // route batch to shards + carve (shard, range) tasks
  kProbe = 4,      // per-task probe/refine across the pool (wall, not CPU)
  kMerge = 5,      // fixed-order merge of per-task results
  kRespond = 6,    // response encode + delivery to the event loop
};

inline constexpr int kNumTraceStages = 7;

inline const char* TraceStageName(TraceStage s) {
  switch (s) {
    case TraceStage::kAdmission: return "admission";
    case TraceStage::kDecode: return "decode";
    case TraceStage::kQueue: return "queue";
    case TraceStage::kDecompose: return "decompose";
    case TraceStage::kProbe: return "probe";
    case TraceStage::kMerge: return "merge";
    case TraceStage::kRespond: return "respond";
  }
  return "?";
}

/// Stage breakdown for one request. Plain data: copied into JoinResult and
/// encoded inline in the response when enabled.
struct TraceContext {
  uint64_t request_id = 0;
  bool enabled = false;
  /// Wall time spent in each stage, microseconds, indexed by TraceStage.
  std::array<double, kNumTraceStages> stage_us{};

  /// Hardware-counter attribution (ServiceOptions::stage_perf_counters):
  /// cycles / instructions / LLC-miss deltas per stage, measured by the
  /// per-thread StagePerfCounters group of whichever thread ran the stage.
  /// `counters_enabled` marks the mode on for this request (the wire block
  /// carries the section); `counters_available` is false when the kernel
  /// denied perf_event_open — the deltas are then all zero and flagged
  /// unavailable, never fabricated. kQueue stays zero by construction (a
  /// queued request burns no CPU anywhere attributable).
  bool counters_enabled = false;
  bool counters_available = false;
  std::array<util::StageCounterSample, kNumTraceStages> stage_counters{};

  double& at(TraceStage s) { return stage_us[static_cast<int>(s)]; }
  double at(TraceStage s) const { return stage_us[static_cast<int>(s)]; }

  util::StageCounterSample& counters(TraceStage s) {
    return stage_counters[static_cast<int>(s)];
  }
  const util::StageCounterSample& counters(TraceStage s) const {
    return stage_counters[static_cast<int>(s)];
  }

  double TotalMicros() const {
    double total = 0;
    for (double v : stage_us) total += v;
    return total;
  }

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_TRACE_H_
