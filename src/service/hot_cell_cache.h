// Hot-cell result cache: a small sharded LRU keyed by leaf cell id.
//
// Taxi-style workloads are heavily skewed (the paper's point sets put >90%
// of probes in a few hotspots), so a tiny cache of cell -> polygon-ref
// lists absorbs most trie walks: a hit replays the exact reference list the
// probe loop would have visited — interior flags included — so exact mode
// still runs its PIP refinement and results are identical to the uncached
// path. Entries are tagged with the snapshot epoch that produced them; a
// hot swap invalidates logically (stale entries miss and are overwritten)
// with no cross-thread flush.
//
// Sharded by a multiplicative hash of the cell id, one mutex per shard:
// concurrent workers probing different hot cells rarely contend, and the
// per-entry cost is one lock + one hash lookup, far below a trie descent
// only for genuinely hot cells.

#ifndef ACTJOIN_SERVICE_HOT_CELL_CACHE_H_
#define ACTJOIN_SERVICE_HOT_CELL_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/sharded_index.h"
#include "util/check.h"

namespace actjoin::service {

class HotCellCache {
 public:
  /// `capacity` is the total entry budget across all shards (clamped so
  /// every shard holds at least one entry). `num_shards` is rounded up to
  /// a power of two for mask-based shard selection.
  HotCellCache(size_t capacity, int num_shards) {
    int ns = 1;
    while (ns < num_shards) ns <<= 1;
    shards_.reserve(static_cast<size_t>(ns));
    for (int s = 0; s < ns; ++s) shards_.push_back(std::make_unique<Shard>());
    per_shard_capacity_ = std::max<size_t>(1, capacity / shards_.size());
  }

  /// On hit, copies the cached reference list into `out` and returns true.
  /// A cell cached under a different epoch is a miss (the entry is left to
  /// be overwritten by the following Insert).
  bool Lookup(uint64_t cell, uint64_t epoch, std::vector<CellRef>* out) {
    Shard& shard = ShardFor(cell);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(cell);
      if (it != shard.map.end() && it->second->epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        *out = it->second->refs;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Insert(uint64_t cell, uint64_t epoch, std::vector<CellRef> refs) {
    Shard& shard = ShardFor(cell);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(cell);
    if (it != shard.map.end()) {
      // Refresh in place (covers the stale-epoch overwrite).
      it->second->epoch = epoch;
      it->second->refs = std::move(refs);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= per_shard_capacity_) {
      shard.map.erase(shard.lru.back().cell);
      shard.lru.pop_back();
    }
    shard.lru.push_front(Entry{cell, epoch, std::move(refs)});
    shard.map.emplace(cell, shard.lru.begin());
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t capacity() const { return per_shard_capacity_ * shards_.size(); }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->lru.size();
    }
    return n;
  }

 private:
  struct Entry {
    uint64_t cell = 0;
    uint64_t epoch = 0;
    std::vector<CellRef> refs;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
  };

  Shard& ShardFor(uint64_t cell) {
    // Fibonacci hash spreads consecutive Hilbert-adjacent cell ids across
    // shards, so one hotspot's cells do not all hit one mutex.
    uint64_t h = cell * 0x9E3779B97F4A7C15ull;
    return *shards_[h >> 32 & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t per_shard_capacity_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_HOT_CELL_CACHE_H_
