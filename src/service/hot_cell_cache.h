// Hot-cell result cache: a small sharded LRU keyed by (dataset, leaf cell).
//
// Taxi-style workloads are heavily skewed (the paper's point sets put >90%
// of probes in a few hotspots), so a tiny cache of cell -> polygon-ref
// lists absorbs most trie walks: a hit replays the exact reference list the
// probe loop would have visited — interior flags included — so exact mode
// still runs its PIP refinement and results are identical to the uncached
// path. Entries are tagged with the snapshot epoch that produced them; a
// hot swap invalidates logically (stale entries miss and are overwritten)
// with no cross-thread flush. With the multi-dataset catalog, epochs are
// per-dataset sequences, so the dataset id is part of the key — two
// datasets both at epoch 1 must never read each other's reference lists.
//
// Sharded by a multiplicative hash of the key, one mutex per shard:
// concurrent workers probing different hot cells rarely contend, and the
// per-entry cost is one lock + one hash lookup, far below a trie descent
// only for genuinely hot cells.

#ifndef ACTJOIN_SERVICE_HOT_CELL_CACHE_H_
#define ACTJOIN_SERVICE_HOT_CELL_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/sharded_index.h"
#include "util/check.h"
#include "util/metrics.h"

namespace actjoin::service {

class HotCellCache {
 public:
  /// `capacity` is the total entry budget across all shards. `num_shards`
  /// is rounded up to a power of two for mask-based shard selection. The
  /// budget is distributed with its remainder spread over the first
  /// `capacity % num_shards` shards (every shard holds at least one
  /// entry), so capacity() always reports >= the requested budget —
  /// flooring capacity / shards per shard used to shrink a 100-entry
  /// budget over 64 shards to 64 entries.
  HotCellCache(size_t capacity, int num_shards) {
    capacity = std::max<size_t>(1, capacity);
    size_t ns = 1;
    while (ns < static_cast<size_t>(num_shards)) ns <<= 1;
    shards_.reserve(ns);
    const size_t base = capacity / ns;
    const size_t remainder = capacity % ns;
    for (size_t s = 0; s < ns; ++s) {
      auto shard = std::make_unique<Shard>();
      shard->capacity = std::max<size_t>(1, base + (s < remainder ? 1 : 0));
      total_capacity_ += shard->capacity;
      shards_.push_back(std::move(shard));
    }
  }

  /// On hit, copies the cached reference list into `out` and returns true.
  /// A cell cached under a different epoch is a miss (the entry is left to
  /// be overwritten by the following Insert).
  bool Lookup(uint16_t dataset, uint64_t cell, uint64_t epoch,
              std::vector<CellRef>* out) {
    const Key key{cell, dataset};
    Shard& shard = ShardFor(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(key);
      if (it != shard.map.end() && it->second->epoch == epoch) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        *out = it->second->refs;
        hits_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  void Insert(uint16_t dataset, uint64_t cell, uint64_t epoch,
              std::vector<CellRef> refs) {
    const Key key{cell, dataset};
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Never downgrade: a worker still pinning an older snapshot may race
      // its Insert against one from the new epoch (or against
      // InvalidateRanges carrying the entry forward). Writing the old
      // epoch's refs over the newer entry would leave a (new epoch, stale
      // refs) pair visible to the next Lookup once the epochs collide —
      // the stale-read window the Delta* TSan regression hammers. The
      // entry is replaced wholesale under the shard lock, epoch and refs
      // together, so a Lookup can never observe one without the other.
      if (it->second->epoch > epoch) return;
      *it->second = Entry{key, epoch, std::move(refs)};
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.map.erase(shard.lru.back().key);
      shard.lru.pop_back();
    }
    shard.lru.push_front(Entry{key, epoch, std::move(refs)});
    shard.map.emplace(key, shard.lru.begin());
  }

  /// Migrates a dataset's entries across a delta publish: entries whose
  /// cell falls inside one of the sorted, coalesced `ranges` (leaf-id
  /// intervals [first, last] — ShardedIndex::DeltaResult::touched_ranges)
  /// are erased; every other entry still replays byte-identically against
  /// the new snapshot, so it is carried forward from `old_epoch` to
  /// `new_epoch` instead of being left to age out as a miss. Entries at
  /// other epochs (older snapshots still pinned by in-flight joins) are
  /// left alone. This is what makes a delta invalidate exactly the touched
  /// (dataset, cell) entries rather than logically flushing the dataset.
  void InvalidateRanges(
      uint16_t dataset, uint64_t old_epoch, uint64_t new_epoch,
      const std::vector<std::pair<uint64_t, uint64_t>>& ranges) {
    auto touched = [&](uint64_t cell) {
      auto it = std::upper_bound(
          ranges.begin(), ranges.end(), cell,
          [](uint64_t c, const std::pair<uint64_t, uint64_t>& r) {
            return c < r.first;
          });
      return it != ranges.begin() && cell <= std::prev(it)->second;
    };
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto it = shard->lru.begin(); it != shard->lru.end();) {
        if (it->key.dataset != dataset || it->epoch != old_epoch) {
          ++it;
          continue;
        }
        if (touched(it->key.cell)) {
          shard->map.erase(it->key);
          it = shard->lru.erase(it);
        } else {
          it->epoch = new_epoch;
          ++it;
        }
      }
    }
  }

  /// Drops every entry of one dataset regardless of epoch (DROP_DATASET:
  /// nothing cached for it can ever be replayed again).
  void InvalidateDataset(uint16_t dataset) {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (auto it = shard->lru.begin(); it != shard->lru.end();) {
        if (it->key.dataset == dataset) {
          shard->map.erase(it->key);
          it = shard->lru.erase(it);
        } else {
          ++it;
        }
      }
    }
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  /// Registers hit/miss/occupancy instruments into `registry` as
  /// collection-time callbacks; the cache must outlive collections.
  void RegisterMetrics(util::MetricsRegistry* registry) const {
    registry->RegisterCounterFn("cache_hits_total",
                                "Hot-cell cache hits", "",
                                [this] { return hits(); });
    registry->RegisterCounterFn("cache_misses_total",
                                "Hot-cell cache misses", "",
                                [this] { return misses(); });
    registry->RegisterGaugeFn("cache_size", "Hot-cell cache entries", "",
                              [this] { return static_cast<double>(size()); });
    registry->RegisterGaugeFn("cache_capacity", "Hot-cell cache entry budget",
                              "", [this] {
                                return static_cast<double>(capacity());
                              });
  }
  /// Total entries the cache can hold; >= the requested budget (the
  /// at-least-one-entry-per-shard floor can round a tiny budget up).
  size_t capacity() const { return total_capacity_; }

  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->lru.size();
    }
    return n;
  }

 private:
  struct Key {
    uint64_t cell = 0;
    uint16_t dataset = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Fibonacci hash spreads consecutive Hilbert-adjacent cell ids (and
      // dataset ids) across buckets and shards.
      return static_cast<size_t>(
          (k.cell ^ (static_cast<uint64_t>(k.dataset) << 56 |
                     static_cast<uint64_t>(k.dataset))) *
          0x9E3779B97F4A7C15ull);
    }
  };
  struct Entry {
    Key key;
    uint64_t epoch = 0;
    std::vector<CellRef> refs;
  };
  struct Shard {
    mutable std::mutex mu;
    size_t capacity = 1;   // this shard's slice of the entry budget
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash{}(key) >> 32 & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  size_t total_capacity_ = 0;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_HOT_CELL_CACHE_H_
