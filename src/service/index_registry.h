// Snapshot registry: MVCC-style hot swap of immutable indexes.
//
// The library's indexes are immutable after construction (the trie performs
// all adaptation at build time), which makes concurrent serving a snapshot
// problem, not a locking problem. Readers Acquire() a refcounted snapshot
// (std::shared_ptr pins it); an updater builds a replacement off to the
// side — PolygonIndex::Clone() + AddPolygons/RemovePolygons/Train, or a
// fresh ShardedIndex::Build — and Publish()es it with a single pointer
// swap inside a short critical section. In-flight queries keep probing the
// snapshot they pinned; the old index is freed when its last reference
// drops. This is the shared-snapshot discipline of MVCC databases scaled
// down to one pointer: a swap never stalls a running join and a join
// never delays a swap beyond the pointer-copy critical section.
//
// Each Publish advances a monotonically increasing epoch, so results can
// be tagged with the index version that served them (epoch 0 means
// "nothing published yet").

#ifndef ACTJOIN_SERVICE_INDEX_REGISTRY_H_
#define ACTJOIN_SERVICE_INDEX_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "act/pipeline.h"
#include "util/check.h"

namespace actjoin::service {

/// Generic epoch/refcount registry over any immutable index type. The
/// mutex guards only the pointer copy and epoch bump — a few nanoseconds —
/// never a query or a build.
template <typename IndexT>
class SnapshotRegistry {
 public:
  using Snapshot = std::shared_ptr<const IndexT>;

  SnapshotRegistry() = default;
  explicit SnapshotRegistry(Snapshot initial) {
    if (initial != nullptr) Publish(std::move(initial));
  }

  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// Pins and returns the current snapshot (null before the first
  /// Publish). If `epoch_out` is non-null it receives the epoch the
  /// snapshot was published at, consistent with the returned pointer.
  Snapshot Acquire(uint64_t* epoch_out = nullptr) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch_out != nullptr) *epoch_out = epoch_;
    return current_;
  }

  /// Swaps in a new snapshot and returns its epoch. In-flight readers are
  /// unaffected: they hold references to the previous snapshot, which is
  /// destroyed only when the last reference drops.
  uint64_t Publish(Snapshot next) {
    ACT_CHECK(next != nullptr);
    Snapshot retired;  // destroyed after the lock is released
    std::lock_guard<std::mutex> lock(mu_);
    retired = std::exchange(current_, std::move(next));
    return ++epoch_;
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mu_);
    return epoch_;
  }

 private:
  mutable std::mutex mu_;
  Snapshot current_;
  uint64_t epoch_ = 0;
};

/// The registry shape described by the serving-layer design: snapshots of
/// the paper's single-trie index. JoinService instantiates the same
/// template over ShardedIndex.
using IndexRegistry = SnapshotRegistry<act::PolygonIndex>;

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_INDEX_REGISTRY_H_
