#include "service/join_service.h"

#include <stdexcept>
#include <utility>

#include "geometry/pip.h"
#include "service/subscription_matcher.h"
#include "util/check.h"
#include "util/parallel_for.h"

namespace actjoin::service {

namespace {

int ResolveWorkers(int requested) {
  return requested <= 0 ? util::DefaultThreadCount() : requested;
}

/// The calling worker's stage-attribution counter group. Set for the
/// worker thread's lifetime by WorkerLoop when stage_perf_counters is on;
/// the completion hooks the network front-end installs run on the same
/// thread, which is how they reach the group for the respond stage.
thread_local util::StagePerfCounters* tls_stage_perf = nullptr;

std::future<JoinResult> FailedFuture(const char* what) {
  std::promise<JoinResult> p;
  p.set_exception(std::make_exception_ptr(std::runtime_error(what)));
  return p.get_future();
}

}  // namespace

const char* ToString(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kQueueFull:
      return "queue full";
    case SubmitStatus::kShutDown:
      return "shut down";
    case SubmitStatus::kUnknownDataset:
      return "unknown dataset";
  }
  return "unknown";
}

const char* ToString(MutationStatus status) {
  switch (status) {
    case MutationStatus::kApplied:
      return "applied";
    case MutationStatus::kUnknownDataset:
      return "unknown dataset";
    case MutationStatus::kDropped:
      return "dataset dropped";
    case MutationStatus::kInvalidMutation:
      return "invalid mutation";
    case MutationStatus::kShutDown:
      return "shut down";
  }
  return "unknown";
}

JoinService::JoinService(Snapshot initial, const ServiceOptions& opts)
    : JoinService(opts) {
  ACT_CHECK_MSG(catalog_.Add("default", std::move(initial)).has_value(),
                "JoinService requires a non-null initial index");
}

JoinService::JoinService(const ServiceOptions& opts)
    : opts_(opts),
      queue_(std::max<size_t>(1, opts.queue_capacity)),
      stats_(ResolveWorkers(opts.worker_threads)),
      slow_queries_(opts.slow_query_log_capacity) {
  opts_.queue_capacity = queue_.capacity();
  opts_.worker_threads = ResolveWorkers(opts_.worker_threads);
  if (opts_.threads_per_join < 1) opts_.threads_per_join = 1;
  if (opts_.shared_pool_workers < 0) opts_.shared_pool_workers = 0;
  if (opts_.shared_pool_workers > 0) {
    join_pool_ =
        std::make_unique<util::WorkStealingPool>(opts_.shared_pool_workers);
  }
  if (opts_.cell_cache_shards < 1) opts_.cell_cache_shards = 1;
  if (opts_.cell_cache_capacity > 0) {
    cell_cache_ = std::make_unique<HotCellCache>(opts_.cell_cache_capacity,
                                                 opts_.cell_cache_shards);
  }
  // Same reservation discipline as the catalog's slot vector: reserve the
  // whole u16 id space so push_back in CountersFor never reallocates under
  // a concurrent lock-free read in Execute.
  dataset_counters_.reserve(size_t{1} << 16);
  if (opts_.enable_metrics) {
    metrics_ = std::make_unique<util::MetricsRegistry>(
        std::max<size_t>(1, opts_.event_log_capacity));
    RegisterMetrics();
  }
  if (opts_.autostart) Start();
}

JoinService::~JoinService() { Shutdown(); }

void JoinService::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || shut_down_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(opts_.worker_threads));
  for (int w = 0; w < opts_.worker_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

JoinService::DatasetCounters& JoinService::CountersFor(uint16_t dataset_id) {
  // Lock-free fast path, mirroring ServiceCatalog::Find: the slot array
  // never reallocates (reserved to the full id space) and size_ is
  // release-published after the slots exist.
  const size_t want = static_cast<size_t>(dataset_id) + 1;
  if (want > dataset_counters_size_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(dataset_counters_mu_);
    while (dataset_counters_.size() < want) {
      dataset_counters_.push_back(std::make_unique<DatasetCounters>());
    }
    if (dataset_counters_size_.load(std::memory_order_relaxed) < want) {
      dataset_counters_size_.store(dataset_counters_.size(),
                                   std::memory_order_release);
    }
  }
  return *dataset_counters_[dataset_id];
}

void JoinService::RegisterMetrics() {
  util::MetricsRegistry* r = metrics_.get();
  stats_.RegisterMetrics(r);
  r->RegisterGaugeFn("queue_depth", "Requests waiting in the bounded queue",
                     "", [this] { return static_cast<double>(queue_.size()); });
  r->RegisterGaugeFn("datasets", "Datasets in the catalog", "",
                     [this] { return static_cast<double>(catalog_.size()); });
  // Per-dataset splits as family callbacks: series appear the moment a
  // dataset enters the catalog — including datasets added behind the
  // service's back via catalog().Add on the warm-restart path.
  r->RegisterGaugeFamilyFn(
      "dataset_epoch", "Current snapshot epoch per dataset", [this] {
        util::MetricsRegistry::FamilySeries out;
        for (const DatasetInfo& info : catalog_.List()) {
          out.emplace_back("dataset=\"" + info.name + "\"",
                           static_cast<double>(info.epoch));
        }
        return out;
      });
  r->RegisterCounterFamilyFn(
      "dataset_points_served_total", "Probe points served per dataset",
      [this] {
        util::MetricsRegistry::FamilySeries out;
        const size_t n = dataset_counters_size_.load(std::memory_order_acquire);
        for (const DatasetInfo& info : catalog_.List()) {
          const uint64_t v =
              info.id < n ? dataset_counters_[info.id]->points_served.load(
                                std::memory_order_relaxed)
                          : 0;
          out.emplace_back("dataset=\"" + info.name + "\"",
                           static_cast<double>(v));
        }
        return out;
      });
  r->RegisterCounterFamilyFn(
      "dataset_requests_completed_total", "Join requests completed per dataset",
      [this] {
        util::MetricsRegistry::FamilySeries out;
        const size_t n = dataset_counters_size_.load(std::memory_order_acquire);
        for (const DatasetInfo& info : catalog_.List()) {
          const uint64_t v =
              info.id < n ? dataset_counters_[info.id]->completed.load(
                                std::memory_order_relaxed)
                          : 0;
          out.emplace_back("dataset=\"" + info.name + "\"",
                           static_cast<double>(v));
        }
        return out;
      });
  if (cell_cache_ != nullptr) cell_cache_->RegisterMetrics(r);
  if (opts_.stage_perf_counters) {
    for (int i = 0; i < kNumTraceStages; ++i) {
      const auto s = static_cast<TraceStage>(i);
      // A queued request burns no attributable CPU; the stage exists on
      // the wire (zeros) but gets no histogram series.
      if (s == TraceStage::kQueue) continue;
      const std::string labels =
          std::string("stage=\"") + TraceStageName(s) + "\"";
      stage_cycles_hist_[i] = r->GetHistogram(
          "stage_cycles",
          "CPU cycles per request per serving stage (raw counts; the "
          "exposition's seconds scaling makes buckets 1e-6 of the count)",
          labels);
      stage_instructions_hist_[i] = r->GetHistogram(
          "stage_instructions",
          "Instructions retired per request per serving stage (raw counts)",
          labels);
      stage_llc_hist_[i] = r->GetHistogram(
          "stage_llc_misses",
          "Last-level cache misses per request per serving stage (raw counts)",
          labels);
    }
  }
}

JoinService::StagePerfTotals JoinService::StagePerfSnapshot() const {
  StagePerfTotals out;
  out.enabled = opts_.stage_perf_counters;
  out.available = stage_perf_available_.load(std::memory_order_acquire);
  for (int i = 0; i < kNumTraceStages; ++i) {
    const StageCounterTotals& t = stage_perf_totals_[i];
    out.stage[i].cycles = t.cycles.load(std::memory_order_relaxed);
    out.stage[i].instructions = t.instructions.load(std::memory_order_relaxed);
    out.stage[i].llc_misses = t.llc_misses.load(std::memory_order_relaxed);
  }
  return out;
}

util::StagePerfCounters* JoinService::CurrentThreadStageCounters() {
  return tls_stage_perf;
}

void JoinService::RecordStageCounters(TraceStage stage,
                                      const util::StageCounterSample& delta) {
  const int i = static_cast<int>(stage);
  StageCounterTotals& t = stage_perf_totals_[i];
  t.cycles.fetch_add(delta.cycles, std::memory_order_relaxed);
  t.instructions.fetch_add(delta.instructions, std::memory_order_relaxed);
  t.llc_misses.fetch_add(delta.llc_misses, std::memory_order_relaxed);
  if (stage_cycles_hist_[i] != nullptr) {
    stage_cycles_hist_[i]->Record(static_cast<double>(delta.cycles));
    stage_instructions_hist_[i]->Record(
        static_cast<double>(delta.instructions));
    stage_llc_hist_[i]->Record(static_cast<double>(delta.llc_misses));
  }
}

void JoinService::AppendEvent(std::string kind, std::string subject,
                              std::string detail) {
  if (metrics_ == nullptr) return;
  metrics_->events().Append(std::move(kind), std::move(subject),
                            std::move(detail));
}

std::future<JoinResult> JoinService::Submit(QueryBatch batch) {
  if (!catalog_.Servable(batch.dataset_id)) {
    stats_.RecordRejectedUnknownDataset();
    return FailedFuture("JoinService: unknown dataset");
  }
  auto req = std::make_unique<Request>();
  req->batch = std::move(batch);
  std::future<JoinResult> future = req->promise.get_future();
  if (!queue_.Push(std::move(req))) {
    stats_.RecordRejectedShutdown();
    return FailedFuture("JoinService: submit after shutdown");
  }
  return future;
}

SubmitStatus JoinService::Enqueue(std::unique_ptr<Request> req) {
  // Dataset ids and snapshots are assigned-only (never revoked), so a
  // positive check here cannot be invalidated between enqueue and
  // execution.
  if (!catalog_.Servable(req->batch.dataset_id)) {
    stats_.RecordRejectedUnknownDataset();
    return SubmitStatus::kUnknownDataset;
  }
  if (queue_.TryPush(req)) return SubmitStatus::kAccepted;
  // TryPush refuses for exactly two reasons; closed() distinguishes them.
  if (queue_.closed()) {
    stats_.RecordRejectedShutdown();
    return SubmitStatus::kShutDown;
  }
  stats_.RecordRejectedQueueFull();
  return SubmitStatus::kQueueFull;
}

SubmitStatus JoinService::TrySubmit(QueryBatch batch,
                                    std::future<JoinResult>* result) {
  auto req = std::make_unique<Request>();
  req->batch = std::move(batch);
  std::future<JoinResult> future = req->promise.get_future();
  SubmitStatus status = Enqueue(std::move(req));
  if (status == SubmitStatus::kAccepted && result != nullptr) {
    *result = std::move(future);
  }
  return status;
}

SubmitStatus JoinService::TrySubmitAsync(QueryBatch batch,
                                         std::function<void(JoinResult)> done) {
  auto req = std::make_unique<Request>();
  req->batch = std::move(batch);
  req->done = std::move(done);
  return Enqueue(std::move(req));
}

uint64_t JoinService::SwapIndex(uint16_t dataset_id, Snapshot next) {
  ServiceCatalog::Registry* registry = catalog_.Find(dataset_id);
  ACT_CHECK_MSG(registry != nullptr, "SwapIndex on an unassigned dataset id");
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(mutation_mu_);
    epoch = registry->Publish(std::move(next));
    // A full publish obsoletes the delta chain: nothing at or before this
    // epoch will ever need replay, and a tombstoned dataset is resurrected.
    if (MutationJournal* journal = catalog_.JournalOf(dataset_id)) {
      journal->Reset(epoch);
    }
    catalog_.MarkDropped(dataset_id, false);
    AppendEvent("swap", catalog_.NameOf(dataset_id),
                "epoch " + std::to_string(epoch));
  }
  NotifyEpochSwap(dataset_id);
  return epoch;
}

void JoinService::NotifyEpochSwap(uint16_t dataset_id) {
  if (SubscriptionMatcher* subs =
          subscriptions_.load(std::memory_order_acquire)) {
    subs->OnEpochSwap(dataset_id);
  }
}

MutationResult JoinService::AddPolygons(uint16_t dataset_id,
                                        std::vector<geom::Polygon> polygons) {
  MutationResult out = Mutate(dataset_id, MutationRecord::Kind::kAdd,
                              std::move(polygons), {});
  if (out.status == MutationStatus::kApplied) NotifyEpochSwap(dataset_id);
  return out;
}

MutationResult JoinService::RemovePolygons(
    uint16_t dataset_id, std::vector<uint32_t> polygon_ids) {
  MutationResult out = Mutate(dataset_id, MutationRecord::Kind::kRemove, {},
                              std::move(polygon_ids));
  if (out.status == MutationStatus::kApplied) NotifyEpochSwap(dataset_id);
  return out;
}

MutationResult JoinService::DropDataset(uint16_t dataset_id) {
  MutationResult out = Mutate(dataset_id, MutationRecord::Kind::kDrop, {}, {});
  if (out.status == MutationStatus::kApplied) NotifyEpochSwap(dataset_id);
  return out;
}

MutationResult JoinService::Mutate(uint16_t dataset_id,
                                   MutationRecord::Kind kind,
                                   std::vector<geom::Polygon> add,
                                   std::vector<uint32_t> remove) {
  std::lock_guard<std::mutex> lock(mutation_mu_);
  MutationResult out;
  ServiceCatalog::Registry* registry = catalog_.Find(dataset_id);
  if (registry == nullptr || registry->epoch() == 0) {
    out.status = MutationStatus::kUnknownDataset;
    stats_.RecordRejectedMutation();
    return out;
  }
  if (catalog_.IsDropped(dataset_id)) {
    out.status = MutationStatus::kDropped;
    stats_.RecordRejectedMutation();
    return out;
  }

  uint64_t old_epoch = 0;
  Snapshot base = registry->Acquire(&old_epoch);
  Snapshot next;
  ShardedIndex::DeltaResult delta_result;
  switch (kind) {
    case MutationRecord::Kind::kAdd: {
      // Polygon ids are 30-bit (act::kMaxPolygonId); a batch that would
      // overflow the id space rejects whole, like an out-of-range remove.
      if (add.empty() ||
          base->num_polygons() + add.size() > act::kMaxPolygonId + uint64_t{1}) {
        out.status = MutationStatus::kInvalidMutation;
        stats_.RecordRejectedMutation();
        return out;
      }
      for (const geom::Polygon& p : add) {
        if (p.rings().empty()) {
          out.status = MutationStatus::kInvalidMutation;
          stats_.RecordRejectedMutation();
          return out;
        }
      }
      ShardedIndex::Delta delta;
      delta.add = add;
      delta_result = ShardedIndex::ApplyDelta(*base, delta);
      next = delta_result.index;
      out.first_id = delta_result.first_added_id;
      break;
    }
    case MutationRecord::Kind::kRemove: {
      if (remove.empty()) {
        out.status = MutationStatus::kInvalidMutation;
        stats_.RecordRejectedMutation();
        return out;
      }
      for (uint32_t gid : remove) {
        if (gid >= base->num_polygons()) {
          out.status = MutationStatus::kInvalidMutation;
          stats_.RecordRejectedMutation();
          return out;
        }
      }
      ShardedIndex::Delta delta;
      delta.remove = remove;
      delta_result = ShardedIndex::ApplyDelta(*base, delta);
      next = delta_result.index;
      break;
    }
    case MutationRecord::Kind::kDrop: {
      // Retire by publishing an empty snapshot (catalog rule: datasets are
      // never removed) and tombstoning the id before the publish, so no
      // new join admits against the dropped name.
      next = std::make_shared<const ShardedIndex>(ShardedIndex::Build(
          {}, base->grid(), base->options()));
      catalog_.MarkDropped(dataset_id, true);
      break;
    }
  }

  out.epoch = registry->Publish(std::move(next));
  out.num_polygons =
      kind == MutationRecord::Kind::kDrop
          ? 0
          : base->num_polygons() + add.size();
  if (cell_cache_ != nullptr) {
    if (kind == MutationRecord::Kind::kDrop) {
      cell_cache_->InvalidateDataset(dataset_id);
    } else {
      cell_cache_->InvalidateRanges(dataset_id, old_epoch, out.epoch,
                                    delta_result.touched_ranges);
    }
  }
  const size_t added_count = add.size();
  const size_t removed_count = remove.size();
  if (MutationJournal* journal = catalog_.JournalOf(dataset_id)) {
    MutationRecord rec;
    rec.kind = kind;
    rec.epoch = out.epoch;
    rec.added = std::move(add);
    rec.removed = std::move(remove);
    journal->Append(std::move(rec));
  }
  stats_.RecordMutationApplied();
  switch (kind) {
    case MutationRecord::Kind::kAdd:
      AppendEvent("delta_apply", catalog_.NameOf(dataset_id),
                  "epoch " + std::to_string(out.epoch) + ", +" +
                      std::to_string(added_count) + " polygons");
      break;
    case MutationRecord::Kind::kRemove:
      AppendEvent("delta_apply", catalog_.NameOf(dataset_id),
                  "epoch " + std::to_string(out.epoch) + ", -" +
                      std::to_string(removed_count) + " polygons");
      break;
    case MutationRecord::Kind::kDrop:
      AppendEvent("drop", catalog_.NameOf(dataset_id),
                  "epoch " + std::to_string(out.epoch));
      break;
  }
  return out;
}

SubmitStatus JoinService::TryMutateAsync(uint16_t dataset_id,
                                         std::function<void()> work) {
  // Unlike the join door, a dropped or offline dataset still enqueues:
  // the mutation's own typed verdict (kDropped / kUnknownDataset) is more
  // useful to the client than a generic door rejection, and the race
  // between a door check and the worker running the mutation is decided
  // once, inside Mutate, under the mutation mutex.
  if (!catalog_.Contains(dataset_id)) {
    stats_.RecordRejectedMutation();
    return SubmitStatus::kUnknownDataset;
  }
  auto req = std::make_unique<Request>();
  req->batch.dataset_id = dataset_id;
  req->work = std::move(work);
  if (queue_.TryPush(req)) return SubmitStatus::kAccepted;
  if (queue_.closed()) {
    stats_.RecordRejectedShutdown();
    return SubmitStatus::kShutDown;
  }
  stats_.RecordRejectedQueueFull();
  return SubmitStatus::kQueueFull;
}

SubmitStatus JoinService::TryRunAsync(std::function<void()> work) {
  // No catalog door: the task owns its dataset validation (it may touch
  // several datasets, each with its own typed verdict). Queue rejections
  // still count so backpressure stays visible in ServiceStats.
  auto req = std::make_unique<Request>();
  req->work = std::move(work);
  if (queue_.TryPush(req)) return SubmitStatus::kAccepted;
  if (queue_.closed()) {
    stats_.RecordRejectedShutdown();
    return SubmitStatus::kShutDown;
  }
  stats_.RecordRejectedQueueFull();
  return SubmitStatus::kQueueFull;
}

void JoinService::ChargeDatasetServed(uint16_t dataset_id, uint64_t points) {
  DatasetCounters& counters = CountersFor(dataset_id);
  counters.points_served.fetch_add(points, std::memory_order_relaxed);
  counters.completed.fetch_add(1, std::memory_order_relaxed);
}

void JoinService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Close lets workers drain the backlog, then their Pop() returns
  // nullopt and they exit. With the pool never started, drain the backlog
  // here so accepted requests still complete (on the caller's thread).
  queue_.Close();
  if (workers_.empty()) {
    while (auto req = queue_.Pop()) Execute(**req, 0);
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

ServiceStats JoinService::Stats() const {
  ServiceStats out = stats_.Snapshot(queue_.size(), epoch());
  out.num_datasets = catalog_.size();
  if (cell_cache_ != nullptr) {
    out.cache_hits = cell_cache_->hits();
    out.cache_misses = cell_cache_->misses();
  }
  // Per-dataset splits: identity from the catalog, traffic from the
  // service's counter slots (zero for a dataset never served).
  const size_t counters =
      dataset_counters_size_.load(std::memory_order_acquire);
  for (const DatasetInfo& info : catalog_.List()) {
    DatasetSplit split;
    split.id = info.id;
    split.dropped = info.dropped;
    split.epoch = info.epoch;
    split.name = info.name;
    if (info.id < counters) {
      const DatasetCounters& c = *dataset_counters_[info.id];
      split.points_served = c.points_served.load(std::memory_order_relaxed);
      split.completed_requests = c.completed.load(std::memory_order_relaxed);
    }
    out.dataset_splits.push_back(std::move(split));
  }
  return out;
}

void JoinService::WorkerLoop(int worker_id) {
  // Per-thread counter group, opened once on the worker itself (perf
  // events with pid=0 count the opening thread). Unavailable groups stay
  // owned anyway: availability is per-open, and the request path checks.
  std::unique_ptr<util::StagePerfCounters> stage_perf;
  if (opts_.stage_perf_counters) {
    stage_perf = std::make_unique<util::StagePerfCounters>(
        util::StagePerfCounters::Options{
            .simulate_denied = opts_.stage_perf_simulate_denied});
    tls_stage_perf = stage_perf.get();
    if (stage_perf->available()) {
      stage_perf_available_.store(true, std::memory_order_release);
    }
  }
  while (auto req = queue_.Pop()) Execute(**req, worker_id);
  tls_stage_perf = nullptr;
}

namespace {

// Per-point sub-range of CachedJoin: replay the cached reference list (or
// probe once and fill the cache), then apply the exact same per-reference
// logic as act::ExecuteJoin — so every JoinStats field matches the
// uncached ShardedIndex::Join bit for bit, modulo `seconds`. The cache is
// internally sharded+locked, so concurrent ranges may call it freely.
void CachedJoinRange(const ShardedIndex& index, HotCellCache& cache,
                     const act::JoinInput& input, bool exact,
                     uint16_t dataset_id, uint64_t epoch, uint64_t begin,
                     uint64_t end, act::JoinStats* out) {
  out->counts.assign(index.num_polygons(), 0);
  std::vector<CellRef> refs;
  for (uint64_t p = begin; p < end; ++p) {
    const uint64_t cell = input.cell_ids[p];
    if (!cache.Lookup(dataset_id, cell, epoch, &refs)) {
      index.ProbeCell(cell, &refs);
      cache.Insert(dataset_id, cell, epoch, refs);
    }
    if (refs.empty()) {
      ++out->sth_points;  // sentinel probe (or empty shard): guaranteed miss
      continue;
    }
    const int s = index.ShardOf(cell);
    const std::vector<uint32_t>& gids = index.shard_polygon_ids(s);
    const act::PolygonIndex* shard = index.shard_index(s);
    const uint64_t pairs_before = out->result_pairs;
    bool had_candidate = false;
    for (const CellRef& r : refs) {
      if (r.interior) {
        ++out->true_hit_refs;
        ++out->counts[gids[r.local_pid]];
        ++out->result_pairs;
        continue;
      }
      ++out->candidate_refs;
      had_candidate = true;
      if (!exact) {
        ++out->counts[gids[r.local_pid]];
        ++out->result_pairs;
        continue;
      }
      ++out->pip_tests;
      if (geom::ContainsPoint(shard->polygons()[r.local_pid],
                              input.points[p])) {
        ++out->pip_hits;
        ++out->counts[gids[r.local_pid]];
        ++out->result_pairs;
      }
    }
    if (out->result_pairs != pairs_before) ++out->matched_points;
    if (!had_candidate) ++out->sth_points;
  }
}

// Range width matching the sharded executor's task floor: cache-assisted
// points are cheaper than trie probes, so anything finer drowns in
// per-range bookkeeping.
constexpr uint64_t kMinCacheRangePoints = 2048;

}  // namespace

// Cache-assisted join, decomposed into point sub-ranges drained by the
// shared pool (or a transient one at threads_per_join width), so the
// cached path honors the same thread budget as the executor path. Partial
// stats merge in fixed range order — integer counters, so results stay
// byte-identical to the serial loop at any width.
act::JoinStats JoinService::CachedJoin(const ShardedIndex& index,
                                       const act::JoinInput& input,
                                       act::JoinMode mode, uint16_t dataset_id,
                                       uint64_t epoch) {
  util::WallTimer timer;
  const bool exact = mode == act::JoinMode::kExact;
  const uint64_t n = input.size();
  act::JoinStats out;
  out.num_points = n;

  util::WorkStealingPool* pool = join_pool_.get();
  const int width = util::EffectiveWidth(pool, opts_.threads_per_join);
  const uint64_t range_points = std::max(
      kMinCacheRangePoints,
      (n + static_cast<uint64_t>(width) - 1) / static_cast<uint64_t>(width));
  const uint64_t num_ranges =
      n == 0 ? 0 : (n + range_points - 1) / range_points;

  if (num_ranges <= 1 || width <= 1) {
    CachedJoinRange(index, *cell_cache_, input, exact, dataset_id, epoch, 0, n,
                    &out);
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  std::vector<act::JoinStats> partial(num_ranges);
  auto run_range = [&](uint64_t r) {
    CachedJoinRange(index, *cell_cache_, input, exact, dataset_id, epoch,
                    r * range_points, std::min((r + 1) * range_points, n),
                    &partial[r]);
  };
  if (pool != nullptr && pool->num_workers() > 0) {
    pool->Run(num_ranges, run_range);
  } else {
    util::WorkStealingPool local(width - 1);
    local.Run(num_ranges, run_range);
  }

  out.counts.assign(index.num_polygons(), 0);
  for (const act::JoinStats& st : partial) {
    out.AccumulateCounters(st);
    for (size_t k = 0; k < st.counts.size(); ++k) out.counts[k] += st.counts[k];
  }
  out.seconds = timer.ElapsedSeconds();
  return out;
}

void JoinService::Execute(Request& req, int worker_id) {
  if (req.work) {
    // Mutation task: runs the delta apply + publish on this worker thread
    // and delivers its own typed result; none of the join bookkeeping
    // below applies.
    req.work();
    return;
  }
  double queue_wait_ms = req.enqueued.ElapsedMillis();
  util::WallTimer service_timer;

  JoinResult result;
  // The submit-side catalog check plus assigned-only ids guarantee the
  // registry exists and holds a non-null snapshot by the time a request
  // is dequeued.
  const ServiceCatalog::Registry* registry =
      catalog_.Find(req.batch.dataset_id);
  ACT_CHECK_MSG(registry != nullptr, "request routed to an unknown dataset");
  Snapshot snapshot = registry->Acquire(&result.epoch);
  act::JoinInput input{req.batch.cell_ids, req.batch.points};
  ShardedIndex::JoinPhaseTimes phases;
  const bool traced = req.batch.trace;
  // Stage attribution reads this worker's counter group at the phase
  // boundaries for *every* request (the histograms want the fleet, not
  // just traced requests); the deltas ride the wire only when traced.
  const util::StagePerfCounters* stage_perf =
      opts_.stage_perf_counters ? tls_stage_perf : nullptr;
  const bool want_phases = traced || stage_perf != nullptr;
  if (cell_cache_ != nullptr) {
    const bool count_stages = stage_perf != nullptr && stage_perf->available();
    util::StageCounterSample before;
    if (count_stages) before = stage_perf->Read();
    result.stats = CachedJoin(*snapshot, input, req.batch.mode,
                              req.batch.dataset_id, result.epoch);
    // The cached path interleaves lookup/probe/count per point; there is
    // no decompose/merge boundary to time, so its whole wall is probe.
    if (traced) phases.probe_us = result.stats.seconds * 1e6;
    if (count_stages) {
      phases.probe_counters = stage_perf->Read() - before;
      phases.counters_valid = true;
    }
  } else {
    // With a shared pool the join's task units drain through it (and this
    // worker helps); otherwise the executor is threads_per_join wide.
    result.stats =
        snapshot->Join(input, {req.batch.mode, opts_.threads_per_join},
                       join_pool_.get(), want_phases ? &phases : nullptr,
                       stage_perf);
  }
  result.queue_wait_ms = queue_wait_ms;
  result.service_ms = service_timer.ElapsedMillis();

  if (traced) {
    result.trace.enabled = true;
    result.trace.request_id = req.batch.trace_id;
    result.trace.at(TraceStage::kQueue) = queue_wait_ms * 1e3;
    result.trace.at(TraceStage::kDecompose) = phases.route_us;
    result.trace.at(TraceStage::kProbe) = phases.probe_us;
    // Merge absorbs the service-wall leftover (snapshot pin, stats copy,
    // anything between the measured phases), so the stages tile the
    // request's server-side time instead of under-reporting it.
    const double leftover = result.service_ms * 1e3 - phases.route_us -
                            phases.probe_us - phases.merge_us;
    result.trace.at(TraceStage::kMerge) =
        phases.merge_us + (leftover > 0 ? leftover : 0);
    if (opts_.stage_perf_counters) {
      result.trace.counters_enabled = true;
      result.trace.counters_available = phases.counters_valid;
      if (phases.counters_valid) {
        result.trace.counters(TraceStage::kDecompose) = phases.route_counters;
        result.trace.counters(TraceStage::kProbe) = phases.probe_counters;
        result.trace.counters(TraceStage::kMerge) = phases.merge_counters;
      }
    }
  }
  if (phases.counters_valid) {
    RecordStageCounters(TraceStage::kDecompose, phases.route_counters);
    RecordStageCounters(TraceStage::kProbe, phases.probe_counters);
    RecordStageCounters(TraceStage::kMerge, phases.merge_counters);
  }

  stats_.RecordServed(worker_id, queue_wait_ms * 1e3, result.service_ms * 1e3,
                      input.size());
  DatasetCounters& counters = CountersFor(req.batch.dataset_id);
  counters.points_served.fetch_add(input.size(), std::memory_order_relaxed);
  counters.completed.fetch_add(1, std::memory_order_relaxed);
  SlowQuery slow;
  slow.request_id = req.batch.trace_id;
  slow.dataset_id = req.batch.dataset_id;
  slow.num_points = input.size();
  slow.epoch = result.epoch;
  slow.queue_wait_us = queue_wait_ms * 1e3;
  slow.service_us = result.service_ms * 1e3;
  slow_queries_.Record(slow);
  if (SubscriptionMatcher* subs =
          subscriptions_.load(std::memory_order_acquire)) {
    if (subs->HasSubscriptions(req.batch.dataset_id)) {
      subs->OnPointBatch(req.batch.dataset_id, req.batch.cell_ids,
                         req.batch.points);
    }
  }
  if (req.done) {
    req.done(std::move(result));
  } else {
    req.promise.set_value(std::move(result));
  }
}

}  // namespace actjoin::service
