#include "service/join_service.h"

#include <stdexcept>
#include <utility>

#include "util/check.h"
#include "util/parallel_for.h"

namespace actjoin::service {

namespace {

int ResolveWorkers(int requested) {
  return requested <= 0 ? util::DefaultThreadCount() : requested;
}

std::future<JoinResult> FailedFuture(const char* what) {
  std::promise<JoinResult> p;
  p.set_exception(std::make_exception_ptr(std::runtime_error(what)));
  return p.get_future();
}

}  // namespace

JoinService::JoinService(Snapshot initial, const ServiceOptions& opts)
    : opts_(opts),
      registry_(std::move(initial)),
      queue_(std::max<size_t>(1, opts.queue_capacity)),
      stats_(ResolveWorkers(opts.worker_threads)) {
  opts_.queue_capacity = queue_.capacity();
  ACT_CHECK_MSG(registry_.epoch() != 0,
                "JoinService requires a non-null initial index");
  opts_.worker_threads = ResolveWorkers(opts_.worker_threads);
  if (opts_.threads_per_join < 1) opts_.threads_per_join = 1;
  if (opts_.autostart) Start();
}

JoinService::~JoinService() { Shutdown(); }

void JoinService::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_ || shut_down_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(opts_.worker_threads));
  for (int w = 0; w < opts_.worker_threads; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

std::future<JoinResult> JoinService::Submit(QueryBatch batch) {
  auto req = std::make_unique<Request>();
  req->batch = std::move(batch);
  std::future<JoinResult> future = req->promise.get_future();
  if (!queue_.Push(std::move(req))) {
    stats_.RecordRejected();
    return FailedFuture("JoinService: submit after shutdown");
  }
  return future;
}

bool JoinService::TrySubmit(QueryBatch batch,
                            std::future<JoinResult>* result) {
  auto req = std::make_unique<Request>();
  req->batch = std::move(batch);
  std::future<JoinResult> future = req->promise.get_future();
  if (!queue_.TryPush(req)) {
    stats_.RecordRejected();
    return false;
  }
  if (result != nullptr) *result = std::move(future);
  return true;
}

uint64_t JoinService::SwapIndex(Snapshot next) {
  return registry_.Publish(std::move(next));
}

void JoinService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Close lets workers drain the backlog, then their Pop() returns
  // nullopt and they exit. With the pool never started, drain the backlog
  // here so accepted requests still complete (on the caller's thread).
  queue_.Close();
  if (workers_.empty()) {
    while (auto req = queue_.Pop()) Execute(**req, 0);
  }
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void JoinService::WorkerLoop(int worker_id) {
  while (auto req = queue_.Pop()) Execute(**req, worker_id);
}

void JoinService::Execute(Request& req, int worker_id) {
  double queue_wait_ms = req.enqueued.ElapsedMillis();
  util::WallTimer service_timer;

  JoinResult result;
  Snapshot snapshot = registry_.Acquire(&result.epoch);
  act::JoinInput input{req.batch.cell_ids, req.batch.points};
  result.stats =
      snapshot->Join(input, {req.batch.mode, opts_.threads_per_join});
  result.queue_wait_ms = queue_wait_ms;
  result.service_ms = service_timer.ElapsedMillis();

  stats_.RecordServed(worker_id, queue_wait_ms * 1e3, result.service_ms * 1e3,
                      input.size());
  req.promise.set_value(std::move(result));
}

}  // namespace actjoin::service
