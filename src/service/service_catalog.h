// ServiceCatalog: named, hot-swappable datasets behind one serving stack.
//
// The paper's deployment serves one polygon set; production serves many
// (city zones, geofences, census tracts, ...) from one process. The
// catalog maps a stable dataset name to a small integer id and one
// SnapshotRegistry<ShardedIndex> per dataset, so:
//
//   * JoinService routes every request by QueryBatch::dataset_id — an
//     unknown id is a typed rejection, never a crash or a wrong dataset;
//   * each dataset hot-swaps independently (its own epoch sequence), with
//     the same in-flight-queries-finish-on-their-snapshot guarantee the
//     single-registry service had;
//   * the wire protocol's LIST_DATASETS can enumerate what is served, and
//     the snapshot store's warm restart can repopulate the catalog from a
//     manifest, name by name.
//
// Ids are assigned densely in Add() order and are never reused; datasets
// are never removed (retiring a dataset is publishing an empty index —
// removal would turn every in-flight id into a use-after-free question).
// DROP_DATASET follows the same rule: it publishes an empty snapshot and
// sets a tombstone flag on the id, so the slot (and the name) stay
// assigned, joins against it reject typed (kDatasetDropped, not
// kUnknownDataset), and a later full publish can resurrect it. The id
// space is u16 because the wire header carries dataset_id in the reserved
// u16 at offset 6.

#ifndef ACTJOIN_SERVICE_SERVICE_CATALOG_H_
#define ACTJOIN_SERVICE_SERVICE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "service/index_registry.h"
#include "service/mutation_journal.h"
#include "service/sharded_index.h"

namespace actjoin::service {

/// One row of a catalog listing (also the LIST_DATASETS wire payload).
struct DatasetInfo {
  uint16_t id = 0;
  std::string name;
  uint64_t epoch = 0;          // current snapshot epoch (0: none published)
  uint64_t num_polygons = 0;   // of the current snapshot
  uint32_t num_shards = 0;     // of the current snapshot
  bool dropped = false;        // tombstoned by DROP_DATASET

  friend bool operator==(const DatasetInfo&, const DatasetInfo&) = default;
};

/// Dataset names double as snapshot file stems in the store, so the
/// charset is restricted up front: [a-z0-9_-], 1..64 chars.
bool IsValidDatasetName(const std::string& name);

class ServiceCatalog {
 public:
  using Snapshot = std::shared_ptr<const ShardedIndex>;
  using Registry = SnapshotRegistry<ShardedIndex>;

  ServiceCatalog();
  ServiceCatalog(const ServiceCatalog&) = delete;
  ServiceCatalog& operator=(const ServiceCatalog&) = delete;

  /// Registers a dataset and publishes its first snapshot; returns the
  /// assigned id. nullopt if the name is invalid, already taken, the
  /// catalog is full (u16 ids), or `initial` is null.
  std::optional<uint16_t> Add(const std::string& name, Snapshot initial);

  /// Registers a dataset *without* a snapshot: the id is assigned (and
  /// the name taken) but the dataset is offline — Servable() is false
  /// and joins against it reject typed until a snapshot is published
  /// into its registry. This is how a warm restart keeps catalog ids
  /// stable when one dataset's snapshots are unloadable: the broken
  /// dataset holds its slot instead of shifting every later id onto the
  /// wrong data.
  std::optional<uint16_t> AddOffline(const std::string& name);

  /// The dataset's registry, or null for an id that was never assigned.
  /// The pointer is stable for the catalog's lifetime (datasets are never
  /// removed), so callers may hold it across requests. Lock-free: this
  /// sits on the per-request serving path (JoinServer routes, JoinService
  /// validates and executes), and serializing every request through the
  /// catalog mutex just to bounds-check an append-only array would make
  /// one cache line the whole server's convoy.
  Registry* Find(uint16_t id) {
    return const_cast<Registry*>(std::as_const(*this).Find(id));
  }
  const Registry* Find(uint16_t id) const {
    // acquire pairs with Add's release store: the slot's pointer (and
    // the Dataset it points to) is fully written before size_ admits it.
    if (id >= size_.load(std::memory_order_acquire)) return nullptr;
    return &datasets_[id]->registry;
  }

  std::optional<uint16_t> IdOf(const std::string& name) const;
  /// Name of an assigned id ("" if unknown).
  std::string NameOf(uint16_t id) const;

  bool Contains(uint16_t id) const { return Find(id) != nullptr; }

  /// True when the id is assigned *and* has a published snapshot (an
  /// AddOffline reservation becomes servable at its first Publish) *and*
  /// is not tombstoned. Snapshots are only ever added, so — dropping
  /// aside — a true verdict cannot be invalidated by the time a request
  /// executes; a drop racing a join merely serves the join from the last
  /// pre-drop snapshot, the same guarantee any hot swap gives.
  bool Servable(uint16_t id) const {
    if (id >= size_.load(std::memory_order_acquire)) return false;
    const Dataset& ds = *datasets_[id];
    return ds.registry.epoch() != 0 &&
           !ds.dropped.load(std::memory_order_acquire);
  }

  /// True when the id is assigned and tombstoned by DROP_DATASET. Lock-free
  /// like Find: the serving path uses this to turn a rejection into the
  /// typed kDatasetDropped instead of kUnknownDataset.
  bool IsDropped(uint16_t id) const {
    if (id >= size_.load(std::memory_order_acquire)) return false;
    return datasets_[id]->dropped.load(std::memory_order_acquire);
  }

  /// Sets / clears the tombstone. Publishing a fresh full snapshot through
  /// JoinService::SwapIndex resurrects a dropped dataset (clears the flag);
  /// ids and names stay assigned either way.
  void MarkDropped(uint16_t id, bool dropped) {
    if (id >= size_.load(std::memory_order_acquire)) return;
    datasets_[id]->dropped.store(dropped, std::memory_order_release);
  }

  /// The dataset's mutation journal (epoch -> delta records, consumed by
  /// the Checkpointer). Stable pointer, same lifetime rules as Find();
  /// null for an unassigned id.
  MutationJournal* JournalOf(uint16_t id) {
    if (id >= size_.load(std::memory_order_acquire)) return nullptr;
    return &datasets_[id]->journal;
  }

  /// All datasets in id order, with live epoch/snapshot figures.
  std::vector<DatasetInfo> List() const;

  size_t size() const;

 private:
  struct Dataset {
    std::string name;
    Registry registry;
    MutationJournal journal;
    std::atomic<bool> dropped{false};
  };

  std::optional<uint16_t> AddEntry(const std::string& name, Snapshot initial);

  /// Guards Add and the name-keyed lookups; the id-keyed hot path reads
  /// size_/datasets_ lock-free.
  mutable std::mutex mu_;
  /// Index == dataset id. The slot array is reserved to the full u16 id
  /// space up front (512 KiB of pointers) so push_back never reallocates
  /// under a concurrent lock-free Find; unique_ptr keeps registry
  /// addresses stable regardless.
  std::vector<std::unique_ptr<Dataset>> datasets_;
  std::atomic<size_t> size_{0};
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_SERVICE_CATALOG_H_
