#include "service/service_catalog.h"

#include <limits>
#include <utility>

namespace actjoin::service {

bool IsValidDatasetName(const std::string& name) {
  if (name.empty() || name.size() > 64) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

ServiceCatalog::ServiceCatalog() {
  // Full u16 id space up front: push_back must never reallocate the slot
  // array a lock-free Find may be reading.
  datasets_.reserve(size_t{std::numeric_limits<uint16_t>::max()} + 1);
}

std::optional<uint16_t> ServiceCatalog::Add(const std::string& name,
                                            Snapshot initial) {
  if (initial == nullptr) return std::nullopt;
  return AddEntry(name, std::move(initial));
}

std::optional<uint16_t> ServiceCatalog::AddOffline(const std::string& name) {
  return AddEntry(name, nullptr);
}

std::optional<uint16_t> ServiceCatalog::AddEntry(const std::string& name,
                                                 Snapshot initial) {
  if (!IsValidDatasetName(name)) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (datasets_.size() > std::numeric_limits<uint16_t>::max()) {
    return std::nullopt;
  }
  for (const auto& ds : datasets_) {
    if (ds->name == name) return std::nullopt;
  }
  auto ds = std::make_unique<Dataset>();
  ds->name = name;
  if (initial != nullptr) ds->registry.Publish(std::move(initial));
  datasets_.push_back(std::move(ds));
  // Publish the slot to lock-free readers only after it is fully built.
  size_.store(datasets_.size(), std::memory_order_release);
  return static_cast<uint16_t>(datasets_.size() - 1);
}

std::optional<uint16_t> ServiceCatalog::IdOf(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < datasets_.size(); ++i) {
    if (datasets_[i]->name == name) return static_cast<uint16_t>(i);
  }
  return std::nullopt;
}

std::string ServiceCatalog::NameOf(uint16_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= datasets_.size()) return "";
  return datasets_[id]->name;
}

std::vector<DatasetInfo> ServiceCatalog::List() const {
  // Snapshot the entry pointers under the lock, then read epochs without
  // it: registry pointers are stable and have their own lock, and holding
  // mu_ across Acquire() would serialize listing against Add().
  std::vector<Dataset*> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(datasets_.size());
    for (const auto& ds : datasets_) entries.push_back(ds.get());
  }
  std::vector<DatasetInfo> out;
  out.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    DatasetInfo info;
    info.id = static_cast<uint16_t>(i);
    info.name = entries[i]->name;
    Snapshot snap = entries[i]->registry.Acquire(&info.epoch);
    if (snap != nullptr) {
      info.num_polygons = snap->num_polygons();
      info.num_shards = static_cast<uint32_t>(snap->num_shards());
    }
    info.dropped = entries[i]->dropped.load(std::memory_order_acquire);
    out.push_back(std::move(info));
  }
  return out;
}

size_t ServiceCatalog::size() const {
  return size_.load(std::memory_order_acquire);
}

}  // namespace actjoin::service
