// MutationJournal: the in-memory change log that maps snapshot epochs onto
// delta records, one journal per dataset.
//
// The Gromox-style contract (change numbers onto generations): every live
// mutation publishes a new snapshot epoch through SnapshotRegistry, and the
// journal remembers, for a contiguous epoch interval (base, last], exactly
// what changed at each epoch. The Checkpointer then persists the span
// (persisted_epoch, current_epoch] as an O(churn) delta file instead of
// rewriting the whole index — but only when the journal still covers that
// span. A full-snapshot publish (SwapIndex) or journal overflow resets the
// chain, which simply downgrades the next checkpoint to a full rewrite;
// coverage is an optimization contract, never a correctness one.
//
// Thread safety: all methods lock the journal's own mutex. Writers (the
// mutation path, which already serializes publishes per service) append;
// the Checkpointer snapshots and prunes concurrently from its sweep thread.

#ifndef ACTJOIN_SERVICE_MUTATION_JOURNAL_H_
#define ACTJOIN_SERVICE_MUTATION_JOURNAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "geometry/polygon.h"

namespace actjoin::service {

/// What one epoch changed. Exactly one of the three kinds per record:
/// kAdd carries the appended polygons (ids were assigned contiguously from
/// the dataset's previous num_polygons), kRemove the removed global ids,
/// kDrop nothing (the dataset was retired; ids stay assign-only and the
/// epoch keeps counting, so a later full publish can resurrect the slot).
struct MutationRecord {
  enum class Kind : uint8_t { kAdd = 1, kRemove = 2, kDrop = 3 };
  Kind kind = Kind::kAdd;
  uint64_t epoch = 0;
  std::vector<geom::Polygon> added;    // kAdd
  std::vector<uint32_t> removed;       // kRemove
};

class MutationJournal {
 public:
  /// Records kept per journal before it declares overflow. Bounds serving
  /// memory for a dataset whose checkpointer is slow or stopped; past the
  /// cap the journal stops covering and the next checkpoint is a full
  /// snapshot (which prunes everything and restarts the chain).
  static constexpr size_t kMaxRecords = 1024;

  /// Forgets everything and restarts the chain at `epoch` (a full publish:
  /// nothing before or at `epoch` will ever need delta replay).
  void Reset(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.clear();
    base_epoch_ = epoch;
    overflowed_ = false;
  }

  /// Appends the record for a freshly published epoch. Epochs must arrive
  /// in publish order (the mutation path serializes them); a gap — e.g. a
  /// record arriving after a Reset raced ahead — breaks coverage the same
  /// way overflow does.
  void Append(MutationRecord rec) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t expected =
        records_.empty() ? base_epoch_ + 1 : records_.back().epoch + 1;
    if (rec.epoch != expected) {
      records_.clear();
      overflowed_ = true;
      base_epoch_ = rec.epoch;
      return;
    }
    if (records_.size() >= kMaxRecords) {
      overflowed_ = true;
      return;
    }
    records_.push_back(std::move(rec));
  }

  /// True when the journal holds a record for every epoch in (from, to] —
  /// the precondition for persisting that span as a delta.
  bool Covers(uint64_t from_epoch, uint64_t to_epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    return CoversLocked(from_epoch, to_epoch);
  }

  /// Copies the records for (from, to]; empty when not covered.
  std::vector<MutationRecord> Snapshot(uint64_t from_epoch,
                                       uint64_t to_epoch) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MutationRecord> out;
    if (!CoversLocked(from_epoch, to_epoch)) return out;
    for (const MutationRecord& rec : records_) {
      if (rec.epoch > from_epoch && rec.epoch <= to_epoch) {
        out.push_back(rec);
      }
    }
    return out;
  }

  /// Drops records at or below `epoch` (they are durable now).
  void Prune(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    while (!records_.empty() && records_.front().epoch <= epoch) {
      records_.pop_front();
    }
    if (base_epoch_ < epoch) base_epoch_ = epoch;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  bool CoversLocked(uint64_t from_epoch, uint64_t to_epoch) const {
    if (from_epoch > to_epoch || overflowed_) return false;
    if (from_epoch == to_epoch) return true;
    if (records_.empty()) return false;
    // Records are contiguous by construction; the interval is covered iff
    // both endpoints are within [front-1, back].
    return records_.front().epoch <= from_epoch + 1 &&
           to_epoch <= records_.back().epoch;
  }

  mutable std::mutex mu_;
  /// Epochs <= base_epoch_ never need replay (full snapshot or pruned).
  uint64_t base_epoch_ = 0;
  bool overflowed_ = false;
  std::deque<MutationRecord> records_;  // contiguous epochs, ascending
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_MUTATION_JOURNAL_H_
