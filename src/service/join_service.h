// JoinService: the embeddable geo-join server.
//
// Turns the paper's batch pipeline (build one index, run one Join) into a
// concurrent serving layer:
//
//   * Clients Submit() QueryBatches and get std::future<JoinResult> back;
//     a bounded MPMC queue (util::MpmcQueue) decouples producers from the
//     worker pool and applies backpressure (Submit blocks when full;
//     TrySubmit / TrySubmitAsync never block and return a typed
//     SubmitStatus rejection instead — the contract the network
//     front-end's event loop depends on).
//   * A pool of worker threads drains the queue; each request is joined
//     against the snapshot pinned at execution time, with the per-request
//     JoinMode (exact / approximate).
//   * The service serves a catalog of named datasets (ServiceCatalog):
//     each request routes by QueryBatch::dataset_id, an unknown id is a
//     typed kUnknownDataset rejection, and every dataset hot-swaps
//     independently: SwapIndex() publishes a new ShardedIndex through that
//     dataset's SnapshotRegistry while in-flight queries finish on the
//     snapshot they pinned — no stop-the-world, no torn reads.
//   * Per-service stats: QPS, queue-wait and service-latency p50/p99,
//     queue depth, snapshot epoch (see service_stats.h).
//
// Typical use:
//   auto idx = std::make_shared<const service::ShardedIndex>(
//       service::ShardedIndex::Build(polygons, grid, {.num_shards = 8}));
//   service::JoinService server(idx, {.worker_threads = 4});
//   auto future = server.Submit({cell_ids, points, act::JoinMode::kExact});
//   act::JoinStats stats = future.get().stats;

#ifndef ACTJOIN_SERVICE_JOIN_SERVICE_H_
#define ACTJOIN_SERVICE_JOIN_SERVICE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "act/join.h"
#include "geometry/point.h"
#include "service/hot_cell_cache.h"
#include "service/index_registry.h"
#include "service/service_catalog.h"
#include "service/service_stats.h"
#include "service/sharded_index.h"
#include "service/slow_query_log.h"
#include "service/trace.h"
#include "util/metrics.h"
#include "util/mpmc_queue.h"
#include "util/timer.h"
#include "util/work_stealing_pool.h"

namespace actjoin::service {

class SubscriptionMatcher;

struct ServiceOptions {
  /// Worker threads draining the request queue. Library convention:
  /// 0 => util::DefaultThreadCount().
  int worker_threads = 0;
  /// Bounded request-queue capacity (backpressure threshold); clamped to
  /// >= 1 like the other options here.
  size_t queue_capacity = 256;
  /// Probe width *inside* one request's join (both the sharded executor
  /// and the cache-assisted path honor it). Default 1: with a pool of
  /// workers, cross-request parallelism already saturates the cores
  /// without oversubscription. Ignored when shared_pool_workers > 0 (the
  /// shared pool's width applies instead).
  int threads_per_join = 1;
  /// > 0: the service owns one util::WorkStealingPool with this many
  /// worker threads, shared by every worker's join — all concurrent
  /// requests' (shard, sub-range) task units drain through the same fixed
  /// thread set instead of each join spawning threads_per_join threads
  /// (no nested spawns, and a lone request on an idle service still runs
  /// shared_pool_workers + 1 wide). 0 disables: each join is
  /// threads_per_join wide on its own.
  int shared_pool_workers = 0;
  /// Start the worker pool in the constructor. Tests set false to fill the
  /// queue deterministically, then call Start().
  bool autostart = true;
  /// Hot-cell result cache: > 0 enables a sharded LRU of this many cells
  /// (keyed by leaf cell id, tagged with the snapshot epoch so hot swaps
  /// invalidate logically). Off by default — it pays off only under skewed
  /// (taxi-like) probe distributions; results are identical either way.
  /// Cached requests run their probe loop at width 1 (the worker pool
  /// supplies the parallelism), so threads_per_join is ignored for them.
  size_t cell_cache_capacity = 0;
  /// Mutex shards inside the cache (rounded up to a power of two).
  int cell_cache_shards = 8;
  /// Own a util::MetricsRegistry and register every subsystem's counters,
  /// latency histograms, per-dataset splits, slow-query log, and event log
  /// into it (exported over the wire via GET_METRICS). Instruments are
  /// collection-time callbacks over state the hot path already maintains,
  /// so the recording cost is two relaxed counter adds per request — the
  /// bench smoke gates the end-to-end overhead at < 5%.
  bool enable_metrics = true;
  /// Capacity of the slow-query log (top-K completed requests by service
  /// time, always on) and of the structured event ring.
  size_t slow_query_log_capacity = 32;
  size_t event_log_capacity = 256;
  /// Opt-in hardware-counter stage attribution: every worker thread opens
  /// one per-thread util::StagePerfCounters group (cycles / instructions /
  /// LLC misses) at loop entry, and each request's decompose/probe/merge
  /// stages charge counter deltas read at the existing phase boundaries —
  /// one group read() per boundary, so the hot-path cost stays inside the
  /// bench smoke's 5% gate. Traced requests carry the per-stage deltas
  /// inline in the wire response's trace block; every request (traced or
  /// not) feeds the stage_cycles / stage_instructions / stage_llc_misses
  /// registry histograms and the /statusz totals. When the kernel denies
  /// perf_event_open the mode degrades to all-zero deltas flagged
  /// unavailable — never fabricated numbers.
  bool stage_perf_counters = false;
  /// Test seam: force the denied-open fallback even where perf works (see
  /// util::StagePerfCounters::Options::simulate_denied).
  bool stage_perf_simulate_denied = false;
};

/// Typed verdict of a non-blocking submit. Everything except kAccepted is
/// a rejection *reason* the caller can surface (the network front-end maps
/// these onto wire error codes instead of blocking its event loop).
enum class SubmitStatus {
  kAccepted = 0,
  kQueueFull,        // bounded queue at capacity; retry is reasonable
  kShutDown,         // service no longer accepts work; retry is not
  kUnknownDataset,   // dataset_id was never assigned by the catalog
};

const char* ToString(SubmitStatus status);

/// Typed verdict of a live mutation (AddPolygons / RemovePolygons /
/// DropDataset). Everything except kApplied left the dataset untouched.
enum class MutationStatus {
  kApplied = 0,
  kUnknownDataset,   // id unassigned, or assigned but offline (no snapshot)
  kDropped,          // tombstoned: only a full SwapIndex can resurrect it
  kInvalidMutation,  // empty batch, out-of-range ids, or id space exhausted
  kShutDown,         // service no longer accepts work
};

const char* ToString(MutationStatus status);

struct MutationResult {
  MutationStatus status = MutationStatus::kApplied;
  /// Epoch the mutation published (0 unless kApplied).
  uint64_t epoch = 0;
  /// AddPolygons: global id assigned to the first added polygon (they are
  /// contiguous from here). 0 for the other operations.
  uint32_t first_id = 0;
  /// Size of the dataset's id space after the mutation (assign-only, so
  /// removals do not shrink it).
  uint64_t num_polygons = 0;
};

/// One request: owned point data (the service outlives the caller's
/// buffers), the join mode, and the target dataset. dataset_id 0 is the
/// first dataset added — for a single-dataset service constructed the
/// pre-catalog way, the default routes exactly as before.
struct QueryBatch {
  std::vector<uint64_t> cell_ids;
  std::vector<geom::Point> points;
  act::JoinMode mode = act::JoinMode::kExact;
  uint16_t dataset_id = 0;
  /// Request a per-stage trace: JoinResult::trace comes back enabled with
  /// the stage breakdown (and, over the wire, inline in the response).
  bool trace = false;
  /// Request id carried into the trace and the slow-query log. The network
  /// front-end sets it from the frame header; in-process callers may leave
  /// it 0.
  uint64_t trace_id = 0;
};

struct JoinResult {
  act::JoinStats stats;
  /// Registry epoch of the snapshot that served this request.
  uint64_t epoch = 0;
  double queue_wait_ms = 0;
  double service_ms = 0;
  /// Stage breakdown; enabled iff the request set QueryBatch::trace. The
  /// service fills queue/decompose/probe/merge; the network front-end
  /// fills admission/decode/respond around them.
  TraceContext trace;
};

class JoinService {
 public:
  using Snapshot = std::shared_ptr<const ShardedIndex>;

  /// Serves `initial` as dataset 0 ("default") until the first SwapIndex.
  /// `initial` must be non-null.
  explicit JoinService(Snapshot initial, const ServiceOptions& opts = {});

  /// Starts with an empty catalog: every submit is kUnknownDataset until
  /// datasets are added via catalog().Add (the warm-restart boot path —
  /// the store populates the catalog from its manifest, then the server
  /// opens its port).
  explicit JoinService(const ServiceOptions& opts);

  JoinService(const JoinService&) = delete;
  JoinService& operator=(const JoinService&) = delete;

  /// Shuts down (drains queued requests first).
  ~JoinService();

  /// Launches the worker pool; idempotent. Only needed when constructed
  /// with autostart = false.
  void Start();

  /// Enqueues a batch; blocks while the queue is full. After Shutdown the
  /// returned future carries a std::runtime_error.
  std::future<JoinResult> Submit(QueryBatch batch);

  /// Non-blocking submit with a typed verdict: on kAccepted, `*result` (if
  /// non-null) receives the future; on rejection no future is produced and
  /// the reason is counted per-split in ServiceStats. Never blocks — the
  /// contract the event-driven network front-end depends on.
  SubmitStatus TrySubmit(QueryBatch batch, std::future<JoinResult>* result);

  /// Event-driven submit for callers that must not block *or* poll a
  /// future (the epoll server): on kAccepted, `done` runs exactly once on
  /// the worker thread that executed the batch, with the finished result.
  /// On rejection `done` is dropped without being invoked. `done` must not
  /// re-enter the service.
  SubmitStatus TrySubmitAsync(QueryBatch batch,
                              std::function<void(JoinResult)> done);

  /// Publishes a new snapshot for dataset 0 and returns its epoch (the
  /// single-dataset API; datasets must be non-empty). In-flight and
  /// already-dequeued requests finish on the snapshot they pinned;
  /// requests dequeued after the swap see the new one.
  uint64_t SwapIndex(Snapshot next) { return SwapIndex(0, std::move(next)); }

  /// Publishes a new snapshot for one dataset of the catalog; the id must
  /// be assigned. A full publish resets the dataset's mutation journal
  /// (the next checkpoint starts a fresh delta chain) and clears a
  /// DROP_DATASET tombstone — this is how a dropped dataset is
  /// resurrected.
  uint64_t SwapIndex(uint16_t dataset_id, Snapshot next);

  // --- Live mutation (wire protocol v3 meets the paper's update path) ------
  //
  // Each call applies one delta copy-on-write (ShardedIndex::ApplyDelta)
  // and publishes the result through the dataset's SnapshotRegistry:
  // in-flight joins finish on the snapshot they pinned, the hot-cell
  // cache invalidates exactly the touched (dataset, cell) entries, and
  // the mutation is appended to the dataset's journal so the Checkpointer
  // can persist it as an O(churn) delta file. Mutations serialize on one
  // mutation mutex (publishes stay epoch-contiguous for the journal);
  // joins never take it.

  /// Appends polygons; ids are assigned contiguously from the dataset's
  /// current num_polygons (MutationResult::first_id).
  MutationResult AddPolygons(uint16_t dataset_id,
                             std::vector<geom::Polygon> polygons);

  /// Removes polygons by global id; ids stay assigned (zero counts
  /// forever) and are never reused. Out-of-range ids reject the whole
  /// batch typed; removing an already-removed id is a no-op.
  MutationResult RemovePolygons(uint16_t dataset_id,
                                std::vector<uint32_t> polygon_ids);

  /// Retires the dataset: publishes an empty snapshot and tombstones the
  /// id (joins and further mutations reject typed; the id and name stay
  /// assigned). A later full SwapIndex resurrects it.
  MutationResult DropDataset(uint16_t dataset_id);

  /// Queue-routed mutation for the event-driven front-end: on kAccepted,
  /// `work` runs exactly once on a worker thread — mutations take
  /// milliseconds and must never run on the epoll loop. `work` itself
  /// calls AddPolygons / RemovePolygons / DropDataset and delivers the
  /// typed result; the door here only rejects ids the catalog never
  /// assigned (a dropped or offline dataset still enqueues, so the
  /// mutation's own typed verdict — not a generic door rejection — makes
  /// it back to the client). On rejection `work` is dropped unrun.
  SubmitStatus TryMutateAsync(uint16_t dataset_id,
                              std::function<void()> work);

  /// Queue-routed generic task: on kAccepted, `work` runs exactly once on
  /// a worker thread. The seam higher layers (join2's dataset crossmatch)
  /// use to run multi-dataset operations on the service's workers with
  /// the service's backpressure — no catalog door here, because such an
  /// operation validates its datasets itself and delivers typed verdicts;
  /// queue-full / shutdown rejections are counted like any join's. On
  /// rejection `work` is dropped unrun.
  SubmitStatus TryRunAsync(std::function<void()> work);

  /// Pins and returns dataset 0's published snapshot (null before any
  /// dataset exists).
  Snapshot CurrentIndex() const {
    const ServiceCatalog::Registry* r = catalog_.Find(0);
    return r == nullptr ? nullptr : r->Acquire();
  }

  /// Dataset 0's epoch (0 before any dataset exists). Per-dataset epochs
  /// come from catalog().List().
  uint64_t epoch() const {
    const ServiceCatalog::Registry* r = catalog_.Find(0);
    return r == nullptr ? 0 : r->epoch();
  }

  /// The dataset catalog: add datasets, list them, reach per-dataset
  /// registries. Lives exactly as long as the service.
  ServiceCatalog& catalog() { return catalog_; }
  const ServiceCatalog& catalog() const { return catalog_; }

  /// Closes the queue, drains every already-accepted request, and joins
  /// the workers. Idempotent; called by the destructor.
  void Shutdown();

  ServiceStats Stats() const;

  /// The service's metrics registry (null when ServiceOptions
  /// enable_metrics is false). Other layers — the network front-end, the
  /// store, the checkpointer — register their instruments here so one
  /// GET_METRICS collects the whole stack.
  util::MetricsRegistry* metrics() { return metrics_.get(); }
  const util::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Always-on top-K slow-query log (dumpable via GET_METRICS).
  const SlowQueryLog& slow_queries() const { return slow_queries_; }

  /// Entry point for higher layers that execute on the service's workers
  /// (TryRunAsync) and want their requests ranked with everything else.
  void RecordSlowQuery(const SlowQuery& q) { slow_queries_.Record(q); }

  /// Stage-attribution snapshot for /statusz: whether the mode is on,
  /// whether any worker actually opened its counter group, and per-stage
  /// totals accumulated across all workers since start.
  struct StagePerfTotals {
    bool enabled = false;
    bool available = false;
    std::array<util::StageCounterSample, kNumTraceStages> stage{};
  };
  StagePerfTotals StagePerfSnapshot() const;

  /// The per-thread counter group of the calling service worker; null off
  /// the workers or when stage_perf_counters is off. The network
  /// front-end's completion hooks — which run on the executing worker —
  /// use it to attribute the respond stage (encode + delivery handoff).
  static util::StagePerfCounters* CurrentThreadStageCounters();

  /// Adds one stage's counter delta to the totals and the registry
  /// histograms. The worker path charges decompose/probe/merge through
  /// this; the network front-end charges admission/decode/respond (its
  /// stages run on its own threads, with their own per-thread groups).
  void RecordStageCounters(TraceStage stage,
                           const util::StageCounterSample& delta);

  /// The shared join pool (null when ServiceOptions.shared_pool_workers
  /// is 0). Tasks run via TryRunAsync may pass it to parallel executors;
  /// it must never be used from *inside* one of its own pool tasks.
  util::WorkStealingPool* shared_pool() { return join_pool_.get(); }

  /// Charges one completed request of `points` work units against a
  /// dataset's traffic counters (points_served / completed). Joins charge
  /// automatically; queue-routed tasks (TryRunAsync) charge each dataset
  /// they touched through this — the crossmatch charges both sides.
  void ChargeDatasetServed(uint16_t dataset_id, uint64_t points);

  size_t QueueDepth() const { return queue_.size(); }
  const ServiceOptions& options() const { return opts_; }

  /// Attaches a continuous-query matcher (owned by the caller; must
  /// outlive the service or be detached with nullptr first). When set,
  /// every executed point batch feeds SubscriptionMatcher::OnPointBatch
  /// on the worker that ran it, and every publish (mutation or full
  /// swap) triggers OnEpochSwap on the publishing thread — the two hooks
  /// that turn standing subscriptions into pushed ENTER/LEAVE events.
  void set_subscription_matcher(SubscriptionMatcher* matcher) {
    subscriptions_.store(matcher, std::memory_order_release);
  }
  SubscriptionMatcher* subscription_matcher() const {
    return subscriptions_.load(std::memory_order_acquire);
  }

 private:
  struct Request {
    QueryBatch batch;
    std::promise<JoinResult> promise;
    /// Completion hook (TrySubmitAsync); when set, the result goes here
    /// instead of the promise.
    std::function<void(JoinResult)> done;
    /// Mutation task (TryMutateAsync); when set, the worker runs it and
    /// the join fields above are unused.
    std::function<void()> work;
    util::WallTimer enqueued;  // starts ticking at Submit time
  };

  /// Per-dataset traffic counters, catalog-style: a slot vector reserved
  /// to the full u16 id space so growth never invalidates the lock-free
  /// id-indexed read, with two relaxed adds per request on the hot path.
  struct DatasetCounters {
    std::atomic<uint64_t> points_served{0};
    std::atomic<uint64_t> completed{0};
  };

  void WorkerLoop(int worker_id);
  void Execute(Request& req, int worker_id);
  SubmitStatus Enqueue(std::unique_ptr<Request> req);
  /// The dataset's counter slot, growing the vector on first touch (ids
  /// are catalog-assigned, hence dense and < 2^16).
  DatasetCounters& CountersFor(uint16_t dataset_id);
  void RegisterMetrics();
  void AppendEvent(std::string kind, std::string subject, std::string detail);
  MutationResult Mutate(uint16_t dataset_id, MutationRecord::Kind kind,
                        std::vector<geom::Polygon> add,
                        std::vector<uint32_t> remove);
  /// Runs the attached matcher's OnEpochSwap (outside mutation_mu_, so
  /// the track resync never extends the publish critical section).
  void NotifyEpochSwap(uint16_t dataset_id);
  act::JoinStats CachedJoin(const ShardedIndex& index,
                            const act::JoinInput& input, act::JoinMode mode,
                            uint16_t dataset_id, uint64_t epoch);

  ServiceOptions opts_;
  ServiceCatalog catalog_;
  util::MpmcQueue<std::unique_ptr<Request>> queue_;
  std::unique_ptr<util::WorkStealingPool> join_pool_;  // null when disabled
  std::unique_ptr<HotCellCache> cell_cache_;           // null when disabled
  ServiceStatsRecorder stats_;
  std::unique_ptr<util::MetricsRegistry> metrics_;     // null when disabled
  SlowQueryLog slow_queries_;
  /// Stage-attribution accumulators (relaxed adds on the worker path) and
  /// cached histogram instruments (null when metrics or the mode is off).
  struct StageCounterTotals {
    std::atomic<uint64_t> cycles{0};
    std::atomic<uint64_t> instructions{0};
    std::atomic<uint64_t> llc_misses{0};
  };
  std::array<StageCounterTotals, kNumTraceStages> stage_perf_totals_{};
  std::atomic<bool> stage_perf_available_{false};
  std::array<util::Histogram*, kNumTraceStages> stage_cycles_hist_{};
  std::array<util::Histogram*, kNumTraceStages> stage_instructions_hist_{};
  std::array<util::Histogram*, kNumTraceStages> stage_llc_hist_{};
  /// Index == dataset id, same reservation discipline as ServiceCatalog.
  std::vector<std::unique_ptr<DatasetCounters>> dataset_counters_;
  std::atomic<SubscriptionMatcher*> subscriptions_{nullptr};
  std::atomic<size_t> dataset_counters_size_{0};
  std::mutex dataset_counters_mu_;
  std::vector<std::thread> workers_;
  std::mutex lifecycle_mu_;  // guards Start/Shutdown transitions
  /// Serializes mutations and full swaps across all datasets, so each
  /// journal sees its publishes in epoch order with no gaps. Never taken
  /// on the join path.
  std::mutex mutation_mu_;
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_JOIN_SERVICE_H_
