#include "service/subscription_matcher.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "act/pipeline.h"
#include "act/super_covering.h"
#include "geometry/pip.h"

namespace actjoin::service {

namespace {

bool CoverageContains(
    const std::vector<std::pair<uint64_t, uint64_t>>& coverage,
    uint64_t cell) {
  auto it = std::upper_bound(
      coverage.begin(), coverage.end(), cell,
      [](uint64_t c, const std::pair<uint64_t, uint64_t>& iv) {
        return c < iv.first;
      });
  if (it == coverage.begin()) return false;
  --it;
  return cell >= it->first && cell <= it->second;
}

/// Walks every covering cell of every shard, clipped to the shard's
/// Hilbert interval — the same disjointness-restoring walk
/// join2::IntervalView::FromIndex does (see its comment for why clipping
/// keeps exactly one copy of every leaf id).
template <typename Fn>
void ForEachClippedCell(const ShardedIndex& index, Fn&& fn) {
  const uint64_t ns = static_cast<uint64_t>(index.num_shards());
  for (int s = 0; s < index.num_shards(); ++s) {
    const act::PolygonIndex* shard = index.shard_index(s);
    if (shard == nullptr) continue;
    const std::vector<uint32_t>& gids = index.shard_polygon_ids(s);
    const uint64_t shard_lo = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(s) << 64) / ns);
    const uint64_t shard_hi =  // inclusive
        s + 1 == static_cast<int>(ns)
            ? UINT64_MAX
            : static_cast<uint64_t>(
                  (static_cast<unsigned __int128>(s + 1) << 64) / ns) -
                  1;
    const act::SuperCovering& sc = shard->covering();
    for (size_t i = 0; i < sc.size(); ++i) {
      const geo::CellId& cell = sc.cell(i);
      const uint64_t lo = std::max(cell.range_min().id(), shard_lo);
      const uint64_t hi = std::min(cell.range_max().id(), shard_hi);
      if (lo > hi) continue;
      const act::RefList& refs = sc.refs(i);
      if (refs.empty()) continue;
      fn(lo, hi, refs, gids);
    }
  }
}

void SortUnique(std::vector<uint32_t>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace

void SubscriptionMatcher::BuildCoverage(const ShardedIndex& index, Sub* sub) {
  using Selector = SubscriptionSpec::Selector;
  sub->watch_all = sub->spec.selector == Selector::kAll;
  if (sub->spec.selector == Selector::kPolygonIds) {
    sub->watched = sub->spec.polygon_ids;
    SortUnique(&sub->watched);
  } else if (sub->spec.selector == Selector::kCellRange) {
    // Pass 1: the watched set is every polygon whose covering touches the
    // requested region. The polygon is then watched *everywhere* — a
    // track leaving it through the far side still gets its LEAVE.
    std::vector<uint32_t> watched;
    ForEachClippedCell(
        index, [&](uint64_t lo, uint64_t hi, const act::RefList& refs,
                   const std::vector<uint32_t>& gids) {
          if (hi < sub->spec.cell_lo || lo > sub->spec.cell_hi) return;
          for (const act::PolygonRef& r : refs) {
            watched.push_back(gids[r.polygon_id]);
          }
        });
    SortUnique(&watched);
    sub->watched = std::move(watched);
  } else {
    sub->watched.clear();
  }

  std::vector<std::pair<uint64_t, uint64_t>> intervals;
  ForEachClippedCell(
      index, [&](uint64_t lo, uint64_t hi, const act::RefList& refs,
                 const std::vector<uint32_t>& gids) {
        bool hit = sub->watch_all;
        if (!hit) {
          for (const act::PolygonRef& r : refs) {
            if (std::binary_search(sub->watched.begin(), sub->watched.end(),
                                   gids[r.polygon_id])) {
              hit = true;
              break;
            }
          }
        }
        if (hit) intervals.emplace_back(lo, hi);
      });
  std::sort(intervals.begin(), intervals.end());
  // Coalesce touching / overlapping intervals: the coverage is a presence
  // filter, so merging only makes the binary search shorter.
  sub->coverage.clear();
  for (const auto& iv : intervals) {
    if (!sub->coverage.empty()) {
      auto& back = sub->coverage.back();
      if (iv.first <= back.second ||
          (back.second != UINT64_MAX && iv.first == back.second + 1)) {
        back.second = std::max(back.second, iv.second);
        continue;
      }
    }
    sub->coverage.push_back(iv);
  }
}

void SubscriptionMatcher::Membership(const ShardedIndex& index, const Sub& sub,
                                     uint64_t cell, const geom::Point& pt,
                                     std::vector<CellRef>* scratch,
                                     std::vector<uint32_t>* out) {
  out->clear();
  if (!CoverageContains(sub.coverage, cell)) return;
  index.ProbeCell(cell, scratch);
  if (scratch->empty()) return;
  const int s = index.ShardOf(cell);
  const std::vector<uint32_t>& gids = index.shard_polygon_ids(s);
  const act::PolygonIndex* shard = index.shard_index(s);
  for (const CellRef& ref : *scratch) {
    const uint32_t gid = gids[ref.local_pid];
    if (!sub.watch_all &&
        !std::binary_search(sub.watched.begin(), sub.watched.end(), gid)) {
      continue;
    }
    // Interior cells are definitive; candidate cells refine through the
    // exact predicate — the same contract as the exact-mode join probe.
    if (!ref.interior &&
        !geom::ContainsPoint(shard->polygons()[ref.local_pid], pt)) {
      continue;
    }
    out->push_back(gid);
  }
  SortUnique(out);
}

std::optional<SubscriptionInfo> SubscriptionMatcher::Add(uint16_t dataset_id,
                                                         SubscriptionSpec spec,
                                                         EventSink sink) {
  using Selector = SubscriptionSpec::Selector;
  const ServiceCatalog::Registry* reg = catalog_->Find(dataset_id);
  if (reg == nullptr) return std::nullopt;
  uint64_t epoch = 0;
  std::shared_ptr<const ShardedIndex> snap = reg->Acquire(&epoch);
  if (snap == nullptr || epoch == 0) return std::nullopt;
  if (spec.selector == Selector::kPolygonIds) {
    if (spec.polygon_ids.empty()) return std::nullopt;
    for (uint32_t id : spec.polygon_ids) {
      if (id >= snap->num_polygons()) return std::nullopt;
    }
  }
  if (spec.selector == Selector::kCellRange && spec.cell_lo > spec.cell_hi) {
    return std::nullopt;
  }

  auto sub = std::make_shared<Sub>();
  sub->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  sub->dataset = dataset_id;
  sub->spec = std::move(spec);
  sub->sink = std::move(sink);
  BuildCoverage(*snap, sub.get());
  sub->epoch = epoch;

  SubscriptionInfo info;
  info.id = sub->id;
  info.epoch = epoch;
  info.watched_polygons = static_cast<uint32_t>(
      sub->watch_all ? snap->num_polygons() : sub->watched.size());
  info.coverage_intervals = static_cast<uint32_t>(sub->coverage.size());
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    subs_.emplace(sub->id, std::move(sub));
  }
  active_.fetch_add(1, std::memory_order_relaxed);
  return info;
}

bool SubscriptionMatcher::Remove(uint64_t subscription_id) {
  std::shared_ptr<Sub> sub;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    auto it = subs_.find(subscription_id);
    if (it == subs_.end()) return false;
    sub = std::move(it->second);
    subs_.erase(it);
  }
  active_.fetch_sub(1, std::memory_order_relaxed);
  {
    // An in-flight Process holds mu while delivering; taking it here means
    // no delivery *starts* after Remove returns.
    std::lock_guard<std::mutex> lock(sub->mu);
    sub->sink = nullptr;
  }
  return true;
}

bool SubscriptionMatcher::HasSubscriptions(uint16_t dataset_id) const {
  if (active_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [id, sub] : subs_) {
    if (sub->dataset == dataset_id) return true;
  }
  return false;
}

std::vector<std::shared_ptr<SubscriptionMatcher::Sub>>
SubscriptionMatcher::SubsFor(uint16_t dataset_id) const {
  std::vector<std::shared_ptr<Sub>> out;
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const auto& [id, sub] : subs_) {
    if (sub->dataset == dataset_id) out.push_back(sub);
  }
  return out;
}

void SubscriptionMatcher::Process(Sub* sub, const ShardedIndex& index,
                                  uint64_t epoch,
                                  std::span<const uint64_t> cell_ids,
                                  std::span<const geom::Point> points) {
  if (sub->sink == nullptr) return;
  EventBatch batch;
  std::vector<CellRef> scratch;
  std::vector<uint32_t> now, gone, came;
  const bool want_leave = sub->spec.mode != SubscriptionMode::kEnterOnly;
  const bool want_enter = sub->spec.mode != SubscriptionMode::kLeaveOnly;
  auto emit_diff = [&](uint32_t track_id, const std::vector<uint32_t>& before,
                       const std::vector<uint32_t>& after) {
    gone.clear();
    came.clear();
    std::set_difference(before.begin(), before.end(), after.begin(),
                        after.end(), std::back_inserter(gone));
    std::set_difference(after.begin(), after.end(), before.begin(),
                        before.end(), std::back_inserter(came));
    if (want_leave) {
      for (uint32_t g : gone) {
        batch.events.push_back({GeoEventKind::kLeave, track_id, g});
      }
    }
    if (want_enter) {
      for (uint32_t g : came) {
        batch.events.push_back({GeoEventKind::kEnter, track_id, g});
      }
    }
  };

  // Never regress: a worker can reach here holding a snapshot acquired
  // *before* a swap that another worker already applied to this
  // subscription. Rebuilding coverage against that older snapshot would
  // roll the subscription back and emit phantom LEAVE/ENTER transitions
  // that the next batch at the new epoch reverses again. Callers
  // re-acquire the current snapshot when they detect this; the guard
  // keeps any future caller from regressing state.
  if (epoch < sub->epoch) return;
  if (epoch > sub->epoch) {
    // The snapshot moved under us: re-resolve coverage, then re-evaluate
    // every known track so removals LEAVE and additions ENTER without any
    // point traffic.
    BuildCoverage(index, sub);
    sub->epoch = epoch;
    for (size_t t = 0; t < sub->tracks.size(); ++t) {
      Track& tr = sub->tracks[t];
      if (!tr.known) continue;
      Membership(index, *sub, tr.cell, tr.point, &scratch, &now);
      emit_diff(static_cast<uint32_t>(t), tr.inside, now);
      tr.inside = now;
    }
  }

  const size_t n = std::min(cell_ids.size(), points.size());
  if (n > sub->tracks.size()) sub->tracks.resize(n);
  for (size_t t = 0; t < n; ++t) {
    Track& tr = sub->tracks[t];
    // Within one epoch, membership is a pure function of (coverage,
    // position): a track reporting the position it already holds cannot
    // transition, so skip its probe outright. Fleets are mostly
    // stationary from one batch to the next, which makes this the
    // difference between O(fleet) and O(moved) matcher work per batch.
    if (tr.known && tr.cell == cell_ids[t] && tr.point == points[t]) {
      continue;
    }
    Membership(index, *sub, cell_ids[t], points[t], &scratch, &now);
    emit_diff(static_cast<uint32_t>(t), tr.inside, now);
    tr.known = true;
    tr.cell = cell_ids[t];
    tr.point = points[t];
    tr.inside = now;
  }

  if (batch.events.empty()) return;
  batch.subscription_id = sub->id;
  batch.epoch = epoch;
  batch.first_seq = sub->next_seq;
  sub->next_seq += batch.events.size();
  events_emitted_.fetch_add(batch.events.size(), std::memory_order_relaxed);
  sub->sink(std::move(batch));
}

void SubscriptionMatcher::OnPointBatch(uint16_t dataset_id,
                                       std::span<const uint64_t> cell_ids,
                                       std::span<const geom::Point> points) {
  if (active_.load(std::memory_order_relaxed) == 0) return;
  std::vector<std::shared_ptr<Sub>> subs = SubsFor(dataset_id);
  if (subs.empty()) return;
  const ServiceCatalog::Registry* reg = catalog_->Find(dataset_id);
  if (reg == nullptr) return;
  uint64_t epoch = 0;
  std::shared_ptr<const ShardedIndex> snap = reg->Acquire(&epoch);
  if (snap == nullptr) return;
  for (auto& sub : subs) {
    std::lock_guard<std::mutex> lock(sub->mu);
    // Our snapshot lost the race with a swap another worker has already
    // applied to this subscription. Registry epochs are monotone, so
    // re-acquiring yields a snapshot at least as new as sub->epoch —
    // the batch's positions still land, just against the fresher index.
    if (epoch < sub->epoch) {
      snap = reg->Acquire(&epoch);
      if (snap == nullptr) return;
    }
    Process(sub.get(), *snap, epoch, cell_ids, points);
  }
}

void SubscriptionMatcher::OnEpochSwap(uint16_t dataset_id) {
  if (active_.load(std::memory_order_relaxed) == 0) return;
  std::vector<std::shared_ptr<Sub>> subs = SubsFor(dataset_id);
  if (subs.empty()) return;
  const ServiceCatalog::Registry* reg = catalog_->Find(dataset_id);
  if (reg == nullptr) return;
  uint64_t epoch = 0;
  std::shared_ptr<const ShardedIndex> snap = reg->Acquire(&epoch);
  if (snap == nullptr) return;
  for (auto& sub : subs) {
    std::lock_guard<std::mutex> lock(sub->mu);
    // Same stale-snapshot race as OnPointBatch: never hand Process an
    // epoch older than what the subscription has already seen.
    if (epoch < sub->epoch) {
      snap = reg->Acquire(&epoch);
      if (snap == nullptr) return;
    }
    Process(sub.get(), *snap, epoch, {}, {});
  }
}

void SubscriptionMatcher::RegisterMetrics(
    util::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->RegisterGaugeFn(
      "active_subscriptions", "Standing geofence queries registered", "",
      [this] { return static_cast<double>(active_subscriptions()); });
  registry->RegisterCounterFn(
      "subscription_events_emitted_total",
      "ENTER/LEAVE transitions computed by the matcher", "",
      [this] { return events_emitted(); });
}

}  // namespace actjoin::service
