// Per-service observability: queue depth, QPS, latency quantiles.
//
// Workers record into worker-local slots (one mutex per worker, so
// recording never contends across workers); Snapshot() merges all slots
// into one consistent read. Latencies use util::LatencyHistogram, so p50 /
// p99 are bucket-accurate (~4.4%) at O(1) record cost.

#ifndef ACTJOIN_SERVICE_SERVICE_STATS_H_
#define ACTJOIN_SERVICE_SERVICE_STATS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/latency_histogram.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace actjoin::service {

/// Per-peer admission figures (net layer): the token bucket is sharded by
/// peer address, so one greedy client's rejections are attributable to
/// that client — and visible in a STATS response — instead of dissolving
/// into a global counter while it starves everyone else.
struct PeerAdmissionStats {
  std::string peer;
  uint64_t admitted = 0;
  uint64_t rate_limited = 0;

  friend bool operator==(const PeerAdmissionStats&,
                         const PeerAdmissionStats&) = default;
};

/// Per-dataset serving figures. The catalog owns identity (id, name,
/// epoch); the service owns the traffic counters.
struct DatasetSplit {
  uint16_t id = 0;
  bool dropped = false;
  uint64_t epoch = 0;
  uint64_t points_served = 0;
  uint64_t completed_requests = 0;
  std::string name;

  friend bool operator==(const DatasetSplit&, const DatasetSplit&) = default;
};

/// One consistent snapshot of a JoinService's counters.
struct ServiceStats {
  uint64_t completed_requests = 0;
  /// Requests refused at the door (all reasons summed): the service-level
  /// splits below, plus — in a net::JoinServer STATS response — the
  /// admission-control splits.
  uint64_t rejected_requests = 0;
  /// TrySubmit with the queue at capacity.
  uint64_t rejected_queue_full = 0;
  /// TrySubmit or Submit after Shutdown (Submit also fails its future).
  uint64_t rejected_shutdown = 0;
  /// Submits naming a dataset id the catalog has never assigned.
  uint64_t rejected_unknown_dataset = 0;
  /// Net-layer admission rejects, one counter per AdmissionPolicy knob.
  /// Always zero on a bare JoinService: net::JoinServer overlays them (and
  /// adds them into rejected_requests) when composing a STATS response.
  uint64_t rejected_rate_limit = 0;
  uint64_t rejected_inflight_bytes = 0;
  uint64_t rejected_queue_watermark = 0;
  /// Hot-cell result cache counters; both zero while the cache is off
  /// (ServiceOptions.cell_cache_capacity == 0).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  /// Live mutations (ADD_POLYGONS / REMOVE_POLYGONS / DROP_DATASET)
  /// published as new epochs, and mutations refused with a typed error
  /// (unknown dataset, dropped dataset, invalid payload). Not part of
  /// rejected_requests: a refused mutation is not a refused join.
  uint64_t mutations_applied = 0;
  uint64_t rejected_mutations = 0;
  uint64_t points_served = 0;
  double uptime_s = 0;
  double qps = 0;                   // completed_requests / uptime
  double points_per_s = 0;
  double queue_wait_p50_ms = 0;
  double queue_wait_p99_ms = 0;
  double queue_wait_p999_ms = 0;
  double service_p50_ms = 0;        // join execution only
  double service_p99_ms = 0;
  double service_p999_ms = 0;
  size_t queue_depth = 0;
  uint64_t epoch = 0;      // snapshot epoch of dataset 0 (compat metric)
  uint64_t num_datasets = 0;
  /// Continuous-query figures (v6). Always zero on a bare JoinService:
  /// net::JoinServer overlays them when composing a STATS response —
  /// standing subscriptions, requests admitted but not yet answered, and
  /// the push-channel delivery counters (events enqueued to connection
  /// outboxes / events discarded by the bounded-outbox overflow policy).
  uint64_t active_subscriptions = 0;
  uint64_t outstanding_requests = 0;
  uint64_t events_pushed = 0;
  uint64_t events_dropped = 0;
  /// Per-peer admission splits (net::JoinServer overlays these, sorted by
  /// peer key; empty on a bare JoinService).
  std::vector<PeerAdmissionStats> peers;
  /// Per-dataset epoch + traffic splits, in catalog id order. Fixes the
  /// dataset-0-only `epoch` field above: every dataset's epoch is here.
  std::vector<DatasetSplit> dataset_splits;
};

class ServiceStatsRecorder {
 public:
  explicit ServiceStatsRecorder(int workers)
      : slots_(static_cast<size_t>(workers)) {
    for (auto& slot : slots_) slot = std::make_unique<WorkerSlot>();
  }

  void RecordServed(int worker, double queue_wait_us, double service_us,
                    uint64_t points) {
    WorkerSlot& slot = *slots_[static_cast<size_t>(worker)];
    std::lock_guard<std::mutex> lock(slot.mu);
    slot.queue_wait.Record(queue_wait_us);
    slot.service.Record(service_us);
    slot.points += points;
    ++slot.completed;
  }

  void RecordRejectedQueueFull() {
    rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordRejectedShutdown() {
    rejected_shutdown_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordRejectedUnknownDataset() {
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordMutationApplied() {
    mutations_applied_.fetch_add(1, std::memory_order_relaxed);
  }

  void RecordRejectedMutation() {
    rejected_mutations_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Merges all worker slots; `queue_depth` and `epoch` are provided by
  /// the service (they live outside the recorder).
  ServiceStats Snapshot(size_t queue_depth, uint64_t epoch) const {
    util::LatencyHistogram queue_wait, service;
    ServiceStats out;
    // Copy each slot under its lock (a trivially-copyable array copy),
    // merge outside: the O(kNumBuckets) Merge never runs while a worker
    // is blocked on RecordServed.
    util::LatencyHistogram scratch;
    for (const auto& slot : slots_) {
      uint64_t points, completed;
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        scratch = slot->queue_wait;
        points = slot->points;
        completed = slot->completed;
      }
      queue_wait.Merge(scratch);
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        scratch = slot->service;
      }
      service.Merge(scratch);
      out.points_served += points;
      out.completed_requests += completed;
    }
    out.rejected_queue_full =
        rejected_queue_full_.load(std::memory_order_relaxed);
    out.rejected_shutdown = rejected_shutdown_.load(std::memory_order_relaxed);
    out.rejected_unknown_dataset =
        rejected_unknown_dataset_.load(std::memory_order_relaxed);
    out.rejected_requests = out.rejected_queue_full + out.rejected_shutdown +
                            out.rejected_unknown_dataset;
    out.mutations_applied = mutations_applied_.load(std::memory_order_relaxed);
    out.rejected_mutations =
        rejected_mutations_.load(std::memory_order_relaxed);
    out.uptime_s = uptime_.ElapsedSeconds();
    if (out.uptime_s > 0) {
      out.qps = static_cast<double>(out.completed_requests) / out.uptime_s;
      out.points_per_s = static_cast<double>(out.points_served) / out.uptime_s;
    }
    out.queue_wait_p50_ms = queue_wait.P50Micros() / 1e3;
    out.queue_wait_p99_ms = queue_wait.P99Micros() / 1e3;
    out.queue_wait_p999_ms = queue_wait.P999Micros() / 1e3;
    out.service_p50_ms = service.P50Micros() / 1e3;
    out.service_p99_ms = service.P99Micros() / 1e3;
    out.service_p999_ms = service.P999Micros() / 1e3;
    out.queue_depth = queue_depth;
    out.epoch = epoch;
    return out;
  }

  /// Merged copy of one latency histogram across all worker slots (same
  /// copy-then-merge discipline as Snapshot). For the metrics exporter.
  util::LatencyHistogram MergedQueueWait() const {
    return MergedHistogram(/*service=*/false);
  }
  util::LatencyHistogram MergedService() const {
    return MergedHistogram(/*service=*/true);
  }

  /// Registers the recorder's counters and histograms into `registry` as
  /// collection-time callbacks — recording stays on the worker-slot path,
  /// untouched. The recorder must outlive the registry's collections.
  void RegisterMetrics(util::MetricsRegistry* registry) const {
    registry->RegisterCounterFn(
        "requests_rejected_total", "Requests refused at the service door",
        "reason=\"queue_full\"", [this] {
          return rejected_queue_full_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "requests_rejected_total", "", "reason=\"shutdown\"", [this] {
          return rejected_shutdown_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "requests_rejected_total", "", "reason=\"unknown_dataset\"", [this] {
          return rejected_unknown_dataset_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "mutations_applied_total", "Live mutations published as new epochs",
        "", [this] {
          return mutations_applied_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "mutations_rejected_total", "Mutations refused with a typed error",
        "", [this] {
          return rejected_mutations_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "requests_completed_total", "Join requests completed", "", [this] {
          uint64_t total = 0;
          for (const auto& slot : slots_) {
            std::lock_guard<std::mutex> lock(slot->mu);
            total += slot->completed;
          }
          return total;
        });
    registry->RegisterCounterFn(
        "points_served_total", "Probe points served across all joins", "",
        [this] {
          uint64_t total = 0;
          for (const auto& slot : slots_) {
            std::lock_guard<std::mutex> lock(slot->mu);
            total += slot->points;
          }
          return total;
        });
    registry->RegisterGaugeFn("uptime_seconds", "Service uptime", "",
                              [this] { return uptime_.ElapsedSeconds(); });
    registry->RegisterHistogramFn(
        "queue_wait_seconds", "Bounded-queue wait before a worker picks up",
        "", [this] { return MergedQueueWait(); });
    registry->RegisterHistogramFn(
        "service_seconds", "Join execution time (decompose+probe+merge)", "",
        [this] { return MergedService(); });
  }

 private:
  util::LatencyHistogram MergedHistogram(bool service) const {
    util::LatencyHistogram merged, scratch;
    for (const auto& slot : slots_) {
      {
        std::lock_guard<std::mutex> lock(slot->mu);
        scratch = service ? slot->service : slot->queue_wait;
      }
      merged.Merge(scratch);
    }
    return merged;
  }

  struct WorkerSlot {
    mutable std::mutex mu;
    util::LatencyHistogram queue_wait;
    util::LatencyHistogram service;
    uint64_t points = 0;
    uint64_t completed = 0;
  };

  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::atomic<uint64_t> rejected_queue_full_{0};
  std::atomic<uint64_t> rejected_shutdown_{0};
  std::atomic<uint64_t> rejected_unknown_dataset_{0};
  std::atomic<uint64_t> mutations_applied_{0};
  std::atomic<uint64_t> rejected_mutations_{0};
  util::WallTimer uptime_;
};

}  // namespace actjoin::service

#endif  // ACTJOIN_SERVICE_SERVICE_STATS_H_
