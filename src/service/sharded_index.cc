#include "service/sharded_index.h"

#include <algorithm>
#include <cstdint>
#include <span>

#include "cover/coverer.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/timer.h"
#include "util/work_stealing_pool.h"

namespace actjoin::service {

// Shard s owns the leaf-id interval [floor(s * 2^64 / N),
// floor((s+1) * 2^64 / N)): equal Hilbert-range slices of the whole id
// space. The 128-bit multiply-shift is the exact inverse map.
int ShardedIndex::ShardOf(uint64_t leaf_cell_id) const {
  return static_cast<int>(
      (static_cast<unsigned __int128>(leaf_cell_id) *
       static_cast<unsigned>(shards_.size())) >> 64);
}

ShardedIndex ShardedIndex::Build(const std::vector<geom::Polygon>& polygons,
                                 const geo::Grid& grid,
                                 const ShardingOptions& opts) {
  ShardedIndex out(grid);
  out.opts_ = opts;
  if (out.opts_.num_shards < 1) out.opts_.num_shards = 1;
  if (out.opts_.routing_cover_cells < 1) out.opts_.routing_cover_cells = 1;
  out.num_polygons_ = polygons.size();

  util::WallTimer timer;
  const int ns = out.opts_.num_shards;
  out.shards_.resize(ns);

  // Coarse per-polygon routing coverings, parallelized over polygons like
  // the index build's own covering phase.
  int threads = out.opts_.build.threads <= 0 ? util::DefaultThreadCount()
                                             : out.opts_.build.threads;
  cover::CovererOptions routing_opts{out.opts_.routing_cover_cells,
                                     geo::CellId::kMaxLevel, 0};
  std::vector<std::vector<geo::CellId>> routing(polygons.size());
  util::ParallelFor(polygons.size(), threads, /*batch=*/1,
                    [&](uint64_t begin, uint64_t end, int) {
                      for (uint64_t i = begin; i < end; ++i) {
                        routing[i] =
                            cover::ComputeCovering(polygons[i], grid,
                                                   routing_opts);
                      }
                    });

  // A polygon belongs to every shard its routing covering touches. The
  // covering contains the polygon, so any point inside the polygon routes
  // to a shard that indexes it; over-assignment (from the coarse covering
  // sticking out past the polygon) costs memory, never correctness.
  std::vector<uint32_t> last_assigned(ns, UINT32_MAX);
  for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
    for (const geo::CellId& cell : routing[pid]) {
      int s0 = out.ShardOf(cell.range_min().id());
      int s1 = out.ShardOf(cell.range_max().id());
      for (int s = s0; s <= s1; ++s) {
        if (last_assigned[s] != pid) {
          last_assigned[s] = pid;
          out.shards_[s].global_ids.push_back(pid);
        }
      }
    }
  }

  // One independent PolygonIndex per non-empty shard (each build is itself
  // parallel over its polygons).
  for (int s = 0; s < ns; ++s) {
    Shard& shard = out.shards_[s];
    if (shard.global_ids.empty()) continue;
    std::vector<geom::Polygon> subset;
    subset.reserve(shard.global_ids.size());
    for (uint32_t pid : shard.global_ids) subset.push_back(polygons[pid]);
    shard.index = std::make_shared<const act::PolygonIndex>(
        act::PolygonIndex::Build(subset, grid, out.opts_.build));
  }
  out.build_seconds_ = timer.ElapsedSeconds();
  return out;
}

namespace {

// Collapses an unsorted interval list into sorted, coalesced form so the
// cache invalidation walk can binary-search it.
void NormalizeRanges(std::vector<std::pair<uint64_t, uint64_t>>* ranges) {
  if (ranges->empty()) return;
  std::sort(ranges->begin(), ranges->end());
  size_t w = 0;
  for (size_t i = 1; i < ranges->size(); ++i) {
    auto& cur = (*ranges)[w];
    const auto& next = (*ranges)[i];
    // Adjacent leaf intervals coalesce too (max avoids overflow bait).
    if (next.first <= cur.second || next.first == cur.second + 1) {
      cur.second = std::max(cur.second, next.second);
    } else {
      (*ranges)[++w] = next;
    }
  }
  ranges->resize(w + 1);
}

}  // namespace

ShardedIndex::DeltaResult ShardedIndex::ApplyDelta(const ShardedIndex& base,
                                                   const Delta& delta) {
  util::WallTimer timer;
  const int ns = static_cast<int>(base.shards_.size());
  DeltaResult result;
  result.first_added_id = static_cast<uint32_t>(base.num_polygons_);

  auto out = std::make_shared<ShardedIndex>(ShardedIndex(base.grid_));
  out->opts_ = base.opts_;
  out->num_polygons_ = base.num_polygons_ + delta.add.size();
  out->shards_.resize(ns);

  // Membership vector over the base id space; removes of already-removed
  // ids are harmless no-ops in the per-shard rebuilds below.
  std::vector<bool> removed(base.num_polygons_, false);
  for (uint32_t gid : delta.remove) {
    ACT_CHECK_MSG(gid < base.num_polygons_,
                  "removed polygon id out of range");
    removed[gid] = true;
  }

  // Route added polygons to shards exactly as Build does, so a delta-built
  // index and a from-scratch Build over the final set agree shard by shard.
  int threads = base.opts_.build.threads <= 0 ? util::DefaultThreadCount()
                                              : base.opts_.build.threads;
  cover::CovererOptions routing_opts{base.opts_.routing_cover_cells,
                                     geo::CellId::kMaxLevel, 0};
  std::vector<std::vector<geo::CellId>> routing(delta.add.size());
  util::ParallelFor(delta.add.size(), threads, /*batch=*/1,
                    [&](uint64_t begin, uint64_t end, int) {
                      for (uint64_t i = begin; i < end; ++i) {
                        routing[i] = cover::ComputeCovering(delta.add[i],
                                                            base.grid_,
                                                            routing_opts);
                      }
                    });
  // added_in[s] holds positions into delta.add, in id order.
  std::vector<std::vector<uint32_t>> added_in(ns);
  std::vector<uint32_t> last_assigned(ns, UINT32_MAX);
  for (uint32_t i = 0; i < delta.add.size(); ++i) {
    for (const geo::CellId& cell : routing[i]) {
      int s0 = base.ShardOf(cell.range_min().id());
      int s1 = base.ShardOf(cell.range_max().id());
      for (int s = s0; s <= s1; ++s) {
        if (last_assigned[s] != i) {
          last_assigned[s] = i;
          added_in[s].push_back(i);
        }
      }
    }
  }

  for (int s = 0; s < ns; ++s) {
    const Shard& from = base.shards_[s];
    Shard& to = out->shards_[s];

    // Shard-local ids of polygons this delta removes from shard s.
    std::vector<uint32_t> removed_local;
    for (uint32_t local = 0; local < from.global_ids.size(); ++local) {
      if (removed[from.global_ids[local]]) removed_local.push_back(local);
    }

    if (added_in[s].empty() && removed_local.empty()) {
      // Untouched: alias the base shard's trie into the new snapshot.
      to.index = from.index;
      to.global_ids = from.global_ids;
      continue;
    }

    // Clone-on-write: reuse the shard's already-computed covering, drop
    // the removed references, extend with the added polygons' coverings.
    const size_t old_local_count = from.global_ids.size();
    to.global_ids = from.global_ids;
    std::vector<geom::Polygon> subset;
    subset.reserve(added_in[s].size());
    for (uint32_t i : added_in[s]) {
      subset.push_back(delta.add[i]);
      to.global_ids.push_back(result.first_added_id + i);
    }
    if (from.index == nullptr) {
      to.index = std::make_shared<const act::PolygonIndex>(
          act::PolygonIndex::Build(subset, base.grid_, base.opts_.build));
    } else {
      act::PolygonIndex next = from.index->Clone();
      if (!removed_local.empty()) next.RemovePolygons(removed_local);
      if (!subset.empty()) next.AddPolygons(subset);
      to.index = std::make_shared<const act::PolygonIndex>(std::move(next));
    }

    // Invalidation set: every base covering cell that referenced a removed
    // polygon (its reference list shrank, or the cell vanished entirely)
    // and every new covering cell referencing an added polygon. Cells a
    // conflict split merely subdivided keep their reference lists, so
    // cached probe replays for them stay byte-identical.
    if (!removed_local.empty() && from.index != nullptr) {
      std::vector<bool> removed_here(old_local_count, false);
      for (uint32_t local : removed_local) removed_here[local] = true;
      const act::SuperCovering& cov = from.index->covering();
      for (size_t i = 0; i < cov.size(); ++i) {
        for (const act::PolygonRef& r : cov.refs(i)) {
          if (removed_here[r.polygon_id]) {
            result.touched_ranges.emplace_back(
                cov.cell(i).range_min().id(), cov.cell(i).range_max().id());
            break;
          }
        }
      }
    }
    if (!added_in[s].empty()) {
      const act::SuperCovering& cov = to.index->covering();
      for (size_t i = 0; i < cov.size(); ++i) {
        for (const act::PolygonRef& r : cov.refs(i)) {
          if (r.polygon_id >= old_local_count) {
            result.touched_ranges.emplace_back(
                cov.cell(i).range_min().id(), cov.cell(i).range_max().id());
            break;
          }
        }
      }
    }
  }

  NormalizeRanges(&result.touched_ranges);
  out->build_seconds_ = timer.ElapsedSeconds();
  result.index = std::move(out);
  return result;
}

ShardedIndex ShardedIndex::FromParts(const geo::Grid& grid,
                                     const ShardingOptions& opts,
                                     size_t num_polygons,
                                     std::vector<ShardParts> parts) {
  util::WallTimer timer;
  ShardedIndex out(grid);
  out.opts_ = opts;
  out.opts_.num_shards = static_cast<int>(parts.size());
  ACT_CHECK_MSG(!parts.empty(), "FromParts requires at least one shard");
  out.num_polygons_ = num_polygons;
  out.shards_.resize(parts.size());
  for (size_t s = 0; s < parts.size(); ++s) {
    ACT_CHECK_MSG((parts[s].index == nullptr) == parts[s].global_ids.empty(),
                  "a shard has an index iff it has polygons");
    ACT_CHECK_MSG(parts[s].index == nullptr ||
                      parts[s].index->polygons().size() ==
                          parts[s].global_ids.size(),
                  "shard id map must cover the shard's polygons");
    for (uint32_t gid : parts[s].global_ids) {
      ACT_CHECK_MSG(gid < num_polygons, "global polygon id out of range");
    }
    out.shards_[s].index = std::move(parts[s].index);
    out.shards_[s].global_ids = std::move(parts[s].global_ids);
  }
  out.build_seconds_ = timer.ElapsedSeconds();
  return out;
}

namespace {

// Bucket-sorts the batch into shard-contiguous (= Hilbert) order.
// offsets[s]..offsets[s+1] delimit shard s's slice of the scratch arrays;
// orig (when non-null) maps scratch position back to the input position.
void RouteBatch(const ShardedIndex& index, const act::JoinInput& input,
                std::vector<uint64_t>* offsets, std::vector<uint64_t>* cells,
                std::vector<geom::Point>* points,
                std::vector<uint64_t>* orig) {
  const uint64_t n = input.size();
  const int ns = index.num_shards();
  std::vector<uint32_t> shard_of(n);
  offsets->assign(static_cast<size_t>(ns) + 1, 0);
  for (uint64_t i = 0; i < n; ++i) {
    uint32_t s = static_cast<uint32_t>(index.ShardOf(input.cell_ids[i]));
    shard_of[i] = s;
    ++(*offsets)[s + 1];
  }
  for (int s = 0; s < ns; ++s) (*offsets)[s + 1] += (*offsets)[s];

  cells->resize(n);
  points->resize(n);
  if (orig != nullptr) orig->resize(n);
  std::vector<uint64_t> cursor(offsets->begin(), offsets->end() - 1);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t pos = cursor[shard_of[i]]++;
    (*cells)[pos] = input.cell_ids[i];
    (*points)[pos] = input.points[i];
    if (orig != nullptr) (*orig)[pos] = i;
  }
}

// One executor task unit: a contiguous sub-range of one shard's routed
// slice, addressed by absolute offsets into the scratch arrays. The task
// list is generated shard-major, range-minor — the fixed order every
// merge below follows, which is what makes results independent of which
// thread ran which task.
struct TaskUnit {
  uint32_t shard = 0;
  uint64_t begin = 0;
  uint64_t end = 0;
};

// Floor on points per task: below this the per-task bookkeeping (deque
// ops, a per-task stats slot with its counts vector) stops being noise
// next to the probe work.
constexpr uint64_t kMinTaskPoints = 2048;
// Tasks per thread the decomposition aims for when the batch is large
// enough: slack for stealing to rebalance a skewed batch, coarse enough
// that task overhead stays invisible.
constexpr uint64_t kTasksPerThread = 8;

// Splits each shard's routed slice [offsets[s], offsets[s+1]) into
// sub-range tasks sized off the slice widths (empty and index-less shards
// get no tasks — their points are guaranteed misses, handled at merge
// time). A hot shard simply yields more tasks, which is exactly what lets
// every thread in the budget converge on it.
std::vector<TaskUnit> DecomposeBatch(const ShardedIndex& index,
                                     const std::vector<uint64_t>& offsets,
                                     uint64_t n, int budget) {
  const uint64_t target_tasks =
      static_cast<uint64_t>(std::max(1, budget)) * kTasksPerThread;
  const uint64_t task_points =
      std::max(kMinTaskPoints, (n + target_tasks - 1) / target_tasks);
  std::vector<TaskUnit> tasks;
  for (int s = 0; s < index.num_shards(); ++s) {
    if (index.shard_index(s) == nullptr) continue;
    for (uint64_t b = offsets[s]; b < offsets[s + 1]; b += task_points) {
      tasks.push_back({static_cast<uint32_t>(s), b,
                       std::min(b + task_points, offsets[s + 1])});
    }
  }
  return tasks;
}

// Runs run_task(t) for every task, `budget` wide: inline when the budget
// or task count makes parallelism pointless, on the caller's shared pool
// when one was provided, else on a transient pool sized so pool workers
// plus this thread equal the budget.
template <typename Fn>
void RunTasks(size_t num_tasks, int budget, util::WorkStealingPool* pool,
              Fn&& run_task) {
  // A lone task (or a width-1 budget) runs inline on the caller even when
  // a shared pool exists: waking the pool's workers costs more than the
  // task itself, and the serving path's small batches hit this case on
  // every request. (budget >= 2 whenever the pool has workers.)
  if (num_tasks <= 1 || budget <= 1) {
    for (uint64_t t = 0; t < num_tasks; ++t) run_task(t);
    return;
  }
  if (pool != nullptr && pool->num_workers() > 0) {
    pool->Run(num_tasks, run_task);
    return;
  }
  util::WorkStealingPool local(budget - 1);
  local.Run(num_tasks, run_task);
}

}  // namespace

act::JoinStats ShardedIndex::Join(const act::JoinInput& input,
                                  const act::JoinOptions& opts,
                                  util::WorkStealingPool* pool,
                                  JoinPhaseTimes* phases,
                                  const util::StagePerfCounters* stage_perf) const {
  util::WallTimer timer;
  // Counter attribution is phase-boundary group reads on this thread; an
  // unavailable group degrades to counters_valid = false, never to zeros
  // masquerading as measurements.
  const bool count_stages =
      phases != nullptr && stage_perf != nullptr && stage_perf->available();
  util::StageCounterSample perf_mark;
  if (count_stages) perf_mark = stage_perf->Read();
  const uint64_t n = input.size();
  act::JoinStats out;
  out.num_points = n;
  out.counts.assign(num_polygons_, 0);
  if (n == 0) {
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  util::WallTimer phase_timer;
  std::vector<uint64_t> offsets, cells;
  std::vector<geom::Point> points;
  RouteBatch(*this, input, &offsets, &cells, &points, nullptr);

  // Work-stealing executors: the routed batch becomes (shard, sub-range)
  // task units and the whole thread budget drains whichever shard is hot
  // — the static per-shard split this replaced under-widthed hot shards
  // on exactly the skewed batches the paper targets (kept as
  // JoinStaticSplit, the A/B baseline). Each task probes at width 1;
  // parallelism comes only from the task fan-out, so nothing nests.
  const int budget = util::EffectiveWidth(pool, opts.threads);
  std::vector<TaskUnit> tasks = DecomposeBatch(*this, offsets, n, budget);
  if (phases != nullptr) phases->route_us = phase_timer.ElapsedSeconds() * 1e6;
  if (count_stages) {
    util::StageCounterSample now = stage_perf->Read();
    phases->route_counters = now - perf_mark;
    perf_mark = now;
    phases->counters_valid = true;
  }
  std::vector<act::JoinStats> task_stats(tasks.size());
  act::JoinOptions task_opts = opts;
  task_opts.threads = 1;
  phase_timer.Restart();
  RunTasks(tasks.size(), budget, pool, [&](uint64_t t) {
    const TaskUnit& u = tasks[t];
    const uint64_t count = u.end - u.begin;
    act::JoinInput sub{std::span(cells).subspan(u.begin, count),
                       std::span(points).subspan(u.begin, count)};
    task_stats[t] = shards_[u.shard].index->Join(sub, task_opts);
  });
  if (phases != nullptr) phases->probe_us = phase_timer.ElapsedSeconds() * 1e6;
  if (count_stages) {
    util::StageCounterSample now = stage_perf->Read();
    phases->probe_counters = now - perf_mark;
    perf_mark = now;
  }

  // Deterministic merge: task order is shard-major/range-minor by
  // construction and JoinStats fields are exact integer counters, so the
  // execution interleaving cannot leak into the result.
  phase_timer.Restart();
  for (size_t t = 0; t < tasks.size(); ++t) {
    const Shard& shard = shards_[tasks[t].shard];
    const act::JoinStats& st = task_stats[t];
    out.AccumulateCounters(st);
    for (size_t k = 0; k < st.counts.size(); ++k) {
      out.counts[shard.global_ids[k]] += st.counts[k];
    }
  }
  for (int s = 0; s < num_shards(); ++s) {
    if (shards_[s].index != nullptr) continue;
    // No polygons reach this shard: every point here is a guaranteed
    // miss (the sharded analog of the sentinel probe).
    out.sth_points += offsets[s + 1] - offsets[s];
  }
  if (phases != nullptr) phases->merge_us = phase_timer.ElapsedSeconds() * 1e6;
  if (count_stages) {
    phases->merge_counters = stage_perf->Read() - perf_mark;
  }
  out.seconds = timer.ElapsedSeconds();  // includes routing, fair total
  return out;
}

act::JoinStats ShardedIndex::JoinStaticSplit(
    const act::JoinInput& input, const act::JoinOptions& opts) const {
  util::WallTimer timer;
  const uint64_t n = input.size();
  act::JoinStats out;
  out.num_points = n;
  out.counts.assign(num_polygons_, 0);
  if (n == 0) {
    out.seconds = timer.ElapsedSeconds();
    return out;
  }

  std::vector<uint64_t> offsets, cells;
  std::vector<geom::Point> points;
  RouteBatch(*this, input, &offsets, &cells, &points, nullptr);

  // The original executor: shards run concurrently, each owning an equal
  // static slice of the thread budget for its inner batch-of-16 probe
  // loop. Under-widths hot shards on skewed batches — which is the point
  // of keeping it: the bench smoke measures the stealing Join against it.
  const int ns = num_shards();
  const int budget =
      opts.threads <= 0 ? util::DefaultThreadCount() : opts.threads;
  act::JoinOptions shard_opts = opts;
  shard_opts.threads = std::max(1, budget / ns);
  std::vector<act::JoinStats> per_shard(ns);
  util::ParallelFor(
      static_cast<uint64_t>(ns), std::min(budget, ns), /*batch=*/1,
      [&](uint64_t begin, uint64_t end, int) {
        for (uint64_t s = begin; s < end; ++s) {
          uint64_t count = offsets[s + 1] - offsets[s];
          if (count == 0 || shards_[s].index == nullptr) continue;
          act::JoinInput sub{std::span(cells).subspan(offsets[s], count),
                             std::span(points).subspan(offsets[s], count)};
          per_shard[s] = shards_[s].index->Join(sub, shard_opts);
        }
      });

  for (int s = 0; s < ns; ++s) {
    uint64_t count = offsets[s + 1] - offsets[s];
    if (count == 0) continue;
    const Shard& shard = shards_[s];
    if (shard.index == nullptr) {
      // No polygons reach this shard: every point here is a guaranteed
      // miss (the sharded analog of the sentinel probe).
      out.sth_points += count;
      continue;
    }
    const act::JoinStats& st = per_shard[s];
    out.AccumulateCounters(st);
    for (size_t k = 0; k < st.counts.size(); ++k) {
      out.counts[shard.global_ids[k]] += st.counts[k];
    }
  }
  out.seconds = timer.ElapsedSeconds();  // includes routing, fair total
  return out;
}

std::vector<std::pair<uint64_t, uint32_t>> ShardedIndex::JoinPairs(
    const act::JoinInput& input, act::JoinMode mode, int threads,
    util::WorkStealingPool* pool) const {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  if (input.size() == 0) return out;

  std::vector<uint64_t> offsets, cells, orig;
  std::vector<geom::Point> points;
  RouteBatch(*this, input, &offsets, &cells, &points, &orig);

  // Same (shard, sub-range) decomposition as Join; each task remaps its
  // shard-local pairs to (original point index, global polygon id).
  const int budget = util::EffectiveWidth(pool, threads);
  std::vector<TaskUnit> tasks =
      DecomposeBatch(*this, offsets, input.size(), budget);
  std::vector<std::vector<std::pair<uint64_t, uint32_t>>> task_pairs(
      tasks.size());
  RunTasks(tasks.size(), budget, pool, [&](uint64_t t) {
    const TaskUnit& u = tasks[t];
    const uint64_t count = u.end - u.begin;
    const Shard& shard = shards_[u.shard];
    act::JoinInput sub{std::span(cells).subspan(u.begin, count),
                       std::span(points).subspan(u.begin, count)};
    std::vector<std::pair<uint64_t, uint32_t>>& local = task_pairs[t];
    for (const auto& [local_point, local_pid] :
         shard.index->JoinPairs(sub, mode)) {
      local.emplace_back(orig[u.begin + local_point],
                         shard.global_ids[local_pid]);
    }
  });

  // Concatenate in fixed task order, then sort: every width produces the
  // same multiset of pairs, so the sorted vector is byte-identical to the
  // serial path's — the determinism contract service_test pins.
  size_t total = 0;
  for (const auto& local : task_pairs) total += local.size();
  out.reserve(total);
  for (const auto& local : task_pairs) {
    out.insert(out.end(), local.begin(), local.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ShardedIndex::ProbeCell(uint64_t leaf_cell_id,
                             std::vector<CellRef>* out) const {
  out->clear();
  const Shard& shard = shards_[static_cast<size_t>(ShardOf(leaf_cell_id))];
  if (shard.index == nullptr) return;
  act::TaggedEntry entry = shard.index->trie().Probe(leaf_cell_id);
  if (entry == act::kSentinelEntry) return;
  auto visit = [&](uint32_t pid, bool interior) {
    out->push_back({pid, interior});
  };
  switch (act::KindOf(entry)) {
    case act::EntryKind::kOneRef: {
      act::PolygonRef r = act::FirstRefOf(entry);
      visit(r.polygon_id, r.interior);
      break;
    }
    case act::EntryKind::kTwoRefs: {
      act::PolygonRef a = act::FirstRefOf(entry);
      act::PolygonRef b = act::SecondRefOf(entry);
      visit(a.polygon_id, a.interior);
      visit(b.polygon_id, b.interior);
      break;
    }
    case act::EntryKind::kTableOffset:
      shard.index->encoded().table.VisitEntry(act::TableOffsetOf(entry),
                                              visit);
      break;
    case act::EntryKind::kPointer:
      break;  // unreachable: sentinel handled above
  }
}

uint64_t ShardedIndex::MemoryBytes() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    if (shard.index != nullptr) total += shard.index->MemoryBytes();
  }
  return total;
}

}  // namespace actjoin::service
