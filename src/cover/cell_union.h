// Operations on sets of hierarchical cells.
//
// The paper requires normalized coverings (no duplicate and no conflicting
// cells — Sec. 2) and a cell-difference primitive for the precision-
// preserving conflict resolution of the super covering build (Sec. 3.1.1,
// Fig. 4: d = c1 - c2 with |d| = 3 * level-difference cells).

#ifndef ACTJOIN_COVER_CELL_UNION_H_
#define ACTJOIN_COVER_CELL_UNION_H_

#include <vector>

#include "geo/cell_id.h"

namespace actjoin::cover {

/// Sorts, deduplicates, and drops cells contained in other cells of the set.
/// If merge_siblings is true, any four complete siblings are replaced by
/// their parent (recursively), like S2CellUnion::Normalize.
void Normalize(std::vector<geo::CellId>* cells, bool merge_siblings = false);

/// True iff `cells` (normalized) contains `target`, i.e. some member is an
/// ancestor-or-self of target. Binary search, O(log n).
bool NormalizedContains(const std::vector<geo::CellId>& cells,
                        const geo::CellId& target);

/// The difference c1 - c2 where c1 strictly contains c2: the minimal set of
/// cells covering c1's area minus c2's. Exactly 3 * (level(c2) - level(c1))
/// cells. Appends to *out.
void CellDifference(const geo::CellId& c1, const geo::CellId& c2,
                    std::vector<geo::CellId>* out);

/// Generalization used by the super covering build: covers c minus all of
/// `holes` (each a strict descendant of c, mutually disjoint, sorted) with
/// the minimal set of cells. Appends to *out.
void CellDifferenceMulti(const geo::CellId& c,
                         const std::vector<geo::CellId>& holes,
                         std::vector<geo::CellId>* out);

}  // namespace actjoin::cover

#endif  // ACTJOIN_COVER_CELL_UNION_H_
