#include "cover/cell_union.h"

#include <algorithm>

#include "util/check.h"

namespace actjoin::cover {

using geo::CellId;

void Normalize(std::vector<CellId>* cells, bool merge_siblings) {
  std::sort(cells->begin(), cells->end());
  std::vector<CellId> out;
  out.reserve(cells->size());
  for (const CellId& c : *cells) {
    // Sorted order guarantees an ancestor precedes its descendants only if
    // its id is smaller; an ancestor's id is the center of its range, so
    // descendants in the first half of the range come first. Checking the
    // last emitted cell is not enough; instead drop c if the previous kept
    // cell contains it, and drop previous cells contained in c.
    while (!out.empty() && c.contains(out.back())) out.pop_back();
    if (!out.empty() && out.back().contains(c)) continue;
    if (!out.empty() && out.back() == c) continue;
    out.push_back(c);
    if (merge_siblings) {
      // Collapse complete sibling groups bottom-up.
      while (out.size() >= 4) {
        size_t n = out.size();
        const CellId& a = out[n - 4];
        if (a.is_face() || a.child_position(a.level()) != 0) break;
        CellId parent = a.parent();
        if (out[n - 3] != parent.child(1) || out[n - 2] != parent.child(2) ||
            out[n - 1] != parent.child(3) || a != parent.child(0)) {
          break;
        }
        out.resize(n - 4);
        out.push_back(parent);
      }
    }
  }
  *cells = std::move(out);
}

bool NormalizedContains(const std::vector<CellId>& cells,
                        const CellId& target) {
  // First cell with id >= target either is an ancestor (its range_min is
  // below target) or the predecessor is.
  auto it = std::lower_bound(cells.begin(), cells.end(), target);
  if (it != cells.end() && it->range_min() <= target) return true;
  return it != cells.begin() && std::prev(it)->range_max() >= target;
}

void CellDifference(const CellId& c1, const CellId& c2,
                    std::vector<CellId>* out) {
  ACT_CHECK(c1.contains(c2) && c1 != c2);
  CellId current = c1;
  while (current != c2) {
    int next_level = current.level() + 1;
    int branch = c2.child_position(next_level);
    for (int k = 0; k < 4; ++k) {
      if (k != branch) out->push_back(current.child(k));
    }
    current = current.child(branch);
  }
}

void CellDifferenceMulti(const CellId& c, const std::vector<CellId>& holes,
                         std::vector<CellId>* out) {
  if (holes.empty()) {
    out->push_back(c);
    return;
  }
  ACT_CHECK(!(holes.size() == 1 && holes[0] == c));
  for (int k = 0; k < 4; ++k) {
    CellId child = c.child(k);
    // Partition the (sorted, disjoint) holes among the children by range.
    std::vector<CellId> sub;
    bool child_is_hole = false;
    for (const CellId& h : holes) {
      if (h == child) {
        child_is_hole = true;
        break;
      }
      if (child.contains(h)) sub.push_back(h);
    }
    if (child_is_hole) continue;
    CellDifferenceMulti(child, sub, out);
  }
}

}  // namespace actjoin::cover
