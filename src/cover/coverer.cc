#include "cover/coverer.h"

#include <queue>

#include "cover/cell_union.h"
#include "util/check.h"

namespace actjoin::cover {

using geo::CellId;
using geom::RegionRelation;

namespace {

geom::Rect ToGeomRect(const geo::LatLngRect& r) {
  return geom::Rect::Of(r.lng_lo, r.lat_lo, r.lng_hi, r.lat_hi);
}

struct Candidate {
  CellId cell;
  RegionRelation relation;
};

// Coarsest-first, then id order for determinism.
struct CoarsestFirst {
  bool operator()(const Candidate& a, const Candidate& b) const {
    int la = a.cell.level();
    int lb = b.cell.level();
    if (la != lb) return la > lb;  // priority_queue: "smaller" popped last
    return a.cell.id() > b.cell.id();
  }
};

using CandidateQueue =
    std::priority_queue<Candidate, std::vector<Candidate>, CoarsestFirst>;

}  // namespace

Coverer::Coverer(const geom::Polygon& poly, const geo::Grid& grid)
    : poly_(&poly),
      grid_(&grid),
      owned_edges_(std::make_unique<geom::EdgeGrid>(poly)),
      edges_(owned_edges_.get()) {}

Coverer::Coverer(const geom::EdgeGrid& edges, const geo::Grid& grid)
    : poly_(&edges.polygon()), grid_(&grid), edges_(&edges) {}

RegionRelation Coverer::Classify(const CellId& cell) const {
  return edges_->Classify(ToGeomRect(grid_->CellRect(cell)));
}

std::vector<CellId> Coverer::SeedCells(int max_level) const {
  const geom::Rect& mbr = poly_->mbr();
  ACT_CHECK_MSG(!mbr.IsEmpty(), "cannot cover an empty polygon");
  int face_lo = geo::Grid::FaceAt({mbr.lo.y, mbr.lo.x});
  int face_hi = geo::Grid::FaceAt({mbr.hi.y, mbr.hi.x});
  std::vector<CellId> seeds;
  if (face_lo != face_hi) {
    for (int f = face_lo; f <= face_hi; ++f) seeds.push_back(CellId::FromFace(f));
    return seeds;
  }
  // Descend from the face cell while a single child still contains the MBR,
  // but never past max_level (the covering must respect it even for tiny
  // polygons).
  CellId cell = CellId::FromFace(face_lo);
  while (cell.level() < max_level) {
    bool descended = false;
    for (int k = 0; k < 4; ++k) {
      CellId child = cell.child(k);
      if (ToGeomRect(grid_->CellRect(child)).Contains(mbr)) {
        cell = child;
        descended = true;
        break;
      }
    }
    if (!descended) break;
  }
  seeds.push_back(cell);
  return seeds;
}

std::vector<CellId> Coverer::Covering(const CovererOptions& opts) const {
  ACT_CHECK(opts.max_cells >= 1);
  std::vector<CellId> result;
  CandidateQueue queue;
  size_t queued = 0;
  for (const CellId& seed : SeedCells(opts.max_level)) {
    RegionRelation rel = Classify(seed);
    if (rel == RegionRelation::kDisjoint) continue;
    queue.push({seed, rel});
    ++queued;
  }
  while (!queue.empty()) {
    Candidate c = queue.top();
    queue.pop();
    --queued;
    int level = c.cell.level();
    bool must_split = level < opts.min_level && !c.cell.is_leaf();
    bool terminal = !must_split && (c.relation == RegionRelation::kContained ||
                                    level >= opts.max_level ||
                                    c.cell.is_leaf());
    // A split replaces one candidate with up to four: net growth <= 3.
    bool budget_ok =
        result.size() + queued + 4 <= static_cast<size_t>(opts.max_cells);
    if (terminal || (!must_split && !budget_ok)) {
      result.push_back(c.cell);
      continue;
    }
    if (must_split && !budget_ok) {
      // Cannot honor min_level within budget; emit rather than drop area.
      result.push_back(c.cell);
      continue;
    }
    for (int k = 0; k < 4; ++k) {
      CellId child = c.cell.child(k);
      RegionRelation rel = c.relation == RegionRelation::kContained
                               ? RegionRelation::kContained
                               : Classify(child);
      if (rel == RegionRelation::kDisjoint) continue;
      queue.push({child, rel});
      ++queued;
    }
  }
  Normalize(&result, /*merge_siblings=*/false);
  return result;
}

std::vector<CellId> Coverer::InteriorCovering(
    const CovererOptions& opts) const {
  ACT_CHECK(opts.max_cells >= 1);
  std::vector<CellId> result;
  CandidateQueue queue;
  size_t queued = 0;
  for (const CellId& seed : SeedCells(opts.max_level)) {
    RegionRelation rel = Classify(seed);
    if (rel == RegionRelation::kDisjoint) continue;
    queue.push({seed, rel});
    ++queued;
  }
  while (!queue.empty()) {
    Candidate c = queue.top();
    queue.pop();
    --queued;
    if (c.relation == RegionRelation::kContained) {
      result.push_back(c.cell);
      continue;
    }
    // Boundary cell: subdivide while budget and level allow, else drop.
    int level = c.cell.level();
    bool budget_ok =
        result.size() + queued + 4 <= static_cast<size_t>(opts.max_cells);
    if (level >= opts.max_level || c.cell.is_leaf() || !budget_ok) continue;
    for (int k = 0; k < 4; ++k) {
      CellId child = c.cell.child(k);
      RegionRelation rel = Classify(child);
      if (rel == RegionRelation::kDisjoint) continue;
      queue.push({child, rel});
      ++queued;
    }
  }
  Normalize(&result, /*merge_siblings=*/true);
  return result;
}

std::vector<CellId> ComputeCovering(const geom::Polygon& poly,
                                    const geo::Grid& grid,
                                    const CovererOptions& opts) {
  return Coverer(poly, grid).Covering(opts);
}

std::vector<CellId> ComputeInteriorCovering(const geom::Polygon& poly,
                                            const geo::Grid& grid,
                                            const CovererOptions& opts) {
  return Coverer(poly, grid).InteriorCovering(opts);
}

}  // namespace actjoin::cover
