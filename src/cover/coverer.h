// Quadtree cell approximation of polygons (paper Sec. 2, "Polygon
// Approximations").
//
// Computes the two per-polygon inputs of the super covering build:
//   * Covering: cells that together contain the polygon. Boundary-straddling
//     cells are subdivided best-first until the max_cells budget or
//     max_level is reached.
//   * Interior covering: cells fully inside the polygon (true-hit cells).
//
// The paper's default configuration (Sec. 4) is max covering cells = 128,
// max covering level = 30, max interior cells = 256, max interior level =
// 20; those are the defaults here.

#ifndef ACTJOIN_COVER_COVERER_H_
#define ACTJOIN_COVER_COVERER_H_

#include <memory>
#include <vector>

#include "geo/cell_id.h"
#include "geo/grid.h"
#include "geometry/edge_grid.h"
#include "geometry/polygon.h"

namespace actjoin::cover {

struct CovererOptions {
  int max_cells = 128;
  int max_level = geo::CellId::kMaxLevel;
  int min_level = 0;
};

/// Per-polygon coverer. Uses an edge-grid accelerator so repeated covering
/// calls (covering + interior covering + later refinement) stay cheap.
class Coverer {
 public:
  /// Builds and owns an edge grid for the polygon.
  Coverer(const geom::Polygon& poly, const geo::Grid& grid);

  /// Reuses an externally owned edge grid (must outlive the coverer).
  Coverer(const geom::EdgeGrid& edges, const geo::Grid& grid);

  /// Cells whose union contains the polygon. Result is normalized (sorted,
  /// disjoint) and respects opts.max_cells / max_level.
  std::vector<geo::CellId> Covering(const CovererOptions& opts) const;

  /// Cells fully contained in the polygon (may be empty for thin polygons).
  /// Result is normalized and respects opts.max_cells / max_level.
  std::vector<geo::CellId> InteriorCovering(const CovererOptions& opts) const;

  /// Relation of one cell to the polygon, via the edge-grid accelerator.
  geom::RegionRelation Classify(const geo::CellId& cell) const;

  const geom::EdgeGrid& edge_grid() const { return *edges_; }

 private:
  /// Seed cells: the smallest single cell (at most max_level) containing
  /// the polygon's MBR, or the intersecting face cells when the MBR spans
  /// faces.
  std::vector<geo::CellId> SeedCells(int max_level) const;

  const geom::Polygon* poly_;
  const geo::Grid* grid_;
  std::unique_ptr<geom::EdgeGrid> owned_edges_;
  const geom::EdgeGrid* edges_;
};

/// Convenience wrappers constructing a transient Coverer.
std::vector<geo::CellId> ComputeCovering(const geom::Polygon& poly,
                                         const geo::Grid& grid,
                                         const CovererOptions& opts);
std::vector<geo::CellId> ComputeInteriorCovering(const geom::Polygon& poly,
                                                 const geo::Grid& grid,
                                                 const CovererOptions& opts);

}  // namespace actjoin::cover

#endif  // ACTJOIN_COVER_COVERER_H_
