// Thin POSIX socket helpers for the network front-end: RAII fd ownership
// plus the handful of TCP setup / full-buffer I/O calls the server and
// client share. Everything reports errors by string (errno text attached)
// instead of exceptions, matching the library's no-throw convention.

#ifndef ACTJOIN_NET_SOCKET_H_
#define ACTJOIN_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

namespace actjoin::net {

/// Move-only owner of a file descriptor; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(UniqueFd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      Reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void Reset();

 private:
  int fd_ = -1;
};

/// Appends ": <strerror(errno)>" to a message.
std::string ErrnoMessage(const std::string& prefix);

bool SetNonBlocking(int fd, std::string* error);

/// Nonblocking IPv4 listener on host:port (port 0 => kernel-chosen
/// ephemeral port, reported via *bound_port). Invalid UniqueFd + *error on
/// failure.
UniqueFd ListenTcp(const std::string& host, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error);

/// Blocking IPv4 connect with TCP_NODELAY (the client writes one frame and
/// waits; Nagle would add a spurious RTT).
UniqueFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error);

/// Blocking write of the whole buffer (retries short writes and EINTR).
bool SendAll(int fd, const uint8_t* data, size_t n, std::string* error);

/// Blocking read of exactly n bytes; a clean peer close mid-buffer is an
/// error ("connection closed").
bool RecvAll(int fd, uint8_t* data, size_t n, std::string* error);

/// The connected peer's IPv4 address, "a.b.c.d" or "a.b.c.d:port" —
/// the admission controller's per-peer bucket key. "unknown" when
/// getpeername fails (the connection is dying anyway; a shared fallback
/// bucket beats dropping the request on the floor).
std::string PeerAddress(int fd, bool include_port);

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_SOCKET_H_
