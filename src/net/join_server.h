// JoinServer: the Linux epoll network front-end over service::JoinService.
//
// Architecture — a small I/O thread pool, each thread owning one epoll
// instance and a disjoint set of connections (no connection is ever touched
// by two I/O threads, so connection state needs no locks):
//
//   * Thread 0 additionally owns the nonblocking listener; accepted
//     sockets are handed to a thread round-robin through a mutex-protected
//     inbox + eventfd wakeup.
//   * Reads are nonblocking and incremental: bytes accumulate per
//     connection until TryParseFrame yields a complete frame, so slow or
//     pipelining clients never stall the loop.
//   * A decoded JOIN_BATCH passes admission control
//     (net::AdmissionController) and then JoinService::TrySubmitAsync —
//     both non-blocking by contract. The completion hook runs on the
//     service worker that executed the join; it encodes the response and
//     posts it back to the connection's owner thread, which writes it out.
//     The event loop itself never waits on a join.
//   * Every rejection (admission knob, queue full, shutting down) is a
//     typed ERROR response on the same connection; the connection is
//     closed only for errors that desynchronize the byte stream.
//
// PING answers from the event loop directly (a liveness probe must not sit
// behind joins), STATS serializes JoinService stats with the admission
// reject counters overlaid, and SHUTDOWN acks and raises a flag the
// embedding process observes via WaitShutdownRequested() — the server
// never tears itself down from inside an I/O thread.

#ifndef ACTJOIN_NET_JOIN_SERVER_H_
#define ACTJOIN_NET_JOIN_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "join2/dataset_cross_matcher.h"
#include "net/admission.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"
#include "service/subscription_matcher.h"
#include "util/timer.h"

namespace actjoin::net {

/// How connections map onto admission-control peer buckets. kIp groups
/// every connection from one host (a client cannot escape its bucket by
/// reconnecting); kIpPort gives each connection its own bucket — the knob
/// tests use to tell loopback clients apart, and the right choice behind
/// a NAT that folds many tenants into one IP.
enum class PeerKeyPolicy : uint8_t { kIp = 0, kIpPort };

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 => kernel-chosen ephemeral port (read it back with port()).
  uint16_t port = 0;
  /// Event-loop threads; clamped to >= 1. Loopback serving saturates on
  /// 1-2 threads — the joins, not the socket I/O, are the work.
  int io_threads = 2;
  /// Frames larger than this are a protocol error (kFrameTooLarge).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  AdmissionPolicy admission;
  PeerKeyPolicy peer_key = PeerKeyPolicy::kIp;
  /// Standing-query caps (v6). A connection may hold at most this many
  /// subscriptions; the next SUBSCRIBE answers kSubscriptionLimit.
  size_t max_subscriptions_per_connection = 64;
  /// Bound on EVENT frames queued per connection. A slow reader overflows
  /// by losing its *oldest* queued event frames (responses are never
  /// dropped), each loss coalescing into one EVENT_GAP marker per
  /// subscription that later drops widen in place while it is unsent —
  /// so the outbox stays bounded under sustained overflow and the event
  /// loop never blocks on a push channel.
  size_t event_outbox_frames = 256;
};

/// Transport-level counters (distinct from ServiceStats, which counts
/// requests): exposed for tests and ops logging.
struct ServerCounters {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_received = 0;
  uint64_t responses_sent = 0;
  uint64_t protocol_errors = 0;
  /// Push-channel delivery (v6): events enqueued to connection outboxes,
  /// and events discarded by the bounded-outbox overflow policy.
  uint64_t events_pushed = 0;
  uint64_t events_dropped = 0;
  /// EVENT_GAP markers queued by the overflow policy (v6; each marker may
  /// cover many dropped events — the count of holes, not their width).
  uint64_t gap_frames = 0;
};

class JoinServer {
 public:
  /// `service` must outlive the server and stay un-Shutdown() while the
  /// server is running (a shut-down service turns joins into typed
  /// kShuttingDown rejections, which is also fine).
  explicit JoinServer(service::JoinService* service,
                      const ServerOptions& opts = {});

  JoinServer(const JoinServer&) = delete;
  JoinServer& operator=(const JoinServer&) = delete;

  /// Stop()s if still running.
  ~JoinServer();

  /// Binds, listens, and launches the I/O threads. False + *error on bind
  /// failure. Not restartable after Stop().
  bool Start(std::string* error = nullptr);

  /// Drains in-flight joins (their responses still go out), then joins the
  /// I/O threads and closes every connection. Idempotent.
  void Stop();

  /// The bound port (after a successful Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return opts_.host; }

  /// True once a SHUTDOWN request was received (or RequestShutdown() was
  /// called in-process). The embedding process reacts by calling Stop().
  bool shutdown_requested() const;
  void WaitShutdownRequested();
  void RequestShutdown();

  /// Service stats with the admission-control reject counters overlaid
  /// (the payload of a STATS response).
  service::ServiceStats StatsWithAdmission() const;

  AdmissionController::Counters admission_counters() const {
    return admission_.counters();
  }
  ServerCounters counters() const;

 private:
  struct Connection;
  struct IoThread;

  void IoLoop(int t);
  void AcceptNewConnections(IoThread& io);
  void ProcessInbox(int t, IoThread& io);
  /// Reads until EAGAIN, then parses and dispatches every complete frame.
  void HandleReadable(int t, IoThread& io, Connection& conn);
  void ParseFrames(int t, IoThread& io, Connection& conn);
  void DispatchFrame(int t, IoThread& io, Connection& conn,
                     const FrameHeader& header,
                     std::span<const uint8_t> payload);
  void HandleJoinBatch(int t, IoThread& io, Connection& conn,
                       const FrameHeader& header,
                       std::span<const uint8_t> payload);
  /// ADD_POLYGONS / REMOVE_POLYGONS / DROP_DATASET: same admission and
  /// drain discipline as joins, but routed through TryMutateAsync so the
  /// clone-on-write apply runs on a service worker, never the epoll loop.
  /// A mutation that fails after admission refunds its rate token and
  /// bytes exactly once (it caused no index work).
  void HandleMutation(int t, IoThread& io, Connection& conn,
                      const FrameHeader& header,
                      std::span<const uint8_t> payload);
  /// JOIN_DATASETS (v5): admission + drain discipline of HandleJoinBatch,
  /// routed through DatasetCrossMatcher::TryCrossMatchAsync. The
  /// completion hook encodes the result as a stream of PAIR_RESULT chunks
  /// and posts them, in order, to the connection's owner thread (the
  /// per-thread inbox preserves delivery order, so chunks cannot
  /// interleave or reorder). Typed rejects name the offending side.
  void HandleJoinDatasets(int t, IoThread& io, Connection& conn,
                          const FrameHeader& header,
                          std::span<const uint8_t> payload);
  /// SUBSCRIBE (v6): registers a standing geofence query with the
  /// subscription matcher, entirely on the event loop (no service work).
  /// The admission bytes stay charged for the subscription's lifetime — a
  /// standing query holds resources, so it holds its admission too.
  void HandleSubscribe(int t, IoThread& io, Connection& conn,
                       const FrameHeader& header,
                       std::span<const uint8_t> payload);
  void HandleUnsubscribe(IoThread& io, Connection& conn,
                         const FrameHeader& header,
                         std::span<const uint8_t> payload);
  /// Appends a response and flushes as much as the socket accepts.
  void QueueResponse(IoThread& io, Connection& conn,
                     std::vector<uint8_t> frame);
  /// Appends one EVENT frame, applying the bounded-outbox overflow policy
  /// first (drop-oldest event frame + coalesced EVENT_GAP; never blocks,
  /// never drops a response frame).
  void QueueEvent(IoThread& io, Connection& conn,
                  service::EventBatch&& batch);
  /// Emits the coalesced EVENT_GAP for `sub` if overflow recorded one, so
  /// the hole is announced before that subscription's next event (or its
  /// unsubscribe ack).
  void FlushPendingGap(Connection& conn, uint64_t sub);
  /// Unregisters every subscription the connection holds and returns its
  /// admission bytes (connection teardown).
  void ReleaseSubscriptions(Connection& conn);
  /// Writes queued bytes; arms/disarms EPOLLOUT as needed. False when the
  /// connection died mid-write.
  bool FlushWrites(IoThread& io, Connection& conn);
  void CloseConnection(IoThread& io, uint64_t conn_id);
  /// Loop-exit path: gives a slow reader a short, bounded chance (blocking
  /// send with a timeout) to take responses still queued on a connection,
  /// so Stop() does not silently drop an admitted join's reply.
  void FlushPendingBlocking(Connection& conn);
  void UpdateEpollInterest(IoThread& io, Connection& conn, bool want_write);
  /// Posts a completed join response to the connection's owner thread
  /// (called from service worker threads).
  void DeliverAsync(int t, uint64_t conn_id, std::vector<uint8_t> frame);
  /// Posts a pushed event batch to the connection's owner thread (called
  /// from the service workers that ran the triggering point batch or
  /// epoch swap — the eventfd wake is the only cross-thread signal).
  void DeliverEventAsync(int t, uint64_t conn_id, service::EventBatch batch);
  void WakeThread(IoThread& io);

  service::JoinService* service_;
  ServerOptions opts_;
  AdmissionController admission_;
  /// Serves JOIN_DATASETS against the service's catalog (registers its
  /// crossmatch instruments into the service's metrics registry).
  join2::DatasetCrossMatcher matcher_;
  /// Standing geofence queries (v6). The constructor attaches this to the
  /// service (set_subscription_matcher), so join workers feed it point
  /// batches and mutations notify epoch swaps; Stop() detaches it before
  /// tearing down the loops its sinks deliver into.
  service::SubscriptionMatcher subscriptions_;

  UniqueFd listener_;
  uint16_t port_ = 0;
  std::vector<std::unique_ptr<IoThread>> io_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};  // joins rejected, loops still flush
  bool started_ = false;               // guarded by lifecycle_mu_
  bool stopped_ = false;
  std::mutex lifecycle_mu_;

  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<uint32_t> next_thread_{0};

  /// Joins admitted but whose completion hook has not finished delivering.
  /// Stop() waits for this to hit zero before tearing down the threads the
  /// hooks deliver into — so the service must be draining (running or
  /// Shutdown(), which drains synchronously) when Stop() is called.
  uint64_t inflight_joins_ = 0;  // guarded by inflight_mu_
  mutable std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;

  mutable std::mutex shutdown_mu_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;

  /// Net-level kShuttingDown rejections (server stopping; the service's
  /// own counter only sees submits that reached its closed queue).
  std::atomic<uint64_t> rejected_stopping_{0};
  /// JOIN_BATCH frames naming a dataset id the catalog never assigned
  /// (rejected at the event loop, before admission — the service never
  /// sees them).
  std::atomic<uint64_t> rejected_unknown_dataset_{0};

  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_received_{0};
  std::atomic<uint64_t> responses_sent_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  /// Push-channel delivery counters (v6); see ServerCounters.
  std::atomic<uint64_t> events_pushed_{0};
  std::atomic<uint64_t> events_dropped_{0};
  /// EVENT_GAP markers queued (widening an unsent marker in place does
  /// not count again — the metric counts holes announced, not rewrites).
  std::atomic<uint64_t> gap_frames_{0};
  /// EVENT frames currently queued across every connection's outbox (the
  /// droppable ones), exported as the push-path depth gauge. Decremented
  /// wherever a frame leaves an outbox: flushed, dropped by the overflow
  /// policy, or destroyed with its connection.
  std::atomic<int64_t> event_outbox_depth_{0};
  /// Per-connection outbox dwell of fully-flushed EVENT frames; null when
  /// metrics are disabled.
  util::Histogram* event_delivery_lag_us_ = nullptr;
  /// Clock for OutFrame birth stamps (delivery-lag measurement).
  util::WallTimer uptime_timer_;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_JOIN_SERVER_H_
