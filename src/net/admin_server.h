// AdminServer: the process's observability plane, one HTTP/1.1 endpoint
// on its own port and threads — deliberately not a route on the binary
// wire protocol. Operators, Prometheus, and load balancers speak HTTP;
// making them learn ACTJ framing (or making the data-plane epoll loops
// parse HTTP) would couple the two planes that must fail independently:
// a wedged join queue should never take /healthz down with it.
//
// The server is intentionally minimal: GET only, one request per
// connection (Connection: close, Content-Length framing, no keep-alive,
// no TLS, no chunked encoding). Every route renders from lock-free or
// snapshot-style reads of the serving stack, so a scrape never blocks a
// join.
//
// Routes:
//   /metrics   Prometheus text exposition (MetricsRegistry renderer).
//   /healthz   liveness: 200 once Start() succeeded.
//   /readyz    readiness: 200 iff at least one catalog dataset is
//              servable (published snapshot, not tombstoned) — the
//              warm-restart boot path flips this when the first dataset
//              publishes.
//   /statusz   human-readable: uptime, build info, service stats,
//              per-dataset epochs, hardware stage counters, and (when a
//              JoinServer is attached) wire-layer + admission counters.
//   /tracez    slow-query ring (top-K by service time) + the structured
//              event log.
//   /profilez  ?seconds=N (clamped): runs the sampling CPU profiler and
//              returns collapsed stacks; 503 where SIGPROF profiling is
//              unsupported. Concurrent requests serialize inside
//              CpuProfiler rather than erroring.
//
// Unknown paths 404; non-GET methods 405 with Allow: GET.

#ifndef ACTJOIN_NET_ADMIN_SERVER_H_
#define ACTJOIN_NET_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "service/join_service.h"

namespace actjoin::net {

class JoinServer;

struct AdminOptions {
  std::string host = "127.0.0.1";
  /// 0 = kernel-chosen ephemeral port (tests); read it back via port().
  uint16_t port = 0;
  /// Accept/handle threads. Two keeps a long /profilez from starving
  /// /healthz; scrapes are rare enough that more buys nothing.
  int workers = 2;
  /// Upper clamp for /profilez?seconds=N. Bounds how long one HTTP
  /// request can pin a worker thread.
  double max_profile_seconds = 30.0;
  /// Sampling frequency handed to CpuProfiler.
  int profile_hz = 200;
};

class AdminServer {
 public:
  /// `service` must outlive the server. `server` (optional) adds the
  /// wire-layer view — admission + connection + push-channel counters —
  /// to /statusz; it too must outlive the AdminServer when given.
  explicit AdminServer(service::JoinService* service,
                       const AdminOptions& opts = {},
                       JoinServer* server = nullptr);

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Stop()s if still running.
  ~AdminServer();

  /// Binds, listens, launches the worker threads. False + *error on bind
  /// failure. Not restartable after Stop().
  bool Start(std::string* error = nullptr);

  /// Joins the workers and closes the listener. In-flight requests finish
  /// (a running /profilez completes its window). Idempotent.
  void Stop();

  /// The bound port (after a successful Start()).
  uint16_t port() const { return port_; }
  const std::string& host() const { return opts_.host; }

  /// Route dispatch without the socket: returns the full HTTP response
  /// bytes for a request line. Exposed for tests that want to hit every
  /// route without standing up real connections.
  std::string HandleRequest(const std::string& method,
                            const std::string& target) const;

 private:
  void WorkerLoop();
  /// Reads one request (bounded size, bounded time), writes one response,
  /// closes. All failure modes just drop the connection.
  void ServeConnection(int fd) const;

  std::string RouteMetrics() const;
  std::string RouteReadyz() const;
  std::string RouteStatusz() const;
  std::string RouteTracez() const;
  std::string RouteProfilez(const std::string& query) const;

  service::JoinService* service_;
  JoinServer* server_;
  AdminOptions opts_;
  UniqueFd listener_;
  uint16_t port_ = 0;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_ADMIN_SERVER_H_
