// Admission control for the network front-end: a first-class policy
// object, not an emergent property of queue sizing.
//
// Queue-full rejection alone sheds load only after the queue has already
// soaked up latency; the ROADMAP asks for admission control *beyond* that.
// AdmissionController evaluates three independent knobs at the door, before
// a request touches the service queue:
//
//   * token-bucket rate limit (requests/s with a burst allowance) — caps
//     sustained request rate per server,
//   * max in-flight bytes — caps the memory a flood of giant batches can
//     pin between admission and response completion,
//   * queue-depth watermark — sheds early, at a fraction of the service
//     queue's capacity, so latency-sensitive traffic keeps a short queue.
//
// A rejection is typed (which knob fired) so the wire layer can answer
// with the matching error code instead of blocking or dropping the
// connection, and each reason keeps its own counter for the STATS request.
//
// Thread safety: one mutex; TryAdmit/Release cost a few dozen ns per
// *request* (not per point), invisible next to a join.

#ifndef ACTJOIN_NET_ADMISSION_H_
#define ACTJOIN_NET_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace actjoin::net {

struct AdmissionPolicy {
  /// Sustained JOIN_BATCH admissions per second; 0 disables the limit.
  double rate_limit_qps = 0;
  /// Token-bucket depth (instantaneous burst allowance); <= 0 means
  /// max(1, rate_limit_qps).
  double rate_burst = 0;
  /// Cap on total payload bytes admitted but not yet completed; 0 disables.
  /// A single request larger than the cap is always rejected.
  size_t max_in_flight_bytes = 0;
  /// Reject when the service queue is deeper than this fraction of its
  /// capacity ((0, 1]); 0 disables. Strictly stronger than queue-full:
  /// it sheds while TrySubmit would still succeed.
  double queue_watermark = 0;
};

enum class Admission : uint8_t {
  kAdmitted = 0,
  kRateLimited,
  kInFlightBytes,
  kQueueWatermark,
};

const char* ToString(Admission verdict);

class AdmissionController {
 public:
  struct Counters {
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
    uint64_t inflight_bytes = 0;
    uint64_t queue_watermark = 0;
    /// Admissions rolled back via Refund (the request never did work).
    uint64_t refunded = 0;

    uint64_t TotalRejected() const {
      return rate_limited + inflight_bytes + queue_watermark;
    }
  };

  /// `queue_capacity` is the service queue's capacity, used to turn the
  /// watermark fraction into an absolute depth threshold.
  AdmissionController(const AdmissionPolicy& policy, size_t queue_capacity);

  /// Checks all knobs; on kAdmitted the request's bytes are reserved
  /// against the in-flight budget (pair with exactly one Release). Checks
  /// run cheapest-recovery-first — watermark, then bytes, then rate — so a
  /// request bounced by load does not also burn a rate token.
  Admission TryAdmit(size_t request_bytes, size_t queue_depth);

  /// Returns an admitted request's bytes to the budget; call when its
  /// response is complete. The rate token stays consumed — the request
  /// did real work (this is also the right call for malformed payloads:
  /// a flood of garbage should still be rate-limited).
  void Release(size_t request_bytes);

  /// Rolls back an admission whose request did *no* work because this
  /// server refused it after the fact (service queue full, shutting
  /// down): returns the bytes like Release and re-credits the rate token
  /// TryAdmit consumed, so a queue-full burst cannot drain the bucket
  /// and double-penalize clients. Pair with exactly one kAdmitted, in
  /// place of (never in addition to) Release.
  void Refund(size_t request_bytes);

  Counters counters() const;
  size_t in_flight_bytes() const;
  const AdmissionPolicy& policy() const { return policy_; }

 private:
  using Clock = std::chrono::steady_clock;

  AdmissionPolicy policy_;
  size_t queue_threshold_;  // absolute depth; SIZE_MAX when disabled

  mutable std::mutex mu_;
  double tokens_;
  Clock::time_point last_refill_;
  size_t in_flight_bytes_ = 0;
  Counters counters_;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_ADMISSION_H_
