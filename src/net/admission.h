// Admission control for the network front-end: a first-class policy
// object, not an emergent property of queue sizing.
//
// Queue-full rejection alone sheds load only after the queue has already
// soaked up latency; the ROADMAP asks for admission control *beyond* that.
// AdmissionController evaluates three independent knobs at the door, before
// a request touches the service queue:
//
//   * token-bucket rate limit (requests/s with a burst allowance) — since
//     the bucket is sharded by peer key, this caps each *client's*
//     sustained rate: one greedy client drains its own bucket and is
//     rejected while every other peer's bucket stays full (a global bucket
//     let one flood starve everyone),
//   * max in-flight bytes — caps the memory a flood of giant batches can
//     pin between admission and response completion (global: memory is a
//     per-server resource, not a per-client one),
//   * queue-depth watermark — sheds early, at a fraction of the service
//     queue's capacity, so latency-sensitive traffic keeps a short queue
//     (global, for the same reason).
//
// A rejection is typed (which knob fired) so the wire layer can answer
// with the matching error code instead of blocking or dropping the
// connection, and each reason keeps its own counter — globally and per
// peer — for the STATS request.
//
// The peer key is an opaque string chosen by the caller (the server uses
// the peer IP, or IP:port under PeerKeyPolicy::kIpPort); "" is a valid key
// (one shared bucket), which is what single-tenant callers and the unit
// tests use. Buckets are created on first sight; the population is capped
// at AdmissionPolicy::max_peer_buckets, with the longest-idle bucket
// evicted at the cap. Under the default per-IP keying a reconnecting
// flooder lands back in its own (possibly drained) bucket; kIpPort trades
// that stickiness for per-connection isolation, which is why it is the
// NAT/test knob, not the default.
//
// Thread safety: one mutex; TryAdmit/Release cost a few dozen ns per
// *request* (not per point), invisible next to a join.

#ifndef ACTJOIN_NET_ADMISSION_H_
#define ACTJOIN_NET_ADMISSION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "service/service_stats.h"

namespace actjoin::net {

struct AdmissionPolicy {
  /// Sustained JOIN_BATCH admissions per second *per peer key*; 0 disables
  /// the limit.
  double rate_limit_qps = 0;
  /// Token-bucket depth per peer (instantaneous burst allowance); <= 0
  /// means max(1, rate_limit_qps).
  double rate_burst = 0;
  /// Cap on total payload bytes admitted but not yet completed, across all
  /// peers; 0 disables. A single request larger than the cap is always
  /// rejected.
  size_t max_in_flight_bytes = 0;
  /// Reject when the service queue is deeper than this fraction of its
  /// capacity ((0, 1]); 0 disables. Strictly stronger than queue-full:
  /// it sheds while TrySubmit would still succeed.
  double queue_watermark = 0;
  /// Cap on tracked peer buckets (clamped to >= 1). At the cap, a new
  /// peer evicts the longest-idle bucket, so memory and the STATS
  /// per-peer table stay bounded on a long-running server no matter how
  /// many distinct peers (or, under PeerKeyPolicy::kIpPort, ephemeral
  /// ports) it has seen. Global counters are unaffected by eviction;
  /// only the evicted peer's *split* is forgotten.
  size_t max_peer_buckets = 1024;
};

enum class Admission : uint8_t {
  kAdmitted = 0,
  kRateLimited,
  kInFlightBytes,
  kQueueWatermark,
};

const char* ToString(Admission verdict);

class AdmissionController {
 public:
  struct Counters {
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
    uint64_t inflight_bytes = 0;
    uint64_t queue_watermark = 0;
    /// Admissions rolled back via Refund (the request never did work).
    uint64_t refunded = 0;

    uint64_t TotalRejected() const {
      return rate_limited + inflight_bytes + queue_watermark;
    }
  };

  /// `queue_capacity` is the service queue's capacity, used to turn the
  /// watermark fraction into an absolute depth threshold.
  AdmissionController(const AdmissionPolicy& policy, size_t queue_capacity);

  /// Checks all knobs; on kAdmitted the request's bytes are reserved
  /// against the in-flight budget (pair with exactly one Release or
  /// Refund). Checks run cheapest-recovery-first — watermark, then bytes,
  /// then the peer's rate bucket — so a request bounced by load does not
  /// also burn a rate token.
  Admission TryAdmit(size_t request_bytes, size_t queue_depth,
                     std::string_view peer = "");

  /// Returns an admitted request's bytes to the budget; call when its
  /// response is complete. The rate token stays consumed — the request
  /// did real work (this is also the right call for malformed payloads:
  /// a flood of garbage should still be rate-limited).
  void Release(size_t request_bytes);

  /// Rolls back an admission whose request did *no* work because this
  /// server refused it after the fact (service queue full, shutting
  /// down): returns the bytes like Release and re-credits the rate token
  /// TryAdmit consumed from `peer`'s bucket, so a queue-full burst cannot
  /// drain the bucket and double-penalize that client. Pair with exactly
  /// one kAdmitted, in place of (never in addition to) Release.
  void Refund(size_t request_bytes, std::string_view peer = "");

  Counters counters() const;
  /// Per-peer admitted / rate-limited splits, sorted by peer key (the
  /// STATS overlay). Empty until the first TryAdmit.
  std::vector<service::PeerAdmissionStats> PerPeer() const;
  size_t in_flight_bytes() const;
  const AdmissionPolicy& policy() const { return policy_; }

  /// Registers the controller's counters (global splits + per-peer
  /// families) into `registry` as collection-time callbacks; the
  /// controller must outlive collections.
  void RegisterMetrics(util::MetricsRegistry* registry) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PeerBucket {
    double tokens = 0;
    Clock::time_point last_refill;
    uint64_t admitted = 0;
    uint64_t rate_limited = 0;
  };

  /// Finds or creates the peer's bucket (created full: the first burst is
  /// free). Caller holds mu_.
  PeerBucket& BucketFor(std::string_view peer);

  /// Heterogeneous lookup: the per-request path probes the map with the
  /// caller's string_view directly — no temporary std::string allocation
  /// under the admission mutex.
  struct PeerHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  AdmissionPolicy policy_;
  size_t queue_threshold_;  // absolute depth; SIZE_MAX when disabled

  mutable std::mutex mu_;
  std::unordered_map<std::string, PeerBucket, PeerHash, std::equal_to<>>
      buckets_;
  size_t in_flight_bytes_ = 0;
  Counters counters_;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_ADMISSION_H_
