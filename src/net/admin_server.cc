#include "net/admin_server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "net/join_server.h"
#include "net/wire.h"
#include "service/service_catalog.h"
#include "service/service_stats.h"
#include "service/slow_query_log.h"
#include "service/trace.h"
#include "util/cpu_profiler.h"
#include "util/metrics.h"

namespace actjoin::net {

namespace {

/// One request must fit in this; HTTP scrapers send a few hundred bytes.
constexpr size_t kMaxRequestBytes = 8 * 1024;
/// A client that connects and then trickles its request line gets this
/// long before the worker gives up on it.
constexpr int kReadTimeoutSecs = 5;
/// Poll interval of the accept loop; bounds Stop() latency.
constexpr int kAcceptPollMs = 100;

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string MakeResponse(int code, const std::string& content_type,
                         const std::string& body,
                         const std::string& extra_headers = {}) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " +
                    ReasonPhrase(code) + "\r\n";
  out += "Content-Type: " + content_type + "\r\n";
  out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  out += extra_headers;
  out += "Connection: close\r\n\r\n";
  out += body;
  return out;
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  int n = vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                                  ? static_cast<size_t>(n)
                                  : sizeof(buf) - 1);
}

/// Value of `key=` in an HTTP query string, or "" when absent.
std::string QueryParam(const std::string& query, const std::string& key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string piece = query.substr(pos, amp - pos);
    const size_t eq = piece.find('=');
    if (eq != std::string::npos && piece.substr(0, eq) == key) {
      return piece.substr(eq + 1);
    }
    pos = amp + 1;
  }
  return {};
}

}  // namespace

AdminServer::AdminServer(service::JoinService* service,
                         const AdminOptions& opts, JoinServer* server)
    : service_(service), server_(server), opts_(opts) {
  if (opts_.workers < 1) opts_.workers = 1;
  if (opts_.max_profile_seconds < 0.05) opts_.max_profile_seconds = 0.05;
}

AdminServer::~AdminServer() { Stop(); }

bool AdminServer::Start(std::string* error) {
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "admin server already running";
    return false;
  }
  listener_ = ListenTcp(opts_.host, opts_.port, /*backlog=*/16, &port_, error);
  if (!listener_.valid()) return false;
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  listener_.Reset();
}

void AdminServer::WorkerLoop() {
  // Every worker polls the shared nonblocking listener; whoever wins the
  // accept race serves the connection, the others see EAGAIN and re-poll.
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listener_.get();
    pfd.events = POLLIN;
    const int rc = poll(&pfd, 1, kAcceptPollMs);
    if (rc <= 0) continue;  // timeout or EINTR: re-check stop_
    const int fd = accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) continue;  // EAGAIN (lost the race) or transient error
    ServeConnection(fd);
    close(fd);
  }
}

void AdminServer::ServeConnection(int fd) const {
  // The accepted socket is blocking (O_NONBLOCK does not inherit across
  // accept); a receive timeout bounds a client that stalls mid-request.
  timeval tv{};
  tv.tv_sec = kReadTimeoutSecs;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  std::string request;
  char buf[1024];
  while (request.find("\r\n\r\n") == std::string::npos) {
    if (request.size() >= kMaxRequestBytes) return;  // oversized: drop
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return;  // closed, timed out, or errored: drop
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP TARGET SP VERSION CRLF. Headers are read (to
  // drain the request) but ignored — no route needs them.
  const size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) return;  // malformed: drop
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);

  const std::string response = HandleRequest(method, target);
  std::string error;
  SendAll(fd, reinterpret_cast<const uint8_t*>(response.data()),
          response.size(), &error);
}

std::string AdminServer::HandleRequest(const std::string& method,
                                       const std::string& target) const {
  if (method != "GET") {
    return MakeResponse(405, "text/plain; charset=utf-8",
                        "method not allowed\n", "Allow: GET\r\n");
  }
  const size_t q = target.find('?');
  const std::string path = target.substr(0, q);
  const std::string query =
      q == std::string::npos ? std::string() : target.substr(q + 1);

  if (path == "/metrics") {
    return MakeResponse(200, "text/plain; version=0.0.4; charset=utf-8",
                        RouteMetrics());
  }
  if (path == "/healthz") {
    return MakeResponse(200, "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/readyz") {
    const std::string body = RouteReadyz();
    return MakeResponse(body == "ready\n" ? 200 : 503,
                        "text/plain; charset=utf-8", body);
  }
  if (path == "/statusz") {
    return MakeResponse(200, "text/plain; charset=utf-8", RouteStatusz());
  }
  if (path == "/tracez") {
    return MakeResponse(200, "text/plain; charset=utf-8", RouteTracez());
  }
  if (path == "/profilez") {
    if (!util::CpuProfiler::Supported()) {
      return MakeResponse(503, "text/plain; charset=utf-8",
                          "cpu profiling unsupported on this platform\n");
    }
    return MakeResponse(
        200, "text/plain; charset=utf-8", RouteProfilez(query),
        "X-Profile-Samples: " +
            std::to_string(util::CpuProfiler::last_sample_count()) + "\r\n");
  }
  return MakeResponse(404, "text/plain; charset=utf-8", "not found\n");
}

std::string AdminServer::RouteMetrics() const {
  return service_->metrics()->RenderPrometheus();
}

std::string AdminServer::RouteReadyz() const {
  for (const service::DatasetInfo& ds : service_->catalog().List()) {
    if (ds.epoch != 0 && !ds.dropped) return "ready\n";
  }
  return "no servable dataset\n";
}

std::string AdminServer::RouteStatusz() const {
  const service::ServiceStats stats =
      server_ != nullptr ? server_->StatsWithAdmission() : service_->Stats();
  std::string out;
  AppendF(&out, "actjoin statusz\n");
  AppendF(&out, "build: wire v%u, %s, %s\n",
          static_cast<unsigned>(kWireVersion), __VERSION__,
#ifdef NDEBUG
          "release"
#else
          "debug"
#endif
  );
  AppendF(&out, "uptime_s: %.1f\n", stats.uptime_s);
  AppendF(&out, "\n[service]\n");
  AppendF(&out, "completed_requests: %llu\n",
          static_cast<unsigned long long>(stats.completed_requests));
  AppendF(&out, "rejected_requests: %llu\n",
          static_cast<unsigned long long>(stats.rejected_requests));
  AppendF(&out, "queue_depth: %zu\n", stats.queue_depth);
  AppendF(&out, "qps: %.1f\n", stats.qps);
  AppendF(&out, "points_per_s: %.0f\n", stats.points_per_s);
  AppendF(&out, "service_ms p50/p99/p999: %.3f / %.3f / %.3f\n",
          stats.service_p50_ms, stats.service_p99_ms, stats.service_p999_ms);
  AppendF(&out, "queue_wait_ms p50/p99/p999: %.3f / %.3f / %.3f\n",
          stats.queue_wait_p50_ms, stats.queue_wait_p99_ms,
          stats.queue_wait_p999_ms);
  AppendF(&out, "mutations_applied: %llu  rejected_mutations: %llu\n",
          static_cast<unsigned long long>(stats.mutations_applied),
          static_cast<unsigned long long>(stats.rejected_mutations));
  AppendF(&out, "cache_hits: %llu  cache_misses: %llu\n",
          static_cast<unsigned long long>(stats.cache_hits),
          static_cast<unsigned long long>(stats.cache_misses));

  AppendF(&out, "\n[datasets]\n");
  for (const service::DatasetInfo& ds : service_->catalog().List()) {
    AppendF(&out, "  %u %s epoch=%llu polygons=%llu shards=%u%s\n",
            static_cast<unsigned>(ds.id), ds.name.c_str(),
            static_cast<unsigned long long>(ds.epoch),
            static_cast<unsigned long long>(ds.num_polygons), ds.num_shards,
            ds.dropped ? " DROPPED" : "");
  }

  const service::JoinService::StagePerfTotals perf =
      service_->StagePerfSnapshot();
  AppendF(&out, "\n[stage_perf_counters] enabled=%d available=%d\n",
          perf.enabled ? 1 : 0, perf.available ? 1 : 0);
  if (perf.enabled) {
    AppendF(&out, "  %-10s %16s %16s %12s\n", "stage", "cycles",
            "instructions", "llc_misses");
    for (int s = 0; s < service::kNumTraceStages; ++s) {
      const util::StageCounterSample& c = perf.stage[static_cast<size_t>(s)];
      AppendF(&out, "  %-10s %16llu %16llu %12llu\n",
              service::TraceStageName(static_cast<service::TraceStage>(s)),
              static_cast<unsigned long long>(c.cycles),
              static_cast<unsigned long long>(c.instructions),
              static_cast<unsigned long long>(c.llc_misses));
    }
  }

  if (server_ != nullptr) {
    const ServerCounters sc = server_->counters();
    AppendF(&out, "\n[wire]\n");
    AppendF(&out, "connections accepted/closed: %llu / %llu\n",
            static_cast<unsigned long long>(sc.connections_accepted),
            static_cast<unsigned long long>(sc.connections_closed));
    AppendF(&out, "frames_received: %llu  responses_sent: %llu\n",
            static_cast<unsigned long long>(sc.frames_received),
            static_cast<unsigned long long>(sc.responses_sent));
    AppendF(&out, "protocol_errors: %llu\n",
            static_cast<unsigned long long>(sc.protocol_errors));
    AppendF(&out, "events pushed/dropped: %llu / %llu  gap_frames: %llu\n",
            static_cast<unsigned long long>(sc.events_pushed),
            static_cast<unsigned long long>(sc.events_dropped),
            static_cast<unsigned long long>(sc.gap_frames));
    const AdmissionController::Counters ac = server_->admission_counters();
    AppendF(&out,
            "admission admitted: %llu  rejected rate/bytes/watermark: "
            "%llu / %llu / %llu  refunded: %llu\n",
            static_cast<unsigned long long>(ac.admitted),
            static_cast<unsigned long long>(ac.rate_limited),
            static_cast<unsigned long long>(ac.inflight_bytes),
            static_cast<unsigned long long>(ac.queue_watermark),
            static_cast<unsigned long long>(ac.refunded));
    AppendF(&out, "active_subscriptions: %llu  outstanding_requests: %llu\n",
            static_cast<unsigned long long>(stats.active_subscriptions),
            static_cast<unsigned long long>(stats.outstanding_requests));
  }
  return out;
}

std::string AdminServer::RouteTracez() const {
  std::string out;
  AppendF(&out, "[slow_queries] top-%zu by service time\n",
          service_->slow_queries().capacity());
  for (const service::SlowQuery& q : service_->slow_queries().TopK()) {
    AppendF(&out,
            "  req=%llu dataset=%u points=%llu epoch=%llu "
            "queue_wait_us=%.1f service_us=%.1f\n",
            static_cast<unsigned long long>(q.request_id),
            static_cast<unsigned>(q.dataset_id),
            static_cast<unsigned long long>(q.num_points),
            static_cast<unsigned long long>(q.epoch), q.queue_wait_us,
            q.service_us);
  }
  const util::EventLog& events = service_->metrics()->events();
  AppendF(&out, "\n[events] %llu appended, ring holds:\n",
          static_cast<unsigned long long>(events.total_appended()));
  for (const util::MetricEvent& e : events.Snapshot()) {
    AppendF(&out, "  #%llu +%.3fs %s %s %s\n",
            static_cast<unsigned long long>(e.seq), e.uptime_s, e.kind.c_str(),
            e.subject.c_str(), e.detail.c_str());
  }
  return out;
}

std::string AdminServer::RouteProfilez(const std::string& query) const {
  double seconds = 1.0;
  const std::string param = QueryParam(query, "seconds");
  if (!param.empty()) {
    char* end = nullptr;
    const double v = strtod(param.c_str(), &end);
    if (end != param.c_str() && v > 0) seconds = v;
  }
  if (seconds > opts_.max_profile_seconds) seconds = opts_.max_profile_seconds;
  util::CpuProfiler::Options popts;
  popts.hz = opts_.profile_hz;
  std::string collapsed = util::CpuProfiler::ProfileFor(seconds, popts);
  if (collapsed.empty()) {
    collapsed = "# no samples (process idle during the window)\n";
  }
  return collapsed;
}

}  // namespace actjoin::net
