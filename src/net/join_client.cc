#include "net/join_client.h"

#include <utility>

namespace actjoin::net {

bool JoinClient::Connect(const std::string& host, uint16_t port,
                         std::string* error) {
  fd_ = ConnectTcp(host, port, error);
  return fd_.valid();
}

bool JoinClient::RecvResponse(uint64_t request_id, FrameHeader* header,
                              std::vector<uint8_t>* payload,
                              std::string* message) {
  std::string err;
  uint8_t header_bytes[kFrameHeaderBytes];
  if (!RecvAll(fd_.get(), header_bytes, sizeof(header_bytes), &err)) {
    Close();
    *message = err;
    return false;
  }
  size_t frame_bytes = 0;
  WireError parse_err = WireError::kNone;
  // The header alone decides validity; payload length is known after it.
  if (TryParseFrame({header_bytes, sizeof(header_bytes)}, max_frame_bytes_,
                    header, &frame_bytes,
                    &parse_err) == FrameParse::kProtocolError) {
    Close();
    *message = std::string("protocol error in response header: ") +
               ToString(parse_err);
    return false;
  }
  payload->resize(header->payload_bytes);
  if (header->payload_bytes > 0 &&
      !RecvAll(fd_.get(), payload->data(), payload->size(), &err)) {
    Close();
    *message = err;
    return false;
  }
  if (header->request_id != request_id) {
    Close();
    *message = "response request id does not match the request";
    return false;
  }
  return true;
}

bool JoinClient::Call(const std::vector<uint8_t>& frame, uint64_t request_id,
                      MessageType expect, std::vector<uint8_t>* payload,
                      Reply* reply) {
  reply->ok = false;
  reply->error = WireError::kNone;
  if (!fd_.valid()) {
    reply->message = "not connected";
    return false;
  }
  std::string err;
  if (!SendAll(fd_.get(), frame.data(), frame.size(), &err)) {
    Close();
    reply->message = err;
    return false;
  }
  FrameHeader header;
  if (!RecvResponse(request_id, &header, payload, &reply->message)) {
    return false;
  }
  if (header.type == MessageType::kError) {
    WireError code = WireError::kNone;
    std::string message;
    if (!DecodeError(*payload, &code, &message)) {
      Close();
      reply->message = "undecodable error response";
      return false;
    }
    reply->error = code;
    reply->message = std::move(message);
    if (!IsRecoverable(code)) Close();
    return false;
  }
  if (header.type != expect) {
    Close();
    reply->message = "unexpected response type";
    return false;
  }
  reply->ok = true;
  return true;
}

JoinClient::Reply JoinClient::Join(const service::QueryBatch& batch) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> frame = EncodeJoinBatchFrame(id, batch);
  if (frame.size() > max_frame_bytes_) {
    reply.message = "batch exceeds max_frame_bytes";
    return reply;
  }
  std::vector<uint8_t> payload;
  if (!Call(frame, id, MessageType::kJoinResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeJoinResult(payload, &reply.result)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable join result";
  }
  return reply;
}

JoinClient::CrossMatchReply JoinClient::CrossMatch(
    uint16_t dataset_a, const JoinDatasetsRequest& req) {
  CrossMatchReply reply;
  if (!fd_.valid()) {
    reply.message = "not connected";
    return reply;
  }
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> frame = EncodeJoinDatasetsFrame(id, dataset_a, req);
  std::string err;
  if (!SendAll(fd_.get(), frame.data(), frame.size(), &err)) {
    Close();
    reply.message = err;
    return reply;
  }
  // Success is a chunk *stream*: accept PAIR_RESULT frames until one
  // carries the last flag, validating the sequence as it arrives. A typed
  // error can only be the first (and then only) response frame.
  uint64_t total_pairs = 0;
  for (uint32_t expect_index = 0;; ++expect_index) {
    FrameHeader header;
    std::vector<uint8_t> payload;
    if (!RecvResponse(id, &header, &payload, &reply.message)) {
      return reply;
    }
    if (header.type == MessageType::kError) {
      if (expect_index != 0) {
        Close();
        reply.message = "error frame in the middle of a pair stream";
        return reply;
      }
      WireError code = WireError::kNone;
      std::string message;
      if (!DecodeError(payload, &code, &message)) {
        Close();
        reply.message = "undecodable error response";
        return reply;
      }
      reply.error = code;
      reply.message = std::move(message);
      if (!IsRecoverable(code)) Close();
      return reply;
    }
    if (header.type != MessageType::kPairResult) {
      Close();
      reply.message = "unexpected response type";
      return reply;
    }
    PairChunk chunk;
    if (!DecodePairChunk(payload, &chunk)) {
      Close();
      reply.message = "undecodable pair chunk";
      return reply;
    }
    if (chunk.chunk_index != expect_index) {
      Close();
      reply.message = "pair chunk out of sequence";
      return reply;
    }
    if (expect_index == 0) {
      total_pairs = chunk.total_pairs;
      reply.pairs.reserve(total_pairs);
    } else if (chunk.total_pairs != total_pairs) {
      Close();
      reply.message = "pair chunks disagree on total_pairs";
      return reply;
    }
    reply.pairs.insert(reply.pairs.end(), chunk.pairs.begin(),
                       chunk.pairs.end());
    ++reply.num_chunks;
    if (chunk.last) {
      if (reply.pairs.size() != total_pairs) {
        Close();
        reply.pairs.clear();
        reply.message = "pair stream does not add up to total_pairs";
        return reply;
      }
      reply.stats = chunk.stats;
      break;
    }
  }
  reply.ok = true;
  return reply;
}

JoinClient::Reply JoinClient::AddPolygons(
    uint16_t dataset_id, const std::vector<geom::Polygon>& polygons) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> frame =
      EncodeAddPolygonsFrame(id, dataset_id, polygons);
  if (frame.size() > max_frame_bytes_) {
    reply.message = "polygon batch exceeds max_frame_bytes";
    return reply;
  }
  std::vector<uint8_t> payload;
  if (!Call(frame, id, MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

JoinClient::Reply JoinClient::RemovePolygons(
    uint16_t dataset_id, const std::vector<uint32_t>& polygon_ids) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeRemovePolygonsFrame(id, dataset_id, polygon_ids), id,
            MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

JoinClient::Reply JoinClient::DropDataset(uint16_t dataset_id) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeDropDatasetFrame(id, dataset_id), id,
            MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

bool JoinClient::Ping(std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  bool ok = Call(EncodeEmptyFrame(MessageType::kPing, id), id,
                 MessageType::kPong, &payload, &reply);
  if (!ok && error != nullptr) *error = reply.message;
  return ok;
}

bool JoinClient::GetStats(service::ServiceStats* out, std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeEmptyFrame(MessageType::kStats, id), id,
            MessageType::kStatsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  if (!DecodeServiceStats(payload, out)) {
    Close();
    if (error != nullptr) *error = "undecodable stats response";
    return false;
  }
  return true;
}

bool JoinClient::GetMetrics(MetricsReport* out, std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeGetMetricsFrame(id, MetricsFormat::kBinary), id,
            MessageType::kMetricsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  MetricsFormat format = MetricsFormat::kBinary;
  std::string text;
  if (!DecodeMetricsResult(payload, &format, &text, out) ||
      format != MetricsFormat::kBinary) {
    Close();
    if (error != nullptr) *error = "undecodable metrics response";
    return false;
  }
  return true;
}

bool JoinClient::GetMetricsText(std::string* out, std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeGetMetricsFrame(id, MetricsFormat::kText), id,
            MessageType::kMetricsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  MetricsFormat format = MetricsFormat::kText;
  MetricsReport report;
  if (!DecodeMetricsResult(payload, &format, out, &report) ||
      format != MetricsFormat::kText) {
    Close();
    if (error != nullptr) *error = "undecodable metrics response";
    return false;
  }
  return true;
}

bool JoinClient::ListDatasets(std::vector<service::DatasetInfo>* out,
                              std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  if (!Call(EncodeEmptyFrame(MessageType::kListDatasets, id), id,
            MessageType::kDatasetList, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  if (!DecodeDatasetList(payload, out)) {
    Close();
    if (error != nullptr) *error = "undecodable dataset list response";
    return false;
  }
  return true;
}

bool JoinClient::RequestShutdown(std::string* error) {
  Reply reply;
  const uint64_t id = next_request_id_++;
  std::vector<uint8_t> payload;
  bool ok = Call(EncodeEmptyFrame(MessageType::kShutdown, id), id,
                 MessageType::kShutdownAck, &payload, &reply);
  if (!ok && error != nullptr) *error = reply.message;
  return ok;
}

}  // namespace actjoin::net
