#include "net/join_client.h"

#include <utility>

namespace actjoin::net {

bool JoinClient::Call(const std::vector<uint8_t>& frame, uint64_t request_id,
                      MessageType expect, std::vector<uint8_t>* payload,
                      Reply* reply) {
  AsyncJoinClient::RawReply raw = core_->Call(frame, request_id, expect).get();
  reply->ok = raw.ok;
  reply->error = raw.error;
  reply->message = std::move(raw.message);
  if (!raw.ok) return false;
  *payload = std::move(raw.payload);
  return true;
}

JoinClient::Reply JoinClient::Join(const service::QueryBatch& batch) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> frame = EncodeJoinBatchFrame(id, batch);
  if (frame.size() > max_frame_bytes()) {
    reply.message = "batch exceeds max_frame_bytes";
    return reply;
  }
  std::vector<uint8_t> payload;
  if (!Call(frame, id, MessageType::kJoinResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeJoinResult(payload, &reply.result)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable join result";
  }
  return reply;
}

JoinClient::CrossMatchReply JoinClient::CrossMatch(
    uint16_t dataset_a, const JoinDatasetsRequest& req) {
  if (!connected()) {
    CrossMatchReply reply;
    reply.message = "not connected";
    return reply;
  }
  const uint64_t id = core_->NextRequestId();
  return core_->CallCrossMatch(EncodeJoinDatasetsFrame(id, dataset_a, req), id)
      .get();
}

JoinClient::Reply JoinClient::AddPolygons(
    uint16_t dataset_id, const std::vector<geom::Polygon>& polygons) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> frame =
      EncodeAddPolygonsFrame(id, dataset_id, polygons);
  if (frame.size() > max_frame_bytes()) {
    reply.message = "polygon batch exceeds max_frame_bytes";
    return reply;
  }
  std::vector<uint8_t> payload;
  if (!Call(frame, id, MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

JoinClient::Reply JoinClient::RemovePolygons(
    uint16_t dataset_id, const std::vector<uint32_t>& polygon_ids) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeRemovePolygonsFrame(id, dataset_id, polygon_ids), id,
            MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

JoinClient::Reply JoinClient::DropDataset(uint16_t dataset_id) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeDropDatasetFrame(id, dataset_id), id,
            MessageType::kMutateResult, &payload, &reply)) {
    return reply;
  }
  if (!DecodeMutationAck(payload, &reply.ack)) {
    Close();
    reply.ok = false;
    reply.message = "undecodable mutation ack";
  }
  return reply;
}

bool JoinClient::Ping(std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  bool ok = Call(EncodeEmptyFrame(MessageType::kPing, id), id,
                 MessageType::kPong, &payload, &reply);
  if (!ok && error != nullptr) *error = reply.message;
  return ok;
}

bool JoinClient::GetStats(service::ServiceStats* out, std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeEmptyFrame(MessageType::kStats, id), id,
            MessageType::kStatsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  if (!DecodeServiceStats(payload, out)) {
    Close();
    if (error != nullptr) *error = "undecodable stats response";
    return false;
  }
  return true;
}

bool JoinClient::GetMetrics(MetricsReport* out, std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeGetMetricsFrame(id, MetricsFormat::kBinary), id,
            MessageType::kMetricsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  MetricsFormat format = MetricsFormat::kBinary;
  std::string text;
  if (!DecodeMetricsResult(payload, &format, &text, out) ||
      format != MetricsFormat::kBinary) {
    Close();
    if (error != nullptr) *error = "undecodable metrics response";
    return false;
  }
  return true;
}

bool JoinClient::GetMetricsText(std::string* out, std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeGetMetricsFrame(id, MetricsFormat::kText), id,
            MessageType::kMetricsResult, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  MetricsFormat format = MetricsFormat::kText;
  MetricsReport report;
  if (!DecodeMetricsResult(payload, &format, out, &report) ||
      format != MetricsFormat::kText) {
    Close();
    if (error != nullptr) *error = "undecodable metrics response";
    return false;
  }
  return true;
}

bool JoinClient::ListDatasets(std::vector<service::DatasetInfo>* out,
                              std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  if (!Call(EncodeEmptyFrame(MessageType::kListDatasets, id), id,
            MessageType::kDatasetList, &payload, &reply)) {
    if (error != nullptr) *error = reply.message;
    return false;
  }
  if (!DecodeDatasetList(payload, out)) {
    Close();
    if (error != nullptr) *error = "undecodable dataset list response";
    return false;
  }
  return true;
}

bool JoinClient::RequestShutdown(std::string* error) {
  Reply reply;
  const uint64_t id = core_->NextRequestId();
  std::vector<uint8_t> payload;
  bool ok = Call(EncodeEmptyFrame(MessageType::kShutdown, id), id,
                 MessageType::kShutdownAck, &payload, &reply);
  if (!ok && error != nullptr) *error = reply.message;
  return ok;
}

}  // namespace actjoin::net
