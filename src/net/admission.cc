#include "net/admission.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace actjoin::net {

const char* ToString(Admission verdict) {
  switch (verdict) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRateLimited:
      return "rate limited";
    case Admission::kInFlightBytes:
      return "in-flight bytes exceeded";
    case Admission::kQueueWatermark:
      return "queue over watermark";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionPolicy& policy,
                                         size_t queue_capacity)
    : policy_(policy), last_refill_(Clock::now()) {
  ACT_CHECK_MSG(policy_.rate_limit_qps >= 0 && policy_.queue_watermark <= 1.0,
                "AdmissionPolicy: qps must be >= 0, watermark in [0, 1]");
  if (policy_.rate_burst <= 0) {
    policy_.rate_burst = std::max(1.0, policy_.rate_limit_qps);
  }
  tokens_ = policy_.rate_burst;  // start full: the first burst is free
  if (policy_.queue_watermark > 0) {
    // "Deeper than watermark * capacity rejects"; floor keeps a watermark
    // below 1/capacity meaningful (threshold 0 => any backlog rejects).
    queue_threshold_ = static_cast<size_t>(
        policy_.queue_watermark * static_cast<double>(queue_capacity));
  } else {
    queue_threshold_ = std::numeric_limits<size_t>::max();
  }
}

Admission AdmissionController::TryAdmit(size_t request_bytes,
                                        size_t queue_depth) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_depth > queue_threshold_) {
    ++counters_.queue_watermark;
    return Admission::kQueueWatermark;
  }
  if (policy_.max_in_flight_bytes > 0 &&
      in_flight_bytes_ + request_bytes > policy_.max_in_flight_bytes) {
    ++counters_.inflight_bytes;
    return Admission::kInFlightBytes;
  }
  if (policy_.rate_limit_qps > 0) {
    Clock::time_point now = Clock::now();
    double elapsed_s =
        std::chrono::duration<double>(now - last_refill_).count();
    last_refill_ = now;
    tokens_ = std::min(policy_.rate_burst,
                       tokens_ + elapsed_s * policy_.rate_limit_qps);
    if (tokens_ < 1.0) {
      ++counters_.rate_limited;
      return Admission::kRateLimited;
    }
    tokens_ -= 1.0;
  }
  in_flight_bytes_ += request_bytes;
  ++counters_.admitted;
  return Admission::kAdmitted;
}

void AdmissionController::Release(size_t request_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(in_flight_bytes_ >= request_bytes,
                "Release without a matching TryAdmit admission");
  in_flight_bytes_ -= request_bytes;
}

void AdmissionController::Refund(size_t request_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(in_flight_bytes_ >= request_bytes,
                "Refund without a matching TryAdmit admission");
  in_flight_bytes_ -= request_bytes;
  if (policy_.rate_limit_qps > 0) {
    // Re-credit the token TryAdmit took; the burst ceiling still applies
    // (refill may have topped the bucket up since).
    tokens_ = std::min(policy_.rate_burst, tokens_ + 1.0);
  }
  ++counters_.refunded;
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t AdmissionController::in_flight_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_bytes_;
}

}  // namespace actjoin::net
