#include "net/admission.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace actjoin::net {

const char* ToString(Admission verdict) {
  switch (verdict) {
    case Admission::kAdmitted:
      return "admitted";
    case Admission::kRateLimited:
      return "rate limited";
    case Admission::kInFlightBytes:
      return "in-flight bytes exceeded";
    case Admission::kQueueWatermark:
      return "queue over watermark";
  }
  return "unknown";
}

AdmissionController::AdmissionController(const AdmissionPolicy& policy,
                                         size_t queue_capacity)
    : policy_(policy) {
  ACT_CHECK_MSG(policy_.rate_limit_qps >= 0 && policy_.queue_watermark <= 1.0,
                "AdmissionPolicy: qps must be >= 0, watermark in [0, 1]");
  if (policy_.rate_burst <= 0) {
    policy_.rate_burst = std::max(1.0, policy_.rate_limit_qps);
  }
  if (policy_.max_peer_buckets < 1) policy_.max_peer_buckets = 1;
  if (policy_.queue_watermark > 0) {
    // "Deeper than watermark * capacity rejects"; floor keeps a watermark
    // below 1/capacity meaningful (threshold 0 => any backlog rejects).
    queue_threshold_ = static_cast<size_t>(
        policy_.queue_watermark * static_cast<double>(queue_capacity));
  } else {
    queue_threshold_ = std::numeric_limits<size_t>::max();
  }
}

AdmissionController::PeerBucket& AdmissionController::BucketFor(
    std::string_view peer) {
  auto it = buckets_.find(peer);
  if (it == buckets_.end()) {
    if (buckets_.size() >= policy_.max_peer_buckets) {
      // Evict the longest-idle bucket: its peer has not sent a request
      // for the longest time, so forgetting its split (never the global
      // counters) is the cheapest memory to reclaim. O(buckets) only on
      // the new-peer-at-cap path.
      auto victim = buckets_.begin();
      for (auto b = buckets_.begin(); b != buckets_.end(); ++b) {
        if (b->second.last_refill < victim->second.last_refill) victim = b;
      }
      buckets_.erase(victim);
    }
    PeerBucket bucket;
    bucket.tokens = policy_.rate_burst;  // start full: the first burst is free
    bucket.last_refill = Clock::now();
    it = buckets_.emplace(std::string(peer), bucket).first;
  }
  return it->second;
}

Admission AdmissionController::TryAdmit(size_t request_bytes,
                                        size_t queue_depth,
                                        std::string_view peer) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_depth > queue_threshold_) {
    ++counters_.queue_watermark;
    return Admission::kQueueWatermark;
  }
  if (policy_.max_in_flight_bytes > 0 &&
      in_flight_bytes_ + request_bytes > policy_.max_in_flight_bytes) {
    ++counters_.inflight_bytes;
    return Admission::kInFlightBytes;
  }
  PeerBucket& bucket = BucketFor(peer);
  if (policy_.rate_limit_qps > 0) {
    Clock::time_point now = Clock::now();
    double elapsed_s =
        std::chrono::duration<double>(now - bucket.last_refill).count();
    bucket.last_refill = now;
    bucket.tokens = std::min(policy_.rate_burst,
                             bucket.tokens + elapsed_s * policy_.rate_limit_qps);
    if (bucket.tokens < 1.0) {
      ++counters_.rate_limited;
      ++bucket.rate_limited;
      return Admission::kRateLimited;
    }
    bucket.tokens -= 1.0;
  }
  in_flight_bytes_ += request_bytes;
  ++counters_.admitted;
  ++bucket.admitted;
  return Admission::kAdmitted;
}

void AdmissionController::Release(size_t request_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(in_flight_bytes_ >= request_bytes,
                "Release without a matching TryAdmit admission");
  in_flight_bytes_ -= request_bytes;
}

void AdmissionController::Refund(size_t request_bytes, std::string_view peer) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(in_flight_bytes_ >= request_bytes,
                "Refund without a matching TryAdmit admission");
  in_flight_bytes_ -= request_bytes;
  if (policy_.rate_limit_qps > 0) {
    // Re-credit the token TryAdmit took from this peer's bucket; the burst
    // ceiling still applies (refill may have topped the bucket up since).
    PeerBucket& bucket = BucketFor(peer);
    bucket.tokens = std::min(policy_.rate_burst, bucket.tokens + 1.0);
  }
  ++counters_.refunded;
}

AdmissionController::Counters AdmissionController::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<service::PeerAdmissionStats> AdmissionController::PerPeer() const {
  std::vector<service::PeerAdmissionStats> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(buckets_.size());
    for (const auto& [peer, bucket] : buckets_) {
      out.push_back({peer, bucket.admitted, bucket.rate_limited});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const service::PeerAdmissionStats& a,
               const service::PeerAdmissionStats& b) { return a.peer < b.peer; });
  return out;
}

size_t AdmissionController::in_flight_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_bytes_;
}

void AdmissionController::RegisterMetrics(
    util::MetricsRegistry* registry) const {
  registry->RegisterCounterFn("admission_admitted_total",
                              "Requests admitted at the door", "",
                              [this] { return counters().admitted; });
  registry->RegisterCounterFn(
      "admission_rejected_total", "Admission rejections by knob",
      "reason=\"rate_limit\"", [this] { return counters().rate_limited; });
  registry->RegisterCounterFn(
      "admission_rejected_total", "", "reason=\"inflight_bytes\"",
      [this] { return counters().inflight_bytes; });
  registry->RegisterCounterFn(
      "admission_rejected_total", "", "reason=\"queue_watermark\"",
      [this] { return counters().queue_watermark; });
  registry->RegisterCounterFn("admission_refunded_total",
                              "Admissions rolled back without work", "",
                              [this] { return counters().refunded; });
  registry->RegisterGaugeFn(
      "admission_inflight_bytes", "Payload bytes admitted but not completed",
      "", [this] { return static_cast<double>(in_flight_bytes()); });
  registry->RegisterCounterFamilyFn(
      "peer_admitted_total", "Requests admitted per peer", [this] {
        util::MetricsRegistry::FamilySeries out;
        for (const service::PeerAdmissionStats& p : PerPeer()) {
          out.emplace_back("peer=\"" + p.peer + "\"",
                           static_cast<double>(p.admitted));
        }
        return out;
      });
  registry->RegisterCounterFamilyFn(
      "peer_rate_limited_total", "Rate-limit rejections per peer", [this] {
        util::MetricsRegistry::FamilySeries out;
        for (const service::PeerAdmissionStats& p : PerPeer()) {
          out.emplace_back("peer=\"" + p.peer + "\"",
                           static_cast<double>(p.rate_limited));
        }
        return out;
      });
}

}  // namespace actjoin::net
