// JoinClient: synchronous blocking client for the actjoin wire protocol.
//
// One connection, one call at a time from the caller's point of view:
// every RPC writes a frame and blocks until the matching response
// arrives, which is exactly the shape tests, benches, and examples want.
// Since wire v6 this is a thin wrapper over net::AsyncJoinClient — each
// RPC is "dispatch one pipelined call, get() the future" — so the
// blocking and async clients cannot drift apart: these methods exercise
// the same reader, demultiplexer, and failure paths the async client
// uses. Grab async() to pipeline requests or SUBSCRIBE on the same
// connection.
//
// Every RPC surfaces three distinct failure layers:
//
//   * transport errors (connect/send/recv failed, peer closed) — the
//     connection is dead, Reply.message says why;
//   * typed wire errors (kError response: admission rejection, queue full,
//     malformed payload, ...) — the connection is still usable, the code
//     says which policy fired. The client-side WireError::kTimedOut (see
//     set_recv_timeout_ms) is typed but fatal: the connection closes;
//   * success — the decoded response payload.
//
// Thread-compatible, not thread-safe: share-nothing or lock around it
// (or use async(), whose dispatch side is thread-safe).

#ifndef ACTJOIN_NET_JOIN_CLIENT_H_
#define ACTJOIN_NET_JOIN_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/async_join_client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"

namespace actjoin::net {

class JoinClient {
 public:
  JoinClient() : core_(std::make_unique<AsyncJoinClient>()) {}
  JoinClient(JoinClient&&) = default;
  JoinClient& operator=(JoinClient&&) = default;

  /// Blocking IPv4 connect. False + *error on failure.
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr) {
    return core_->Connect(host, port, error);
  }
  bool connected() const { return core_->connected(); }
  void Close() { core_->Close(); }

  /// The pipelined core this client wraps: use it to overlap requests or
  /// register SUBSCRIBE handlers on the same connection. Interleaving
  /// async calls with the blocking RPCs here is safe — responses route by
  /// request id.
  AsyncJoinClient& async() { return *core_; }

  struct Reply {
    bool ok = false;
    /// kNone on success and on transport errors; a typed code when the
    /// server answered with a kError frame (connection still usable), or
    /// the client-side kTimedOut (connection closed).
    WireError error = WireError::kNone;
    std::string message;
    /// Valid only for Join() with ok == true.
    service::JoinResult result;
    /// Valid only for the mutation RPCs with ok == true.
    MutationAck ack;
  };

  /// See net::CrossMatchReply (async_join_client.h); historically nested
  /// here, aliased to keep `JoinClient::CrossMatchReply` spelling valid.
  using CrossMatchReply = actjoin::net::CrossMatchReply;

  /// Round-trips one JOIN_BATCH against batch.dataset_id. The batch's
  /// cell_ids/points must be parallel arrays (same length). A server
  /// without that dataset answers with a recoverable kUnknownDataset
  /// error — list the catalog and retry on the same connection.
  Reply Join(const service::QueryBatch& batch);

  /// Live mutations (wire v3). On ok, Reply.ack carries the published
  /// epoch / id assignments; a tombstoned target answers with the
  /// recoverable kDatasetDropped, a content-refused batch with
  /// kInvalidMutation — the connection survives both.
  Reply AddPolygons(uint16_t dataset_id,
                    const std::vector<geom::Polygon>& polygons);
  Reply RemovePolygons(uint16_t dataset_id,
                       const std::vector<uint32_t>& polygon_ids);
  Reply DropDataset(uint16_t dataset_id);

  /// Round-trips one JOIN_DATASETS (wire v5): crossmatch dataset_a against
  /// req.dataset_b and stream back every result pair. Success is a
  /// sequence of PAIR_RESULT chunks, which this call reassembles (and
  /// validates: echoed request id, consecutive chunk indexes, a stable
  /// total_pairs, the advertised total matched by the concatenation).
  /// Either side unknown or dropped answers with a single recoverable
  /// typed error naming the offending dataset in its message.
  CrossMatchReply CrossMatch(uint16_t dataset_a,
                             const JoinDatasetsRequest& req);

  /// Registers a standing geofence query (wire v6) and blocks for the
  /// ack; `on_events` / `on_gap` then run on the connection's reader
  /// thread as the server pushes EVENT / EVENT_GAP frames (see
  /// AsyncJoinClient's handler rules).
  AsyncJoinClient::SubscribeReply Subscribe(
      uint16_t dataset_id, const service::SubscriptionSpec& spec,
      AsyncJoinClient::EventHandler on_events,
      AsyncJoinClient::GapHandler on_gap = nullptr) {
    return core_->Subscribe(dataset_id, spec, std::move(on_events),
                            std::move(on_gap))
        .get();
  }
  AsyncJoinClient::SubscribeReply Unsubscribe(uint64_t subscription_id) {
    return core_->Unsubscribe(subscription_id).get();
  }

  bool Ping(std::string* error = nullptr);
  bool GetStats(service::ServiceStats* out, std::string* error = nullptr);
  /// Fetches the server's metrics in structured binary form (samples +
  /// event log + slow-query ring). Wire v4; an older server answers with
  /// the recoverable kUnknownType, surfaced here as false + *error.
  bool GetMetrics(MetricsReport* out, std::string* error = nullptr);
  /// Fetches the Prometheus text exposition (what a scraper would relay).
  bool GetMetricsText(std::string* out, std::string* error = nullptr);
  /// Enumerates the server's dataset catalog (id, name, epoch, sizes).
  bool ListDatasets(std::vector<service::DatasetInfo>* out,
                    std::string* error = nullptr);
  /// Asks the server process to shut down (acked before it does).
  bool RequestShutdown(std::string* error = nullptr);

  /// Frames larger than this are refused client-side before sending.
  size_t max_frame_bytes() const { return core_->max_frame_bytes(); }
  void set_max_frame_bytes(size_t bytes) { core_->set_max_frame_bytes(bytes); }

  /// Receive stall deadline for every blocking RPC, milliseconds; 0
  /// (default) blocks forever. When a response — or the rest of a
  /// half-written frame — fails to arrive in time, the RPC fails with the
  /// typed WireError::kTimedOut and the connection closes (a partial
  /// frame means byte sync is gone, so there is nothing to salvage).
  int recv_timeout_ms() const { return core_->recv_timeout_ms(); }
  void set_recv_timeout_ms(int ms) { core_->set_recv_timeout_ms(ms); }

 private:
  /// Dispatches `frame` on the core, then blocks for the response to this
  /// request id. On a kError response, fills reply.error/message; on the
  /// expected type, returns the raw payload for the caller to decode.
  bool Call(const std::vector<uint8_t>& frame, uint64_t request_id,
            MessageType expect, std::vector<uint8_t>* payload, Reply* reply);

  /// unique_ptr (not a member) keeps JoinClient movable: the core owns a
  /// running reader thread and is therefore pinned in memory.
  std::unique_ptr<AsyncJoinClient> core_;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_JOIN_CLIENT_H_
