// JoinClient: synchronous blocking client for the actjoin wire protocol.
//
// One connection, one outstanding request at a time: Call() writes a frame
// and blocks until the matching response arrives, which is exactly the
// shape tests, benches, and examples want (the server is the async side).
// Every RPC surfaces three distinct failure layers:
//
//   * transport errors (connect/send/recv failed, peer closed) — the
//     connection is dead, Reply.message says why;
//   * typed wire errors (kError response: admission rejection, queue full,
//     malformed payload, ...) — the connection is still usable, the code
//     says which policy fired;
//   * success — the decoded response payload.
//
// Thread-compatible, not thread-safe: share-nothing or lock around it.

#ifndef ACTJOIN_NET_JOIN_CLIENT_H_
#define ACTJOIN_NET_JOIN_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "service/join_service.h"

namespace actjoin::net {

class JoinClient {
 public:
  JoinClient() = default;
  JoinClient(JoinClient&&) = default;
  JoinClient& operator=(JoinClient&&) = default;

  /// Blocking IPv4 connect. False + *error on failure.
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return fd_.valid(); }
  void Close() { fd_.Reset(); }

  struct Reply {
    bool ok = false;
    /// kNone on success and on transport errors; a typed code when the
    /// server answered with a kError frame (connection still usable).
    WireError error = WireError::kNone;
    std::string message;
    /// Valid only for Join() with ok == true.
    service::JoinResult result;
    /// Valid only for the mutation RPCs with ok == true.
    MutationAck ack;
  };

  /// Result of a JOIN_DATASETS crossmatch (wire v5): the reassembled pair
  /// stream plus the stats tail from the final chunk. `pairs` arrives
  /// sorted ascending by (gid_a, gid_b) and unique — the server streams
  /// the pages of one sorted sequence, and the client verifies the chunk
  /// indexes are consecutive, so concatenation preserves the order.
  struct CrossMatchReply {
    bool ok = false;
    WireError error = WireError::kNone;
    std::string message;
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    PairChunkStats stats;
    /// How many PAIR_RESULT chunks carried the stream (>= 1 on ok).
    uint32_t num_chunks = 0;
  };

  /// Round-trips one JOIN_BATCH against batch.dataset_id. The batch's
  /// cell_ids/points must be parallel arrays (same length). A server
  /// without that dataset answers with a recoverable kUnknownDataset
  /// error — list the catalog and retry on the same connection.
  Reply Join(const service::QueryBatch& batch);

  /// Live mutations (wire v3). On ok, Reply.ack carries the published
  /// epoch / id assignments; a tombstoned target answers with the
  /// recoverable kDatasetDropped, a content-refused batch with
  /// kInvalidMutation — the connection survives both.
  Reply AddPolygons(uint16_t dataset_id,
                    const std::vector<geom::Polygon>& polygons);
  Reply RemovePolygons(uint16_t dataset_id,
                       const std::vector<uint32_t>& polygon_ids);
  Reply DropDataset(uint16_t dataset_id);

  /// Round-trips one JOIN_DATASETS (wire v5): crossmatch dataset_a against
  /// req.dataset_b and stream back every result pair. Success is a
  /// sequence of PAIR_RESULT chunks, which this call reassembles (and
  /// validates: echoed request id, consecutive chunk indexes, a stable
  /// total_pairs, the advertised total matched by the concatenation).
  /// Either side unknown or dropped answers with a single recoverable
  /// typed error naming the offending dataset in its message.
  CrossMatchReply CrossMatch(uint16_t dataset_a,
                             const JoinDatasetsRequest& req);

  bool Ping(std::string* error = nullptr);
  bool GetStats(service::ServiceStats* out, std::string* error = nullptr);
  /// Fetches the server's metrics in structured binary form (samples +
  /// event log + slow-query ring). Wire v4; an older server answers with
  /// the recoverable kUnknownType, surfaced here as false + *error.
  bool GetMetrics(MetricsReport* out, std::string* error = nullptr);
  /// Fetches the Prometheus text exposition (what a scraper would relay).
  bool GetMetricsText(std::string* out, std::string* error = nullptr);
  /// Enumerates the server's dataset catalog (id, name, epoch, sizes).
  bool ListDatasets(std::vector<service::DatasetInfo>* out,
                    std::string* error = nullptr);
  /// Asks the server process to shut down (acked before it does).
  bool RequestShutdown(std::string* error = nullptr);

  /// Frames larger than this are refused client-side before sending.
  size_t max_frame_bytes() const { return max_frame_bytes_; }
  void set_max_frame_bytes(size_t bytes) { max_frame_bytes_ = bytes; }

 private:
  /// Sends `frame`, then blocks for the response to this request id.
  /// On a kError response, fills reply.error/message; on the expected
  /// type, returns the raw payload for the caller to decode.
  bool Call(const std::vector<uint8_t>& frame, uint64_t request_id,
            MessageType expect, std::vector<uint8_t>* payload, Reply* reply);

  /// Blocks for one response frame to `request_id` (any type; the caller
  /// inspects header->type). False + *message on transport or protocol
  /// failure — the connection is closed. Does NOT interpret kError.
  bool RecvResponse(uint64_t request_id, FrameHeader* header,
                    std::vector<uint8_t>* payload, std::string* message);

  UniqueFd fd_;
  uint64_t next_request_id_ = 1;
  size_t max_frame_bytes_ = kDefaultMaxFrameBytes;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_JOIN_CLIENT_H_
