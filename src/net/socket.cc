#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace actjoin::net {

void UniqueFd::Reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::string ErrnoMessage(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

bool SetNonBlocking(int fd, std::string* error) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    if (error != nullptr) *error = ErrnoMessage("fcntl(O_NONBLOCK)");
    return false;
  }
  return true;
}

namespace {

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

UniqueFd ListenTcp(const std::string& host, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = ErrnoMessage("socket");
    return UniqueFd();
  }
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (error != nullptr) *error = ErrnoMessage("bind");
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) < 0) {
    if (error != nullptr) *error = ErrnoMessage("listen");
    return UniqueFd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) <
        0) {
      if (error != nullptr) *error = ErrnoMessage("getsockname");
      return UniqueFd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

UniqueFd ConnectTcp(const std::string& host, uint16_t port,
                    std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = ErrnoMessage("socket");
    return UniqueFd();
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    if (error != nullptr) *error = ErrnoMessage("connect");
    return UniqueFd();
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, const uint8_t* data, size_t n, std::string* error) {
  size_t sent = 0;
  while (sent < n) {
    ssize_t w = ::send(fd, data + sent, n - sent, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = ErrnoMessage("send");
      return false;
    }
    sent += static_cast<size_t>(w);
  }
  return true;
}

bool RecvAll(int fd, uint8_t* data, size_t n, std::string* error) {
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, data + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = ErrnoMessage("recv");
      return false;
    }
    if (r == 0) {
      if (error != nullptr) *error = "connection closed by peer";
      return false;
    }
    got += static_cast<size_t>(r);
  }
  return true;
}

std::string PeerAddress(int fd, bool include_port) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0 ||
      addr.sin_family != AF_INET) {
    return "unknown";
  }
  char ip[INET_ADDRSTRLEN] = {};
  if (::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip)) == nullptr) {
    return "unknown";
  }
  std::string out(ip);
  if (include_port) {
    out += ":" + std::to_string(ntohs(addr.sin_port));
  }
  return out;
}

}  // namespace actjoin::net
