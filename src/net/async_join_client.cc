#include "net/async_join_client.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace actjoin::net {

bool AsyncJoinClient::Connect(const std::string& host, uint16_t port,
                              std::string* error) {
  Close();  // drop any previous connection and its reader
  fd_ = ConnectTcp(host, port, error);
  if (!fd_.valid()) return false;
  wake_fd_ = UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  {
    std::lock_guard<std::mutex> lock(mu_);
    failed_ = false;
    fail_code_ = WireError::kNone;
    fail_message_.clear();
  }
  connected_.store(true, std::memory_order_release);
  reader_ = std::thread(&AsyncJoinClient::ReaderLoop, this);
  return true;
}

void AsyncJoinClient::Close() {
  if (fd_.valid()) {
    FailConnection(WireError::kNone, "connection closed");
  }
  if (reader_.joinable()) reader_.join();
  fd_.Reset();
  wake_fd_.Reset();
}

void AsyncJoinClient::WakeReader() {
  if (!wake_fd_.valid()) return;
  const uint64_t one = 1;
  // Best-effort: EAGAIN means the counter is already nonzero — the reader
  // has a wake pending and will re-arm regardless.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

size_t AsyncJoinClient::outstanding_requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void AsyncJoinClient::CompleteFailure(Slot* slot, WireError code,
                                      const std::string& message) {
  switch (slot->kind) {
    case SlotKind::kSingle: {
      RawReply reply;
      reply.error = code;
      reply.message = message;
      slot->promise.set_value(std::move(reply));
      break;
    }
    case SlotKind::kStream: {
      // Reuse the accumulator so a mid-stream failure reports how far the
      // stream got, but never surface a partial pair list as data.
      slot->stream.ok = false;
      slot->stream.error = code;
      slot->stream.message = message;
      slot->stream.pairs.clear();
      slot->stream_promise.set_value(std::move(slot->stream));
      break;
    }
    case SlotKind::kSubscribe:
    case SlotKind::kUnsubscribe: {
      SubscribeReply reply;
      reply.error = code;
      reply.message = message;
      slot->sub_promise.set_value(std::move(reply));
      break;
    }
  }
}

void AsyncJoinClient::FailConnection(WireError code,
                                     const std::string& message) {
  std::map<uint64_t, std::unique_ptr<Slot>> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!failed_) {
      failed_ = true;
      fail_code_ = code;
      fail_message_ = message;
    }
    pending.swap(pending_);
    subs_.clear();
  }
  connected_.store(false, std::memory_order_release);
  // Shut down (don't close) so concurrent senders hit EPIPE instead of a
  // recycled descriptor; the reader's recv wakes with 0. The fd itself is
  // released only by Close()/Connect(), after the reader has joined.
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
  for (auto& [id, slot] : pending) CompleteFailure(slot.get(), code, message);
}

void AsyncJoinClient::Dispatch(const std::vector<uint8_t>& frame,
                               uint64_t request_id,
                               std::unique_ptr<Slot> slot) {
  if (!connected()) {
    CompleteFailure(slot.get(), WireError::kNone, "not connected");
    return;
  }
  if (frame.size() > max_frame_bytes()) {
    CompleteFailure(slot.get(), WireError::kNone,
                    "frame exceeds max_frame_bytes");
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (failed_) {
      CompleteFailure(slot.get(), WireError::kNone, "not connected");
      return;
    }
    pending_[request_id] = std::move(slot);
  }
  // The reader may be parked in poll() with no deadline (nothing was
  // pending when it went to sleep); poke it so the receive timeout arms
  // for this request even if the server never sends a byte.
  WakeReader();
  std::string err;
  bool sent;
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    sent = SendAll(fd_.get(), frame.data(), frame.size(), &err);
  }
  // A failed send leaves the outbound stream at an unknown position; the
  // whole connection is done for (this also completes our own slot).
  if (!sent) FailConnection(WireError::kNone, err);
}

std::future<AsyncJoinClient::RawReply> AsyncJoinClient::Call(
    const std::vector<uint8_t>& frame, uint64_t request_id,
    MessageType expect) {
  auto slot = std::make_unique<Slot>();
  slot->kind = SlotKind::kSingle;
  slot->expect = expect;
  std::future<RawReply> future = slot->promise.get_future();
  Dispatch(frame, request_id, std::move(slot));
  return future;
}

std::future<CrossMatchReply> AsyncJoinClient::CallCrossMatch(
    const std::vector<uint8_t>& frame, uint64_t request_id) {
  auto slot = std::make_unique<Slot>();
  slot->kind = SlotKind::kStream;
  std::future<CrossMatchReply> future = slot->stream_promise.get_future();
  Dispatch(frame, request_id, std::move(slot));
  return future;
}

std::future<AsyncJoinClient::SubscribeReply> AsyncJoinClient::Subscribe(
    uint16_t dataset_id, const service::SubscriptionSpec& spec,
    EventHandler on_events, GapHandler on_gap) {
  auto slot = std::make_unique<Slot>();
  slot->kind = SlotKind::kSubscribe;
  slot->on_events = std::move(on_events);
  slot->on_gap = std::move(on_gap);
  std::future<SubscribeReply> future = slot->sub_promise.get_future();
  const uint64_t id = NextRequestId();
  Dispatch(EncodeSubscribeFrame(id, dataset_id, spec), id, std::move(slot));
  return future;
}

std::future<AsyncJoinClient::SubscribeReply> AsyncJoinClient::Unsubscribe(
    uint64_t subscription_id) {
  auto slot = std::make_unique<Slot>();
  slot->kind = SlotKind::kUnsubscribe;
  slot->unsubscribe_id = subscription_id;
  std::future<SubscribeReply> future = slot->sub_promise.get_future();
  const uint64_t id = NextRequestId();
  Dispatch(EncodeUnsubscribeFrame(id, subscription_id), id, std::move(slot));
  return future;
}

void AsyncJoinClient::ReaderLoop() {
  std::vector<uint8_t> buffer;
  size_t consumed = 0;
  for (;;) {
    // Drain every complete frame already buffered.
    for (;;) {
      FrameHeader header;
      size_t frame_bytes = 0;
      WireError parse_err = WireError::kNone;
      std::span<const uint8_t> view(buffer.data() + consumed,
                                    buffer.size() - consumed);
      FrameParse parsed = TryParseFrame(view, max_frame_bytes(), &header,
                                        &frame_bytes, &parse_err);
      if (parsed == FrameParse::kProtocolError) {
        FailConnection(WireError::kNone,
                       std::string("protocol error in response header: ") +
                           ToString(parse_err));
        return;
      }
      if (parsed == FrameParse::kNeedMoreData) break;
      if (!HandleFrame(header,
                       view.subspan(kFrameHeaderBytes, header.payload_bytes))) {
        return;
      }
      consumed += frame_bytes;
    }
    if (consumed > 0) {
      buffer.erase(buffer.begin(),
                   buffer.begin() + static_cast<ptrdiff_t>(consumed));
      consumed = 0;
    }
    // The deadline arms only while an answer is owed or a frame is
    // half-read; an idle subscription-only connection waits forever.
    int timeout_ms = recv_timeout_ms();
    if (timeout_ms > 0) {
      bool waiting = !buffer.empty();
      if (!waiting) {
        std::lock_guard<std::mutex> lock(mu_);
        waiting = !pending_.empty();
      }
      if (!waiting) timeout_ms = -1;
    } else {
      timeout_ms = -1;
    }
    struct pollfd pfds[2];
    pfds[0].fd = fd_.get();
    pfds[0].events = POLLIN;
    pfds[0].revents = 0;
    pfds[1].fd = wake_fd_.valid() ? wake_fd_.get() : -1;  // -1: ignored
    pfds[1].events = POLLIN;
    pfds[1].revents = 0;
    int rc = ::poll(pfds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      FailConnection(WireError::kNone, ErrnoMessage("poll failed"));
      return;
    }
    if (rc == 0) {
      FailConnection(WireError::kTimedOut, "receive deadline exceeded");
      return;
    }
    if (pfds[1].revents != 0) {
      // WakeReader poked us: drain the counter and re-evaluate the
      // deadline arming state with the now-current pending set.
      uint64_t drained;
      while (::read(wake_fd_.get(), &drained, sizeof(drained)) > 0) {
      }
    }
    if (pfds[0].revents == 0) continue;  // wake only — nothing to read yet
    uint8_t chunk[64 * 1024];
    ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      FailConnection(WireError::kNone, ErrnoMessage("recv failed"));
      return;
    }
    if (n == 0) {
      // Peer close — or our own Close()/FailConnection shutdown.
      FailConnection(WireError::kNone, "connection closed");
      return;
    }
    buffer.insert(buffer.end(), chunk, chunk + n);
  }
}

bool AsyncJoinClient::HandleFrame(const FrameHeader& header,
                                  std::span<const uint8_t> payload) {
  // Server-initiated push frames route by subscription id, not request id.
  if (header.type == MessageType::kEvent) {
    service::EventBatch batch;
    if (!DecodeEventBatch(payload, &batch)) {
      FailConnection(WireError::kNone, "undecodable event frame");
      return false;
    }
    EventHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = subs_.find(batch.subscription_id);
      if (it != subs_.end()) handler = it->second.on_events;
    }
    // Unknown sub id: events racing an unsubscribe ack; drop silently.
    if (handler) handler(batch);
    return true;
  }
  if (header.type == MessageType::kEventGap) {
    EventGap gap;
    if (!DecodeEventGap(payload, &gap)) {
      FailConnection(WireError::kNone, "undecodable event gap frame");
      return false;
    }
    GapHandler handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = subs_.find(gap.subscription_id);
      if (it != subs_.end()) handler = it->second.on_gap;
    }
    if (handler) handler(gap);
    return true;
  }

  // Everything else answers a request. Take the slot out of the table;
  // whoever holds a slot owns completing it exactly once.
  std::unique_ptr<Slot> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(header.request_id);
    if (it != pending_.end()) {
      slot = std::move(it->second);
      pending_.erase(it);
    }
  }
  if (slot == nullptr) {
    FailConnection(WireError::kNone,
                   "response request id does not match the request");
    return false;
  }

  // A protocol violation completes the offending slot with its specific
  // message, then fails the connection (draining everything else).
  auto fail_closed = [&](const std::string& message) {
    CompleteFailure(slot.get(), WireError::kNone, message);
    FailConnection(WireError::kNone, message);
    return false;
  };

  if (header.type == MessageType::kError) {
    if (slot->kind == SlotKind::kStream && slot->next_chunk != 0) {
      return fail_closed("error frame in the middle of a pair stream");
    }
    WireError code = WireError::kNone;
    std::string message;
    if (!DecodeError(payload, &code, &message)) {
      return fail_closed("undecodable error response");
    }
    CompleteFailure(slot.get(), code, message);
    if (!IsRecoverable(code)) {
      FailConnection(code, message);
      return false;
    }
    return true;
  }

  switch (slot->kind) {
    case SlotKind::kSingle: {
      if (header.type != slot->expect) {
        return fail_closed("unexpected response type");
      }
      RawReply reply;
      reply.ok = true;
      reply.type = header.type;
      reply.payload.assign(payload.begin(), payload.end());
      slot->promise.set_value(std::move(reply));
      return true;
    }
    case SlotKind::kStream: {
      if (header.type != MessageType::kPairResult) {
        return fail_closed("unexpected response type");
      }
      PairChunk chunk;
      if (!DecodePairChunk(payload, &chunk)) {
        return fail_closed("undecodable pair chunk");
      }
      if (chunk.chunk_index != slot->next_chunk) {
        return fail_closed("pair chunk out of sequence");
      }
      if (slot->next_chunk == 0) {
        slot->total_pairs = chunk.total_pairs;
        slot->stream.pairs.reserve(chunk.total_pairs);
      } else if (chunk.total_pairs != slot->total_pairs) {
        return fail_closed("pair chunks disagree on total_pairs");
      }
      slot->stream.pairs.insert(slot->stream.pairs.end(), chunk.pairs.begin(),
                                chunk.pairs.end());
      ++slot->stream.num_chunks;
      ++slot->next_chunk;
      if (chunk.last) {
        if (slot->stream.pairs.size() != slot->total_pairs) {
          return fail_closed("pair stream does not add up to total_pairs");
        }
        slot->stream.stats = chunk.stats;
        slot->stream.trace = chunk.trace;
        slot->stream.ok = true;
        slot->stream_promise.set_value(std::move(slot->stream));
        return true;
      }
      // Stream continues: hand the slot back — unless the connection
      // failed while we processed this chunk, in which case the failure's
      // recorded reason completes it here (FailConnection can no longer
      // see it).
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!failed_) {
          pending_[header.request_id] = std::move(slot);
          return true;
        }
      }
      WireError code;
      std::string message;
      {
        std::lock_guard<std::mutex> lock(mu_);
        code = fail_code_;
        message = fail_message_;
      }
      CompleteFailure(slot.get(), code, message);
      return false;
    }
    case SlotKind::kSubscribe: {
      if (header.type != MessageType::kSubscriptionResult) {
        return fail_closed("unexpected response type");
      }
      SubscribeReply reply;
      if (!DecodeSubscriptionInfo(payload, &reply.info)) {
        return fail_closed("undecodable subscription ack");
      }
      reply.ok = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (!failed_) {
          Handlers& handlers = subs_[reply.info.id];
          handlers.on_events = std::move(slot->on_events);
          handlers.on_gap = std::move(slot->on_gap);
        }
      }
      slot->sub_promise.set_value(std::move(reply));
      return true;
    }
    case SlotKind::kUnsubscribe: {
      if (header.type != MessageType::kSubscriptionResult) {
        return fail_closed("unexpected response type");
      }
      SubscribeReply reply;
      if (!DecodeSubscriptionInfo(payload, &reply.info)) {
        return fail_closed("undecodable subscription ack");
      }
      reply.ok = true;
      {
        std::lock_guard<std::mutex> lock(mu_);
        subs_.erase(slot->unsubscribe_id);
      }
      slot->sub_promise.set_value(std::move(reply));
      return true;
    }
  }
  return true;  // unreachable; every kind returns above
}

}  // namespace actjoin::net
