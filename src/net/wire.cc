#include "net/wire.h"

#include <cstring>

#include "act/serialization.h"
#include "util/check.h"

namespace actjoin::net {

const char* ToString(WireError error) {
  switch (error) {
    case WireError::kNone:
      return "ok";
    case WireError::kMalformedFrame:
      return "malformed frame";
    case WireError::kUnsupportedVersion:
      return "unsupported protocol version";
    case WireError::kUnknownType:
      return "unknown message type";
    case WireError::kFrameTooLarge:
      return "frame exceeds size limit";
    case WireError::kMalformedPayload:
      return "malformed payload";
    case WireError::kRateLimited:
      return "admission: rate limited";
    case WireError::kInFlightBytesExceeded:
      return "admission: in-flight byte budget exceeded";
    case WireError::kQueueWatermark:
      return "admission: queue depth over watermark";
    case WireError::kQueueFull:
      return "service queue full";
    case WireError::kShuttingDown:
      return "service shutting down";
    case WireError::kUnknownDataset:
      return "unknown dataset id";
    case WireError::kDatasetDropped:
      return "dataset dropped";
    case WireError::kInvalidMutation:
      return "invalid mutation";
    case WireError::kUnknownSubscription:
      return "unknown subscription id";
    case WireError::kSubscriptionLimit:
      return "subscription limit reached";
    case WireError::kTimedOut:
      return "receive deadline exceeded";
  }
  return "unknown error";
}

bool IsRecoverable(WireError error) {
  switch (error) {
    case WireError::kMalformedFrame:
    case WireError::kUnsupportedVersion:
    case WireError::kFrameTooLarge:
    // Client-side: the deadline fired mid-stream, so byte sync is
    // indeterminate and the client closes the connection.
    case WireError::kTimedOut:
      return false;
    default:
      return true;
  }
}

FrameParse TryParseFrame(std::span<const uint8_t> buffer,
                         size_t max_frame_bytes, FrameHeader* header,
                         size_t* frame_bytes, WireError* error) {
  *header = FrameHeader{};
  if (buffer.size() < kFrameHeaderBytes) return FrameParse::kNeedMoreData;

  util::ByteReader r(buffer.first(kFrameHeaderBytes));
  uint32_t magic = r.U32();
  header->version = r.U8();
  header->type = static_cast<MessageType>(r.U8());
  header->dataset_id = r.U16();
  header->request_id = r.U64();
  header->payload_bytes = r.U32();
  uint32_t reserved2 = r.U32();

  // dataset_id is meaningful only on JOIN_BATCH and the mutation
  // requests; everywhere else the field keeps its v1 must-be-zero
  // contract so it stays available as compatible-extension space (and
  // client conformance bugs fail loudly).
  const bool routed = header->type == MessageType::kJoinBatch ||
                      header->type == MessageType::kAddPolygons ||
                      header->type == MessageType::kRemovePolygons ||
                      header->type == MessageType::kDropDataset ||
                      header->type == MessageType::kJoinDatasets ||
                      header->type == MessageType::kSubscribe;
  if (magic != kWireMagic || reserved2 != 0 ||
      (header->dataset_id != 0 && !routed)) {
    // A bad magic means the id field is garbage too; don't echo it.
    header->request_id = magic != kWireMagic ? 0 : header->request_id;
    *error = WireError::kMalformedFrame;
    return FrameParse::kProtocolError;
  }
  if (header->version != kWireVersion) {
    *error = WireError::kUnsupportedVersion;
    return FrameParse::kProtocolError;
  }
  if (kFrameHeaderBytes + static_cast<size_t>(header->payload_bytes) >
      max_frame_bytes) {
    *error = WireError::kFrameTooLarge;
    return FrameParse::kProtocolError;
  }
  size_t total = kFrameHeaderBytes + header->payload_bytes;
  if (buffer.size() < total) return FrameParse::kNeedMoreData;
  *frame_bytes = total;
  return FrameParse::kFrame;
}

namespace {

// Single-buffer frame construction: write the header with a zero length
// placeholder, append the payload in place, then patch the length — no
// second serialize-and-copy of a potentially multi-MB payload.
void BeginFrame(util::ByteWriter* w, MessageType type, uint64_t request_id,
                uint16_t dataset_id = 0) {
  w->PutU32(kWireMagic);
  w->PutU8(kWireVersion);
  w->PutU8(static_cast<uint8_t>(type));
  w->PutU16(dataset_id);
  w->PutU64(request_id);
  w->PutU32(0);  // payload length, patched by FinishFrame
  w->PutU32(0);
}

std::vector<uint8_t> FinishFrame(util::ByteWriter&& w) {
  w.PatchU32(16, static_cast<uint32_t>(w.size() - kFrameHeaderBytes));
  return std::move(w).Take();
}

}  // namespace

std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t request_id,
                                 std::span<const uint8_t> payload) {
  util::ByteWriter w(kFrameHeaderBytes + payload.size());
  BeginFrame(&w, type, request_id);
  w.PutBytes(payload.data(), payload.size());
  return FinishFrame(std::move(w));
}

// QueryBatch payload:
//   u8 mode (0 = approximate, 1 = exact), u8 flags (bit 0: trace; was
//   reserved before v4), u16 reserved,
//   u32 num_points, u64 cell_ids[num_points], f64 {x, y}[num_points]
void AppendQueryBatch(const service::QueryBatch& batch, util::ByteWriter* w) {
  ACT_CHECK_MSG(batch.cell_ids.size() == batch.points.size(),
                "QueryBatch cell_ids and points must be parallel arrays");
  w->PutU8(batch.mode == act::JoinMode::kExact ? 1 : 0);
  w->PutU8(batch.trace ? 1 : 0);
  w->PutU16(0);
  w->PutU32(static_cast<uint32_t>(batch.points.size()));
  for (uint64_t id : batch.cell_ids) w->PutU64(id);
  for (const geom::Point& p : batch.points) {
    w->PutF64(p.x);
    w->PutF64(p.y);
  }
}

bool DecodeQueryBatch(std::span<const uint8_t> payload,
                      service::QueryBatch* out) {
  util::ByteReader r(payload);
  uint8_t mode = r.U8();
  uint8_t flags = r.U8();
  uint16_t pad16 = r.U16();
  uint32_t n = r.U32();
  if (!r.ok() || mode > 1 || flags > 1 || pad16 != 0) return false;
  // Exact-size check before allocating: a forged count cannot make us
  // reserve more than the payload that actually arrived.
  if (r.remaining() != static_cast<size_t>(n) * 24) return false;
  out->mode = mode == 1 ? act::JoinMode::kExact : act::JoinMode::kApproximate;
  out->trace = (flags & 1) != 0;
  out->cell_ids.resize(n);
  for (uint32_t i = 0; i < n; ++i) out->cell_ids[i] = r.U64();
  out->points.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->points[i].x = r.F64();
    out->points[i].y = r.F64();
  }
  return r.AtEnd();
}

// JoinResult payload:
//   u64 epoch, f64 queue_wait_ms, f64 service_ms, then act::JoinStats as
//   8 u64 counters, f64 seconds, u64 counts_len, u64 counts[], then (v4)
//   u8 traced + u8 flags + u16 reserved, and — only when traced — u64
//   trace request id + kNumTraceStages f64 stage times in microseconds
//   (stage order per service::TraceStage; the respond slot is last,
//   written 0 by the encoder and patched in place via PatchRespondStage).
//   flags bit 0 (v7, traced only): a hardware-counter section follows the
//   stage times — u8 available + u8[7] reserved, then kNumTraceStages ×
//   (u64 cycles, u64 instructions, u64 llc_misses); the respond triple is
//   last and patched via PatchRespondStageWithCounters.
void AppendJoinResult(const service::JoinResult& result, util::ByteWriter* w) {
  w->PutU64(result.epoch);
  w->PutF64(result.queue_wait_ms);
  w->PutF64(result.service_ms);
  const act::JoinStats& s = result.stats;
  w->PutU64(s.num_points);
  w->PutU64(s.matched_points);
  w->PutU64(s.result_pairs);
  w->PutU64(s.true_hit_refs);
  w->PutU64(s.candidate_refs);
  w->PutU64(s.pip_tests);
  w->PutU64(s.pip_hits);
  w->PutU64(s.sth_points);
  w->PutF64(s.seconds);
  w->PutU64(s.counts.size());
  for (uint64_t c : s.counts) w->PutU64(c);
  const bool counters = result.trace.enabled && result.trace.counters_enabled;
  w->PutU8(result.trace.enabled ? 1 : 0);
  w->PutU8(counters ? 1 : 0);
  w->PutU16(0);
  if (result.trace.enabled) {
    w->PutU64(result.trace.request_id);
    for (double us : result.trace.stage_us) w->PutF64(us);
    if (counters) {
      w->PutU8(result.trace.counters_available ? 1 : 0);
      for (int i = 0; i < 7; ++i) w->PutU8(0);
      for (const util::StageCounterSample& c : result.trace.stage_counters) {
        w->PutU64(c.cycles);
        w->PutU64(c.instructions);
        w->PutU64(c.llc_misses);
      }
    }
  }
}

bool DecodeJoinResult(std::span<const uint8_t> payload,
                      service::JoinResult* out) {
  util::ByteReader r(payload);
  out->epoch = r.U64();
  out->queue_wait_ms = r.F64();
  out->service_ms = r.F64();
  act::JoinStats& s = out->stats;
  s.num_points = r.U64();
  s.matched_points = r.U64();
  s.result_pairs = r.U64();
  s.true_hit_refs = r.U64();
  s.candidate_refs = r.U64();
  s.pip_tests = r.U64();
  s.pip_hits = r.U64();
  s.sth_points = r.U64();
  s.seconds = r.F64();
  uint64_t counts_len = r.U64();
  if (!r.ok()) return false;
  // Divide, don't multiply: counts_len is attacker-controlled and
  // counts_len * 8 can wrap past the size check into a giant resize. The
  // v4 trailer after the counts is 4 bytes (traced flag + flags + pad),
  // plus the trace id and stage array when traced, plus the counter
  // section when flags bit 0 is set (v7).
  const size_t rem = r.remaining();
  constexpr size_t kTraceBytes = 8 + 8 * service::kNumTraceStages;
  constexpr size_t kCounterBytes = 8 + 24 * service::kNumTraceStages;
  if (rem < 4 || counts_len > (rem - 4) / 8) return false;
  const size_t counts_bytes = static_cast<size_t>(counts_len) * 8;
  s.counts.resize(counts_len);
  for (uint64_t i = 0; i < counts_len; ++i) s.counts[i] = r.U64();
  uint8_t traced = r.U8();
  uint8_t flags = r.U8();
  uint16_t pad16 = r.U16();
  if (!r.ok() || traced > 1 || flags > 1 || pad16 != 0) return false;
  // The counter section rides the trace: flags bit 0 without traced is a
  // conformance error, not a layout this decoder will guess at.
  if (flags == 1 && traced != 1) return false;
  const size_t want = counts_bytes + 4 + (traced == 1 ? kTraceBytes : 0) +
                      (flags == 1 ? kCounterBytes : 0);
  if (rem != want) return false;
  out->trace = service::TraceContext{};
  if (traced == 1) {
    out->trace.enabled = true;
    out->trace.request_id = r.U64();
    for (double& us : out->trace.stage_us) us = r.F64();
  }
  if (flags == 1) {
    uint8_t available = r.U8();
    if (available > 1) return false;
    for (int i = 0; i < 7; ++i) {
      if (r.U8() != 0) return false;
    }
    out->trace.counters_enabled = true;
    out->trace.counters_available = available == 1;
    for (util::StageCounterSample& c : out->trace.stage_counters) {
      c.cycles = r.U64();
      c.instructions = r.U64();
      c.llc_misses = r.U64();
    }
  }
  return r.ok() && r.AtEnd();
}

// ServiceStats payload: the struct's fields in declaration order, then the
// per-peer admission table (u32 count, per peer: length-prefixed key, u64
// admitted, u64 rate_limited), then (v4) f64 queue_wait_p999_ms, f64
// service_p999_ms and the per-dataset split table (u32 count, per split:
// u16 id, u16 flags (bit 0: dropped), u64 epoch, u64 points_served, u64
// completed, length-prefixed name).
void AppendServiceStats(const service::ServiceStats& stats,
                        util::ByteWriter* w) {
  w->PutU64(stats.completed_requests);
  w->PutU64(stats.rejected_requests);
  w->PutU64(stats.rejected_queue_full);
  w->PutU64(stats.rejected_shutdown);
  w->PutU64(stats.rejected_unknown_dataset);
  w->PutU64(stats.rejected_rate_limit);
  w->PutU64(stats.rejected_inflight_bytes);
  w->PutU64(stats.rejected_queue_watermark);
  w->PutU64(stats.cache_hits);
  w->PutU64(stats.cache_misses);
  w->PutU64(stats.points_served);
  w->PutF64(stats.uptime_s);
  w->PutF64(stats.qps);
  w->PutF64(stats.points_per_s);
  w->PutF64(stats.queue_wait_p50_ms);
  w->PutF64(stats.queue_wait_p99_ms);
  w->PutF64(stats.service_p50_ms);
  w->PutF64(stats.service_p99_ms);
  w->PutU64(stats.queue_depth);
  w->PutU64(stats.epoch);
  w->PutU64(stats.num_datasets);
  w->PutU64(stats.mutations_applied);
  w->PutU64(stats.rejected_mutations);
  w->PutU32(static_cast<uint32_t>(stats.peers.size()));
  for (const service::PeerAdmissionStats& peer : stats.peers) {
    w->PutString(peer.peer);
    w->PutU64(peer.admitted);
    w->PutU64(peer.rate_limited);
  }
  w->PutF64(stats.queue_wait_p999_ms);
  w->PutF64(stats.service_p999_ms);
  w->PutU32(static_cast<uint32_t>(stats.dataset_splits.size()));
  for (const service::DatasetSplit& split : stats.dataset_splits) {
    w->PutU16(split.id);
    w->PutU16(split.dropped ? 1 : 0);
    w->PutU64(split.epoch);
    w->PutU64(split.points_served);
    w->PutU64(split.completed_requests);
    w->PutString(split.name);
  }
  // v6 continuous-query figures, appended at the tail like the v4 block.
  w->PutU64(stats.active_subscriptions);
  w->PutU64(stats.outstanding_requests);
  w->PutU64(stats.events_pushed);
  w->PutU64(stats.events_dropped);
}

bool DecodeServiceStats(std::span<const uint8_t> payload,
                        service::ServiceStats* out) {
  util::ByteReader r(payload);
  out->completed_requests = r.U64();
  out->rejected_requests = r.U64();
  out->rejected_queue_full = r.U64();
  out->rejected_shutdown = r.U64();
  out->rejected_unknown_dataset = r.U64();
  out->rejected_rate_limit = r.U64();
  out->rejected_inflight_bytes = r.U64();
  out->rejected_queue_watermark = r.U64();
  out->cache_hits = r.U64();
  out->cache_misses = r.U64();
  out->points_served = r.U64();
  out->uptime_s = r.F64();
  out->qps = r.F64();
  out->points_per_s = r.F64();
  out->queue_wait_p50_ms = r.F64();
  out->queue_wait_p99_ms = r.F64();
  out->service_p50_ms = r.F64();
  out->service_p99_ms = r.F64();
  out->queue_depth = static_cast<size_t>(r.U64());
  out->epoch = r.U64();
  out->num_datasets = r.U64();
  out->mutations_applied = r.U64();
  out->rejected_mutations = r.U64();
  uint32_t num_peers = r.U32();
  // A peer entry costs >= 20 payload bytes; bounding by what actually
  // arrived keeps a forged count from reserving attacker-sized buffers.
  if (!r.ok() || num_peers > r.remaining() / 20 + 1) return false;
  out->peers.clear();
  out->peers.reserve(num_peers);
  for (uint32_t i = 0; i < num_peers; ++i) {
    service::PeerAdmissionStats peer;
    peer.peer = r.String();
    peer.admitted = r.U64();
    peer.rate_limited = r.U64();
    if (!r.ok()) return false;
    out->peers.push_back(std::move(peer));
  }
  out->queue_wait_p999_ms = r.F64();
  out->service_p999_ms = r.F64();
  uint32_t num_splits = r.U32();
  // A split entry costs >= 32 payload bytes (forged-count bound, as above).
  if (!r.ok() || num_splits > r.remaining() / 32 + 1) return false;
  out->dataset_splits.clear();
  out->dataset_splits.reserve(num_splits);
  for (uint32_t i = 0; i < num_splits; ++i) {
    service::DatasetSplit split;
    split.id = r.U16();
    uint16_t flags = r.U16();
    split.epoch = r.U64();
    split.points_served = r.U64();
    split.completed_requests = r.U64();
    split.name = r.String();
    if (!r.ok() || flags > 1) return false;
    split.dropped = (flags & 1) != 0;
    out->dataset_splits.push_back(std::move(split));
  }
  out->active_subscriptions = r.U64();
  out->outstanding_requests = r.U64();
  out->events_pushed = r.U64();
  out->events_dropped = r.U64();
  return r.AtEnd();
}

// DatasetInfo payload: u32 count, per dataset: u16 id, u16 flags (bit 0:
// dropped; was reserved in v2), u32 num_shards, u64 epoch, u64
// num_polygons, length-prefixed name.
void AppendDatasetList(const std::vector<service::DatasetInfo>& datasets,
                       util::ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(datasets.size()));
  for (const service::DatasetInfo& ds : datasets) {
    w->PutU16(ds.id);
    w->PutU16(ds.dropped ? 1 : 0);
    w->PutU32(ds.num_shards);
    w->PutU64(ds.epoch);
    w->PutU64(ds.num_polygons);
    w->PutString(ds.name);
  }
}

bool DecodeDatasetList(std::span<const uint8_t> payload,
                       std::vector<service::DatasetInfo>* out) {
  util::ByteReader r(payload);
  uint32_t count = r.U32();
  // An entry costs >= 28 payload bytes (see the forged-count note above).
  if (!r.ok() || count > r.remaining() / 28 + 1) return false;
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    service::DatasetInfo ds;
    ds.id = r.U16();
    uint16_t flags = r.U16();
    ds.num_shards = r.U32();
    ds.epoch = r.U64();
    ds.num_polygons = r.U64();
    ds.name = r.String();
    if (!r.ok() || flags > 1) return false;
    ds.dropped = (flags & 1) != 0;
    out->push_back(std::move(ds));
  }
  return r.AtEnd();
}

// ADD_POLYGONS payload: exactly the act polygons blob (shared with the
// snapshot store's delta records), so the server can hand the decoded
// polygons straight to the mutation path.
void AppendAddPolygons(const std::vector<geom::Polygon>& polygons,
                       util::ByteWriter* w) {
  act::AppendPolygonsBlob(polygons, w);
}

bool DecodeAddPolygons(std::span<const uint8_t> payload,
                       std::vector<geom::Polygon>* out) {
  act::LoadError error = act::LoadError::kNone;
  return act::ParsePolygonsBlob(payload, out, &error);
}

// REMOVE_POLYGONS payload: u32 count, then count u32 global polygon ids.
void AppendRemovePolygons(const std::vector<uint32_t>& ids,
                          util::ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(ids.size()));
  for (uint32_t id : ids) w->PutU32(id);
}

bool DecodeRemovePolygons(std::span<const uint8_t> payload,
                          std::vector<uint32_t>* out) {
  util::ByteReader r(payload);
  uint32_t n = r.U32();
  // Exact-size check before allocating (see DecodeQueryBatch).
  if (!r.ok() || r.remaining() != static_cast<size_t>(n) * 4) return false;
  out->resize(n);
  for (uint32_t i = 0; i < n; ++i) (*out)[i] = r.U32();
  return r.AtEnd();
}

// MUTATE_RESULT payload: u8 op, u8[3] reserved, u32 first_id, u64 epoch,
// u64 num_polygons.
void AppendMutationAck(const MutationAck& ack, util::ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(ack.op));
  w->PutU8(0);
  w->PutU16(0);
  w->PutU32(ack.first_id);
  w->PutU64(ack.epoch);
  w->PutU64(ack.num_polygons);
}

bool DecodeMutationAck(std::span<const uint8_t> payload, MutationAck* out) {
  util::ByteReader r(payload);
  uint8_t op = r.U8();
  uint8_t pad8 = r.U8();
  uint16_t pad16 = r.U16();
  out->first_id = r.U32();
  out->epoch = r.U64();
  out->num_polygons = r.U64();
  if (!r.ok() || !r.AtEnd() || pad8 != 0 || pad16 != 0) return false;
  if (op != static_cast<uint8_t>(MessageType::kAddPolygons) &&
      op != static_cast<uint8_t>(MessageType::kRemovePolygons) &&
      op != static_cast<uint8_t>(MessageType::kDropDataset)) {
    return false;
  }
  out->op = static_cast<MessageType>(op);
  return true;
}

// JOIN_DATASETS payload: u16 dataset_b, u8 mode, u8 flags (bit 0: trace,
// v7), u32 page_size (dataset_a rides the header's dataset_id).
void AppendJoinDatasets(const JoinDatasetsRequest& req, util::ByteWriter* w) {
  w->PutU16(req.dataset_b);
  w->PutU8(req.mode);
  w->PutU8(req.trace ? 1 : 0);
  w->PutU32(req.page_size);
}

bool DecodeJoinDatasets(std::span<const uint8_t> payload,
                        JoinDatasetsRequest* out) {
  util::ByteReader r(payload);
  out->dataset_b = r.U16();
  out->mode = r.U8();
  uint8_t flags = r.U8();
  out->page_size = r.U32();
  out->trace = (flags & 1) != 0;
  // mode is an enum on the wire: reject unknown values instead of letting
  // a future client silently run the wrong predicate. Same for unknown
  // flag bits — a client asking for an extension this server does not
  // speak must fail typed.
  return r.ok() && r.AtEnd() && (flags & ~uint8_t{1}) == 0 && out->mode <= 1;
}

// PAIR_RESULT payload: u32 chunk_index, u8 flags (bit 0: last; bit 1:
// traced, v7, last-chunk-only), u8[3] reserved, u64 total_pairs, u32
// num_pairs, num_pairs x (u32, u32), then on the last chunk the stats
// tail, then when traced the trace tail (u64 trace request id +
// kNumCrossMatchStages f64 stage micros, stream slot last).
void AppendPairChunk(const PairChunk& chunk, util::ByteWriter* w) {
  const bool traced = chunk.last && chunk.trace.enabled;
  w->PutU32(chunk.chunk_index);
  w->PutU8(static_cast<uint8_t>((chunk.last ? 1 : 0) | (traced ? 2 : 0)));
  w->PutU8(0);
  w->PutU16(0);
  w->PutU64(chunk.total_pairs);
  w->PutU32(static_cast<uint32_t>(chunk.pairs.size()));
  for (const auto& [a, b] : chunk.pairs) {
    w->PutU32(a);
    w->PutU32(b);
  }
  if (chunk.last) {
    const PairChunkStats& s = chunk.stats;
    w->PutU64(s.candidate_pairs);
    w->PutU64(s.refined_pairs);
    w->PutU64(s.pruned_pairs);
    w->PutU32(s.max_depth);
    w->PutU32(0);
    w->PutU64(s.epoch_a);
    w->PutU64(s.epoch_b);
    w->PutF64(s.service_us);
    w->PutF64(s.queue_wait_us);
  }
  if (traced) {
    w->PutU64(chunk.trace.request_id);
    for (double us : chunk.trace.stage_us) w->PutF64(us);
  }
}

bool DecodePairChunk(std::span<const uint8_t> payload, PairChunk* out) {
  util::ByteReader r(payload);
  out->chunk_index = r.U32();
  uint8_t flags = r.U8();
  uint8_t pad8 = r.U8();
  uint16_t pad16 = r.U16();
  out->total_pairs = r.U64();
  uint32_t n = r.U32();
  if (!r.ok() || pad8 != 0 || pad16 != 0 || (flags & ~uint8_t{3}) != 0) {
    return false;
  }
  out->last = (flags & 1) != 0;
  const bool traced = (flags & 2) != 0;
  // The trace tail rides the stats tail: a traced non-last chunk is a
  // conformance error.
  if (traced && !out->last) return false;
  constexpr size_t kCrossTraceBytes = 8 + 8 * join2::kNumCrossMatchStages;
  // Forged-count bound: the pair array must fit what is actually left
  // (divide, don't multiply — n * 8 could wrap).
  const size_t tail =
      (out->last ? 64 : 0) + (traced ? kCrossTraceBytes : 0);
  if (r.remaining() < tail || (r.remaining() - tail) / 8 < n ||
      (r.remaining() - tail) != static_cast<size_t>(n) * 8) {
    return false;
  }
  out->pairs.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t a = r.U32();
    uint32_t b = r.U32();
    out->pairs[i] = {a, b};
  }
  out->stats = PairChunkStats{};
  if (out->last) {
    PairChunkStats& s = out->stats;
    s.candidate_pairs = r.U64();
    s.refined_pairs = r.U64();
    s.pruned_pairs = r.U64();
    s.max_depth = r.U32();
    uint32_t pad32 = r.U32();
    s.epoch_a = r.U64();
    s.epoch_b = r.U64();
    s.service_us = r.F64();
    s.queue_wait_us = r.F64();
    if (pad32 != 0) return false;
  }
  out->trace = join2::CrossMatchTrace{};
  if (traced) {
    out->trace.enabled = true;
    out->trace.request_id = r.U64();
    for (double& us : out->trace.stage_us) us = r.F64();
  }
  return r.ok() && r.AtEnd();
}

void AppendSubscribe(const service::SubscriptionSpec& spec,
                     util::ByteWriter* w) {
  using Selector = service::SubscriptionSpec::Selector;
  w->PutU8(static_cast<uint8_t>(spec.selector));
  w->PutU8(static_cast<uint8_t>(spec.mode));
  w->PutU16(0);
  switch (spec.selector) {
    case Selector::kAll:
      break;
    case Selector::kPolygonIds:
      w->PutU32(static_cast<uint32_t>(spec.polygon_ids.size()));
      for (uint32_t id : spec.polygon_ids) w->PutU32(id);
      break;
    case Selector::kCellRange:
      w->PutU64(spec.cell_lo);
      w->PutU64(spec.cell_hi);
      break;
  }
}

bool DecodeSubscribe(std::span<const uint8_t> payload,
                     service::SubscriptionSpec* out) {
  using Selector = service::SubscriptionSpec::Selector;
  util::ByteReader r(payload);
  const uint8_t selector = r.U8();
  const uint8_t mode = r.U8();
  const uint16_t reserved = r.U16();
  if (!r.ok() || selector > 2 || mode > 2 || reserved != 0) return false;
  *out = service::SubscriptionSpec{};
  out->selector = static_cast<Selector>(selector);
  out->mode = static_cast<service::SubscriptionMode>(mode);
  switch (out->selector) {
    case Selector::kAll:
      break;
    case Selector::kPolygonIds: {
      const uint32_t count = r.U32();
      // 4 payload bytes per id: a forged count cannot reserve more than
      // what actually arrived.
      if (!r.ok() || count == 0 || count > r.remaining() / 4) return false;
      out->polygon_ids.reserve(count);
      for (uint32_t i = 0; i < count; ++i) out->polygon_ids.push_back(r.U32());
      break;
    }
    case Selector::kCellRange:
      out->cell_lo = r.U64();
      out->cell_hi = r.U64();
      if (!r.ok() || out->cell_lo > out->cell_hi) return false;
      break;
  }
  return r.ok() && r.AtEnd();
}

bool DecodeUnsubscribe(std::span<const uint8_t> payload,
                       uint64_t* subscription_id) {
  util::ByteReader r(payload);
  *subscription_id = r.U64();
  return r.ok() && r.AtEnd();
}

void AppendSubscriptionInfo(const service::SubscriptionInfo& info,
                            util::ByteWriter* w) {
  w->PutU64(info.id);
  w->PutU64(info.epoch);
  w->PutU32(info.watched_polygons);
  w->PutU32(info.coverage_intervals);
}

bool DecodeSubscriptionInfo(std::span<const uint8_t> payload,
                            service::SubscriptionInfo* out) {
  util::ByteReader r(payload);
  out->id = r.U64();
  out->epoch = r.U64();
  out->watched_polygons = r.U32();
  out->coverage_intervals = r.U32();
  return r.ok() && r.AtEnd();
}

void AppendEventBatch(const service::EventBatch& batch, util::ByteWriter* w) {
  w->PutU64(batch.subscription_id);
  w->PutU64(batch.first_seq);
  w->PutU64(batch.epoch);
  w->PutU32(static_cast<uint32_t>(batch.events.size()));
  w->PutU32(0);
  for (const service::GeoEvent& e : batch.events) {
    w->PutU8(static_cast<uint8_t>(e.kind));
    w->PutU8(0);
    w->PutU16(0);
    w->PutU32(e.track_id);
    w->PutU32(e.polygon_id);
  }
}

bool DecodeEventBatch(std::span<const uint8_t> payload,
                      service::EventBatch* out) {
  util::ByteReader r(payload);
  out->subscription_id = r.U64();
  out->first_seq = r.U64();
  out->epoch = r.U64();
  const uint32_t count = r.U32();
  const uint32_t reserved = r.U32();
  // 12 payload bytes per event (forged-count bound, as elsewhere).
  if (!r.ok() || reserved != 0 || count > r.remaining() / 12) return false;
  out->events.clear();
  out->events.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    const uint8_t kind = r.U8();
    const uint8_t pad8 = r.U8();
    const uint16_t pad16 = r.U16();
    service::GeoEvent e;
    e.kind = static_cast<service::GeoEventKind>(kind);
    e.track_id = r.U32();
    e.polygon_id = r.U32();
    if (!r.ok() || kind > 1 || pad8 != 0 || pad16 != 0) return false;
    out->events.push_back(e);
  }
  return r.AtEnd();
}

void AppendEventGap(const EventGap& gap, util::ByteWriter* w) {
  w->PutU64(gap.subscription_id);
  w->PutU64(gap.first_skipped_seq);
  w->PutU64(gap.last_skipped_seq);
}

bool DecodeEventGap(std::span<const uint8_t> payload, EventGap* out) {
  util::ByteReader r(payload);
  out->subscription_id = r.U64();
  out->first_skipped_seq = r.U64();
  out->last_skipped_seq = r.U64();
  return r.ok() && r.AtEnd() &&
         out->first_skipped_seq <= out->last_skipped_seq;
}

MetricsReport BuildMetricsReport(const util::MetricsRegistry& registry,
                                 const service::SlowQueryLog* slow_queries) {
  MetricsReport report;
  for (const util::CollectedMetric& m : registry.Collect()) {
    const uint8_t kind = static_cast<uint8_t>(m.kind);
    for (const util::MetricSeries& s : m.series) {
      if (m.kind == util::MetricKind::kHistogram) {
        const util::LatencyHistogram& h = s.hist;
        report.samples.push_back(
            {m.name + "_count", s.labels, kind,
             static_cast<double>(h.count())});
        report.samples.push_back(
            {m.name + "_sum", s.labels, kind, h.sum_micros() / 1e6});
        report.samples.push_back(
            {m.name + "_p50", s.labels, kind, h.P50Micros() / 1e6});
        report.samples.push_back(
            {m.name + "_p99", s.labels, kind, h.P99Micros() / 1e6});
        report.samples.push_back(
            {m.name + "_p999", s.labels, kind, h.P999Micros() / 1e6});
      } else {
        report.samples.push_back({m.name, s.labels, kind, s.value});
      }
    }
  }
  report.events = registry.events().Snapshot();
  if (slow_queries != nullptr) report.slow_queries = slow_queries->TopK();
  return report;
}

// Binary metrics form: three length-prefixed tables —
//   u32 num_samples, per sample: string name, string labels, u8 kind,
//     u8[3] reserved, f64 value;
//   u32 num_events, per event: u64 seq, f64 uptime_s, string kind,
//     string subject, string detail;
//   u32 num_slow, per entry: u64 request_id, u16 dataset_id, u16 reserved,
//     u64 num_points, u64 epoch, f64 queue_wait_us, f64 service_us.
void AppendMetricsReport(const MetricsReport& report, util::ByteWriter* w) {
  w->PutU32(static_cast<uint32_t>(report.samples.size()));
  for (const MetricSample& s : report.samples) {
    w->PutString(s.name);
    w->PutString(s.labels);
    w->PutU8(s.kind);
    w->PutU8(0);
    w->PutU16(0);
    w->PutF64(s.value);
  }
  w->PutU32(static_cast<uint32_t>(report.events.size()));
  for (const util::MetricEvent& e : report.events) {
    w->PutU64(e.seq);
    w->PutF64(e.uptime_s);
    w->PutString(e.kind);
    w->PutString(e.subject);
    w->PutString(e.detail);
  }
  w->PutU32(static_cast<uint32_t>(report.slow_queries.size()));
  for (const service::SlowQuery& q : report.slow_queries) {
    w->PutU64(q.request_id);
    w->PutU16(q.dataset_id);
    w->PutU16(0);
    w->PutU64(q.num_points);
    w->PutU64(q.epoch);
    w->PutF64(q.queue_wait_us);
    w->PutF64(q.service_us);
  }
}

bool DecodeMetricsReport(std::span<const uint8_t> payload,
                         MetricsReport* out) {
  util::ByteReader r(payload);
  uint32_t num_samples = r.U32();
  // A sample costs >= 20 payload bytes (forged-count bound, as elsewhere).
  if (!r.ok() || num_samples > r.remaining() / 20 + 1) return false;
  out->samples.clear();
  out->samples.reserve(num_samples);
  for (uint32_t i = 0; i < num_samples; ++i) {
    MetricSample s;
    s.name = r.String();
    s.labels = r.String();
    s.kind = r.U8();
    uint8_t pad8 = r.U8();
    uint16_t pad16 = r.U16();
    s.value = r.F64();
    if (!r.ok() || s.kind > 2 || pad8 != 0 || pad16 != 0) return false;
    out->samples.push_back(std::move(s));
  }
  uint32_t num_events = r.U32();
  // An event costs >= 28 payload bytes.
  if (!r.ok() || num_events > r.remaining() / 28 + 1) return false;
  out->events.clear();
  out->events.reserve(num_events);
  for (uint32_t i = 0; i < num_events; ++i) {
    util::MetricEvent e;
    e.seq = r.U64();
    e.uptime_s = r.F64();
    e.kind = r.String();
    e.subject = r.String();
    e.detail = r.String();
    if (!r.ok()) return false;
    out->events.push_back(std::move(e));
  }
  uint32_t num_slow = r.U32();
  // A slow-query entry costs exactly 44 payload bytes.
  if (!r.ok() || num_slow > r.remaining() / 44 + 1) return false;
  out->slow_queries.clear();
  out->slow_queries.reserve(num_slow);
  for (uint32_t i = 0; i < num_slow; ++i) {
    service::SlowQuery q;
    q.request_id = r.U64();
    q.dataset_id = r.U16();
    uint16_t pad16 = r.U16();
    q.num_points = r.U64();
    q.epoch = r.U64();
    q.queue_wait_us = r.F64();
    q.service_us = r.F64();
    if (!r.ok() || pad16 != 0) return false;
    out->slow_queries.push_back(q);
  }
  return r.AtEnd();
}

bool DecodeGetMetrics(std::span<const uint8_t> payload,
                      MetricsFormat* format) {
  util::ByteReader r(payload);
  uint8_t fmt = r.U8();
  uint8_t pad8 = r.U8();
  uint16_t pad16 = r.U16();
  if (!r.ok() || !r.AtEnd() || fmt > 1 || pad8 != 0 || pad16 != 0) {
    return false;
  }
  *format = static_cast<MetricsFormat>(fmt);
  return true;
}

bool DecodeMetricsResult(std::span<const uint8_t> payload,
                         MetricsFormat* format, std::string* text,
                         MetricsReport* report) {
  util::ByteReader r(payload);
  uint8_t fmt = r.U8();
  uint8_t pad8 = r.U8();
  uint16_t pad16 = r.U16();
  if (!r.ok() || fmt > 1 || pad8 != 0 || pad16 != 0) return false;
  *format = static_cast<MetricsFormat>(fmt);
  if (*format == MetricsFormat::kText) {
    *text = r.String();
    return r.ok() && r.AtEnd();
  }
  return DecodeMetricsReport(payload.subspan(4), report);
}

// Error payload: u16 code, u16 reserved, length-prefixed message.
bool DecodeError(std::span<const uint8_t> payload, WireError* code,
                 std::string* message) {
  util::ByteReader r(payload);
  *code = static_cast<WireError>(r.U16());
  uint16_t reserved = r.U16();
  *message = r.String();
  return r.AtEnd() && reserved == 0;
}

std::vector<uint8_t> EncodeJoinBatchFrame(uint64_t request_id,
                                          const service::QueryBatch& batch) {
  util::ByteWriter w(kFrameHeaderBytes + 8 + batch.points.size() * 24);
  BeginFrame(&w, MessageType::kJoinBatch, request_id, batch.dataset_id);
  AppendQueryBatch(batch, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeJoinResultFrame(uint64_t request_id,
                                           const service::JoinResult& result) {
  util::ByteWriter w(kFrameHeaderBytes + 96 + result.stats.counts.size() * 8);
  BeginFrame(&w, MessageType::kJoinResult, request_id);
  AppendJoinResult(result, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeStatsResultFrame(
    uint64_t request_id, const service::ServiceStats& stats) {
  util::ByteWriter w(kFrameHeaderBytes + 200 + stats.peers.size() * 48);
  BeginFrame(&w, MessageType::kStatsResult, request_id);
  AppendServiceStats(stats, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeDatasetListFrame(
    uint64_t request_id, const std::vector<service::DatasetInfo>& datasets) {
  util::ByteWriter w(kFrameHeaderBytes + 8 + datasets.size() * 64);
  BeginFrame(&w, MessageType::kDatasetList, request_id);
  AppendDatasetList(datasets, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeAddPolygonsFrame(
    uint64_t request_id, uint16_t dataset_id,
    const std::vector<geom::Polygon>& polygons) {
  util::ByteWriter w(kFrameHeaderBytes + 16 + polygons.size() * 64);
  BeginFrame(&w, MessageType::kAddPolygons, request_id, dataset_id);
  AppendAddPolygons(polygons, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeRemovePolygonsFrame(
    uint64_t request_id, uint16_t dataset_id,
    const std::vector<uint32_t>& ids) {
  util::ByteWriter w(kFrameHeaderBytes + 8 + ids.size() * 4);
  BeginFrame(&w, MessageType::kRemovePolygons, request_id, dataset_id);
  AppendRemovePolygons(ids, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeDropDatasetFrame(uint64_t request_id,
                                            uint16_t dataset_id) {
  util::ByteWriter w(kFrameHeaderBytes);
  BeginFrame(&w, MessageType::kDropDataset, request_id, dataset_id);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeJoinDatasetsFrame(uint64_t request_id,
                                             uint16_t dataset_a,
                                             const JoinDatasetsRequest& req) {
  util::ByteWriter w(kFrameHeaderBytes + 8);
  BeginFrame(&w, MessageType::kJoinDatasets, request_id, dataset_a);
  AppendJoinDatasets(req, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodePairChunkFrame(uint64_t request_id,
                                          const PairChunk& chunk) {
  util::ByteWriter w(kFrameHeaderBytes + 20 + chunk.pairs.size() * 8 +
                     (chunk.last ? 64 : 0) +
                     (chunk.last && chunk.trace.enabled ? 64 : 0));
  BeginFrame(&w, MessageType::kPairResult, request_id);
  AppendPairChunk(chunk, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeMutateResultFrame(uint64_t request_id,
                                             const MutationAck& ack) {
  util::ByteWriter w(kFrameHeaderBytes + 24);
  BeginFrame(&w, MessageType::kMutateResult, request_id);
  AppendMutationAck(ack, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeSubscribeFrame(
    uint64_t request_id, uint16_t dataset_id,
    const service::SubscriptionSpec& spec) {
  util::ByteWriter w(kFrameHeaderBytes + 24 + spec.polygon_ids.size() * 4);
  BeginFrame(&w, MessageType::kSubscribe, request_id, dataset_id);
  AppendSubscribe(spec, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeUnsubscribeFrame(uint64_t request_id,
                                            uint64_t subscription_id) {
  util::ByteWriter w(kFrameHeaderBytes + 8);
  BeginFrame(&w, MessageType::kUnsubscribe, request_id);
  w.PutU64(subscription_id);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeSubscriptionResultFrame(
    uint64_t request_id, const service::SubscriptionInfo& info) {
  util::ByteWriter w(kFrameHeaderBytes + 24);
  BeginFrame(&w, MessageType::kSubscriptionResult, request_id);
  AppendSubscriptionInfo(info, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeEventFrame(const service::EventBatch& batch) {
  util::ByteWriter w(kFrameHeaderBytes + 28 + batch.events.size() * 12);
  BeginFrame(&w, MessageType::kEvent, /*request_id=*/0);
  AppendEventBatch(batch, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeEventGapFrame(const EventGap& gap) {
  util::ByteWriter w(kFrameHeaderBytes + 24);
  BeginFrame(&w, MessageType::kEventGap, /*request_id=*/0);
  AppendEventGap(gap, &w);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeGetMetricsFrame(uint64_t request_id,
                                           MetricsFormat format) {
  util::ByteWriter w(kFrameHeaderBytes + 4);
  BeginFrame(&w, MessageType::kGetMetrics, request_id);
  w.PutU8(static_cast<uint8_t>(format));
  w.PutU8(0);
  w.PutU16(0);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeMetricsTextFrame(uint64_t request_id,
                                            std::string_view text) {
  util::ByteWriter w(kFrameHeaderBytes + 8 + text.size());
  BeginFrame(&w, MessageType::kMetricsResult, request_id);
  w.PutU8(static_cast<uint8_t>(MetricsFormat::kText));
  w.PutU8(0);
  w.PutU16(0);
  w.PutString(text);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeMetricsReportFrame(uint64_t request_id,
                                              const MetricsReport& report) {
  util::ByteWriter w(kFrameHeaderBytes + 16 + report.samples.size() * 64);
  BeginFrame(&w, MessageType::kMetricsResult, request_id);
  w.PutU8(static_cast<uint8_t>(MetricsFormat::kBinary));
  w.PutU8(0);
  w.PutU16(0);
  AppendMetricsReport(report, &w);
  return FinishFrame(std::move(w));
}

namespace {

// In-place little-endian writes into an already-encoded frame — the same
// encoding as ByteWriter::PutF64 / PutU64.
void PatchF64At(std::vector<uint8_t>* frame, size_t tail_offset,
                double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  uint8_t* p = frame->data() + frame->size() - tail_offset;
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(bits >> (8 * i));
}

void PatchU64At(std::vector<uint8_t>* frame, size_t tail_offset,
                uint64_t bits) {
  uint8_t* p = frame->data() + frame->size() - tail_offset;
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(bits >> (8 * i));
}

}  // namespace

void PatchRespondStage(std::vector<uint8_t>* frame, double respond_us) {
  // The respond slot is the trace array's last f64, which AppendJoinResult
  // writes last — so it sits in the frame's final 8 bytes.
  ACT_CHECK_MSG(frame->size() >= kFrameHeaderBytes + 8,
                "PatchRespondStage on a non-traced frame");
  PatchF64At(frame, 8, respond_us);
}

void PatchRespondStageWithCounters(std::vector<uint8_t>* frame,
                                   double respond_us,
                                   const util::StageCounterSample& respond) {
  // Counter-section layout puts 8 header bytes + kNumTraceStages triples
  // after the stage doubles: the respond f64 sits kCounterBytes + 8 from
  // the end, and the respond triple occupies the final 24 bytes.
  constexpr size_t kCounterBytes = 8 + 24 * service::kNumTraceStages;
  ACT_CHECK_MSG(frame->size() >= kFrameHeaderBytes + kCounterBytes + 8,
                "PatchRespondStageWithCounters on a counter-less frame");
  PatchF64At(frame, kCounterBytes + 8, respond_us);
  PatchU64At(frame, 24, respond.cycles);
  PatchU64At(frame, 16, respond.instructions);
  PatchU64At(frame, 8, respond.llc_misses);
}

void PatchStreamStage(std::vector<uint8_t>* frame, double stream_us) {
  // The stream slot is the crossmatch trace array's last f64, which
  // AppendPairChunk writes last on a traced last chunk.
  ACT_CHECK_MSG(frame->size() >= kFrameHeaderBytes + 8,
                "PatchStreamStage on a non-traced chunk");
  PatchF64At(frame, 8, stream_us);
}

std::vector<uint8_t> EncodeErrorFrame(uint64_t request_id, WireError code,
                                      std::string_view message) {
  util::ByteWriter w(kFrameHeaderBytes + 8 + message.size());
  BeginFrame(&w, MessageType::kError, request_id);
  w.PutU16(static_cast<uint16_t>(code));
  w.PutU16(0);
  w.PutString(message);
  return FinishFrame(std::move(w));
}

std::vector<uint8_t> EncodeEmptyFrame(MessageType type, uint64_t request_id) {
  return EncodeFrame(type, request_id, {});
}

}  // namespace actjoin::net
