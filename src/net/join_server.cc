#include "net/join_server.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <deque>
#include <fcntl.h>
#include <map>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#include <unordered_map>
#include <utility>

#include "service/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace actjoin::net {

namespace {

// epoll user-data tokens. Connection ids start above the reserved ones.
constexpr uint64_t kWakeToken = 0;
constexpr uint64_t kListenerToken = 1;
constexpr uint64_t kFirstConnId = 2;

// Read-buffer compaction threshold: below this the consumed prefix just
// rides along; above it the erase is worth the memmove.
constexpr size_t kCompactThreshold = 64 * 1024;

// Cap on bytes drained from one connection per readable event. A client
// streaming flat-out must not monopolize its event loop or grow conn.in
// without bound: past the cap we stop, parse and dispatch what arrived,
// and let level-triggered epoll re-report the rest after every other
// ready connection has had its turn. Bounds the unparsed backlog at
// roughly max_frame_bytes (one partial frame) + this.
constexpr size_t kMaxReadBytesPerEvent = 256 * 1024;

// Per-IO-thread hardware-counter group for the stages the event loop owns
// (admission, decode). perf counts the opening thread, so the group is
// opened lazily on first use by each IO thread — never on a worker.
// Returns null when opening failed (counters stay all-zero but the trace
// section still frames; the worker-side `available` flag tells clients).
util::StagePerfCounters* IoThreadStageCounters(bool simulate_denied) {
  thread_local std::unique_ptr<util::StagePerfCounters> group;
  if (group == nullptr) {
    util::StagePerfCounters::Options o;
    o.simulate_denied = simulate_denied;
    group = std::make_unique<util::StagePerfCounters>(o);
  }
  return group->available() ? group.get() : nullptr;
}

WireError ToWireError(Admission verdict) {
  switch (verdict) {
    case Admission::kRateLimited:
      return WireError::kRateLimited;
    case Admission::kInFlightBytes:
      return WireError::kInFlightBytesExceeded;
    case Admission::kQueueWatermark:
      return WireError::kQueueWatermark;
    case Admission::kAdmitted:
      break;
  }
  ACT_UNREACHABLE();
}

}  // namespace

struct JoinServer::Connection {
  UniqueFd fd;
  uint64_t id = 0;
  /// Admission bucket key (per ServerOptions::peer_key), captured once at
  /// adoption: completion hooks refund into the right bucket even after
  /// the socket dies.
  std::string peer;
  /// Inbound bytes; [in_start, in.size()) is the unparsed suffix.
  std::vector<uint8_t> in;
  size_t in_start = 0;
  /// One queued outbound frame. Event frames (sub != 0) are tagged with
  /// their subscription and seq range so the overflow policy can drop
  /// them — and account the hole — without reparsing bytes; responses
  /// stay untagged and are never dropped. Gap markers (is_gap) are also
  /// undroppable, but carry the skipped range they announce so that
  /// later overflow can widen a still-unsent marker in place instead of
  /// queueing another frame — that in-place merge is what keeps the
  /// outbox bounded under sustained overflow against a stalled reader.
  struct OutFrame {
    std::vector<uint8_t> bytes;
    uint64_t sub = 0;
    uint64_t first_seq = 0;
    uint64_t last_seq = 0;
    bool is_gap = false;
    /// Enqueue time (server uptime micros) of event frames, for the
    /// delivery-lag histogram; 0 on responses and gap markers.
    double born_us = 0;
  };
  /// Outbound frames; out_offset is the flushed prefix of out.front().
  std::deque<OutFrame> out;
  size_t out_offset = 0;
  bool want_write = false;       // EPOLLOUT currently armed
  bool close_after_flush = false;  // protocol error: drain writes, then close
  bool dead = false;             // fatal I/O error: close at next safe point

  /// Standing subscriptions held by this connection, with the admission
  /// bytes each one keeps charged until unsubscribe / close.
  struct SubEntry {
    uint64_t id = 0;
    size_t admitted_bytes = 0;
  };
  std::vector<SubEntry> subs;
  /// EVENT frames currently queued in `out` (the droppable ones).
  size_t event_frames_queued = 0;
  /// Seq ranges the overflow policy dropped, per subscription, not yet
  /// announced: coalesced here and flushed as one EVENT_GAP ordered
  /// before that subscription's queued events with newer seqs. The flush
  /// widens a still-unsent queued marker in place when the ranges are
  /// contiguous, so repeated overflow cannot fill the outbox with gap
  /// markers.
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> pending_gaps;
};

struct JoinServer::IoThread {
  UniqueFd epoll;
  UniqueFd wake;  // eventfd
  std::thread thread;
  /// Owned exclusively by this thread; only the inbox crosses threads.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  std::mutex inbox_mu;
  std::vector<int> pending_accepts;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> pending_responses;
  /// Pushed event batches awaiting adoption by this thread's loop (the
  /// subscription matcher's sinks run on service workers; only the owner
  /// thread may touch a connection's outbox).
  std::vector<std::pair<uint64_t, service::EventBatch>> pending_events;
};

JoinServer::JoinServer(service::JoinService* service,
                       const ServerOptions& opts)
    : service_(service),
      opts_(opts),
      admission_(opts.admission, service->options().queue_capacity),
      matcher_(service),
      subscriptions_(&service->catalog()),
      next_conn_id_(kFirstConnId) {
  ACT_CHECK_MSG(service_ != nullptr, "JoinServer requires a JoinService");
  if (opts_.io_threads < 1) opts_.io_threads = 1;
  if (opts_.max_frame_bytes < kFrameHeaderBytes) {
    opts_.max_frame_bytes = kFrameHeaderBytes;
  }
  if (opts_.event_outbox_frames < 1) opts_.event_outbox_frames = 1;
  // From here on, join workers probe the matcher after every point batch
  // and mutations notify it of epoch swaps.
  service_->set_subscription_matcher(&subscriptions_);
  if (util::MetricsRegistry* registry = service_->metrics()) {
    registry->RegisterCounterFn(
        "server_connections_accepted_total", "Sockets accepted", "", [this] {
          return connections_accepted_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "server_connections_closed_total", "Sockets closed", "", [this] {
          return connections_closed_.load(std::memory_order_relaxed);
        });
    registry->RegisterCounterFn(
        "server_frames_received_total", "Well-framed requests received", "",
        [this] { return frames_received_.load(std::memory_order_relaxed); });
    registry->RegisterCounterFn(
        "server_responses_sent_total", "Response frames fully flushed", "",
        [this] { return responses_sent_.load(std::memory_order_relaxed); });
    registry->RegisterCounterFn(
        "server_protocol_errors_total",
        "Malformed frames, unknown types, oversized payloads", "",
        [this] { return protocol_errors_.load(std::memory_order_relaxed); });
    registry->RegisterCounterFn(
        "server_events_pushed_total",
        "Subscription events enqueued to connection outboxes", "",
        [this] { return events_pushed_.load(std::memory_order_relaxed); });
    registry->RegisterCounterFn(
        "server_events_dropped_total",
        "Subscription events discarded by the bounded-outbox overflow "
        "policy",
        "",
        [this] { return events_dropped_.load(std::memory_order_relaxed); });
    registry->RegisterCounterFn(
        "server_event_gap_frames_total",
        "EVENT_GAP markers queued by the overflow policy (holes announced, "
        "not events skipped)",
        "", [this] { return gap_frames_.load(std::memory_order_relaxed); });
    registry->RegisterGaugeFn(
        "server_event_outbox_frames",
        "EVENT frames queued across connection outboxes (the droppable "
        "push-path depth)",
        "", [this] {
          return static_cast<double>(
              event_outbox_depth_.load(std::memory_order_relaxed));
        });
    event_delivery_lag_us_ = registry->GetHistogram(
        "server_event_delivery_lag_us",
        "Outbox dwell of fully-flushed EVENT frames (enqueue to last byte "
        "written)");
    registry->RegisterGaugeFn(
        "server_outstanding_requests",
        "Requests admitted but not yet answered (summed over connections)",
        "", [this] {
          std::lock_guard<std::mutex> lock(inflight_mu_);
          return static_cast<double>(inflight_joins_);
        });
    subscriptions_.RegisterMetrics(registry);
    admission_.RegisterMetrics(registry);
  }
}

JoinServer::~JoinServer() { Stop(); }

bool JoinServer::Start(std::string* error) {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    if (error != nullptr) *error = "JoinServer already started";
    return false;
  }
  listener_ = ListenTcp(opts_.host, opts_.port, /*backlog=*/128, &port_,
                        error);
  if (!listener_.valid()) return false;

  io_.reserve(static_cast<size_t>(opts_.io_threads));
  for (int t = 0; t < opts_.io_threads; ++t) {
    auto io = std::make_unique<IoThread>();
    io->epoll = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
    io->wake = UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    if (!io->epoll.valid() || !io->wake.valid()) {
      if (error != nullptr) *error = ErrnoMessage("epoll_create1/eventfd");
      io_.clear();
      listener_.Reset();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeToken;
    ACT_CHECK(::epoll_ctl(io->epoll.get(), EPOLL_CTL_ADD, io->wake.get(),
                          &ev) == 0);
    if (t == 0) {
      epoll_event lev{};
      lev.events = EPOLLIN;
      lev.data.u64 = kListenerToken;
      ACT_CHECK(::epoll_ctl(io->epoll.get(), EPOLL_CTL_ADD, listener_.get(),
                            &lev) == 0);
    }
    io_.push_back(std::move(io));
  }

  running_.store(true, std::memory_order_release);
  started_ = true;
  for (int t = 0; t < opts_.io_threads; ++t) {
    io_[static_cast<size_t>(t)]->thread = std::thread([this, t] { IoLoop(t); });
  }
  return true;
}

void JoinServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(lifecycle_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  // Detach the subscription matcher first: once the drain begins, no
  // worker should start feeding events into loops that are about to die.
  // (Workers already past the acquire-load finish against the matcher,
  // which outlives Stop(); their sinks post into inboxes that also
  // outlive Stop() — the frames are simply never written.)
  service_->set_subscription_matcher(nullptr);
  // Phase 1: refuse new joins but keep the loops flushing, so every
  // admitted join still gets its response on the wire. stopping_ flips
  // under inflight_mu_: HandleJoinBatch checks it under the same mutex
  // when it increments, so every join that passed the check is already
  // counted by the time the wait below can observe zero — no admission
  // can slip past the drain and run its hook on a destroyed server.
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    stopping_.store(true, std::memory_order_release);
  }
  {
    std::unique_lock<std::mutex> lock(inflight_mu_);
    inflight_cv_.wait(lock, [&] { return inflight_joins_ == 0; });
  }
  // Phase 2: tear down the event loops.
  running_.store(false, std::memory_order_release);
  for (auto& io : io_) WakeThread(*io);
  for (auto& io : io_) {
    if (io->thread.joinable()) io->thread.join();
  }
  for (auto& io : io_) {
    connections_closed_.fetch_add(io->conns.size(),
                                  std::memory_order_relaxed);
    io->conns.clear();
    // Sockets accepted but never adopted (still in the inbox when their
    // thread exited) must be closed here or the raw fds leak.
    std::lock_guard<std::mutex> lock(io->inbox_mu);
    for (int fd : io->pending_accepts) ::close(fd);
    io->pending_accepts.clear();
    io->pending_responses.clear();
    io->pending_events.clear();
  }
  listener_.Reset();
}

bool JoinServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(shutdown_mu_);
  return shutdown_requested_;
}

void JoinServer::WaitShutdownRequested() {
  std::unique_lock<std::mutex> lock(shutdown_mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void JoinServer::RequestShutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mu_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

service::ServiceStats JoinServer::StatsWithAdmission() const {
  service::ServiceStats out = service_->Stats();
  AdmissionController::Counters a = admission_.counters();
  out.rejected_rate_limit = a.rate_limited;
  out.rejected_inflight_bytes = a.inflight_bytes;
  out.rejected_queue_watermark = a.queue_watermark;
  out.rejected_shutdown +=
      rejected_stopping_.load(std::memory_order_relaxed);
  out.rejected_unknown_dataset +=
      rejected_unknown_dataset_.load(std::memory_order_relaxed);
  out.rejected_requests = out.rejected_queue_full + out.rejected_shutdown +
                          out.rejected_unknown_dataset + a.TotalRejected();
  out.peers = admission_.PerPeer();
  // Continuous-query overlay (v6): the bare service knows none of these.
  out.active_subscriptions = subscriptions_.active_subscriptions();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    out.outstanding_requests = inflight_joins_;
  }
  out.events_pushed = events_pushed_.load(std::memory_order_relaxed);
  out.events_dropped = events_dropped_.load(std::memory_order_relaxed);
  return out;
}

ServerCounters JoinServer::counters() const {
  ServerCounters out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  out.frames_received = frames_received_.load(std::memory_order_relaxed);
  out.responses_sent = responses_sent_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.events_pushed = events_pushed_.load(std::memory_order_relaxed);
  out.events_dropped = events_dropped_.load(std::memory_order_relaxed);
  out.gap_frames = gap_frames_.load(std::memory_order_relaxed);
  return out;
}

void JoinServer::WakeThread(IoThread& io) {
  uint64_t one = 1;
  // The eventfd counter saturates rather than blocks; a failed write can
  // only mean a pending wake already exists.
  [[maybe_unused]] ssize_t n = ::write(io.wake.get(), &one, sizeof(one));
}

void JoinServer::IoLoop(int t) {
  IoThread& io = *io_[static_cast<size_t>(t)];
  epoll_event events[64];
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(io.epoll.get(), events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: tear down
    }
    for (int i = 0; i < n; ++i) {
      uint64_t token = events[i].data.u64;
      uint32_t ev = events[i].events;
      if (token == kWakeToken) {
        uint64_t drained;
        while (::read(io.wake.get(), &drained, sizeof(drained)) > 0) {
        }
        ProcessInbox(t, io);
        continue;
      }
      if (token == kListenerToken) {
        AcceptNewConnections(io);
        continue;
      }
      auto it = io.conns.find(token);
      if (it == io.conns.end()) continue;  // closed earlier in this batch
      Connection& conn = *it->second;
      if (ev & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(io, token);
        continue;
      }
      if (ev & EPOLLIN) HandleReadable(t, io, conn);
      // HandleReadable may have closed it; re-find before touching writes.
      auto it2 = io.conns.find(token);
      if (it2 == io.conns.end()) continue;
      if (ev & EPOLLOUT) {
        Connection& c = *it2->second;
        FlushWrites(io, c);
        if (c.dead || (c.close_after_flush && c.out.empty())) {
          CloseConnection(io, token);
        }
      }
    }
  }
  // Deliver any responses the final inbox wake posted, then give slow
  // readers a bounded chance at bytes the nonblocking path could not
  // write (an admitted join's response should not die with the loop).
  ProcessInbox(t, io);
  for (auto& [id, conn] : io.conns) {
    FlushPendingBlocking(*conn);
    // Whatever the bounded flush could not deliver dies with the
    // connection; keep the push-path depth gauge honest.
    event_outbox_depth_.fetch_sub(
        static_cast<int64_t>(conn->event_frames_queued),
        std::memory_order_relaxed);
  }
  connections_closed_.fetch_add(io.conns.size(), std::memory_order_relaxed);
  io.conns.clear();
}

void JoinServer::FlushPendingBlocking(Connection& conn) {
  if (conn.out.empty() || conn.dead) return;
  int flags = ::fcntl(conn.fd.get(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(conn.fd.get(), F_SETFL, flags & ~O_NONBLOCK);
  timeval timeout{/*tv_sec=*/1, /*tv_usec=*/0};
  ::setsockopt(conn.fd.get(), SOL_SOCKET, SO_SNDTIMEO, &timeout,
               sizeof(timeout));
  while (!conn.out.empty()) {
    const Connection::OutFrame& front = conn.out.front();
    ssize_t w = ::send(conn.fd.get(), front.bytes.data() + conn.out_offset,
                       front.bytes.size() - conn.out_offset, MSG_NOSIGNAL);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // timed out or the peer is gone: best effort is over
    }
    conn.out_offset += static_cast<size_t>(w);
    if (conn.out_offset == front.bytes.size()) {
      if (front.sub == 0) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
      } else if (!front.is_gap) {
        --conn.event_frames_queued;
        event_outbox_depth_.fetch_sub(1, std::memory_order_relaxed);
      }
      conn.out.pop_front();
      conn.out_offset = 0;
    }
  }
}

void JoinServer::AcceptNewConnections(IoThread& io) {
  while (true) {
    int cfd = ::accept4(listener_.get(), nullptr, nullptr,
                        SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN: drained the backlog
    }
    int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    uint32_t target = next_thread_.fetch_add(1, std::memory_order_relaxed) %
                      static_cast<uint32_t>(io_.size());
    if (target == 0) {
      // The acceptor thread adopts directly — no inbox round-trip.
      auto conn = std::make_unique<Connection>();
      conn->fd = UniqueFd(cfd);
      conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
      conn->peer = PeerAddress(conn->fd.get(),
                               opts_.peer_key == PeerKeyPolicy::kIpPort);
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = conn->id;
      ACT_CHECK(::epoll_ctl(io.epoll.get(), EPOLL_CTL_ADD, conn->fd.get(),
                            &ev) == 0);
      io.conns.emplace(conn->id, std::move(conn));
    } else {
      IoThread& dest = *io_[target];
      {
        std::lock_guard<std::mutex> lock(dest.inbox_mu);
        dest.pending_accepts.push_back(cfd);
      }
      WakeThread(dest);
    }
  }
}

void JoinServer::ProcessInbox(int t, IoThread& io) {
  std::vector<int> accepts;
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> responses;
  std::vector<std::pair<uint64_t, service::EventBatch>> events;
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    accepts.swap(io.pending_accepts);
    responses.swap(io.pending_responses);
    events.swap(io.pending_events);
  }
  for (int cfd : accepts) {
    auto conn = std::make_unique<Connection>();
    conn->fd = UniqueFd(cfd);
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->peer = PeerAddress(conn->fd.get(),
                             opts_.peer_key == PeerKeyPolicy::kIpPort);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    ACT_CHECK(::epoll_ctl(io.epoll.get(), EPOLL_CTL_ADD, conn->fd.get(),
                          &ev) == 0);
    io.conns.emplace(conn->id, std::move(conn));
  }
  for (auto& [conn_id, frame] : responses) {
    auto it = io.conns.find(conn_id);
    if (it == io.conns.end()) continue;  // client went away; drop the reply
    Connection& conn = *it->second;
    QueueResponse(io, conn, std::move(frame));
    if (conn.dead || (conn.close_after_flush && conn.out.empty())) {
      CloseConnection(io, conn_id);
    }
  }
  for (auto& [conn_id, batch] : events) {
    auto it = io.conns.find(conn_id);
    if (it == io.conns.end()) continue;  // connection gone; events die too
    Connection& conn = *it->second;
    QueueEvent(io, conn, std::move(batch));
    if (conn.dead) CloseConnection(io, conn_id);
  }
  (void)t;
}

void JoinServer::HandleReadable(int t, IoThread& io, Connection& conn) {
  uint8_t buf[64 * 1024];
  bool peer_closed = false;
  size_t drained = 0;
  while (drained < kMaxReadBytesPerEvent) {
    ssize_t r = ::recv(conn.fd.get(), buf, sizeof(buf), 0);
    if (r > 0) {
      conn.in.insert(conn.in.end(), buf, buf + r);
      drained += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    conn.dead = true;
    break;
  }
  if (!conn.dead) ParseFrames(t, io, conn);
  if (conn.dead || peer_closed ||
      (conn.close_after_flush && conn.out.empty())) {
    CloseConnection(io, conn.id);
  }
}

void JoinServer::ParseFrames(int t, IoThread& io, Connection& conn) {
  while (!conn.dead && !conn.close_after_flush) {
    std::span<const uint8_t> avail(conn.in.data() + conn.in_start,
                                   conn.in.size() - conn.in_start);
    FrameHeader header;
    size_t frame_bytes = 0;
    WireError err = WireError::kNone;
    FrameParse verdict = TryParseFrame(avail, opts_.max_frame_bytes, &header,
                                       &frame_bytes, &err);
    if (verdict == FrameParse::kNeedMoreData) break;
    if (verdict == FrameParse::kProtocolError) {
      // Byte sync is lost: answer typed, then close once it is flushed.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(io, conn,
                    EncodeErrorFrame(header.request_id, err, ToString(err)));
      conn.close_after_flush = true;
      break;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    DispatchFrame(t, io, conn, header,
                  avail.subspan(kFrameHeaderBytes, header.payload_bytes));
    conn.in_start += frame_bytes;
  }
  if (conn.in_start == conn.in.size()) {
    conn.in.clear();
    conn.in_start = 0;
  } else if (conn.in_start > kCompactThreshold) {
    conn.in.erase(conn.in.begin(),
                  conn.in.begin() + static_cast<ptrdiff_t>(conn.in_start));
    conn.in_start = 0;
  }
}

void JoinServer::DispatchFrame(int t, IoThread& io, Connection& conn,
                               const FrameHeader& header,
                               std::span<const uint8_t> payload) {
  switch (header.type) {
    case MessageType::kPing:
      QueueResponse(io, conn,
                    EncodeEmptyFrame(MessageType::kPong, header.request_id));
      return;
    case MessageType::kStats:
      QueueResponse(io, conn, EncodeStatsResultFrame(header.request_id,
                                                     StatsWithAdmission()));
      return;
    case MessageType::kShutdown:
      QueueResponse(io, conn, EncodeEmptyFrame(MessageType::kShutdownAck,
                                               header.request_id));
      RequestShutdown();
      return;
    case MessageType::kListDatasets:
      // Catalog enumeration is a pointer walk + per-dataset epoch reads:
      // cheap enough to answer from the event loop, like STATS.
      QueueResponse(io, conn,
                    EncodeDatasetListFrame(header.request_id,
                                           service_->catalog().List()));
      return;
    case MessageType::kGetMetrics: {
      MetricsFormat format;
      if (!DecodeGetMetrics(payload, &format)) {
        protocol_errors_.fetch_add(1, std::memory_order_relaxed);
        QueueResponse(
            io, conn,
            EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                             ToString(WireError::kMalformedPayload)));
        return;
      }
      // Collection walks registered callbacks under the registry mutex —
      // bounded by instrument count, not data size — so it is answered
      // from the event loop like STATS. A service built with
      // enable_metrics=false answers with an empty exposition rather than
      // an error: scrapers should not have to special-case that config.
      util::MetricsRegistry* registry = service_->metrics();
      if (format == MetricsFormat::kText) {
        QueueResponse(io, conn,
                      EncodeMetricsTextFrame(
                          header.request_id,
                          registry != nullptr ? registry->RenderPrometheus()
                                              : std::string()));
      } else {
        MetricsReport report;
        if (registry != nullptr) {
          report = BuildMetricsReport(*registry, &service_->slow_queries());
        }
        QueueResponse(io, conn,
                      EncodeMetricsReportFrame(header.request_id, report));
      }
      return;
    }
    case MessageType::kJoinBatch:
      HandleJoinBatch(t, io, conn, header, payload);
      return;
    case MessageType::kJoinDatasets:
      HandleJoinDatasets(t, io, conn, header, payload);
      return;
    case MessageType::kAddPolygons:
    case MessageType::kRemovePolygons:
    case MessageType::kDropDataset:
      HandleMutation(t, io, conn, header, payload);
      return;
    case MessageType::kSubscribe:
      HandleSubscribe(t, io, conn, header, payload);
      return;
    case MessageType::kUnsubscribe:
      HandleUnsubscribe(io, conn, header, payload);
      return;
    default:
      // Framing is intact, only the type is unknown: typed error, keep the
      // connection (a newer client may mix in messages we don't speak).
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      QueueResponse(io, conn,
                    EncodeErrorFrame(header.request_id, WireError::kUnknownType,
                                     ToString(WireError::kUnknownType)));
      return;
  }
}

void JoinServer::HandleJoinBatch(int t, IoThread& io, Connection& conn,
                                 const FrameHeader& header,
                                 std::span<const uint8_t> payload) {
  // Started unconditionally (one clock read; the trace flag is not known
  // until the payload is decoded). kAdmission covers entry through the
  // admission verdict; kDecode covers the payload decode.
  util::WallTimer stage_timer;
  // Hardware-counter attribution for the event-loop stages. The trace
  // flag proper is decoded later, but it sits at a fixed payload offset
  // (QueryBatch flags byte, bit 0) — peeked here so only traced requests
  // pay the counter reads, and rejected ones pay nothing.
  util::StagePerfCounters* io_perf = nullptr;
  util::StageCounterSample perf_entry{};
  if (service_->options().stage_perf_counters && payload.size() >= 2 &&
      (payload[1] & 1) != 0) {
    io_perf = IoThreadStageCounters(
        service_->options().stage_perf_simulate_denied);
    if (io_perf != nullptr) perf_entry = io_perf->Read();
  }
  // Load shedding comes first, and it only needs the payload *size*:
  // a rejected request must cost O(1), not an O(payload) decode.
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }
  // Unknown (or offline: reserved id with no loadable snapshot) datasets
  // are knowable from the header alone — reject before the admission
  // knobs so the bounce costs no rate token, and before the decode so it
  // costs O(1). Ids and snapshots are assigned-only, so a positive check
  // cannot be invalidated later.
  if (!service_->catalog().Servable(header.dataset_id)) {
    // A tombstoned id gets the more specific error: the id exists, its
    // data was dropped — retrying with the same id is pointless until a
    // full publish resurrects it.
    WireError code = service_->catalog().IsDropped(header.dataset_id)
                         ? WireError::kDatasetDropped
                         : WireError::kUnknownDataset;
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(io, conn,
                  EncodeErrorFrame(header.request_id, code, ToString(code)));
    return;
  }
  const size_t bytes = payload.size();
  Admission verdict =
      admission_.TryAdmit(bytes, service_->QueueDepth(), conn.peer);
  if (verdict != Admission::kAdmitted) {
    WireError code = ToWireError(verdict);
    QueueResponse(io, conn, EncodeErrorFrame(header.request_id, code,
                                             ToString(code)));
    return;
  }
  const double admission_us = stage_timer.ElapsedSeconds() * 1e6;
  util::StageCounterSample admission_counters{};
  util::StageCounterSample perf_admitted{};
  if (io_perf != nullptr) {
    perf_admitted = io_perf->Read();
    admission_counters = perf_admitted - perf_entry;
  }

  service::QueryBatch batch;
  if (!DecodeQueryBatch(payload, &batch)) {
    admission_.Release(bytes);  // garbage still burns the rate token
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                         ToString(WireError::kMalformedPayload)));
    return;
  }
  const double decode_us = stage_timer.ElapsedSeconds() * 1e6 - admission_us;
  util::StageCounterSample decode_counters{};
  if (io_perf != nullptr) {
    decode_counters = io_perf->Read() - perf_admitted;
  }

  bool stopping_now = false;
  {
    // The authoritative stopping check: under the same mutex Stop() uses
    // to flip stopping_, so check-then-increment is atomic against the
    // drain (the relaxed check above is just an early out).
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      stopping_now = true;
    } else {
      ++inflight_joins_;
    }
  }
  if (stopping_now) {
    admission_.Refund(bytes, conn.peer);  // no work done; see queue-full
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }
  const uint64_t conn_id = conn.id;
  const uint64_t request_id = header.request_id;
  batch.dataset_id = header.dataset_id;
  // The wire request id doubles as the trace id so a slow-query entry or
  // inline stage breakdown is joinable back to the client's own request.
  batch.trace_id = header.request_id;
  service::SubmitStatus status = service_->TrySubmitAsync(
      std::move(batch),
      // Runs on the service worker that executed the join.
      [this, t, conn_id, request_id, bytes, admission_us, decode_us,
       admission_counters, decode_counters](service::JoinResult result) {
        if (result.trace.enabled) {
          // The service fills queue/decompose/probe/merge; the server owns
          // the stages on either side of the submit boundary.
          result.trace.at(service::TraceStage::kAdmission) = admission_us;
          result.trace.at(service::TraceStage::kDecode) = decode_us;
          if (result.trace.counters_enabled) {
            result.trace.counters(service::TraceStage::kAdmission) =
                admission_counters;
            result.trace.counters(service::TraceStage::kDecode) =
                decode_counters;
            service_->RecordStageCounters(service::TraceStage::kAdmission,
                                          admission_counters);
            service_->RecordStageCounters(service::TraceStage::kDecode,
                                          decode_counters);
          }
        }
        // This hook runs on the worker that executed the join, so the
        // worker's own counter group attributes the response encode.
        util::StagePerfCounters* worker_perf =
            service_->options().stage_perf_counters
                ? service::JoinService::CurrentThreadStageCounters()
                : nullptr;
        if (worker_perf != nullptr && !worker_perf->available()) {
          worker_perf = nullptr;
        }
        util::StageCounterSample respond_before{};
        if (worker_perf != nullptr) respond_before = worker_perf->Read();
        util::WallTimer respond_timer;
        std::vector<uint8_t> frame =
            EncodeJoinResultFrame(request_id, result);
        const double respond_us = respond_timer.ElapsedSeconds() * 1e6;
        util::StageCounterSample respond_counters{};
        if (worker_perf != nullptr) {
          respond_counters = worker_perf->Read() - respond_before;
          service_->RecordStageCounters(service::TraceStage::kRespond,
                                        respond_counters);
        }
        if (result.trace.enabled) {
          // The respond stage times the encode of the very frame that
          // carries it, so it is patched into the trailer after the fact.
          if (result.trace.counters_enabled) {
            PatchRespondStageWithCounters(&frame, respond_us,
                                          respond_counters);
          } else {
            PatchRespondStage(&frame, respond_us);
          }
        }
        admission_.Release(bytes);
        DeliverAsync(t, conn_id, std::move(frame));
        {
          // Notify under the lock: Stop() may destroy this condvar the
          // moment its wait observes zero, so the notify must complete
          // before the waiter can acquire the mutex.
          std::lock_guard<std::mutex> lock(inflight_mu_);
          --inflight_joins_;
          inflight_cv_.notify_all();
        }
      });
  if (status != service::SubmitStatus::kAccepted) {
    // The service refused after admission passed: the request did no work,
    // so give the rate token back too — a queue-full burst must not drain
    // the bucket and double-penalize the client.
    admission_.Refund(bytes, conn.peer);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_joins_;
      inflight_cv_.notify_all();  // under the lock; see the hook above
    }
    WireError code;
    switch (status) {
      case service::SubmitStatus::kQueueFull:
        code = WireError::kQueueFull;
        break;
      case service::SubmitStatus::kUnknownDataset:
        // Unreachable in practice (checked pre-admission above), but the
        // mapping stays total in case the service grows new door checks.
        code = WireError::kUnknownDataset;
        break;
      default:
        code = WireError::kShuttingDown;
        break;
    }
    QueueResponse(io, conn,
                  EncodeErrorFrame(request_id, code, ToString(code)));
  }
}

namespace {

/// Splits a finished crossmatch into PAIR_RESULT frames. Exactly one
/// last-flagged chunk even for an empty result; pairs keep their sorted
/// order, cut at page boundaries.
std::vector<std::vector<uint8_t>> EncodePairChunks(
    uint64_t request_id, const join2::CrossMatchOutcome& outcome,
    uint32_t page_size) {
  uint32_t page = page_size == 0 ? kDefaultPairPageSize : page_size;
  page = std::min(page, kMaxPairPageSize);
  const uint64_t total = outcome.pairs.size();
  const uint64_t num_chunks = total == 0 ? 1 : (total + page - 1) / page;
  std::vector<std::vector<uint8_t>> frames;
  frames.reserve(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    PairChunk chunk;
    chunk.chunk_index = static_cast<uint32_t>(c);
    chunk.last = c + 1 == num_chunks;
    chunk.total_pairs = total;
    const uint64_t lo = c * page;
    const uint64_t hi = std::min(total, lo + page);
    chunk.pairs.assign(outcome.pairs.begin() + static_cast<ptrdiff_t>(lo),
                       outcome.pairs.begin() + static_cast<ptrdiff_t>(hi));
    if (chunk.last) {
      // The trace tail rides the last chunk (stream slot still zero; the
      // caller patches it after timing the encode+post of the stream).
      chunk.trace = outcome.trace;
      chunk.stats = {.candidate_pairs = outcome.stats.candidate_pairs,
                     .refined_pairs = outcome.stats.refined_pairs,
                     .pruned_pairs = outcome.stats.pruned_pairs,
                     .max_depth = outcome.stats.max_depth,
                     .epoch_a = outcome.epoch_a,
                     .epoch_b = outcome.epoch_b,
                     .service_us = outcome.service_us,
                     .queue_wait_us = outcome.queue_wait_us};
    }
    frames.push_back(EncodePairChunkFrame(request_id, chunk));
  }
  return frames;
}

/// Typed rejection for a crossmatch side, with the offending dataset
/// named in the message so a client joining two datasets knows which one
/// to fix.
std::vector<uint8_t> EncodeCrossMatchError(
    uint64_t request_id, const join2::CrossMatchOutcome& outcome,
    uint16_t dataset_a) {
  WireError code = outcome.status == join2::CrossMatchStatus::kDatasetDropped
                       ? WireError::kDatasetDropped
                       : WireError::kUnknownDataset;
  std::string message = std::string(ToString(code)) +
                        (outcome.offending_dataset == dataset_a
                             ? " (dataset_a=": " (dataset_b=") +
                        std::to_string(outcome.offending_dataset) + ")";
  return EncodeErrorFrame(request_id, code, message);
}

}  // namespace

void JoinServer::HandleJoinDatasets(int t, IoThread& io, Connection& conn,
                                    const FrameHeader& header,
                                    std::span<const uint8_t> payload) {
  // Same shape as HandleJoinBatch: shed load first (O(1), no decode),
  // then the knowable-from-the-header a-side check before the admission
  // knobs, then decode, then the authoritative drain check. The stage
  // timer serves the v7 trace; untraced requests pay two clock reads.
  util::WallTimer stage_timer;
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }
  if (!service_->catalog().Servable(header.dataset_id)) {
    WireError code = service_->catalog().IsDropped(header.dataset_id)
                         ? WireError::kDatasetDropped
                         : WireError::kUnknownDataset;
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, code,
                         std::string(ToString(code)) + " (dataset_a=" +
                             std::to_string(header.dataset_id) + ")"));
    return;
  }
  const size_t bytes = payload.size();
  Admission verdict =
      admission_.TryAdmit(bytes, service_->QueueDepth(), conn.peer);
  if (verdict != Admission::kAdmitted) {
    WireError code = ToWireError(verdict);
    QueueResponse(io, conn, EncodeErrorFrame(header.request_id, code,
                                             ToString(code)));
    return;
  }
  const double admission_us = stage_timer.ElapsedSeconds() * 1e6;
  JoinDatasetsRequest wire_req;
  if (!DecodeJoinDatasets(payload, &wire_req)) {
    admission_.Release(bytes);  // garbage still burns the rate token
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                         ToString(WireError::kMalformedPayload)));
    return;
  }
  // The b-side needs the decoded payload, so its check lands after
  // admission: refund (the request did no index work), reject typed with
  // the side named. The matcher re-validates both sides on the worker —
  // that verdict, not this early out, decides races with in-queue drops.
  if (!service_->catalog().Servable(wire_req.dataset_b)) {
    WireError code = service_->catalog().IsDropped(wire_req.dataset_b)
                         ? WireError::kDatasetDropped
                         : WireError::kUnknownDataset;
    admission_.Refund(bytes, conn.peer);
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, code,
                         std::string(ToString(code)) + " (dataset_b=" +
                             std::to_string(wire_req.dataset_b) + ")"));
    return;
  }

  bool stopping_now = false;
  {
    // Authoritative stopping check; see HandleJoinBatch.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      stopping_now = true;
    } else {
      ++inflight_joins_;
    }
  }
  if (stopping_now) {
    admission_.Refund(bytes, conn.peer);
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }

  const double decode_us = stage_timer.ElapsedSeconds() * 1e6 - admission_us;
  const uint64_t conn_id = conn.id;
  const uint64_t request_id = header.request_id;
  const uint16_t dataset_a = header.dataset_id;
  join2::CrossMatchRequest req;
  req.dataset_a = dataset_a;
  req.dataset_b = wire_req.dataset_b;
  req.mode = static_cast<join2::CrossMatchMode>(wire_req.mode);
  req.request_id = request_id;
  req.trace = wire_req.trace;
  const uint32_t page_size = wire_req.page_size;
  service::SubmitStatus status = matcher_.TryCrossMatchAsync(
      req,
      // Runs on the service worker that executed the crossmatch. Chunks
      // are posted one DeliverAsync at a time: the owner thread's inbox
      // is FIFO, so the stream arrives in order with nothing interleaved
      // between chunks of one response.
      [this, t, conn_id, request_id, bytes, dataset_a, page_size,
       admission_us, decode_us](join2::CrossMatchOutcome outcome) {
        if (outcome.status != join2::CrossMatchStatus::kOk) {
          admission_.Release(bytes);
          DeliverAsync(t, conn_id,
                       EncodeCrossMatchError(request_id, outcome, dataset_a));
        } else {
          if (outcome.trace.enabled) {
            // The matcher filled queue/pin/descend/refine; the front-end
            // owns the stages on either side of the submit boundary.
            outcome.trace.at(join2::CrossMatchStage::kAdmission) =
                admission_us;
            outcome.trace.at(join2::CrossMatchStage::kDecode) = decode_us;
          }
          // The stream stage times the chunk encode + the posts to the
          // event loop — the cost of shipping the result — and, like the
          // JOIN_BATCH respond slot, is patched into the frame that
          // carries it after the fact (all chunks but the last are posted
          // before the clock is read, so their cost is inside).
          util::WallTimer stream_timer;
          std::vector<std::vector<uint8_t>> frames =
              EncodePairChunks(request_id, outcome, page_size);
          admission_.Release(bytes);
          for (size_t i = 0; i + 1 < frames.size(); ++i) {
            DeliverAsync(t, conn_id, std::move(frames[i]));
          }
          if (outcome.trace.enabled) {
            PatchStreamStage(&frames.back(),
                             stream_timer.ElapsedSeconds() * 1e6);
          }
          DeliverAsync(t, conn_id, std::move(frames.back()));
        }
        {
          // Notify under the lock; see the join hook.
          std::lock_guard<std::mutex> lock(inflight_mu_);
          --inflight_joins_;
          inflight_cv_.notify_all();
        }
      });
  if (status != service::SubmitStatus::kAccepted) {
    admission_.Refund(bytes, conn.peer);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_joins_;
      inflight_cv_.notify_all();
    }
    WireError code;
    switch (status) {
      case service::SubmitStatus::kQueueFull:
        code = WireError::kQueueFull;
        break;
      case service::SubmitStatus::kUnknownDataset:
        // Unreachable in practice (a-side checked pre-admission; the
        // matcher's door only rejects never-assigned a-sides).
        code = WireError::kUnknownDataset;
        break;
      default:
        code = WireError::kShuttingDown;
        break;
    }
    QueueResponse(io, conn,
                  EncodeErrorFrame(request_id, code, ToString(code)));
  }
}

void JoinServer::HandleMutation(int t, IoThread& io, Connection& conn,
                                const FrameHeader& header,
                                std::span<const uint8_t> payload) {
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }
  // Ids the catalog never assigned are knowable from the header alone:
  // reject before the admission knobs (no rate token) and before the
  // decode (O(1)). Tombstones likewise. Anything subtler — an offline
  // snapshot, a drop racing this frame — is re-checked authoritatively by
  // the service, whose typed verdict wins.
  if (!service_->catalog().Contains(header.dataset_id) ||
      service_->catalog().IsDropped(header.dataset_id)) {
    WireError code = service_->catalog().IsDropped(header.dataset_id)
                         ? WireError::kDatasetDropped
                         : WireError::kUnknownDataset;
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(io, conn,
                  EncodeErrorFrame(header.request_id, code, ToString(code)));
    return;
  }
  const size_t bytes = payload.size();
  Admission verdict =
      admission_.TryAdmit(bytes, service_->QueueDepth(), conn.peer);
  if (verdict != Admission::kAdmitted) {
    WireError code = ToWireError(verdict);
    QueueResponse(io, conn, EncodeErrorFrame(header.request_id, code,
                                             ToString(code)));
    return;
  }

  // Refund discipline: a mutation that fails anywhere past this point —
  // undecodable payload, drain, door rejection, or the service's own
  // typed refusal — gets a full Refund (bytes *and* rate token), never a
  // bare Release. It caused no index work, and a client whose update was
  // refused typed must not also find its rate bucket drained. Exactly one
  // of Refund / Release runs per admitted frame.
  std::vector<geom::Polygon> add;
  std::vector<uint32_t> remove;
  bool decoded = true;
  switch (header.type) {
    case MessageType::kAddPolygons:
      decoded = DecodeAddPolygons(payload, &add);
      break;
    case MessageType::kRemovePolygons:
      decoded = DecodeRemovePolygons(payload, &remove);
      break;
    default:  // kDropDataset carries no payload
      decoded = payload.empty();
      break;
  }
  if (!decoded) {
    admission_.Refund(bytes, conn.peer);
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                         ToString(WireError::kMalformedPayload)));
    return;
  }

  bool stopping_now = false;
  {
    // Authoritative stopping check; see HandleJoinBatch.
    std::lock_guard<std::mutex> lock(inflight_mu_);
    if (stopping_.load(std::memory_order_acquire)) {
      stopping_now = true;
    } else {
      ++inflight_joins_;
    }
  }
  if (stopping_now) {
    admission_.Refund(bytes, conn.peer);
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }

  const uint64_t conn_id = conn.id;
  const uint64_t request_id = header.request_id;
  const uint16_t dataset_id = header.dataset_id;
  const MessageType op = header.type;
  // The apply itself — clone-on-write over the touched shards — takes
  // milliseconds, far too long for the epoll loop: it runs on a service
  // worker via the mutation queue.
  service::SubmitStatus status = service_->TryMutateAsync(
      dataset_id,
      [this, t, conn_id, request_id, bytes, dataset_id, op,
       peer = conn.peer, add = std::move(add),
       remove = std::move(remove)]() mutable {
        service::MutationResult r;
        switch (op) {
          case MessageType::kAddPolygons:
            r = service_->AddPolygons(dataset_id, std::move(add));
            break;
          case MessageType::kRemovePolygons:
            r = service_->RemovePolygons(dataset_id, std::move(remove));
            break;
          default:
            r = service_->DropDataset(dataset_id);
            break;
        }
        std::vector<uint8_t> frame;
        if (r.status == service::MutationStatus::kApplied) {
          MutationAck ack;
          ack.op = op;
          ack.epoch = r.epoch;
          ack.num_polygons = r.num_polygons;
          ack.first_id = r.first_id;
          admission_.Release(bytes);
          frame = EncodeMutateResultFrame(request_id, ack);
        } else {
          WireError code;
          switch (r.status) {
            case service::MutationStatus::kUnknownDataset:
              code = WireError::kUnknownDataset;
              break;
            case service::MutationStatus::kDropped:
              code = WireError::kDatasetDropped;
              break;
            case service::MutationStatus::kInvalidMutation:
              code = WireError::kInvalidMutation;
              break;
            default:
              code = WireError::kShuttingDown;
              break;
          }
          admission_.Refund(bytes, peer);
          frame = EncodeErrorFrame(request_id, code, ToString(code));
        }
        DeliverAsync(t, conn_id, std::move(frame));
        {
          // Notify under the lock; see the join completion hook.
          std::lock_guard<std::mutex> lock(inflight_mu_);
          --inflight_joins_;
          inflight_cv_.notify_all();
        }
      });
  if (status != service::SubmitStatus::kAccepted) {
    // The door dropped the work closure unrun: full refund.
    admission_.Refund(bytes, conn.peer);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      --inflight_joins_;
      inflight_cv_.notify_all();
    }
    WireError code;
    switch (status) {
      case service::SubmitStatus::kQueueFull:
        code = WireError::kQueueFull;
        break;
      case service::SubmitStatus::kUnknownDataset:
        code = WireError::kUnknownDataset;
        break;
      default:
        code = WireError::kShuttingDown;
        break;
    }
    QueueResponse(io, conn,
                  EncodeErrorFrame(request_id, code, ToString(code)));
  }
}

void JoinServer::HandleSubscribe(int t, IoThread& io, Connection& conn,
                                 const FrameHeader& header,
                                 std::span<const uint8_t> payload) {
  // Same door order as joins: shed load O(1), reject never-servable
  // targets before burning a rate token, then decode.
  if (stopping_.load(std::memory_order_acquire)) {
    rejected_stopping_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kShuttingDown,
                         ToString(WireError::kShuttingDown)));
    return;
  }
  if (!service_->catalog().Servable(header.dataset_id)) {
    WireError code = service_->catalog().IsDropped(header.dataset_id)
                         ? WireError::kDatasetDropped
                         : WireError::kUnknownDataset;
    rejected_unknown_dataset_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(io, conn,
                  EncodeErrorFrame(header.request_id, code, ToString(code)));
    return;
  }
  const size_t bytes = payload.size();
  Admission verdict =
      admission_.TryAdmit(bytes, service_->QueueDepth(), conn.peer);
  if (verdict != Admission::kAdmitted) {
    WireError code = ToWireError(verdict);
    QueueResponse(io, conn, EncodeErrorFrame(header.request_id, code,
                                             ToString(code)));
    return;
  }
  // Unlike a one-shot request, an accepted subscription keeps its
  // admission bytes charged for its whole lifetime: a standing query
  // holds index coverage and an outbox lane, so it holds admission too.
  // Every refusal past this point refunds in full.
  service::SubscriptionSpec spec;
  if (!DecodeSubscribe(payload, &spec)) {
    admission_.Refund(bytes, conn.peer);
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                         ToString(WireError::kMalformedPayload)));
    return;
  }
  if (conn.subs.size() >= opts_.max_subscriptions_per_connection) {
    admission_.Refund(bytes, conn.peer);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kSubscriptionLimit,
                         ToString(WireError::kSubscriptionLimit)));
    return;
  }
  const uint64_t conn_id = conn.id;
  std::optional<service::SubscriptionInfo> info = subscriptions_.Add(
      header.dataset_id, std::move(spec),
      // Runs on the service worker that computed the transition; the
      // inbox + eventfd wake is the only cross-thread traffic.
      [this, t, conn_id](service::EventBatch&& batch) {
        DeliverEventAsync(t, conn_id, std::move(batch));
      });
  if (!info.has_value()) {
    // Spec content the matcher refuses (polygon ids out of range, an
    // empty id list) — or a drop that raced the Servable check above.
    admission_.Refund(bytes, conn.peer);
    WireError code = service_->catalog().Servable(header.dataset_id)
                         ? WireError::kMalformedPayload
                         : WireError::kDatasetDropped;
    if (code == WireError::kMalformedPayload) {
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    QueueResponse(io, conn,
                  EncodeErrorFrame(header.request_id, code, ToString(code)));
    return;
  }
  conn.subs.push_back({info->id, bytes});
  QueueResponse(io, conn,
                EncodeSubscriptionResultFrame(header.request_id, *info));
}

void JoinServer::HandleUnsubscribe(IoThread& io, Connection& conn,
                                   const FrameHeader& header,
                                   std::span<const uint8_t> payload) {
  uint64_t sub_id = 0;
  if (!DecodeUnsubscribe(payload, &sub_id)) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kMalformedPayload,
                         ToString(WireError::kMalformedPayload)));
    return;
  }
  auto it = std::find_if(
      conn.subs.begin(), conn.subs.end(),
      [&](const Connection::SubEntry& e) { return e.id == sub_id; });
  if (it == conn.subs.end()) {
    // Unknown — or another connection's: a connection may only retire
    // subscriptions it opened. Recoverable either way.
    QueueResponse(
        io, conn,
        EncodeErrorFrame(header.request_id, WireError::kUnknownSubscription,
                         ToString(WireError::kUnknownSubscription)));
    return;
  }
  subscriptions_.Remove(sub_id);
  admission_.Release(it->admitted_bytes);
  conn.subs.erase(it);
  // Announce any hole overflow carved before the ack; the ack echoes the
  // id with the figures zeroed, and nothing for this id follows it.
  FlushPendingGap(conn, sub_id);
  service::SubscriptionInfo info;
  info.id = sub_id;
  QueueResponse(io, conn,
                EncodeSubscriptionResultFrame(header.request_id, info));
}

void JoinServer::QueueResponse(IoThread& io, Connection& conn,
                               std::vector<uint8_t> frame) {
  Connection::OutFrame out;
  out.bytes = std::move(frame);
  conn.out.push_back(std::move(out));
  FlushWrites(io, conn);
}

void JoinServer::FlushPendingGap(Connection& conn, uint64_t sub) {
  auto it = conn.pending_gaps.find(sub);
  if (it == conn.pending_gaps.end()) return;
  EventGap gap;
  gap.subscription_id = sub;
  gap.first_skipped_seq = it->second.first;
  gap.last_skipped_seq = it->second.second;
  conn.pending_gaps.erase(it);
  // Frames whose bytes have started onto the wire are immutable.
  const size_t first_mutable = conn.out_offset > 0 ? 1 : 0;
  // Prefer widening a marker already queued for this subscription over
  // appending another frame. Gap markers are undroppable, so this merge
  // is what bounds the outbox under sustained overflow against a
  // stalled reader: once a marker is queued, every further drop-and-
  // flush cycle rewrites it in place and the queue stops growing.
  // Contiguity holds by construction — drops take the oldest droppable
  // frame first, so everything between a queued marker's range and the
  // pending one was itself dropped into that range. The check guards
  // the one exception (a delivered in-flight frame between two drop
  // windows); a disjoint range gets its own marker below.
  for (size_t i = first_mutable; i < conn.out.size(); ++i) {
    Connection::OutFrame& f = conn.out[i];
    if (f.sub != sub || !f.is_gap) continue;
    if (gap.first_skipped_seq > f.last_seq + 1) continue;
    f.first_seq = std::min(f.first_seq, gap.first_skipped_seq);
    f.last_seq = std::max(f.last_seq, gap.last_skipped_seq);
    gap.first_skipped_seq = f.first_seq;
    gap.last_skipped_seq = f.last_seq;
    f.bytes = EncodeEventGapFrame(gap);
    return;
  }
  // No mergeable marker: queue one where seq order puts it — after this
  // subscription's frames below the skipped range (they are closer to
  // the wire), before its queued events above it, so the client sees
  // the hole announced before the first event that jumps past it.
  // Tagged is_gap: identifiable as push traffic (not counted as a
  // response) yet NOT droppable — the gap marker is the one frame the
  // overflow policy must never eat. The caller flushes.
  Connection::OutFrame frame;
  frame.bytes = EncodeEventGapFrame(gap);
  frame.sub = sub;
  frame.first_seq = gap.first_skipped_seq;
  frame.last_seq = gap.last_skipped_seq;
  frame.is_gap = true;
  gap_frames_.fetch_add(1, std::memory_order_relaxed);
  size_t pos = conn.out.size();
  for (size_t i = first_mutable; i < conn.out.size(); ++i) {
    const Connection::OutFrame& f = conn.out[i];
    if (f.sub == sub && f.first_seq > gap.last_skipped_seq) {
      pos = i;
      break;
    }
  }
  conn.out.insert(conn.out.begin() + static_cast<ptrdiff_t>(pos),
                  std::move(frame));
}

void JoinServer::QueueEvent(IoThread& io, Connection& conn,
                            service::EventBatch&& batch) {
  if (conn.dead || conn.close_after_flush) return;
  if (batch.events.empty()) return;
  const uint64_t sub = batch.subscription_id;
  // A batch for a subscription this connection no longer holds (the
  // worker's sink raced an unsubscribe) dies here: nothing may follow
  // the unsubscribe ack.
  if (!std::any_of(conn.subs.begin(), conn.subs.end(),
                   [&](const Connection::SubEntry& e) { return e.id == sub; })) {
    return;
  }
  // Overflow policy: drop the oldest droppable event frame — never a
  // response, never the partially-written front (its bytes are already on
  // the wire) — and coalesce the hole into that subscription's pending
  // gap. The loop never blocks on a slow push consumer.
  while (conn.event_frames_queued >= opts_.event_outbox_frames) {
    bool dropped = false;
    for (size_t i = 0; i < conn.out.size(); ++i) {
      Connection::OutFrame& f = conn.out[i];
      if (f.sub == 0 || f.is_gap) continue;  // response or gap marker
      if (i == 0 && conn.out_offset > 0) continue;
      const uint64_t dropped_sub = f.sub;
      const uint64_t dropped_first = f.first_seq;
      const uint64_t dropped_last = f.last_seq;
      events_dropped_.fetch_add(dropped_last - dropped_first + 1,
                                std::memory_order_relaxed);
      // Erase before touching pending_gaps: a non-contiguous range below
      // flushes a marker into conn.out, which would shift index i.
      conn.out.erase(conn.out.begin() + static_cast<ptrdiff_t>(i));
      --conn.event_frames_queued;
      event_outbox_depth_.fetch_sub(1, std::memory_order_relaxed);
      auto [git, inserted] = conn.pending_gaps.try_emplace(
          dropped_sub, dropped_first, dropped_last);
      if (!inserted) {
        if (dropped_first > git->second.second + 1) {
          // Seqs between the pending range and this drop were delivered
          // (an in-flight front frame that has since left): one merged
          // range would falsely claim them skipped. Announce the pending
          // range as its own marker and start a fresh one.
          FlushPendingGap(conn, dropped_sub);
          conn.pending_gaps.emplace(
              dropped_sub, std::make_pair(dropped_first, dropped_last));
        } else {
          git->second.first = std::min(git->second.first, dropped_first);
          git->second.second = std::max(git->second.second, dropped_last);
        }
      }
      dropped = true;
      break;
    }
    // Only undroppable frames left (responses, gap markers, in-flight
    // front): exceed the bound by this one frame rather than blocking or
    // losing it.
    if (!dropped) break;
  }
  // Announce the hole before this subscription's queued events with
  // newer seqs (FlushPendingGap orders — or merges — the marker by seq,
  // so a client never sees a jump before the gap explaining it).
  FlushPendingGap(conn, sub);
  Connection::OutFrame frame;
  frame.bytes = EncodeEventFrame(batch);
  frame.sub = sub;
  frame.first_seq = batch.first_seq;
  frame.last_seq = batch.first_seq + batch.events.size() - 1;
  frame.born_us = uptime_timer_.ElapsedSeconds() * 1e6;
  conn.out.push_back(std::move(frame));
  ++conn.event_frames_queued;
  event_outbox_depth_.fetch_add(1, std::memory_order_relaxed);
  events_pushed_.fetch_add(batch.events.size(), std::memory_order_relaxed);
  FlushWrites(io, conn);
}

bool JoinServer::FlushWrites(IoThread& io, Connection& conn) {
  while (!conn.out.empty()) {
    const Connection::OutFrame& front = conn.out.front();
    ssize_t w = ::send(conn.fd.get(), front.bytes.data() + conn.out_offset,
                       front.bytes.size() - conn.out_offset, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateEpollInterest(io, conn, /*want_write=*/true);
        return true;
      }
      conn.dead = true;
      return false;
    }
    conn.out_offset += static_cast<size_t>(w);
    if (conn.out_offset == front.bytes.size()) {
      if (front.sub == 0) {
        responses_sent_.fetch_add(1, std::memory_order_relaxed);
      } else if (!front.is_gap) {
        --conn.event_frames_queued;  // a droppable event frame left the box
        event_outbox_depth_.fetch_sub(1, std::memory_order_relaxed);
        if (event_delivery_lag_us_ != nullptr) {
          event_delivery_lag_us_->Record(
              uptime_timer_.ElapsedSeconds() * 1e6 - front.born_us);
        }
      }
      conn.out.pop_front();
      conn.out_offset = 0;
    }
  }
  UpdateEpollInterest(io, conn, /*want_write=*/false);
  return true;
}

void JoinServer::UpdateEpollInterest(IoThread& io, Connection& conn,
                                     bool want_write) {
  if (conn.want_write == want_write) return;
  conn.want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  ACT_CHECK(::epoll_ctl(io.epoll.get(), EPOLL_CTL_MOD, conn.fd.get(), &ev) ==
            0);
}

void JoinServer::ReleaseSubscriptions(Connection& conn) {
  for (const Connection::SubEntry& e : conn.subs) {
    subscriptions_.Remove(e.id);
    admission_.Release(e.admitted_bytes);
  }
  conn.subs.clear();
  conn.pending_gaps.clear();
}

void JoinServer::CloseConnection(IoThread& io, uint64_t conn_id) {
  auto it = io.conns.find(conn_id);
  if (it == io.conns.end()) return;
  // A dying connection takes its standing queries with it: unregister
  // them and give their admission bytes back before the fd goes. Event
  // frames still queued die with the outbox — the depth gauge must not
  // count ghosts.
  event_outbox_depth_.fetch_sub(
      static_cast<int64_t>(it->second->event_frames_queued),
      std::memory_order_relaxed);
  ReleaseSubscriptions(*it->second);
  // close() removes the fd from the epoll set implicitly.
  io.conns.erase(it);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
}

void JoinServer::DeliverAsync(int t, uint64_t conn_id,
                              std::vector<uint8_t> frame) {
  IoThread& io = *io_[static_cast<size_t>(t)];
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    io.pending_responses.emplace_back(conn_id, std::move(frame));
  }
  WakeThread(io);
}

void JoinServer::DeliverEventAsync(int t, uint64_t conn_id,
                                   service::EventBatch batch) {
  IoThread& io = *io_[static_cast<size_t>(t)];
  {
    std::lock_guard<std::mutex> lock(io.inbox_mu);
    io.pending_events.emplace_back(conn_id, std::move(batch));
  }
  WakeThread(io);
}

}  // namespace actjoin::net
