// The actjoin binary wire protocol: versioned, length-prefixed frames.
//
// Every message — request or response — is one frame:
//
//   offset  size  field
//   0       u32   magic "ACTJ" (0x4A544341 when read little-endian)
//   4       u8    protocol version (kWireVersion)
//   5       u8    message type (MessageType)
//   6       u16   dataset id (JOIN_BATCH and the mutation requests; 0
//                 elsewhere — was the reserved field in protocol v1)
//   8       u64   request id: chosen by the client, echoed verbatim in the
//                 response, so replies can be matched under pipelining
//   16      u32   payload length in bytes
//   20      u32   reserved, must be 0 (keeps the header 8-byte aligned)
//   24      ...   payload (layout per message type; see docs/wire_protocol.md)
//
// All integers are little-endian; doubles travel as their IEEE-754 bit
// pattern (util::ByteWriter / ByteReader). Requests are JOIN_BATCH,
// JOIN_DATASETS, PING, STATS, LIST_DATASETS, SHUTDOWN, and the mutation
// trio ADD_POLYGONS / REMOVE_POLYGONS / DROP_DATASET; every request gets
// exactly one response — the matching success type or ERROR with a typed
// WireError code — except JOIN_DATASETS, whose success answer is a
// *sequence* of PAIR_RESULT chunks (result size is O(pairs), so the
// response streams; the last chunk is flagged). A failed JOIN_DATASETS
// still gets exactly one ERROR frame and no chunks.
// Admission rejections, UNKNOWN_DATASET, DATASET_DROPPED, and
// INVALID_MUTATION are ordinary ERROR responses: the server never blocks
// and never drops the connection for them. Framing errors (bad magic, bad
// version, oversized frame) are not recoverable — the server answers with
// ERROR and closes, because byte sync is lost.
//
// Versioning rules: the header layout is frozen; kWireVersion bumps
// whenever any payload layout changes. A server answers a frame carrying a
// version it does not speak with UNSUPPORTED_VERSION (request id echoed),
// so old clients fail typed, not garbled. v2 turned the reserved u16 at
// offset 6 into dataset_id, added LIST_DATASETS / DATASET_LIST and the
// UNKNOWN_DATASET error, and extended the STATS_RESULT payload with the
// unknown-dataset reject counter, the dataset count, and per-peer
// admission splits. v3 added the live-mutation requests (ADD_POLYGONS /
// REMOVE_POLYGONS / DROP_DATASET -> MUTATE_RESULT), the DATASET_DROPPED
// and INVALID_MUTATION errors, the mutation counters in STATS_RESULT, and
// turned the DATASET_LIST per-entry reserved u16 into a flags field
// (bit 0: dropped). v4 is the observability release: GET_METRICS ->
// METRICS_RESULT (Prometheus text exposition or a structured binary
// report with the event log and slow-query dump), a JOIN_BATCH trace
// flag (the QueryBatch reserved u8 became flags, bit 0: trace) whose
// response carries the per-stage breakdown inline, and STATS_RESULT
// extended with p999 quantiles plus per-dataset epoch/traffic splits.
// v5 adds the index–index join: JOIN_DATASETS (dataset_a in the header's
// dataset_id, dataset_b + mode + page size in the payload) answered by a
// chunked stream of PAIR_RESULT frames — the protocol's first multi-frame
// response — with the per-join stats tail riding the flagged last chunk.
// v6 inverts the request/response core: SUBSCRIBE registers a standing
// geofence query (polygon ids, a leaf-cell region, or the whole dataset,
// plus an ENTER/LEAVE direction filter) answered by SUBSCRIPTION_RESULT,
// UNSUBSCRIBE retires it, and the server may thereafter interleave
// *server-initiated* EVENT frames (request_id 0 — they answer no request)
// carrying dense seq-numbered ENTER/LEAVE transitions, epoch-tagged, on
// the same connection as ordinary responses. EVENT_GAP (also server-
// initiated) replaces events the bounded per-connection outbox had to
// drop, carrying the skipped seq range — delivery may gap, but never
// silently and never by blocking the event loop. STATS_RESULT grows the
// subscription figures (active subscriptions, outstanding requests,
// events pushed/dropped). Clients must treat request_id-0 frames as
// out-of-band: a pipelined demultiplexer routes them by subscription id,
// never to a request slot.
// v7 is the profiling-plane release. A traced JOIN_RESULT may carry an
// optional hardware-counter section: the reserved u8 after the traced flag
// became a flags byte (bit 0: counters present, only valid when traced)
// and, when set, the trace is followed by a per-stage counter block — u8
// available + u8[7] reserved, then kNumTraceStages × (u64 cycles, u64
// instructions, u64 llc_misses). `available` 0 means perf_event_open was
// denied and the deltas are all zero (the section still frames
// identically, so clients need no second code path). JOIN_DATASETS gained
// a trace flag (the reserved u8 became flags, bit 0: trace), answered on
// the *last* PAIR_RESULT chunk by a trace tail (flags bit 1) after the
// stats block: u64 trace request id + kNumCrossMatchStages f64 stage
// times in microseconds (admission, decode, queue, pin, descend, refine,
// stream — the stream slot is patched at delivery, like JOIN_BATCH's
// respond slot). An untraced v7 stream is byte-identical to v6 behind the
// version byte.

#ifndef ACTJOIN_NET_WIRE_H_
#define ACTJOIN_NET_WIRE_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/polygon.h"
#include "join2/cross_match_trace.h"
#include "service/join_service.h"
#include "service/service_stats.h"
#include "service/slow_query_log.h"
#include "service/subscription_matcher.h"
#include "util/byte_io.h"
#include "util/metrics.h"
#include "util/perf_counters.h"

namespace actjoin::net {

inline constexpr uint32_t kWireMagic = 0x4A544341;  // "ACTJ"
inline constexpr uint8_t kWireVersion = 7;
inline constexpr size_t kFrameHeaderBytes = 24;
/// Default cap on one frame (header + payload); a JOIN_BATCH point costs
/// 24 payload bytes, so this admits ~2.7 M points per batch.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

enum class MessageType : uint8_t {
  // Requests.
  kJoinBatch = 1,       // QueryBatch payload -> kJoinResult
  kPing = 2,            // empty payload      -> kPong
  kStats = 3,           // empty payload      -> kStatsResult
  kShutdown = 4,        // empty payload      -> kShutdownAck (+ server flag)
  kListDatasets = 5,    // empty payload      -> kDatasetList
  // Live mutations (v3). All carry the target in the header's dataset_id
  // and answer with kMutateResult on success.
  kAddPolygons = 6,     // polygons blob      -> kMutateResult
  kRemovePolygons = 7,  // u32 count + ids    -> kMutateResult
  kDropDataset = 8,     // empty payload      -> kMutateResult
  kGetMetrics = 9,      // u8 format (v4)     -> kMetricsResult
  /// Index–index join (v5): dataset_a in the header's dataset_id, the
  /// rest in the payload. Success answers with a stream of kPairResult
  /// chunks; failure with one kError.
  kJoinDatasets = 10,
  // Continuous queries (v6). SUBSCRIBE routes by the header's dataset_id;
  // UNSUBSCRIBE names the subscription in its payload (dataset_id 0).
  kSubscribe = 11,      // SubscriptionSpec   -> kSubscriptionResult
  kUnsubscribe = 12,    // u64 subscription   -> kSubscriptionResult
  // Responses.
  kJoinResult = 65,
  kPong = 66,
  kStatsResult = 67,
  kShutdownAck = 68,
  kDatasetList = 69,
  kMutateResult = 70,
  kMetricsResult = 71,
  kPairResult = 72,     // one chunk of a JOIN_DATASETS result (v5)
  kSubscriptionResult = 73,  // ack for kSubscribe / kUnsubscribe (v6)
  /// Server-initiated push (v6): request_id is always 0 — these answer no
  /// request and may interleave with responses anywhere on the stream.
  kEvent = 74,          // a dense run of seq-numbered ENTER/LEAVE events
  kEventGap = 75,       // events the bounded outbox dropped (seq range)
  kError = 127,
};

/// GET_METRICS payload: which export form the response should carry.
enum class MetricsFormat : uint8_t {
  kBinary = 0,  // structured MetricsReport (samples + events + slow queries)
  kText = 1,    // Prometheus text exposition format, verbatim
};

/// Typed error codes carried by kError responses.
enum class WireError : uint16_t {
  kNone = 0,
  // Protocol-level. kMalformedFrame / kUnsupportedVersion / kFrameTooLarge
  // desynchronize the byte stream, so the server closes after sending.
  kMalformedFrame = 1,
  kUnsupportedVersion = 2,
  kUnknownType = 3,      // valid frame, unknown type: connection survives
  kFrameTooLarge = 4,
  kMalformedPayload = 5,  // valid frame, undecodable payload: survives
  // Admission-control rejections (connection always survives; retry later).
  kRateLimited = 16,
  kInFlightBytesExceeded = 17,
  kQueueWatermark = 18,
  // Service-door rejections surfaced by JoinService::TrySubmitAsync.
  kQueueFull = 24,
  kShuttingDown = 25,
  /// JOIN_BATCH against a dataset id the catalog never assigned. The
  /// connection survives: fetch LIST_DATASETS and retry with a real id.
  kUnknownDataset = 26,
  /// The dataset id is assigned but tombstoned by DROP_DATASET: joins and
  /// mutations against it reject typed (the slot may be resurrected by a
  /// later full publish). Connection survives.
  kDatasetDropped = 27,
  /// A mutation the service refused on its content: empty add/remove,
  /// remove ids out of range, polygon id space exhausted. Connection
  /// survives.
  kInvalidMutation = 28,
  /// UNSUBSCRIBE naming a subscription id this connection does not hold
  /// (never assigned, already unsubscribed, or someone else's — ids are
  /// per-connection-private). Connection survives.
  kUnknownSubscription = 29,
  /// SUBSCRIBE beyond the per-connection standing-query cap
  /// (ServerOptions::max_subscriptions_per_connection). Connection
  /// survives; unsubscribe something first.
  kSubscriptionLimit = 30,
  /// Client-side only: the configured receive deadline expired with a
  /// response (possibly a partial frame) still outstanding. The client
  /// closes the connection — a half-read frame means byte sync is gone —
  /// so this is not recoverable.
  kTimedOut = 31,
};

const char* ToString(WireError error);

/// True for rejections where the server keeps the connection open (the
/// client may retry on the same socket).
bool IsRecoverable(WireError error);

struct FrameHeader {
  uint8_t version = kWireVersion;
  MessageType type = MessageType::kPing;
  /// Target dataset for JOIN_BATCH and the mutation requests; 0 on every
  /// other message.
  uint16_t dataset_id = 0;
  uint64_t request_id = 0;
  uint32_t payload_bytes = 0;
};

enum class FrameParse {
  kNeedMoreData,   // keep reading; `buffer` holds only a frame prefix
  kFrame,          // *header filled; payload at [kFrameHeaderBytes, ...)
  kProtocolError,  // *error filled; stream is desynchronized
};

/// Incremental frame scanner over a receive buffer. On kFrame,
/// *frame_bytes is the total frame size (header + payload) to consume and
/// the payload is buffer.subspan(kFrameHeaderBytes, header->payload_bytes).
/// On kProtocolError, header->request_id carries the id if the header was
/// readable (so the error response can echo it), else 0.
FrameParse TryParseFrame(std::span<const uint8_t> buffer,
                         size_t max_frame_bytes, FrameHeader* header,
                         size_t* frame_bytes, WireError* error);

/// One complete frame: header + payload.
std::vector<uint8_t> EncodeFrame(MessageType type, uint64_t request_id,
                                 std::span<const uint8_t> payload);

// --- Payload codecs --------------------------------------------------------

void AppendQueryBatch(const service::QueryBatch& batch, util::ByteWriter* w);
bool DecodeQueryBatch(std::span<const uint8_t> payload,
                      service::QueryBatch* out);

void AppendJoinResult(const service::JoinResult& result, util::ByteWriter* w);
bool DecodeJoinResult(std::span<const uint8_t> payload,
                      service::JoinResult* out);

void AppendServiceStats(const service::ServiceStats& stats,
                        util::ByteWriter* w);
bool DecodeServiceStats(std::span<const uint8_t> payload,
                        service::ServiceStats* out);

void AppendDatasetList(const std::vector<service::DatasetInfo>& datasets,
                       util::ByteWriter* w);
bool DecodeDatasetList(std::span<const uint8_t> payload,
                       std::vector<service::DatasetInfo>* out);

/// MUTATE_RESULT payload: what a successful mutation published.
struct MutationAck {
  /// Echo of the request's MessageType (kAddPolygons / kRemovePolygons /
  /// kDropDataset), so a pipelined client can sanity-check the pairing.
  MessageType op = MessageType::kAddPolygons;
  /// Snapshot epoch the mutation published.
  uint64_t epoch = 0;
  /// Dataset polygon-id-space size after the mutation (removed ids keep
  /// their slots; 0 after a drop).
  uint64_t num_polygons = 0;
  /// First global id assigned to the added polygons (kAddPolygons only;
  /// the batch got [first_id, first_id + count) in order).
  uint32_t first_id = 0;

  friend bool operator==(const MutationAck&, const MutationAck&) = default;
};

/// ADD_POLYGONS payload: the act polygons blob (u64 count, then rings).
void AppendAddPolygons(const std::vector<geom::Polygon>& polygons,
                       util::ByteWriter* w);
bool DecodeAddPolygons(std::span<const uint8_t> payload,
                       std::vector<geom::Polygon>* out);

/// REMOVE_POLYGONS payload: u32 count, then count u32 global polygon ids.
void AppendRemovePolygons(const std::vector<uint32_t>& ids,
                          util::ByteWriter* w);
bool DecodeRemovePolygons(std::span<const uint8_t> payload,
                          std::vector<uint32_t>* out);

void AppendMutationAck(const MutationAck& ack, util::ByteWriter* w);
bool DecodeMutationAck(std::span<const uint8_t> payload, MutationAck* out);

// --- JOIN_DATASETS / PAIR_RESULT (v5) --------------------------------------

/// JOIN_DATASETS payload (dataset_a travels in the header's dataset_id):
/// u16 dataset_b, u8 mode, u8 flags (bit 0: trace, v7; other bits must be
/// 0), u32 page_size.
struct JoinDatasetsRequest {
  uint16_t dataset_b = 0;
  /// join2::CrossMatchMode on the wire: 0 intersects, 1 contains. Decode
  /// rejects anything else (kMalformedPayload, not a silent default).
  uint8_t mode = 0;
  /// Pairs per PAIR_RESULT chunk; 0 means the server default
  /// (kDefaultPairPageSize). The server clamps, never rejects, a large
  /// value — page size shapes framing, not semantics.
  uint32_t page_size = 0;
  /// Request the per-stage breakdown on the last PAIR_RESULT chunk (v7).
  bool trace = false;

  friend bool operator==(const JoinDatasetsRequest&,
                         const JoinDatasetsRequest&) = default;
};

/// Per-join figures riding the last chunk of a PAIR_RESULT stream: the
/// wire form of join2::CrossMatchStats plus the two pinned epochs and the
/// request's timing splits.
struct PairChunkStats {
  uint64_t candidate_pairs = 0;
  uint64_t refined_pairs = 0;
  uint64_t pruned_pairs = 0;
  uint32_t max_depth = 0;
  uint64_t epoch_a = 0;
  uint64_t epoch_b = 0;
  double service_us = 0;
  double queue_wait_us = 0;

  friend bool operator==(const PairChunkStats&,
                         const PairChunkStats&) = default;
};

/// One PAIR_RESULT chunk. Payload layout: u32 chunk_index, u8 flags
/// (bit 0: last; bit 1: traced, v7, last-chunk-only), u8[3] reserved
/// (must be 0), u64 total_pairs (of the whole result, identical in every
/// chunk), u32 num_pairs, then num_pairs × (u32 a, u32 b), then — on the
/// last chunk only — the PairChunkStats tail (three u64, u32 + u32
/// reserved, two u64, two f64), then — when traced — the trace tail:
/// u64 trace request id + kNumCrossMatchStages f64 stage times in
/// microseconds (the stream slot last, patched in place at delivery via
/// PatchStreamStage). Pairs arrive in the result's sorted order, split at
/// page boundaries; an empty result is one last-flagged chunk with zero
/// pairs.
struct PairChunk {
  uint32_t chunk_index = 0;
  bool last = false;
  uint64_t total_pairs = 0;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  /// Meaningful only when `last` is set; default elsewhere.
  PairChunkStats stats;
  /// Stage breakdown (v7); enabled only on the last chunk of a traced
  /// JOIN_DATASETS stream.
  join2::CrossMatchTrace trace;

  friend bool operator==(const PairChunk&, const PairChunk&) = default;
};

/// Server-side default and hard cap for pairs per chunk. The cap keeps a
/// forged page_size from asking for a chunk above the frame limit: 8 B
/// per pair, so 2^20 pairs is an 8 MiB payload, comfortably under
/// kDefaultMaxFrameBytes.
inline constexpr uint32_t kDefaultPairPageSize = 8192;
inline constexpr uint32_t kMaxPairPageSize = 1u << 20;

void AppendJoinDatasets(const JoinDatasetsRequest& req, util::ByteWriter* w);
bool DecodeJoinDatasets(std::span<const uint8_t> payload,
                        JoinDatasetsRequest* out);

void AppendPairChunk(const PairChunk& chunk, util::ByteWriter* w);
bool DecodePairChunk(std::span<const uint8_t> payload, PairChunk* out);

// --- SUBSCRIBE / EVENT push channel (v6) -----------------------------------

/// SUBSCRIBE payload (dataset in the header's dataset_id): u8 selector,
/// u8 mode, u16 reserved (must be 0), then the selector body — polygon
/// ids: u32 count + count × u32; cell range: u64 lo + u64 hi; all:
/// nothing. Decode rejects unknown selector/mode bytes and a count that
/// overruns the payload.
void AppendSubscribe(const service::SubscriptionSpec& spec,
                     util::ByteWriter* w);
bool DecodeSubscribe(std::span<const uint8_t> payload,
                     service::SubscriptionSpec* out);

/// UNSUBSCRIBE payload: exactly one u64 subscription id.
bool DecodeUnsubscribe(std::span<const uint8_t> payload,
                       uint64_t* subscription_id);

/// SUBSCRIPTION_RESULT payload (SubscriptionInfo on the wire): u64
/// subscription id, u64 epoch, u32 watched polygons, u32 coverage
/// intervals. An UNSUBSCRIBE ack echoes the id with the figures zeroed.
void AppendSubscriptionInfo(const service::SubscriptionInfo& info,
                            util::ByteWriter* w);
bool DecodeSubscriptionInfo(std::span<const uint8_t> payload,
                            service::SubscriptionInfo* out);

/// EVENT payload (service::EventBatch on the wire): u64 subscription id,
/// u64 first_seq, u64 epoch, u32 count, u32 reserved (0), then count ×
/// (u8 kind: 0 ENTER / 1 LEAVE, u8 + u16 reserved, u32 track id, u32
/// polygon id). The i-th event's seq is first_seq + i — seqs are dense
/// within a frame, so only EVENT_GAP (or a fresh connection) explains a
/// jump between frames.
void AppendEventBatch(const service::EventBatch& batch, util::ByteWriter* w);
bool DecodeEventBatch(std::span<const uint8_t> payload,
                      service::EventBatch* out);

/// EVENT_GAP payload: u64 subscription id, u64 first_skipped_seq, u64
/// last_skipped_seq (inclusive — the overflow policy dropped exactly
/// those events).
struct EventGap {
  uint64_t subscription_id = 0;
  uint64_t first_skipped_seq = 0;
  uint64_t last_skipped_seq = 0;

  friend bool operator==(const EventGap&, const EventGap&) = default;
};

void AppendEventGap(const EventGap& gap, util::ByteWriter* w);
bool DecodeEventGap(std::span<const uint8_t> payload, EventGap* out);

/// One flattened sample of the binary metrics form. Histograms are
/// flattened into five samples sharing the family's kind byte —
/// `<name>_count`, `<name>_sum`, `<name>_p50`, `<name>_p99`,
/// `<name>_p999` — with the time-valued ones in seconds, matching the
/// text exposition.
struct MetricSample {
  std::string name;    // without the actjoin_ exposition prefix
  std::string labels;  // rendered inner label list ("" for none)
  uint8_t kind = 0;    // util::MetricKind of the source family
  double value = 0;

  friend bool operator==(const MetricSample&, const MetricSample&) = default;
};

/// METRICS_RESULT's structured binary form: the whole registry flattened,
/// plus the event ring and the slow-query dump (which the text form omits
/// — Prometheus has no exposition for either).
struct MetricsReport {
  std::vector<MetricSample> samples;
  std::vector<util::MetricEvent> events;
  std::vector<service::SlowQuery> slow_queries;
};

/// Flattens a registry collection (+ optional event/slow-query sources)
/// into the wire report. Shared by the server and the in-process tests.
MetricsReport BuildMetricsReport(const util::MetricsRegistry& registry,
                                 const service::SlowQueryLog* slow_queries);

void AppendMetricsReport(const MetricsReport& report, util::ByteWriter* w);
bool DecodeMetricsReport(std::span<const uint8_t> payload, MetricsReport* out);

/// METRICS_RESULT payload: u8 format, u8[3] reserved, then the
/// format-specific body (length-prefixed text, or the binary report).
bool DecodeMetricsResult(std::span<const uint8_t> payload,
                         MetricsFormat* format, std::string* text,
                         MetricsReport* report);

bool DecodeError(std::span<const uint8_t> payload, WireError* code,
                 std::string* message);

// --- Whole-frame convenience builders --------------------------------------

std::vector<uint8_t> EncodeJoinBatchFrame(uint64_t request_id,
                                          const service::QueryBatch& batch);
std::vector<uint8_t> EncodeJoinResultFrame(uint64_t request_id,
                                           const service::JoinResult& result);
std::vector<uint8_t> EncodeStatsResultFrame(
    uint64_t request_id, const service::ServiceStats& stats);
std::vector<uint8_t> EncodeDatasetListFrame(
    uint64_t request_id, const std::vector<service::DatasetInfo>& datasets);
std::vector<uint8_t> EncodeAddPolygonsFrame(
    uint64_t request_id, uint16_t dataset_id,
    const std::vector<geom::Polygon>& polygons);
std::vector<uint8_t> EncodeRemovePolygonsFrame(
    uint64_t request_id, uint16_t dataset_id,
    const std::vector<uint32_t>& ids);
std::vector<uint8_t> EncodeDropDatasetFrame(uint64_t request_id,
                                            uint16_t dataset_id);
std::vector<uint8_t> EncodeMutateResultFrame(uint64_t request_id,
                                             const MutationAck& ack);
std::vector<uint8_t> EncodeJoinDatasetsFrame(uint64_t request_id,
                                             uint16_t dataset_a,
                                             const JoinDatasetsRequest& req);
std::vector<uint8_t> EncodePairChunkFrame(uint64_t request_id,
                                          const PairChunk& chunk);
std::vector<uint8_t> EncodeSubscribeFrame(uint64_t request_id,
                                          uint16_t dataset_id,
                                          const service::SubscriptionSpec& spec);
std::vector<uint8_t> EncodeUnsubscribeFrame(uint64_t request_id,
                                            uint64_t subscription_id);
std::vector<uint8_t> EncodeSubscriptionResultFrame(
    uint64_t request_id, const service::SubscriptionInfo& info);
/// Server-initiated: request_id is 0 by protocol.
std::vector<uint8_t> EncodeEventFrame(const service::EventBatch& batch);
std::vector<uint8_t> EncodeEventGapFrame(const EventGap& gap);
/// GET_METRICS request: u8 format, u8[3] reserved.
std::vector<uint8_t> EncodeGetMetricsFrame(uint64_t request_id,
                                           MetricsFormat format);
std::vector<uint8_t> EncodeMetricsTextFrame(uint64_t request_id,
                                            std::string_view text);
std::vector<uint8_t> EncodeMetricsReportFrame(uint64_t request_id,
                                              const MetricsReport& report);
bool DecodeGetMetrics(std::span<const uint8_t> payload, MetricsFormat* format);

/// Overwrites the respond-stage slot (the last f64 of a traced JOIN_RESULT
/// frame) in place. The respond stage times the response *encode*, which
/// cannot know its own duration while being encoded — so the encoder
/// leaves a zero and the server patches the measured value here just
/// before handing the frame to the event loop. No-op contract: only call
/// on a frame built by EncodeJoinResultFrame from a trace-enabled result.
void PatchRespondStage(std::vector<uint8_t>* frame, double respond_us);
/// The counter-section variant (v7): on a traced frame carrying the
/// hardware-counter section, the respond f64 sits before the 176-byte
/// counter block, and the respond stage's own counter triple is the
/// block's last 24 bytes — both unknowable while the frame is being
/// encoded, so the server patches the measured values here. Only call on
/// a frame built from a trace-enabled result with counters_enabled.
void PatchRespondStageWithCounters(std::vector<uint8_t>* frame,
                                   double respond_us,
                                   const util::StageCounterSample& respond);
/// JOIN_DATASETS analogue: overwrites the stream-stage slot (the last f64
/// of a traced last PAIR_RESULT chunk) just before the frame is handed to
/// the event loop. Only call on a frame built by EncodePairChunkFrame
/// from a last chunk with trace.enabled.
void PatchStreamStage(std::vector<uint8_t>* frame, double stream_us);
std::vector<uint8_t> EncodeErrorFrame(uint64_t request_id, WireError code,
                                      std::string_view message);
/// PING / PONG / STATS / SHUTDOWN / SHUTDOWN_ACK carry no payload.
std::vector<uint8_t> EncodeEmptyFrame(MessageType type, uint64_t request_id);

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_WIRE_H_
