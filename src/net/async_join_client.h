// AsyncJoinClient: the pipelined, event-capable core every actjoin client
// shape builds on.
//
// One connection, one dedicated reader thread, unlimited in-flight
// requests. A caller encodes a frame (carrying a request id from
// NextRequestId), registers interest, and gets a std::future back; the
// reader demultiplexes every inbound frame by the echoed request id into
// the matching completion slot, so responses may arrive in any order and
// callers on any thread overlap freely — the protocol's request ids
// always permitted this, only the old blocking client's
// one-at-a-time loop constrained it. The blocking JoinClient is now a
// thin wrapper over this class (send one frame, get() the future), which
// is what keeps the two behaviorally identical.
//
// Frames that answer no request — wire v6's server-initiated EVENT /
// EVENT_GAP push, always request id 0 — route by subscription id instead,
// to the handler registered by Subscribe(). Handlers run on the reader
// thread: keep them cheap, never call back into the client from one, and
// never block (a blocked handler stalls every response on the
// connection).
//
// Failure model (matching the blocking client, which inherits it):
//   * transport errors (send/recv failed, peer closed) complete the
//     affected futures with ok=false and a message; the connection is
//     dead and connected() turns false;
//   * a typed kError response completes only its own request's future
//     (error = the code); a recoverable code leaves the connection — and
//     every other in-flight request — untouched;
//   * protocol violations (unknown request id, unexpected type, an
//     undecodable payload the reader must decode, a PAIR_RESULT sequence
//     violation) are fail-closed: the connection shuts down and every
//     pending future completes with the violation's message;
//   * a configured receive deadline (set_recv_timeout_ms) that expires
//     while responses are outstanding — including mid-frame, the
//     half-written-frame hang this deadline exists to break — completes
//     every pending future with the typed WireError::kTimedOut and closes
//     the connection (a partial frame means byte sync is gone). An idle
//     connection (no outstanding requests, no partial frame) never times
//     out, however long-lived: standing subscriptions are legitimately
//     quiet for hours.
//
// Thread-safe: any number of threads may issue requests concurrently
// (sends serialize on an internal mutex); Connect/Close must not race
// requests.

#ifndef ACTJOIN_NET_ASYNC_JOIN_CLIENT_H_
#define ACTJOIN_NET_ASYNC_JOIN_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"

namespace actjoin::net {

/// Result of a JOIN_DATASETS crossmatch (wire v5): the reassembled pair
/// stream plus the stats tail from the final chunk. `pairs` arrives
/// sorted ascending by (gid_a, gid_b) and unique — the server streams
/// the pages of one sorted sequence, and the client verifies the chunk
/// indexes are consecutive, so concatenation preserves the order.
struct CrossMatchReply {
  bool ok = false;
  WireError error = WireError::kNone;
  std::string message;
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  PairChunkStats stats;
  /// How many PAIR_RESULT chunks carried the stream (>= 1 on ok).
  uint32_t num_chunks = 0;
  /// Stage breakdown from the final chunk (v7); enabled only when the
  /// request asked for a trace.
  join2::CrossMatchTrace trace;
};

class AsyncJoinClient {
 public:
  /// Untyped single-response completion: on ok, `payload` is the success
  /// response's payload for the caller to decode (`type` names it). On
  /// failure, `error` is kNone for transport-level trouble, a typed code
  /// for a kError response or the client-side kTimedOut.
  struct RawReply {
    bool ok = false;
    WireError error = WireError::kNone;
    std::string message;
    MessageType type = MessageType::kError;
    std::vector<uint8_t> payload;
  };

  struct SubscribeReply {
    bool ok = false;
    WireError error = WireError::kNone;
    std::string message;
    /// Valid on ok: the subscription id events will carry, plus the
    /// coverage figures resolved at subscribe time.
    service::SubscriptionInfo info;
  };

  /// Both run on the reader thread; see the header comment's rules.
  using EventHandler = std::function<void(const service::EventBatch&)>;
  using GapHandler = std::function<void(const EventGap&)>;

  AsyncJoinClient() = default;
  AsyncJoinClient(const AsyncJoinClient&) = delete;
  AsyncJoinClient& operator=(const AsyncJoinClient&) = delete;
  ~AsyncJoinClient() { Close(); }

  /// Blocking IPv4 connect; launches the reader. False + *error on
  /// failure. Reconnecting an errored client is allowed once no futures
  /// are outstanding.
  bool Connect(const std::string& host, uint16_t port,
               std::string* error = nullptr);
  bool connected() const { return connected_.load(std::memory_order_acquire); }

  /// Fails every in-flight request with "connection closed", stops the
  /// reader, and releases the socket. Safe to call repeatedly; must not
  /// be called from an event handler (the reader cannot join itself).
  void Close();

  /// Frames larger than this are refused client-side before sending, and
  /// inbound frames above it are protocol errors.
  size_t max_frame_bytes() const {
    return max_frame_bytes_.load(std::memory_order_relaxed);
  }
  void set_max_frame_bytes(size_t bytes) {
    max_frame_bytes_.store(bytes, std::memory_order_relaxed);
  }

  /// Receive stall deadline, milliseconds; 0 (default) disables. Armed
  /// whenever responses are outstanding or a frame is partially read; any
  /// inbound progress re-arms it.
  int recv_timeout_ms() const {
    return recv_timeout_ms_.load(std::memory_order_relaxed);
  }
  void set_recv_timeout_ms(int ms) {
    recv_timeout_ms_.store(ms, std::memory_order_relaxed);
    WakeReader();  // a reader parked without a deadline must re-arm
  }

  /// Claims the next request id (atomic; ids start at 1).
  uint64_t NextRequestId() {
    return next_request_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Pipelined call: sends `frame` (already encoded, carrying
  /// `request_id`) and resolves the future when the response with that id
  /// arrives — a frame of type `expect` (ok, payload attached) or a typed
  /// kError (ok=false). The future is safe to get() from any thread.
  std::future<RawReply> Call(const std::vector<uint8_t>& frame,
                             uint64_t request_id, MessageType expect);

  /// JOIN_DATASETS variant: reassembles the PAIR_RESULT chunk stream with
  /// the same fail-closed sequence validation the blocking client always
  /// applied (consecutive chunk indexes, stable total_pairs, count check).
  std::future<CrossMatchReply> CallCrossMatch(const std::vector<uint8_t>& frame,
                                              uint64_t request_id);

  /// Registers a standing geofence query on the server (wire v6) and
  /// installs the handlers its pushed EVENT / EVENT_GAP frames route to.
  /// The handlers are installed before the returned future resolves, so
  /// no event can slip past. `on_gap` may be null (gaps dropped).
  std::future<SubscribeReply> Subscribe(uint16_t dataset_id,
                                        const service::SubscriptionSpec& spec,
                                        EventHandler on_events,
                                        GapHandler on_gap = nullptr);

  /// Retires a subscription; its handlers are dropped when the ack
  /// arrives.
  std::future<SubscribeReply> Unsubscribe(uint64_t subscription_id);

  /// Requests sent and not yet answered (streams count until their last
  /// chunk).
  size_t outstanding_requests() const;

 private:
  enum class SlotKind { kSingle, kStream, kSubscribe, kUnsubscribe };

  struct Slot {
    SlotKind kind = SlotKind::kSingle;
    MessageType expect = MessageType::kError;
    std::promise<RawReply> promise;            // kSingle
    std::promise<CrossMatchReply> stream_promise;  // kStream
    CrossMatchReply stream;                    // kStream accumulation
    uint64_t total_pairs = 0;
    uint32_t next_chunk = 0;
    std::promise<SubscribeReply> sub_promise;  // kSubscribe / kUnsubscribe
    EventHandler on_events;                    // kSubscribe
    GapHandler on_gap;                         // kSubscribe
    uint64_t unsubscribe_id = 0;               // kUnsubscribe
  };

  struct Handlers {
    EventHandler on_events;
    GapHandler on_gap;
  };

  /// Sends the frame after registering `slot` under `request_id`. On any
  /// local refusal (not connected, oversized, send error) the slot is
  /// completed with the failure; a send error additionally fails the
  /// connection (the stream position is indeterminate).
  void Dispatch(const std::vector<uint8_t>& frame, uint64_t request_id,
                std::unique_ptr<Slot> slot);

  void ReaderLoop();
  /// Routes one inbound frame. False => the connection just failed
  /// (HandleFrame already reported why) and the reader must exit.
  bool HandleFrame(const FrameHeader& header,
                   std::span<const uint8_t> payload);
  /// Completes one slot's future with ok=false, whatever its kind.
  static void CompleteFailure(Slot* slot, WireError code,
                              const std::string& message);
  /// Marks the connection dead, shuts the socket down (waking the
  /// reader), and fails every pending future and the subscription table.
  void FailConnection(WireError code, const std::string& message);
  /// Pokes the reader out of poll() so it re-evaluates the deadline
  /// arming state. Without this, a request dispatched while the reader is
  /// parked with no deadline (nothing was pending when it went to sleep)
  /// would never get its receive timeout armed against a silent server.
  void WakeReader();

  UniqueFd fd_;
  /// eventfd the reader polls alongside the socket (the wake channel for
  /// WakeReader). Created per Connect, released after the reader joins.
  UniqueFd wake_fd_;
  std::thread reader_;
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<size_t> max_frame_bytes_{kDefaultMaxFrameBytes};
  std::atomic<int> recv_timeout_ms_{0};

  std::mutex send_mu_;  // serializes SendAll (frames must not interleave)
  mutable std::mutex mu_;  // guards pending_ / subs_ / failed_ / fail_*
  std::map<uint64_t, std::unique_ptr<Slot>> pending_;
  std::map<uint64_t, Handlers> subs_;
  /// Set once by FailConnection: later Dispatch calls fail fast instead of
  /// writing into a dead socket, and a reader mid-frame completes the slot
  /// it holds with the recorded reason instead of re-registering it.
  bool failed_ = false;
  WireError fail_code_ = WireError::kNone;
  std::string fail_message_;
};

}  // namespace actjoin::net

#endif  // ACTJOIN_NET_ASYNC_JOIN_CLIENT_H_
