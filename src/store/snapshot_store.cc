#include "store/snapshot_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "act/polygon_ref.h"
#include "util/byte_io.h"
#include "util/check.h"

namespace actjoin::store {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53544341;  // "ACTS"
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kDeltaMagic = 0x44544341;  // "ACTD"
constexpr uint32_t kDeltaVersion = 1;
constexpr uint32_t kManifestMagic = 0x4D544341;  // "ACTM"
// v2 added the delta chain (base generation + delta generations) per
// entry; v1 manifests still parse (base = generation, no deltas).
constexpr uint32_t kManifestVersion = 2;

// Section tags (the act index body owns tags 1..3).
constexpr uint32_t kStoreHeaderTag = 16;
constexpr uint32_t kShardMetaTag = 17;
constexpr uint32_t kDeltaHeaderTag = 18;
constexpr uint32_t kDeltaRecordTag = 19;
constexpr uint32_t kManifestTag = 32;

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestBakName = "MANIFEST.bak";

std::string ErrnoMessage(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

/// fsyncs the directory itself so the renames/links inside it are durable
/// (a file fsync makes the *bytes* durable; the directory entry needs its
/// own). Best-effort: some filesystems refuse directory fsync.
void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// The atomic-publish idiom: write <path>.tmp, fsync it, rename over
/// <path>, fsync the directory. A crash leaves either the old file, the
/// new file, or a stray .tmp — never a torn <path>.
bool WriteFileDurable(const std::string& dir, const std::string& path,
                      const std::vector<uint8_t>& bytes, bool do_fsync,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoMessage("open " + tmp);
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = ErrnoMessage("write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(w);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    if (error != nullptr) *error = ErrnoMessage("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = ErrnoMessage("rename " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (do_fsync) FsyncDir(dir);
  return true;
}

void Fail(act::LoadError* error, act::LoadError what) {
  if (error != nullptr) *error = what;
}

// --- Snapshot file codec ---------------------------------------------------

std::vector<uint8_t> EncodeSnapshot(const std::string& name,
                                    uint64_t generation,
                                    const service::ShardedIndex& index) {
  util::ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);

  size_t s = act::BeginSection(&w, kStoreHeaderTag);
  w.PutU32(static_cast<uint32_t>(index.num_shards()));
  w.PutU32(static_cast<uint32_t>(index.options().routing_cover_cells));
  w.PutU8(static_cast<uint8_t>(index.grid().curve()));
  w.PutU64(index.num_polygons());
  w.PutU64(generation);
  w.PutString(name);
  act::EndSection(&w, s);

  for (int shard = 0; shard < index.num_shards(); ++shard) {
    const act::PolygonIndex* shard_index = index.shard_index(shard);
    const std::vector<uint32_t>& gids = index.shard_polygon_ids(shard);
    s = act::BeginSection(&w, kShardMetaTag);
    w.PutU8(shard_index != nullptr ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(gids.size()));
    for (uint32_t gid : gids) w.PutU32(gid);
    act::EndSection(&w, s);
    // The per-shard index rides as a regular act index body (its own
    // CRC-framed sections), so shard loads reuse the act parser verbatim.
    if (shard_index != nullptr) act::AppendIndexBody(*shard_index, &w);
  }
  return w.Take();
}

std::shared_ptr<const service::ShardedIndex> ParseSnapshot(
    const std::vector<uint8_t>& bytes, const std::string& expect_name,
    act::LoadError* error) {
  Fail(error, act::LoadError::kNone);
  if (bytes.size() < 8) {
    Fail(error, act::LoadError::kTruncated);
    return nullptr;
  }
  util::ByteReader head(bytes);
  if (head.U32() != kSnapshotMagic) {
    Fail(error, act::LoadError::kBadMagic);
    return nullptr;
  }
  if (head.U32() != kSnapshotVersion) {
    Fail(error, act::LoadError::kBadVersion);
    return nullptr;
  }

  size_t offset = 8;
  std::span<const uint8_t> payload;
  if (!act::ReadSection(bytes, &offset, kStoreHeaderTag, &payload, error)) {
    return nullptr;
  }
  util::ByteReader r(payload);
  uint32_t num_shards = r.U32();
  uint32_t routing_cover_cells = r.U32();
  uint8_t curve = r.U8();
  uint64_t num_polygons = r.U64();
  r.U64();  // generation: advisory (the file name is authoritative)
  std::string name = r.String();
  // num_polygons feeds counts.assign() on every join: bound it by the
  // file size (a real polygon costs far more than one byte in some shard
  // body) so a forged header cannot plant a multi-exabyte allocation
  // that detonates at query time.
  if (!r.AtEnd() || num_shards == 0 || num_shards > 1u << 20 || curve > 1 ||
      num_polygons > bytes.size() || name != expect_name) {
    Fail(error, act::LoadError::kBadData);
    return nullptr;
  }

  std::vector<service::ShardedIndex::ShardParts> parts(num_shards);
  act::BuildOptions build;  // taken from the first non-empty shard
  bool have_build = false;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    if (!act::ReadSection(bytes, &offset, kShardMetaTag, &payload, error)) {
      return nullptr;
    }
    util::ByteReader meta(payload);
    uint8_t has_index = meta.U8();
    uint32_t n_gids = meta.U32();
    if (!meta.ok() || has_index > 1 || n_gids > meta.remaining() / 4 + 1) {
      Fail(error, act::LoadError::kBadData);
      return nullptr;
    }
    std::vector<uint32_t>& gids = parts[shard].global_ids;
    gids.reserve(n_gids);
    for (uint32_t i = 0; i < n_gids; ++i) {
      uint32_t gid = meta.U32();
      if (!meta.ok() || gid >= num_polygons) {
        Fail(error, act::LoadError::kBadData);
        return nullptr;
      }
      gids.push_back(gid);
    }
    if (!meta.AtEnd() || (has_index == 0) != gids.empty()) {
      Fail(error, act::LoadError::kBadData);
      return nullptr;
    }
    if (has_index != 0) {
      std::optional<act::PolygonIndex> index =
          act::ParseIndexBody(bytes, &offset, error);
      if (!index.has_value()) return nullptr;
      if (index->polygons().size() != gids.size()) {
        Fail(error, act::LoadError::kBadData);
        return nullptr;
      }
      if (!have_build) {
        build = index->options();
        have_build = true;
      }
      parts[shard].index =
          std::make_shared<const act::PolygonIndex>(*std::move(index));
    }
  }
  if (offset != bytes.size()) {
    Fail(error, act::LoadError::kBadData);
    return nullptr;
  }

  service::ShardingOptions opts;
  opts.num_shards = static_cast<int>(num_shards);
  opts.routing_cover_cells = static_cast<int>(routing_cover_cells);
  opts.build = build;
  return std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::FromParts(
          geo::Grid(static_cast<geo::CurveType>(curve)), opts, num_polygons,
          std::move(parts)));
}

// --- Delta file codec -------------------------------------------------------

/// A well-formed record carries exactly the payload its kind implies; the
/// writer refuses anything else so the reader never has to guess.
bool ValidDeltaRecord(const service::MutationRecord& rec) {
  switch (rec.kind) {
    case service::MutationRecord::Kind::kAdd:
      return !rec.added.empty() && rec.removed.empty();
    case service::MutationRecord::Kind::kRemove:
      return rec.added.empty() && !rec.removed.empty();
    case service::MutationRecord::Kind::kDrop:
      return rec.added.empty() && rec.removed.empty();
  }
  return false;
}

std::vector<uint8_t> EncodeDelta(
    const std::string& name, uint64_t generation, uint64_t base_generation,
    uint64_t prev_generation,
    const std::vector<service::MutationRecord>& records) {
  util::ByteWriter w;
  w.PutU32(kDeltaMagic);
  w.PutU32(kDeltaVersion);

  size_t s = act::BeginSection(&w, kDeltaHeaderTag);
  w.PutString(name);
  w.PutU64(generation);
  w.PutU64(base_generation);
  w.PutU64(prev_generation);
  w.PutU32(static_cast<uint32_t>(records.size()));
  act::EndSection(&w, s);

  for (const service::MutationRecord& rec : records) {
    s = act::BeginSection(&w, kDeltaRecordTag);
    w.PutU8(static_cast<uint8_t>(rec.kind));
    switch (rec.kind) {
      case service::MutationRecord::Kind::kAdd:
        act::AppendPolygonsBlob(rec.added, &w);
        break;
      case service::MutationRecord::Kind::kRemove:
        w.PutU32(static_cast<uint32_t>(rec.removed.size()));
        for (uint32_t gid : rec.removed) w.PutU32(gid);
        break;
      case service::MutationRecord::Kind::kDrop:
        break;
    }
    act::EndSection(&w, s);
  }
  return w.Take();
}

/// Parses <name>-<gen>.delta and cross-checks it against its place in the
/// manifest's chain: the header's name/generation/base/prev must all match
/// what the manifest claims, so a delta renamed or re-chained on disk is a
/// typed kBadData, never a silently wrong replay.
bool ParseDelta(const std::vector<uint8_t>& bytes,
                const std::string& expect_name, uint64_t expect_generation,
                uint64_t expect_base, uint64_t expect_prev,
                std::vector<service::MutationRecord>* records,
                act::LoadError* error) {
  Fail(error, act::LoadError::kNone);
  if (bytes.size() < 8) {
    Fail(error, act::LoadError::kTruncated);
    return false;
  }
  util::ByteReader head(bytes);
  if (head.U32() != kDeltaMagic) {
    Fail(error, act::LoadError::kBadMagic);
    return false;
  }
  if (head.U32() != kDeltaVersion) {
    Fail(error, act::LoadError::kBadVersion);
    return false;
  }

  size_t offset = 8;
  std::span<const uint8_t> payload;
  if (!act::ReadSection(bytes, &offset, kDeltaHeaderTag, &payload, error)) {
    return false;
  }
  util::ByteReader r(payload);
  std::string name = r.String();
  uint64_t generation = r.U64();
  uint64_t base_generation = r.U64();
  uint64_t prev_generation = r.U64();
  uint32_t count = r.U32();
  if (!r.ok() || !r.AtEnd() || name != expect_name ||
      generation != expect_generation || base_generation != expect_base ||
      prev_generation != expect_prev ||
      count > (bytes.size() - offset) / act::kSectionOverheadBytes + 1) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }

  records->clear();
  records->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!act::ReadSection(bytes, &offset, kDeltaRecordTag, &payload, error)) {
      return false;
    }
    util::ByteReader rec_r(payload);
    const uint8_t kind = rec_r.U8();
    service::MutationRecord rec;
    if (!rec_r.ok()) {
      Fail(error, act::LoadError::kBadData);
      return false;
    }
    switch (kind) {
      case static_cast<uint8_t>(service::MutationRecord::Kind::kAdd): {
        rec.kind = service::MutationRecord::Kind::kAdd;
        if (!act::ParsePolygonsBlob(payload.subspan(1), &rec.added, error)) {
          return false;
        }
        if (rec.added.empty()) {
          Fail(error, act::LoadError::kBadData);
          return false;
        }
        break;
      }
      case static_cast<uint8_t>(service::MutationRecord::Kind::kRemove): {
        rec.kind = service::MutationRecord::Kind::kRemove;
        uint32_t n = rec_r.U32();
        if (!rec_r.ok() || n == 0 || n > rec_r.remaining() / 4) {
          Fail(error, act::LoadError::kBadData);
          return false;
        }
        rec.removed.reserve(n);
        for (uint32_t k = 0; k < n; ++k) rec.removed.push_back(rec_r.U32());
        if (!rec_r.ok() || !rec_r.AtEnd()) {
          Fail(error, act::LoadError::kBadData);
          return false;
        }
        break;
      }
      case static_cast<uint8_t>(service::MutationRecord::Kind::kDrop): {
        rec.kind = service::MutationRecord::Kind::kDrop;
        if (!rec_r.AtEnd()) {
          Fail(error, act::LoadError::kBadData);
          return false;
        }
        break;
      }
      default:
        Fail(error, act::LoadError::kBadData);
        return false;
    }
    records->push_back(std::move(rec));
  }
  if (offset != bytes.size()) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  return true;
}

/// Applies one parsed record onto the replay cursor. False on a record the
/// current state cannot absorb (remove of an id that does not exist, add
/// overflowing the id space) — the caller abandons the chain typed.
bool ApplyDeltaRecord(const service::MutationRecord& rec,
                      std::shared_ptr<const service::ShardedIndex>* cur,
                      bool* dropped) {
  const service::ShardedIndex& base = **cur;
  switch (rec.kind) {
    case service::MutationRecord::Kind::kAdd: {
      if (base.num_polygons() + rec.added.size() >
          uint64_t{act::kMaxPolygonId} + 1) {
        return false;
      }
      service::ShardedIndex::Delta delta;
      delta.add = rec.added;
      *cur = service::ShardedIndex::ApplyDelta(base, delta).index;
      *dropped = false;
      return true;
    }
    case service::MutationRecord::Kind::kRemove: {
      for (uint32_t gid : rec.removed) {
        if (gid >= base.num_polygons()) return false;
      }
      service::ShardedIndex::Delta delta;
      delta.remove = rec.removed;
      *cur = service::ShardedIndex::ApplyDelta(base, delta).index;
      *dropped = false;
      return true;
    }
    case service::MutationRecord::Kind::kDrop: {
      *cur = std::make_shared<const service::ShardedIndex>(
          service::ShardedIndex::Build({}, base.grid(), base.options()));
      *dropped = true;
      return true;
    }
  }
  return false;
}

}  // namespace

// --- SnapshotStore ---------------------------------------------------------

std::string SnapshotStore::SnapshotPath(const std::string& name,
                                        uint64_t generation) const {
  return opts_.dir + "/" + name + "-" + std::to_string(generation) + ".snap";
}

std::string SnapshotStore::DeltaPath(const std::string& name,
                                     uint64_t generation) const {
  return opts_.dir + "/" + name + "-" + std::to_string(generation) + ".delta";
}

bool SnapshotStore::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

namespace {

std::vector<uint8_t> EncodeManifest(uint64_t next_generation,
                                    const std::vector<DatasetRecord>& entries) {
  util::ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  size_t s = act::BeginSection(&w, kManifestTag);
  w.PutU64(next_generation);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DatasetRecord& e : entries) {
    w.PutString(e.name);
    w.PutU64(e.generation);
    w.PutU64(e.base_generation);
    w.PutU32(static_cast<uint32_t>(e.delta_generations.size()));
    for (uint64_t gen : e.delta_generations) w.PutU64(gen);
  }
  act::EndSection(&w, s);
  return w.Take();
}

bool ParseManifest(const std::vector<uint8_t>& bytes,
                   uint64_t* next_generation,
                   std::vector<DatasetRecord>* entries,
                   act::LoadError* error) {
  if (bytes.size() < 8) {
    Fail(error, act::LoadError::kTruncated);
    return false;
  }
  util::ByteReader head(bytes);
  if (head.U32() != kManifestMagic) {
    Fail(error, act::LoadError::kBadMagic);
    return false;
  }
  const uint32_t version = head.U32();
  // v1 (pre-delta) manifests upgrade in place: base = generation, empty
  // chain — exactly the state a v1 store was in.
  if (version != 1 && version != kManifestVersion) {
    Fail(error, act::LoadError::kBadVersion);
    return false;
  }
  size_t offset = 8;
  std::span<const uint8_t> payload;
  if (!act::ReadSection(bytes, &offset, kManifestTag, &payload, error)) {
    return false;
  }
  if (offset != bytes.size()) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  util::ByteReader r(payload);
  *next_generation = r.U64();
  uint32_t count = r.U32();
  if (!r.ok() || count > r.remaining() / 12 + 1) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DatasetRecord rec;
    rec.name = r.String();
    rec.generation = r.U64();
    if (version >= 2) {
      rec.base_generation = r.U64();
      uint32_t n_deltas = r.U32();
      if (!r.ok() || n_deltas > r.remaining() / 8) {
        Fail(error, act::LoadError::kBadData);
        return false;
      }
      rec.delta_generations.reserve(n_deltas);
      for (uint32_t k = 0; k < n_deltas; ++k) {
        rec.delta_generations.push_back(r.U64());
      }
    } else {
      rec.base_generation = rec.generation;
    }
    // Chain invariants: base <= every delta (strictly ascending) and the
    // last delta is the current generation; an empty chain means base ==
    // generation. All generations were issued by the counter, so all are
    // below next_generation.
    bool chain_ok = rec.base_generation != 0 &&
                    rec.base_generation <= rec.generation;
    uint64_t prev = rec.base_generation;
    for (uint64_t gen : rec.delta_generations) {
      chain_ok = chain_ok && gen > prev;
      prev = gen;
    }
    chain_ok = chain_ok && prev == rec.generation;
    if (!r.ok() || !service::IsValidDatasetName(rec.name) ||
        rec.generation == 0 || rec.generation >= *next_generation ||
        !chain_ok) {
      Fail(error, act::LoadError::kBadData);
      return false;
    }
    entries->push_back(std::move(rec));
  }
  if (!r.AtEnd()) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  return true;
}

/// Splits "<name>-<gen><suffix>" at the *last* dash (names may contain
/// dashes; the generation is all digits). False for anything else.
bool ParseStoreFileName(const std::string& file, const std::string& suffix,
                        std::string* name, uint64_t* generation) {
  if (file.size() <= suffix.size() ||
      file.compare(file.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string stem = file.substr(0, file.size() - suffix.size());
  const size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= stem.size()) {
    return false;
  }
  uint64_t gen = 0;
  for (size_t i = dash + 1; i < stem.size(); ++i) {
    if (stem[i] < '0' || stem[i] > '9') return false;
    if (gen > (UINT64_MAX - 9) / 10) return false;
    gen = gen * 10 + static_cast<uint64_t>(stem[i] - '0');
  }
  *name = stem.substr(0, dash);
  *generation = gen;
  return *generation != 0 && service::IsValidDatasetName(*name);
}

bool ParseSnapshotFileName(const std::string& file, std::string* name,
                           uint64_t* generation) {
  return ParseStoreFileName(file, ".snap", name, generation);
}

bool ParseDeltaFileName(const std::string& file, std::string* name,
                        uint64_t* generation) {
  return ParseStoreFileName(file, ".delta", name, generation);
}

std::vector<std::string> ListDirectory(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::string file = entry->d_name;
    if (file != "." && file != "..") out.push_back(file);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool SnapshotStore::Open(const StoreOptions& opts, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(!open_, "SnapshotStore::Open called twice");
  opts_ = opts;
  if (opts_.keep_generations < 1) opts_.keep_generations = 1;
  if (opts_.dir.empty()) {
    if (error != nullptr) *error = "StoreOptions.dir must be set";
    return false;
  }
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (error != nullptr) *error = ErrnoMessage("mkdir " + opts_.dir);
    return false;
  }
  // Past this point every path opens the store, so the callbacks never
  // outlive a failed Open.
  RegisterMetrics();

  // Manifest recovery ladder: primary -> .bak -> directory scan. Each
  // rung only engages when the one above is missing or fails validation,
  // and the scan trusts snapshot files themselves (they were fsynced
  // before any manifest ever referenced them).
  manifest_ = Manifest{};
  act::LoadError manifest_error = act::LoadError::kNone;
  for (const char* candidate : {kManifestName, kManifestBakName}) {
    std::vector<uint8_t> bytes;
    act::LoadError read_error = act::LoadError::kNone;
    const std::string path = opts_.dir + "/" + candidate;
    if (!act::ReadFileBytes(path, &bytes, &read_error)) {
      if (manifest_error == act::LoadError::kNone) {
        manifest_error = read_error;
      }
      continue;
    }
    if (ParseManifest(bytes, &manifest_.next_generation, &manifest_.entries,
                      &read_error)) {
      open_ = true;
      dataset_count_.store(manifest_.entries.size(),
                           std::memory_order_relaxed);
      manifest_primary_healthy_ = candidate == kManifestName;
      if (candidate != kManifestName) {
        std::fprintf(stderr,
                     "[store] %s unusable (%s); recovered catalog from %s\n",
                     kManifestName, act::ToString(manifest_error), candidate);
        AppendEvent("manifest_recovery", opts_.dir,
                    std::string("primary unusable (") +
                        act::ToString(manifest_error) + "); recovered from " +
                        candidate);
        // Heal the primary now: the next WriteManifestLocked hard-links
        // the primary over the .bak before renaming, so leaving a
        // corrupt primary in place would let a crash inside that next
        // rewrite destroy the only good copy.
        std::string rewrite_error;
        if (!WriteManifestLocked(&rewrite_error)) {
          std::fprintf(stderr, "[store] manifest heal failed: %s\n",
                       rewrite_error.c_str());
        }
      }
      return true;
    }
    std::fprintf(stderr, "[store] %s corrupt: %s\n", candidate,
                 act::ToString(read_error));
    if (manifest_error == act::LoadError::kNone ||
        candidate == kManifestName) {
      manifest_error = read_error;
    }
  }

  // Directory scan: newest generation per dataset. Manifest order (=
  // first-Put order, what keeps catalog ids stable) is reconstructed
  // best-effort by each dataset's *minimum* surviving generation —
  // generations are globally monotonic, so absent GC this is exactly
  // first-Put order; after GC it can renumber, which is why the log
  // below tells clients to re-resolve ids via LIST_DATASETS. kMissing
  // for both manifests is the fresh-store case, not a recovery.
  struct Scanned {
    uint64_t min_generation;
    uint64_t max_generation;
  };
  std::unordered_map<std::string, Scanned> scanned;
  uint64_t max_generation = 0;
  for (const std::string& file : ListDirectory(opts_.dir)) {
    std::string name;
    uint64_t generation = 0;
    if (ParseDeltaFileName(file, &name, &generation)) {
      // Orphaned deltas are not recovered (see below), but their
      // generation numbers were issued: keep the counter past them.
      max_generation = std::max(max_generation, generation);
      continue;
    }
    if (!ParseSnapshotFileName(file, &name, &generation)) continue;
    max_generation = std::max(max_generation, generation);
    auto [it, inserted] = scanned.emplace(name, Scanned{generation, generation});
    if (!inserted) {
      it->second.min_generation =
          std::min(it->second.min_generation, generation);
      it->second.max_generation =
          std::max(it->second.max_generation, generation);
    }
  }
  std::vector<std::pair<uint64_t, DatasetRecord>> ordered;
  ordered.reserve(scanned.size());
  for (const auto& [name, gens] : scanned) {
    // Scan recovery is fulls-only: a delta chain is only replayable in the
    // exact order a manifest vouched for, and the manifest is gone. The
    // newest full generation becomes base and current; orphaned .delta
    // files fall to GC.
    DatasetRecord rec;
    rec.name = name;
    rec.generation = gens.max_generation;
    rec.base_generation = gens.max_generation;
    ordered.emplace_back(gens.min_generation, std::move(rec));
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [min_gen, rec] : ordered) {
    manifest_.entries.push_back(std::move(rec));
  }
  manifest_.next_generation = max_generation + 1;
  if (!manifest_.entries.empty()) {
    std::fprintf(stderr,
                 "[store] no manifest (%s); recovered %zu dataset(s) by "
                 "directory scan — catalog ids may be renumbered, clients "
                 "should re-resolve names via LIST_DATASETS\n",
                 act::ToString(manifest_error), manifest_.entries.size());
    AppendEvent("manifest_recovery", opts_.dir,
                "directory scan recovered " +
                    std::to_string(manifest_.entries.size()) + " dataset(s)");
  }
  open_ = true;
  dataset_count_.store(manifest_.entries.size(), std::memory_order_relaxed);
  return true;
}

std::vector<DatasetRecord> SnapshotStore::Datasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.entries;
}

void SnapshotStore::RegisterMetrics() {
  util::MetricsRegistry* r = opts_.metrics;
  if (r == nullptr) return;
  r->RegisterCounterFn(
      "store_puts_total", "Snapshot files committed, by kind",
      "kind=\"full\"",
      [this] { return puts_.load(std::memory_order_relaxed); });
  r->RegisterCounterFn(
      "store_puts_total", "", "kind=\"delta\"",
      [this] { return delta_puts_.load(std::memory_order_relaxed); });
  r->RegisterCounterFn(
      "store_put_failures_total", "Put/PutDelta attempts that failed", "",
      [this] { return put_failures_.load(std::memory_order_relaxed); });
  r->RegisterCounterFn(
      "store_loads_total", "Snapshot load attempts", "",
      [this] { return loads_.load(std::memory_order_relaxed); });
  r->RegisterCounterFn(
      "store_load_fallbacks_total",
      "Loads served by an older generation or an abandoned delta chain", "",
      [this] { return load_fallbacks_.load(std::memory_order_relaxed); });
  r->RegisterCounterFn(
      "store_gc_files_removed_total", "Files reclaimed by GarbageCollect",
      "",
      [this] { return gc_files_removed_.load(std::memory_order_relaxed); });
  r->RegisterGaugeFn("store_datasets", "Datasets in the manifest", "",
                     [this] {
                       return static_cast<double>(
                           dataset_count_.load(std::memory_order_relaxed));
                     });
}

void SnapshotStore::AppendEvent(std::string kind, std::string subject,
                                std::string detail) const {
  if (opts_.metrics == nullptr) return;
  opts_.metrics->events().Append(std::move(kind), std::move(subject),
                                 std::move(detail));
}

bool SnapshotStore::WriteManifestLocked(std::string* error) {
  const std::string path = opts_.dir + "/" + kManifestName;
  const std::string bak = opts_.dir + "/" + kManifestBakName;
  // Preserve the current manifest as a hard link before the rename
  // replaces it: the primary's inode stays reachable, so external
  // corruption of the new primary still leaves one complete catalog.
  // Rotation is skipped while the primary is known-bad (Open recovered
  // from .bak and is healing) — linking a corrupt primary over the .bak
  // would destroy the only good copy right before a crash could strand
  // us with neither.
  if (manifest_primary_healthy_) {
    ::unlink(bak.c_str());
    ::link(path.c_str(), bak.c_str());  // ENOENT on first write: fine
  }
  if (!WriteFileDurable(
          opts_.dir, path,
          EncodeManifest(manifest_.next_generation, manifest_.entries),
          opts_.fsync, error)) {
    return false;
  }
  manifest_primary_healthy_ = true;
  return true;
}

bool SnapshotStore::Put(const std::string& name,
                        const service::ShardedIndex& index,
                        uint64_t* generation, std::string* error) {
  if (!service::IsValidDatasetName(name)) {
    if (error != nullptr) *error = "invalid dataset name: " + name;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    if (error != nullptr) *error = "store is not open";
    return false;
  }
  const uint64_t gen = manifest_.next_generation;

  // Order is the crash-safety contract: (1) snapshot file becomes durable
  // under its final name, (2) the manifest commits it. A crash between
  // the two leaves an orphan file the manifest never references.
  if (!WriteFileDurable(opts_.dir, SnapshotPath(name, gen),
                        EncodeSnapshot(name, gen, index), opts_.fsync,
                        error)) {
    put_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  Manifest rollback = manifest_;
  manifest_.next_generation = gen + 1;
  bool found = false;
  for (DatasetRecord& rec : manifest_.entries) {
    if (rec.name == name) {
      // A full snapshot compacts: it becomes the new chain base and the
      // old delta files are superseded (GC reclaims them).
      rec.generation = gen;
      rec.base_generation = gen;
      rec.delta_generations.clear();
      found = true;
      break;
    }
  }
  if (!found) {
    DatasetRecord rec;
    rec.name = name;
    rec.generation = gen;
    rec.base_generation = gen;
    manifest_.entries.push_back(std::move(rec));
  }
  if (!WriteManifestLocked(error)) {
    manifest_ = std::move(rollback);  // the orphan file is GC's problem
    put_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  puts_.fetch_add(1, std::memory_order_relaxed);
  dataset_count_.store(manifest_.entries.size(), std::memory_order_relaxed);
  if (generation != nullptr) *generation = gen;
  return true;
}

bool SnapshotStore::PutDelta(const std::string& name,
                             const std::vector<service::MutationRecord>& records,
                             uint64_t* generation, std::string* error) {
  if (!service::IsValidDatasetName(name)) {
    if (error != nullptr) *error = "invalid dataset name: " + name;
    return false;
  }
  if (records.empty()) {
    if (error != nullptr) *error = "empty delta for dataset: " + name;
    return false;
  }
  for (const service::MutationRecord& rec : records) {
    if (!ValidDeltaRecord(rec)) {
      if (error != nullptr) *error = "malformed delta record for: " + name;
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    if (error != nullptr) *error = "store is not open";
    return false;
  }
  DatasetRecord* rec = nullptr;
  for (DatasetRecord& e : manifest_.entries) {
    if (e.name == name) {
      rec = &e;
      break;
    }
  }
  if (rec == nullptr) {
    if (error != nullptr) {
      *error = "dataset '" + name + "' has no full snapshot to delta against";
    }
    return false;
  }
  const uint64_t gen = manifest_.next_generation;

  // Same crash-safety order as Put: the delta file becomes durable under
  // its final name, then the manifest commits the extended chain. A crash
  // between the two leaves an orphan .delta that Load never replays.
  if (!WriteFileDurable(
          opts_.dir, DeltaPath(name, gen),
          EncodeDelta(name, gen, rec->base_generation, rec->generation,
                      records),
          opts_.fsync, error)) {
    put_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  Manifest rollback = manifest_;
  manifest_.next_generation = gen + 1;
  rec->generation = gen;
  rec->delta_generations.push_back(gen);
  if (!WriteManifestLocked(error)) {
    manifest_ = std::move(rollback);  // the orphan file is GC's problem
    put_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  delta_puts_.fetch_add(1, std::memory_order_relaxed);
  if (generation != nullptr) *generation = gen;
  return true;
}

std::vector<uint64_t> SnapshotStore::DiskGenerations(
    const std::string& name) const {
  std::vector<uint64_t> out;
  for (const std::string& file : ListDirectory(opts_.dir)) {
    std::string file_name;
    uint64_t generation = 0;
    if (ParseSnapshotFileName(file, &file_name, &generation) &&
        file_name == name) {
      out.push_back(generation);
    }
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::shared_ptr<const service::ShardedIndex> SnapshotStore::Load(
    const std::string& name, LoadReport* report) const {
  LoadReport local;
  LoadReport& rep = report != nullptr ? *report : local;
  rep = LoadReport{};
  loads_.fetch_add(1, std::memory_order_relaxed);

  DatasetRecord rec;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) {
      rep.error = act::LoadError::kMissing;
      rep.detail = "store is not open";
      return nullptr;
    }
    for (const DatasetRecord& e : manifest_.entries) {
      if (e.name == name) {
        rec = e;
        break;
      }
    }
  }
  if (rec.generation == 0) {
    rep.error = act::LoadError::kMissing;
    rep.detail = "dataset not in manifest";
    return nullptr;
  }

  // Candidate ladder: the manifest's base full generation (plus its delta
  // chain), then — only if the base fails, so the common clean load never
  // pays a directory scan — every older on-disk full generation, newest
  // first, without deltas (the chain replays only on its exact base).
  // Newer-than-manifest orphans are skipped on purpose: an uncommitted
  // Put must stay invisible, exactly as if the crash had hit one
  // instruction earlier.
  auto try_generation =
      [&](uint64_t gen,
          act::LoadError* err) -> std::shared_ptr<const service::ShardedIndex> {
    std::vector<uint8_t> bytes;
    if (!act::ReadFileBytes(SnapshotPath(name, gen), &bytes, err)) {
      return nullptr;
    }
    return ParseSnapshot(bytes, name, err);
  };

  act::LoadError err = act::LoadError::kNone;
  if (auto base = try_generation(rec.base_generation, &err)) {
    // Replay the delta chain on top of the base. Any unusable delta —
    // unreadable, corrupt, or inconsistent with the current state —
    // abandons the *whole* chain: partial replay would serve a state
    // that was never published, so the base full stands in alone.
    std::shared_ptr<const service::ShardedIndex> cur = base;
    uint64_t prev_gen = rec.base_generation;
    bool dropped = false;
    for (uint64_t dgen : rec.delta_generations) {
      std::vector<uint8_t> bytes;
      std::vector<service::MutationRecord> records;
      bool ok =
          act::ReadFileBytes(DeltaPath(name, dgen), &bytes, &err) &&
          ParseDelta(bytes, name, dgen, rec.base_generation, prev_gen,
                     &records, &err);
      for (size_t i = 0; ok && i < records.size(); ++i) {
        if (!ApplyDeltaRecord(records[i], &cur, &dropped)) {
          err = act::LoadError::kBadData;
          ok = false;
        }
      }
      if (!ok) {
        load_fallbacks_.fetch_add(1, std::memory_order_relaxed);
        rep.error = err;
        rep.fell_back = true;
        rep.deltas_applied = 0;
        rep.generation = rec.base_generation;
        rep.detail = "delta gen " + std::to_string(dgen) + ": " +
                     act::ToString(err);
        std::fprintf(stderr,
                     "[store] dataset '%s': delta generation %llu unusable "
                     "(%s); serving base full generation %llu\n",
                     name.c_str(), static_cast<unsigned long long>(dgen),
                     act::ToString(err),
                     static_cast<unsigned long long>(rec.base_generation));
        return base;
      }
      prev_gen = dgen;
      ++rep.deltas_applied;
    }
    rep.generation = rec.generation;
    rep.dropped = dropped;
    return cur;
  }
  rep.error = err;
  rep.detail =
      "gen " + std::to_string(rec.base_generation) + ": " + act::ToString(err);

  for (uint64_t gen : DiskGenerations(name)) {
    if (gen >= rec.base_generation) continue;
    if (auto index = try_generation(gen, &err)) {
      load_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      rep.generation = gen;
      rep.fell_back = true;
      std::fprintf(stderr,
                   "[store] dataset '%s': generation %llu unusable (%s); "
                   "serving generation %llu\n",
                   name.c_str(),
                   static_cast<unsigned long long>(rec.base_generation),
                   act::ToString(rep.error),
                   static_cast<unsigned long long>(gen));
      return index;
    }
    rep.detail += "; gen " + std::to_string(gen) + ": " + act::ToString(err);
  }
  std::fprintf(stderr, "[store] dataset '%s': no loadable generation (%s)\n",
               name.c_str(), rep.detail.c_str());
  return nullptr;
}

int SnapshotStore::GarbageCollect(std::string* error) {
  // Runs entirely under mu_: the keep/orphan decision must be made
  // against the *live* manifest, or a Put committing between a manifest
  // copy and the unlink walk would see its freshly committed file
  // classified as an uncommitted orphan and deleted. The lock is held
  // across directory I/O, which only delays other Put/Load manifest
  // peeks by milliseconds — none of this is on the serving path.
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    if (error != nullptr) *error = "store is not open";
    return 0;
  }
  const std::string& dir = opts_.dir;
  const auto keep = static_cast<size_t>(opts_.keep_generations);

  // One directory pass, grouped by dataset name.
  std::vector<std::string> tmp_files;
  struct File {
    std::string path;
    uint64_t generation;
  };
  std::unordered_map<std::string, std::vector<File>> by_name;
  std::unordered_map<std::string, std::vector<File>> deltas_by_name;
  for (const std::string& file : ListDirectory(dir)) {
    const std::string path = dir + "/" + file;
    if (file.size() > 4 && file.compare(file.size() - 4, 4, ".tmp") == 0) {
      tmp_files.push_back(path);  // interrupted write
      continue;
    }
    std::string name;
    uint64_t generation = 0;
    if (ParseDeltaFileName(file, &name, &generation)) {
      deltas_by_name[name].push_back({path, generation});
      continue;
    }
    if (!ParseSnapshotFileName(file, &name, &generation)) continue;
    by_name[name].push_back({path, generation});
  }

  int removed = 0;
  for (const std::string& path : tmp_files) {
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  // A delta file is alive only while the manifest's chain references it:
  // a full Put supersedes the whole chain at once, and orphans of an
  // uncommitted PutDelta were never replayable to begin with. (Older full
  // generations kept as corruption fallbacks load without deltas, so no
  // delta needs to outlive its chain.)
  for (auto& [name, files] : deltas_by_name) {
    const DatasetRecord* rec = nullptr;
    for (const DatasetRecord& e : manifest_.entries) {
      if (e.name == name) {
        rec = &e;
        break;
      }
    }
    for (const File& f : files) {
      const bool referenced =
          rec != nullptr &&
          std::find(rec->delta_generations.begin(),
                    rec->delta_generations.end(),
                    f.generation) != rec->delta_generations.end();
      if (referenced) continue;
      if (::unlink(f.path.c_str()) == 0) ++removed;
    }
  }
  for (auto& [name, files] : by_name) {
    const DatasetRecord* rec = nullptr;
    for (const DatasetRecord& e : manifest_.entries) {
      if (e.name == name) {
        rec = &e;
        break;
      }
    }
    // Keep the manifest's generation plus keep-1 predecessors as Load's
    // corruption fallbacks; anything older is superseded. Generations
    // above the manifest's are orphans of an uncommitted Put, and files
    // of datasets the manifest does not know have no owner at all.
    std::sort(files.begin(), files.end(),
              [](const File& a, const File& b) {
                return a.generation > b.generation;
              });
    size_t kept = 0;
    for (const File& f : files) {
      const bool committed = rec != nullptr && f.generation <= rec->generation;
      if (committed && kept < keep) {
        ++kept;
        continue;
      }
      if (::unlink(f.path.c_str()) == 0) ++removed;
    }
  }
  if (removed > 0 && opts_.fsync) FsyncDir(dir);
  if (removed > 0) {
    gc_files_removed_.fetch_add(static_cast<uint64_t>(removed),
                                std::memory_order_relaxed);
    AppendEvent("gc", opts_.dir,
                std::to_string(removed) + " file(s) removed");
  }
  return removed;
}

size_t WarmStart(const SnapshotStore& store, service::ServiceCatalog* catalog,
                 std::vector<std::string>* failed) {
  size_t served = 0;
  for (const DatasetRecord& rec : store.Datasets()) {
    LoadReport report;
    std::shared_ptr<const service::ShardedIndex> index =
        store.Load(rec.name, &report);
    if (index == nullptr) {
      // Reserve the id anyway: catalog ids are positional, so skipping
      // this slot would route every later dataset's cached client ids to
      // the wrong data. Offline datasets reject joins typed until a good
      // snapshot is published into their registry.
      catalog->AddOffline(rec.name);
      if (failed != nullptr) {
        failed->push_back(rec.name + ": " + report.detail);
      }
      continue;
    }
    std::optional<uint16_t> id = catalog->Add(rec.name, std::move(index));
    if (!id.has_value()) {
      if (failed != nullptr) {
        failed->push_back(rec.name + ": catalog refused (duplicate name?)");
      }
      continue;
    }
    // A chain ending in DROP_DATASET restarts as it shut down: empty
    // snapshot published, tombstone set, joins rejecting typed.
    if (report.dropped) catalog->MarkDropped(*id, true);
    ++served;
  }
  return served;
}

}  // namespace actjoin::store
