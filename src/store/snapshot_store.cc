#include "store/snapshot_store.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/byte_io.h"
#include "util/check.h"

namespace actjoin::store {

namespace {

constexpr uint32_t kSnapshotMagic = 0x53544341;  // "ACTS"
constexpr uint32_t kSnapshotVersion = 1;
constexpr uint32_t kManifestMagic = 0x4D544341;  // "ACTM"
constexpr uint32_t kManifestVersion = 1;

// Section tags (the act index body owns tags 1..3).
constexpr uint32_t kStoreHeaderTag = 16;
constexpr uint32_t kShardMetaTag = 17;
constexpr uint32_t kManifestTag = 32;

constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kManifestBakName = "MANIFEST.bak";

std::string ErrnoMessage(const std::string& prefix) {
  return prefix + ": " + std::strerror(errno);
}

/// fsyncs the directory itself so the renames/links inside it are durable
/// (a file fsync makes the *bytes* durable; the directory entry needs its
/// own). Best-effort: some filesystems refuse directory fsync.
void FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

/// The atomic-publish idiom: write <path>.tmp, fsync it, rename over
/// <path>, fsync the directory. A crash leaves either the old file, the
/// new file, or a stray .tmp — never a torn <path>.
bool WriteFileDurable(const std::string& dir, const std::string& path,
                      const std::vector<uint8_t>& bytes, bool do_fsync,
                      std::string* error) {
  const std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoMessage("open " + tmp);
    return false;
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t w = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) *error = ErrnoMessage("write " + tmp);
      ::close(fd);
      ::unlink(tmp.c_str());
      return false;
    }
    written += static_cast<size_t>(w);
  }
  if (do_fsync && ::fsync(fd) != 0) {
    if (error != nullptr) *error = ErrnoMessage("fsync " + tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error != nullptr) *error = ErrnoMessage("rename " + tmp);
    ::unlink(tmp.c_str());
    return false;
  }
  if (do_fsync) FsyncDir(dir);
  return true;
}

void Fail(act::LoadError* error, act::LoadError what) {
  if (error != nullptr) *error = what;
}

// --- Snapshot file codec ---------------------------------------------------

std::vector<uint8_t> EncodeSnapshot(const std::string& name,
                                    uint64_t generation,
                                    const service::ShardedIndex& index) {
  util::ByteWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);

  size_t s = act::BeginSection(&w, kStoreHeaderTag);
  w.PutU32(static_cast<uint32_t>(index.num_shards()));
  w.PutU32(static_cast<uint32_t>(index.options().routing_cover_cells));
  w.PutU8(static_cast<uint8_t>(index.grid().curve()));
  w.PutU64(index.num_polygons());
  w.PutU64(generation);
  w.PutString(name);
  act::EndSection(&w, s);

  for (int shard = 0; shard < index.num_shards(); ++shard) {
    const act::PolygonIndex* shard_index = index.shard_index(shard);
    const std::vector<uint32_t>& gids = index.shard_polygon_ids(shard);
    s = act::BeginSection(&w, kShardMetaTag);
    w.PutU8(shard_index != nullptr ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(gids.size()));
    for (uint32_t gid : gids) w.PutU32(gid);
    act::EndSection(&w, s);
    // The per-shard index rides as a regular act index body (its own
    // CRC-framed sections), so shard loads reuse the act parser verbatim.
    if (shard_index != nullptr) act::AppendIndexBody(*shard_index, &w);
  }
  return w.Take();
}

std::shared_ptr<const service::ShardedIndex> ParseSnapshot(
    const std::vector<uint8_t>& bytes, const std::string& expect_name,
    act::LoadError* error) {
  Fail(error, act::LoadError::kNone);
  if (bytes.size() < 8) {
    Fail(error, act::LoadError::kTruncated);
    return nullptr;
  }
  util::ByteReader head(bytes);
  if (head.U32() != kSnapshotMagic) {
    Fail(error, act::LoadError::kBadMagic);
    return nullptr;
  }
  if (head.U32() != kSnapshotVersion) {
    Fail(error, act::LoadError::kBadVersion);
    return nullptr;
  }

  size_t offset = 8;
  std::span<const uint8_t> payload;
  if (!act::ReadSection(bytes, &offset, kStoreHeaderTag, &payload, error)) {
    return nullptr;
  }
  util::ByteReader r(payload);
  uint32_t num_shards = r.U32();
  uint32_t routing_cover_cells = r.U32();
  uint8_t curve = r.U8();
  uint64_t num_polygons = r.U64();
  r.U64();  // generation: advisory (the file name is authoritative)
  std::string name = r.String();
  // num_polygons feeds counts.assign() on every join: bound it by the
  // file size (a real polygon costs far more than one byte in some shard
  // body) so a forged header cannot plant a multi-exabyte allocation
  // that detonates at query time.
  if (!r.AtEnd() || num_shards == 0 || num_shards > 1u << 20 || curve > 1 ||
      num_polygons > bytes.size() || name != expect_name) {
    Fail(error, act::LoadError::kBadData);
    return nullptr;
  }

  std::vector<service::ShardedIndex::ShardParts> parts(num_shards);
  act::BuildOptions build;  // taken from the first non-empty shard
  bool have_build = false;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    if (!act::ReadSection(bytes, &offset, kShardMetaTag, &payload, error)) {
      return nullptr;
    }
    util::ByteReader meta(payload);
    uint8_t has_index = meta.U8();
    uint32_t n_gids = meta.U32();
    if (!meta.ok() || has_index > 1 || n_gids > meta.remaining() / 4 + 1) {
      Fail(error, act::LoadError::kBadData);
      return nullptr;
    }
    std::vector<uint32_t>& gids = parts[shard].global_ids;
    gids.reserve(n_gids);
    for (uint32_t i = 0; i < n_gids; ++i) {
      uint32_t gid = meta.U32();
      if (!meta.ok() || gid >= num_polygons) {
        Fail(error, act::LoadError::kBadData);
        return nullptr;
      }
      gids.push_back(gid);
    }
    if (!meta.AtEnd() || (has_index == 0) != gids.empty()) {
      Fail(error, act::LoadError::kBadData);
      return nullptr;
    }
    if (has_index != 0) {
      std::optional<act::PolygonIndex> index =
          act::ParseIndexBody(bytes, &offset, error);
      if (!index.has_value()) return nullptr;
      if (index->polygons().size() != gids.size()) {
        Fail(error, act::LoadError::kBadData);
        return nullptr;
      }
      if (!have_build) {
        build = index->options();
        have_build = true;
      }
      parts[shard].index =
          std::make_unique<const act::PolygonIndex>(*std::move(index));
    }
  }
  if (offset != bytes.size()) {
    Fail(error, act::LoadError::kBadData);
    return nullptr;
  }

  service::ShardingOptions opts;
  opts.num_shards = static_cast<int>(num_shards);
  opts.routing_cover_cells = static_cast<int>(routing_cover_cells);
  opts.build = build;
  return std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::FromParts(
          geo::Grid(static_cast<geo::CurveType>(curve)), opts, num_polygons,
          std::move(parts)));
}

}  // namespace

// --- SnapshotStore ---------------------------------------------------------

std::string SnapshotStore::SnapshotPath(const std::string& name,
                                        uint64_t generation) const {
  return opts_.dir + "/" + name + "-" + std::to_string(generation) + ".snap";
}

bool SnapshotStore::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_;
}

namespace {

std::vector<uint8_t> EncodeManifest(uint64_t next_generation,
                                    const std::vector<DatasetRecord>& entries) {
  util::ByteWriter w;
  w.PutU32(kManifestMagic);
  w.PutU32(kManifestVersion);
  size_t s = act::BeginSection(&w, kManifestTag);
  w.PutU64(next_generation);
  w.PutU32(static_cast<uint32_t>(entries.size()));
  for (const DatasetRecord& e : entries) {
    w.PutString(e.name);
    w.PutU64(e.generation);
  }
  act::EndSection(&w, s);
  return w.Take();
}

bool ParseManifest(const std::vector<uint8_t>& bytes,
                   uint64_t* next_generation,
                   std::vector<DatasetRecord>* entries,
                   act::LoadError* error) {
  if (bytes.size() < 8) {
    Fail(error, act::LoadError::kTruncated);
    return false;
  }
  util::ByteReader head(bytes);
  if (head.U32() != kManifestMagic) {
    Fail(error, act::LoadError::kBadMagic);
    return false;
  }
  if (head.U32() != kManifestVersion) {
    Fail(error, act::LoadError::kBadVersion);
    return false;
  }
  size_t offset = 8;
  std::span<const uint8_t> payload;
  if (!act::ReadSection(bytes, &offset, kManifestTag, &payload, error)) {
    return false;
  }
  if (offset != bytes.size()) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  util::ByteReader r(payload);
  *next_generation = r.U64();
  uint32_t count = r.U32();
  if (!r.ok() || count > r.remaining() / 12 + 1) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  entries->clear();
  entries->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    DatasetRecord rec;
    rec.name = r.String();
    rec.generation = r.U64();
    if (!r.ok() || !service::IsValidDatasetName(rec.name) ||
        rec.generation == 0 || rec.generation >= *next_generation) {
      Fail(error, act::LoadError::kBadData);
      return false;
    }
    entries->push_back(std::move(rec));
  }
  if (!r.AtEnd()) {
    Fail(error, act::LoadError::kBadData);
    return false;
  }
  return true;
}

/// Splits "<name>-<gen>.snap" at the *last* dash (names may contain
/// dashes; the generation is all digits). False for anything else.
bool ParseSnapshotFileName(const std::string& file, std::string* name,
                           uint64_t* generation) {
  constexpr const char* kSuffix = ".snap";
  constexpr size_t kSuffixLen = 5;
  if (file.size() <= kSuffixLen ||
      file.compare(file.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  const std::string stem = file.substr(0, file.size() - kSuffixLen);
  const size_t dash = stem.rfind('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= stem.size()) {
    return false;
  }
  uint64_t gen = 0;
  for (size_t i = dash + 1; i < stem.size(); ++i) {
    if (stem[i] < '0' || stem[i] > '9') return false;
    if (gen > (UINT64_MAX - 9) / 10) return false;
    gen = gen * 10 + static_cast<uint64_t>(stem[i] - '0');
  }
  *name = stem.substr(0, dash);
  *generation = gen;
  return *generation != 0 && service::IsValidDatasetName(*name);
}

std::vector<std::string> ListDirectory(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::string file = entry->d_name;
    if (file != "." && file != "..") out.push_back(file);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

bool SnapshotStore::Open(const StoreOptions& opts, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  ACT_CHECK_MSG(!open_, "SnapshotStore::Open called twice");
  opts_ = opts;
  if (opts_.keep_generations < 1) opts_.keep_generations = 1;
  if (opts_.dir.empty()) {
    if (error != nullptr) *error = "StoreOptions.dir must be set";
    return false;
  }
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    if (error != nullptr) *error = ErrnoMessage("mkdir " + opts_.dir);
    return false;
  }

  // Manifest recovery ladder: primary -> .bak -> directory scan. Each
  // rung only engages when the one above is missing or fails validation,
  // and the scan trusts snapshot files themselves (they were fsynced
  // before any manifest ever referenced them).
  manifest_ = Manifest{};
  act::LoadError manifest_error = act::LoadError::kNone;
  for (const char* candidate : {kManifestName, kManifestBakName}) {
    std::vector<uint8_t> bytes;
    act::LoadError read_error = act::LoadError::kNone;
    const std::string path = opts_.dir + "/" + candidate;
    if (!act::ReadFileBytes(path, &bytes, &read_error)) {
      if (manifest_error == act::LoadError::kNone) {
        manifest_error = read_error;
      }
      continue;
    }
    if (ParseManifest(bytes, &manifest_.next_generation, &manifest_.entries,
                      &read_error)) {
      open_ = true;
      manifest_primary_healthy_ = candidate == kManifestName;
      if (candidate != kManifestName) {
        std::fprintf(stderr,
                     "[store] %s unusable (%s); recovered catalog from %s\n",
                     kManifestName, act::ToString(manifest_error), candidate);
        // Heal the primary now: the next WriteManifestLocked hard-links
        // the primary over the .bak before renaming, so leaving a
        // corrupt primary in place would let a crash inside that next
        // rewrite destroy the only good copy.
        std::string rewrite_error;
        if (!WriteManifestLocked(&rewrite_error)) {
          std::fprintf(stderr, "[store] manifest heal failed: %s\n",
                       rewrite_error.c_str());
        }
      }
      return true;
    }
    std::fprintf(stderr, "[store] %s corrupt: %s\n", candidate,
                 act::ToString(read_error));
    if (manifest_error == act::LoadError::kNone ||
        candidate == kManifestName) {
      manifest_error = read_error;
    }
  }

  // Directory scan: newest generation per dataset. Manifest order (=
  // first-Put order, what keeps catalog ids stable) is reconstructed
  // best-effort by each dataset's *minimum* surviving generation —
  // generations are globally monotonic, so absent GC this is exactly
  // first-Put order; after GC it can renumber, which is why the log
  // below tells clients to re-resolve ids via LIST_DATASETS. kMissing
  // for both manifests is the fresh-store case, not a recovery.
  struct Scanned {
    uint64_t min_generation;
    uint64_t max_generation;
  };
  std::unordered_map<std::string, Scanned> scanned;
  uint64_t max_generation = 0;
  for (const std::string& file : ListDirectory(opts_.dir)) {
    std::string name;
    uint64_t generation = 0;
    if (!ParseSnapshotFileName(file, &name, &generation)) continue;
    max_generation = std::max(max_generation, generation);
    auto [it, inserted] = scanned.emplace(name, Scanned{generation, generation});
    if (!inserted) {
      it->second.min_generation =
          std::min(it->second.min_generation, generation);
      it->second.max_generation =
          std::max(it->second.max_generation, generation);
    }
  }
  std::vector<std::pair<uint64_t, DatasetRecord>> ordered;
  ordered.reserve(scanned.size());
  for (const auto& [name, gens] : scanned) {
    ordered.emplace_back(gens.min_generation,
                         DatasetRecord{name, gens.max_generation});
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [min_gen, rec] : ordered) {
    manifest_.entries.push_back(std::move(rec));
  }
  manifest_.next_generation = max_generation + 1;
  if (!manifest_.entries.empty()) {
    std::fprintf(stderr,
                 "[store] no manifest (%s); recovered %zu dataset(s) by "
                 "directory scan — catalog ids may be renumbered, clients "
                 "should re-resolve names via LIST_DATASETS\n",
                 act::ToString(manifest_error), manifest_.entries.size());
  }
  open_ = true;
  return true;
}

std::vector<DatasetRecord> SnapshotStore::Datasets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.entries;
}

bool SnapshotStore::WriteManifestLocked(std::string* error) {
  const std::string path = opts_.dir + "/" + kManifestName;
  const std::string bak = opts_.dir + "/" + kManifestBakName;
  // Preserve the current manifest as a hard link before the rename
  // replaces it: the primary's inode stays reachable, so external
  // corruption of the new primary still leaves one complete catalog.
  // Rotation is skipped while the primary is known-bad (Open recovered
  // from .bak and is healing) — linking a corrupt primary over the .bak
  // would destroy the only good copy right before a crash could strand
  // us with neither.
  if (manifest_primary_healthy_) {
    ::unlink(bak.c_str());
    ::link(path.c_str(), bak.c_str());  // ENOENT on first write: fine
  }
  if (!WriteFileDurable(
          opts_.dir, path,
          EncodeManifest(manifest_.next_generation, manifest_.entries),
          opts_.fsync, error)) {
    return false;
  }
  manifest_primary_healthy_ = true;
  return true;
}

bool SnapshotStore::Put(const std::string& name,
                        const service::ShardedIndex& index,
                        uint64_t* generation, std::string* error) {
  if (!service::IsValidDatasetName(name)) {
    if (error != nullptr) *error = "invalid dataset name: " + name;
    return false;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    if (error != nullptr) *error = "store is not open";
    return false;
  }
  const uint64_t gen = manifest_.next_generation;

  // Order is the crash-safety contract: (1) snapshot file becomes durable
  // under its final name, (2) the manifest commits it. A crash between
  // the two leaves an orphan file the manifest never references.
  if (!WriteFileDurable(opts_.dir, SnapshotPath(name, gen),
                        EncodeSnapshot(name, gen, index), opts_.fsync,
                        error)) {
    return false;
  }

  Manifest rollback = manifest_;
  manifest_.next_generation = gen + 1;
  bool found = false;
  for (DatasetRecord& rec : manifest_.entries) {
    if (rec.name == name) {
      rec.generation = gen;
      found = true;
      break;
    }
  }
  if (!found) manifest_.entries.push_back({name, gen});
  if (!WriteManifestLocked(error)) {
    manifest_ = std::move(rollback);  // the orphan file is GC's problem
    return false;
  }
  if (generation != nullptr) *generation = gen;
  return true;
}

std::vector<uint64_t> SnapshotStore::DiskGenerations(
    const std::string& name) const {
  std::vector<uint64_t> out;
  for (const std::string& file : ListDirectory(opts_.dir)) {
    std::string file_name;
    uint64_t generation = 0;
    if (ParseSnapshotFileName(file, &file_name, &generation) &&
        file_name == name) {
      out.push_back(generation);
    }
  }
  std::sort(out.rbegin(), out.rend());
  return out;
}

std::shared_ptr<const service::ShardedIndex> SnapshotStore::Load(
    const std::string& name, LoadReport* report) const {
  LoadReport local;
  LoadReport& rep = report != nullptr ? *report : local;
  rep = LoadReport{};

  uint64_t current = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!open_) {
      rep.error = act::LoadError::kMissing;
      rep.detail = "store is not open";
      return nullptr;
    }
    for (const DatasetRecord& rec : manifest_.entries) {
      if (rec.name == name) {
        current = rec.generation;
        break;
      }
    }
  }
  if (current == 0) {
    rep.error = act::LoadError::kMissing;
    rep.detail = "dataset not in manifest";
    return nullptr;
  }

  // Candidate ladder: the manifest's generation, then — only if it
  // fails, so the common clean load never pays a directory scan — every
  // older on-disk generation, newest first. Newer-than-manifest orphans
  // are skipped on purpose: an uncommitted Put must stay invisible,
  // exactly as if the crash had hit one instruction earlier.
  auto try_generation =
      [&](uint64_t gen,
          act::LoadError* err) -> std::shared_ptr<const service::ShardedIndex> {
    std::vector<uint8_t> bytes;
    if (!act::ReadFileBytes(SnapshotPath(name, gen), &bytes, err)) {
      return nullptr;
    }
    return ParseSnapshot(bytes, name, err);
  };

  act::LoadError err = act::LoadError::kNone;
  if (auto index = try_generation(current, &err)) {
    rep.generation = current;
    return index;
  }
  rep.error = err;
  rep.detail = "gen " + std::to_string(current) + ": " + act::ToString(err);

  for (uint64_t gen : DiskGenerations(name)) {
    if (gen >= current) continue;
    if (auto index = try_generation(gen, &err)) {
      rep.generation = gen;
      rep.fell_back = true;
      std::fprintf(stderr,
                   "[store] dataset '%s': generation %llu unusable (%s); "
                   "serving generation %llu\n",
                   name.c_str(), static_cast<unsigned long long>(current),
                   act::ToString(rep.error),
                   static_cast<unsigned long long>(gen));
      return index;
    }
    rep.detail += "; gen " + std::to_string(gen) + ": " + act::ToString(err);
  }
  std::fprintf(stderr, "[store] dataset '%s': no loadable generation (%s)\n",
               name.c_str(), rep.detail.c_str());
  return nullptr;
}

int SnapshotStore::GarbageCollect(std::string* error) {
  // Runs entirely under mu_: the keep/orphan decision must be made
  // against the *live* manifest, or a Put committing between a manifest
  // copy and the unlink walk would see its freshly committed file
  // classified as an uncommitted orphan and deleted. The lock is held
  // across directory I/O, which only delays other Put/Load manifest
  // peeks by milliseconds — none of this is on the serving path.
  std::lock_guard<std::mutex> lock(mu_);
  if (!open_) {
    if (error != nullptr) *error = "store is not open";
    return 0;
  }
  const std::string& dir = opts_.dir;
  const auto keep = static_cast<size_t>(opts_.keep_generations);

  // One directory pass, grouped by dataset name.
  std::vector<std::string> tmp_files;
  struct File {
    std::string path;
    uint64_t generation;
  };
  std::unordered_map<std::string, std::vector<File>> by_name;
  for (const std::string& file : ListDirectory(dir)) {
    const std::string path = dir + "/" + file;
    if (file.size() > 4 && file.compare(file.size() - 4, 4, ".tmp") == 0) {
      tmp_files.push_back(path);  // interrupted write
      continue;
    }
    std::string name;
    uint64_t generation = 0;
    if (!ParseSnapshotFileName(file, &name, &generation)) continue;
    by_name[name].push_back({path, generation});
  }

  int removed = 0;
  for (const std::string& path : tmp_files) {
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  for (auto& [name, files] : by_name) {
    const DatasetRecord* rec = nullptr;
    for (const DatasetRecord& e : manifest_.entries) {
      if (e.name == name) {
        rec = &e;
        break;
      }
    }
    // Keep the manifest's generation plus keep-1 predecessors as Load's
    // corruption fallbacks; anything older is superseded. Generations
    // above the manifest's are orphans of an uncommitted Put, and files
    // of datasets the manifest does not know have no owner at all.
    std::sort(files.begin(), files.end(),
              [](const File& a, const File& b) {
                return a.generation > b.generation;
              });
    size_t kept = 0;
    for (const File& f : files) {
      const bool committed = rec != nullptr && f.generation <= rec->generation;
      if (committed && kept < keep) {
        ++kept;
        continue;
      }
      if (::unlink(f.path.c_str()) == 0) ++removed;
    }
  }
  if (removed > 0 && opts_.fsync) FsyncDir(dir);
  return removed;
}

size_t WarmStart(const SnapshotStore& store, service::ServiceCatalog* catalog,
                 std::vector<std::string>* failed) {
  size_t served = 0;
  for (const DatasetRecord& rec : store.Datasets()) {
    LoadReport report;
    std::shared_ptr<const service::ShardedIndex> index =
        store.Load(rec.name, &report);
    if (index == nullptr) {
      // Reserve the id anyway: catalog ids are positional, so skipping
      // this slot would route every later dataset's cached client ids to
      // the wrong data. Offline datasets reject joins typed until a good
      // snapshot is published into their registry.
      catalog->AddOffline(rec.name);
      if (failed != nullptr) {
        failed->push_back(rec.name + ": " + report.detail);
      }
      continue;
    }
    if (!catalog->Add(rec.name, std::move(index)).has_value()) {
      if (failed != nullptr) {
        failed->push_back(rec.name + ": catalog refused (duplicate name?)");
      }
      continue;
    }
    ++served;
  }
  return served;
}

}  // namespace actjoin::store
