// SnapshotStore: a durable, crash-safe home for served index snapshots.
//
// The paper's deployment is build-once, serve-long: polygons change
// rarely, queries never stop. Without a store, every restart re-runs the
// expensive covering pipeline for every dataset; with it, a restart is a
// sequential file read plus the milliseconds-scale classifier/trie
// rebuild that loading already does. The store owns one directory:
//
//   <dir>/MANIFEST            current catalog: dataset name -> generation
//                             chain (base full snapshot + delta files)
//   <dir>/MANIFEST.bak        previous manifest (hard link, kept across
//                             rewrites as the bit-rot fallback)
//   <dir>/<name>-<gen>.snap   one immutable full snapshot per generation
//   <dir>/<name>-<gen>.delta  one immutable delta (mutation span) per
//                             generation, chained off the last full
//   <dir>/*.tmp               in-progress writes (crash leftovers; GC'd)
//
// Crash safety is the postgres discipline, applied twice:
//
//   * Snapshot files are immutable once visible: Put writes
//     <file>.tmp, fsyncs, then rename(2)s into place — a reader can never
//     observe a half-written snapshot under its final name.
//   * The manifest commits a Put: it is rewritten the same way (tmp +
//     fsync + atomic rename + directory fsync), so it always parses as
//     either the old or the new catalog, never a torn mix. The previous
//     manifest survives as a hard link (MANIFEST.bak) to cover external
//     corruption of the primary, and Open falls back primary -> .bak ->
//     directory scan, so the store recovers to the last complete
//     generation no matter where a crash (or a flipped bit) landed.
//
// A crash *between* snapshot write and manifest rename leaves an orphan
// <name>-<gen>.snap the manifest never references: invisible to Load,
// overwritten by the next Put of that generation number, removed by
// GarbageCollect. Generations come from one monotonic counter persisted
// in the manifest, so a committed generation number is never reissued.
//
// Snapshot file format (v1, little-endian; section framing and LoadError
// from act/serialization.h — every section carries a CRC32C):
//
//   u32 magic "ACTS" | u32 version
//   header section:  num_shards, routing_cover_cells, num_polygons,
//                    generation, dataset name
//   per shard:       shard-meta section (has_index flag + global id map),
//                    then — for non-empty shards — the act index body
//                    (options/polygons/covering sections, as on a
//                    single-index file)
//
// Loading re-derives classifier/encoding/trie per shard but never redoes
// covering work; ShardedIndex::FromParts reassembles the exact shard
// layout, so joins against a loaded snapshot are byte-identical to the
// saved index (asserted end-to-end over the wire in tests/store_test.cc).
//
// Delta files (the live-mutation half of the store) make checkpointing a
// mutated dataset O(churn) instead of O(index): PutDelta persists a span
// of mutation records — the adds/removes/drop the journal accumulated
// since the last checkpoint — as <name>-<gen>.delta, and the manifest
// records the chain: one base full generation plus the ascending delta
// generations on top of it. Load replays the chain through
// ShardedIndex::ApplyDelta, which reuses the base coverings, so restart
// cost tracks churn, not dataset size. Delta file format (v1):
//
//   u32 magic "ACTD" | u32 version
//   header section:  name, generation, base generation, previous
//                    generation in the chain, record count
//   per record:      one section — kind byte, then the polygons blob
//                    (kAdd) / id list (kRemove) / nothing (kDrop)
//
// A corrupt or missing delta anywhere in the chain falls back — typed,
// in the LoadReport — to the base full generation alone: deltas are an
// optimization, never the only copy of data that was ever checkpointed
// full. A full Put resets the chain (and GC then removes the superseded
// delta files). The directory-scan manifest recovery remains fulls-only:
// a chain is only trusted when a manifest vouches for its exact order.
//
// Thread safety: all members are safe to call concurrently (one mutex
// around the manifest; snapshot files are immutable so reads run
// unlocked). Typical writers: one Checkpointer; typical readers: warm
// restart + operator tooling.

#ifndef ACTJOIN_STORE_SNAPSHOT_STORE_H_
#define ACTJOIN_STORE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "act/serialization.h"
#include "service/mutation_journal.h"
#include "service/service_catalog.h"
#include "service/sharded_index.h"
#include "util/metrics.h"

namespace actjoin::store {

struct StoreOptions {
  std::string dir;
  /// fsync snapshot files, the manifest, and the directory at every
  /// commit point. On by default — this is what makes a crash recoverable
  /// — but logic-only tests may turn it off to spare iops.
  bool fsync = true;
  /// Snapshot generations GarbageCollect keeps per dataset (>= 1): the
  /// current one plus keep_generations - 1 older fallbacks for Load's
  /// corruption recovery.
  int keep_generations = 2;
  /// Optional observability sink (typically the serving JoinService's
  /// registry): Open registers store_* counters as collection-time
  /// callbacks, and manifest recoveries / GC sweeps append to its event
  /// log. Must outlive the store. Null: no registration, no events.
  util::MetricsRegistry* metrics = nullptr;
};

struct DatasetRecord {
  std::string name;
  /// Current logical generation: the last delta's, or base_generation
  /// when the chain is empty.
  uint64_t generation = 0;
  /// Generation of the full snapshot the delta chain replays on top of.
  uint64_t base_generation = 0;
  /// Delta generations in chain (= Put) order, strictly ascending, each >
  /// base_generation; the last equals `generation`.
  std::vector<uint64_t> delta_generations;

  friend bool operator==(const DatasetRecord&, const DatasetRecord&) = default;
};

/// Load's audit trail: which generation was actually served and what went
/// wrong on the way there (surfaced in store/server logs, so operators can
/// tell bit-rot from absence).
struct LoadReport {
  /// Error of the *first* (manifest-referenced) attempt; kNone when it
  /// loaded cleanly.
  act::LoadError error = act::LoadError::kNone;
  /// Generation actually loaded; 0 when every candidate failed.
  uint64_t generation = 0;
  /// True when an older generation had to stand in for a corrupt current
  /// one (including a delta chain falling back to its base full).
  bool fell_back = false;
  /// Delta files replayed on top of the base full generation (0 when the
  /// chain was empty or had to be abandoned).
  uint32_t deltas_applied = 0;
  /// True when the replayed chain ends in a DROP_DATASET tombstone: the
  /// returned (empty) index should be published with the dataset marked
  /// dropped, so joins keep rejecting typed across a restart.
  bool dropped = false;
  /// Human-readable failure trail ("gen 7: checksum mismatch; ...").
  std::string detail;
};

class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Opens (creating the directory if needed) and recovers the manifest:
  /// primary, then MANIFEST.bak, then a directory scan of *.snap files.
  /// False + *error only on real I/O trouble (directory not creatable /
  /// readable); an empty directory is a valid empty store.
  bool Open(const StoreOptions& opts, std::string* error = nullptr);
  bool is_open() const;

  /// Current manifest entries, in manifest (= first-Put) order — the
  /// order WarmStart replays, so catalog ids are stable across restarts.
  std::vector<DatasetRecord> Datasets() const;

  /// Persists `index` as the next generation of `name` (creating the
  /// dataset on first Put) and commits it to the manifest. On return the
  /// snapshot is durable: a crash at any later point recovers it. A full
  /// Put resets the dataset's delta chain (compaction): the new
  /// generation becomes the base and the superseded deltas go to GC.
  bool Put(const std::string& name, const service::ShardedIndex& index,
           uint64_t* generation = nullptr, std::string* error = nullptr);

  /// Persists a span of mutation records as the next generation of
  /// `name`'s delta chain — O(churn), not O(index) — and commits it to
  /// the manifest. The dataset must already have a full snapshot (a delta
  /// with no base would be replayable against nothing). Records must be
  /// well-formed (kAdd with polygons, kRemove with ids, kDrop bare);
  /// their epoch field is not persisted — generations are the store's
  /// ordering axis.
  bool PutDelta(const std::string& name,
                const std::vector<service::MutationRecord>& records,
                uint64_t* generation = nullptr, std::string* error = nullptr);

  /// Loads `name`'s current state: the base full generation, then the
  /// delta chain replayed on top (ShardedIndex::ApplyDelta, reusing the
  /// base coverings). A corrupt delta anywhere in the chain abandons the
  /// chain and serves the base full alone (typed in *report); a corrupt
  /// base falls back to older full generations (newest first, without
  /// deltas — they chain off the exact base) so one bad block costs a
  /// generation, not the dataset. Null when the dataset is unknown or no
  /// candidate loads.
  std::shared_ptr<const service::ShardedIndex> Load(
      const std::string& name, LoadReport* report = nullptr) const;

  /// Removes files the manifest does not vouch for: *.tmp leftovers,
  /// generations beyond keep_generations, orphans from interrupted Puts,
  /// delta files outside every dataset's current chain, and files of
  /// datasets the manifest does not know. Returns the number of files
  /// removed.
  int GarbageCollect(std::string* error = nullptr);

  const StoreOptions& options() const { return opts_; }
  /// The absolute snapshot path a (name, generation) pair maps to.
  std::string SnapshotPath(const std::string& name, uint64_t generation) const;
  /// The absolute delta path a (name, generation) pair maps to.
  std::string DeltaPath(const std::string& name, uint64_t generation) const;

 private:
  struct Manifest {
    uint64_t next_generation = 1;
    std::vector<DatasetRecord> entries;  // manifest order == first-Put order
  };

  bool WriteManifestLocked(std::string* error);
  /// All on-disk generations of `name`, newest first.
  std::vector<uint64_t> DiskGenerations(const std::string& name) const;
  /// Registers store_* instruments into opts_.metrics (no-op when null).
  /// Every callback reads only atomics, so collection never touches mu_.
  void RegisterMetrics();
  /// Appends to opts_.metrics' event log (no-op when null).
  void AppendEvent(std::string kind, std::string subject,
                   std::string detail) const;

  StoreOptions opts_;
  bool open_ = false;

  /// Observability counters, atomic so metric collection (which runs
  /// under the registry mutex) never takes mu_ — no lock-order edge
  /// between the two.
  mutable std::atomic<uint64_t> puts_{0};
  mutable std::atomic<uint64_t> delta_puts_{0};
  mutable std::atomic<uint64_t> put_failures_{0};
  mutable std::atomic<uint64_t> loads_{0};
  mutable std::atomic<uint64_t> load_fallbacks_{0};
  mutable std::atomic<uint64_t> gc_files_removed_{0};
  mutable std::atomic<uint64_t> dataset_count_{0};

  mutable std::mutex mu_;
  Manifest manifest_;
  /// False while the on-disk primary MANIFEST is known-bad (Open
  /// recovered from .bak or a scan): WriteManifestLocked must not rotate
  /// it over the good .bak until a fresh primary is durable.
  bool manifest_primary_healthy_ = false;
};

/// Boots a catalog from the store: loads every manifest entry (in manifest
/// order, so dataset ids reproduce the original Add order) and publishes
/// each as a catalog dataset. A dataset that fails to load entirely is
/// registered *offline* (its id slot is reserved, joins against it reject
/// typed — positional ids must not shift onto the wrong data) and reported
/// in *failed with its LoadReport detail — a warm restart serves what it
/// can instead of refusing to start. A dataset whose chain ends in a
/// DROP_DATASET tombstone is registered with its (empty) snapshot and
/// marked dropped, so it keeps rejecting joins typed after the restart.
/// Returns the number of datasets actually served.
size_t WarmStart(const SnapshotStore& store, service::ServiceCatalog* catalog,
                 std::vector<std::string>* failed = nullptr);

}  // namespace actjoin::store

#endif  // ACTJOIN_STORE_SNAPSHOT_STORE_H_
