// Checkpointer: background persistence for hot-swapped index snapshots.
//
// SwapIndex publishes a new snapshot in nanoseconds; making it durable
// costs a file write. The checkpointer moves that cost off the serving
// path: a single background thread watches every catalog dataset's epoch,
// persists snapshots whose epoch advanced since their last checkpoint
// (pinning the snapshot via the registry, so serving is never blocked —
// the writer holds a shared_ptr, not a lock), and garbage-collects
// superseded generations afterwards.
//
// Epochs are compared, not subscribed: a dataset swapped five times
// between two sweeps is persisted once, at its newest snapshot — exactly
// the semantics a store wants (intermediate states were never durable
// promises). A swap *during* a sweep is caught by the next sweep.
//
// Failure policy: a failed Put is counted, logged, and retried on the
// next sweep (the last-persisted epoch is only advanced on success). The
// serving path never notices.

#ifndef ACTJOIN_STORE_CHECKPOINTER_H_
#define ACTJOIN_STORE_CHECKPOINTER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "service/join_service.h"
#include "store/snapshot_store.h"

namespace actjoin::store {

struct CheckpointerOptions {
  /// Sweep period. Checkpoints lag swaps by at most this (plus the write
  /// itself); crash-loss window for a just-swapped index is the same.
  int interval_ms = 1000;
  /// Run GarbageCollect after every sweep that persisted something.
  bool gc = true;
  /// Start the background thread in the constructor. Tests set false and
  /// drive sweeps deterministically via CheckpointNow().
  bool autostart = true;
};

struct CheckpointerStats {
  uint64_t sweeps = 0;
  uint64_t checkpoints = 0;    // snapshots persisted
  uint64_t failures = 0;       // Put failures (retried next sweep)
  uint64_t files_removed = 0;  // by post-sweep GC
};

class Checkpointer {
 public:
  /// `store` must be Open; both pointers must outlive the checkpointer.
  Checkpointer(SnapshotStore* store, service::JoinService* service,
               const CheckpointerOptions& opts = {});

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Stop()s if still running.
  ~Checkpointer();

  /// Launches the background thread; idempotent.
  void Start();

  /// Joins the thread (a started Put completes; durability is never torn
  /// by Stop), then runs one final sweep so every epoch published before
  /// Stop is durable on a clean shutdown. Idempotent; a no-op when the
  /// background thread was never started.
  void Stop();

  /// One synchronous sweep over the catalog; returns snapshots persisted.
  /// Safe alongside the background thread (sweeps serialize).
  uint64_t CheckpointNow();

  CheckpointerStats stats() const;

 private:
  void Loop();

  SnapshotStore* store_;
  service::JoinService* service_;
  CheckpointerOptions opts_;

  std::mutex sweep_mu_;  // serializes sweeps (background vs CheckpointNow)
  /// dataset name -> epoch of its last successfully persisted snapshot.
  std::map<std::string, uint64_t> persisted_epoch_;

  mutable std::mutex mu_;  // guards stats_ + lifecycle flags + wakeups
  std::condition_variable cv_;
  CheckpointerStats stats_;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace actjoin::store

#endif  // ACTJOIN_STORE_CHECKPOINTER_H_
