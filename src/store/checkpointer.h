// Checkpointer: background persistence for hot-swapped index snapshots.
//
// SwapIndex publishes a new snapshot in nanoseconds; making it durable
// costs a file write. The checkpointer moves that cost off the serving
// path: a single background thread watches every catalog dataset's epoch,
// persists snapshots whose epoch advanced since their last checkpoint
// (pinning the snapshot via the registry, so serving is never blocked —
// the writer holds a shared_ptr, not a lock), and garbage-collects
// superseded generations afterwards.
//
// Epochs are compared, not subscribed: a dataset swapped five times
// between two sweeps is persisted once, at its newest snapshot — exactly
// the semantics a store wants (intermediate states were never durable
// promises). A swap *during* a sweep is caught by the next sweep — and on
// Stop, a quiesce loop keeps sweeping until a sweep persists nothing, so
// an epoch published concurrently with shutdown cannot slip between the
// final scan and the stop flag.
//
// Live mutations checkpoint as deltas: when the dataset's mutation
// journal still covers (last persisted epoch, current epoch], the sweep
// writes that span as an O(churn) delta file (SnapshotStore::PutDelta)
// instead of rewriting the whole index. Once the on-disk chain reaches
// max_delta_chain — or the journal lost coverage (overflow, full swap) —
// the sweep compacts: one full Put resets the chain, bounding restart
// replay cost. Deltas are an optimization, never a correctness
// dependency; any doubt downgrades to a full snapshot.
//
// Failure policy: a failed Put is counted, logged, and retried on the
// next sweep (the last-persisted epoch is only advanced on success). The
// serving path never notices.

#ifndef ACTJOIN_STORE_CHECKPOINTER_H_
#define ACTJOIN_STORE_CHECKPOINTER_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "service/join_service.h"
#include "store/snapshot_store.h"
#include "util/metrics.h"

namespace actjoin::store {

struct CheckpointerOptions {
  /// Sweep period. Checkpoints lag swaps by at most this (plus the write
  /// itself); crash-loss window for a just-swapped index is the same.
  int interval_ms = 1000;
  /// Run GarbageCollect after every sweep that persisted something.
  bool gc = true;
  /// Start the background thread in the constructor. Tests set false and
  /// drive sweeps deterministically via CheckpointNow().
  bool autostart = true;
  /// Persist mutation spans as O(churn) delta files when the dataset's
  /// journal covers (last persisted, current] epoch-for-epoch. Off, every
  /// checkpoint is a full snapshot (the pre-delta behavior).
  bool deltas = true;
  /// Delta files allowed on one full snapshot before the next checkpoint
  /// compacts the chain back to a full (bounds restart replay cost).
  /// Clamped to >= 0; 0 compacts every time, like deltas = false.
  int max_delta_chain = 8;
  /// Optional observability sink (typically the serving JoinService's
  /// registry): the constructor registers checkpointer_* counters as
  /// collection-time callbacks, and each dataset persist brackets a
  /// checkpoint_begin / checkpoint_end event pair. Must outlive the
  /// checkpointer. Null: no registration, no events.
  util::MetricsRegistry* metrics = nullptr;
};

struct CheckpointerStats {
  uint64_t sweeps = 0;
  uint64_t checkpoints = 0;         // snapshots persisted (full + delta)
  uint64_t delta_checkpoints = 0;   // of which were delta files
  uint64_t failures = 0;            // Put failures (retried next sweep)
  uint64_t files_removed = 0;       // by post-sweep GC
};

class Checkpointer {
 public:
  /// `store` must be Open; both pointers must outlive the checkpointer.
  Checkpointer(SnapshotStore* store, service::JoinService* service,
               const CheckpointerOptions& opts = {});

  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;

  /// Stop()s if still running.
  ~Checkpointer();

  /// Launches the background thread; idempotent.
  void Start();

  /// Joins the thread (a started Put completes; durability is never torn
  /// by Stop), then sweeps until a sweep persists nothing, so every epoch
  /// published before — or concurrently with — Stop is durable on a clean
  /// shutdown. The final sweeps run even when the background thread was
  /// never started (an autostart=false checkpointer owes the same
  /// durability on Stop); only a repeated Stop is a no-op.
  void Stop();

  /// One synchronous sweep over the catalog; returns snapshots persisted.
  /// Safe alongside the background thread (sweeps serialize).
  uint64_t CheckpointNow();

  CheckpointerStats stats() const;

 private:
  void Loop();

  SnapshotStore* store_;
  service::JoinService* service_;
  CheckpointerOptions opts_;

  std::mutex sweep_mu_;  // serializes sweeps (background vs CheckpointNow)
  /// dataset name -> epoch of its last successfully persisted snapshot.
  std::map<std::string, uint64_t> persisted_epoch_;

  mutable std::mutex mu_;  // guards stats_ + lifecycle flags + wakeups
  std::condition_variable cv_;
  CheckpointerStats stats_;
  bool running_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace actjoin::store

#endif  // ACTJOIN_STORE_CHECKPOINTER_H_
