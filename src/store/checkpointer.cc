#include "store/checkpointer.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/check.h"

namespace actjoin::store {

Checkpointer::Checkpointer(SnapshotStore* store,
                           service::JoinService* service,
                           const CheckpointerOptions& opts)
    : store_(store), service_(service), opts_(opts) {
  ACT_CHECK_MSG(store_ != nullptr && service_ != nullptr,
                "Checkpointer requires a store and a service");
  ACT_CHECK_MSG(store_->is_open(), "Checkpointer requires an open store");
  if (opts_.interval_ms < 1) opts_.interval_ms = 1;
  if (opts_.max_delta_chain < 0) opts_.max_delta_chain = 0;
  if (util::MetricsRegistry* r = opts_.metrics) {
    r->RegisterCounterFn("checkpointer_sweeps_total", "Catalog sweeps run",
                         "", [this] { return stats().sweeps; });
    r->RegisterCounterFn(
        "checkpointer_checkpoints_total",
        "Snapshots persisted, by kind (full + delta)", "kind=\"full\"",
        [this] {
          CheckpointerStats s = stats();
          return s.checkpoints - s.delta_checkpoints;
        });
    r->RegisterCounterFn("checkpointer_checkpoints_total", "",
                         "kind=\"delta\"",
                         [this] { return stats().delta_checkpoints; });
    r->RegisterCounterFn("checkpointer_failures_total",
                         "Put failures (retried next sweep)", "",
                         [this] { return stats().failures; });
    r->RegisterCounterFn("checkpointer_files_removed_total",
                         "Files reclaimed by post-sweep GC", "",
                         [this] { return stats().files_removed; });
  }
  if (opts_.autostart) Start();
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stop_) return;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Checkpointer::Stop() {
  bool join_thread = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;  // second Stop: the first already quiesced
    stop_ = true;
    join_thread = running_;
  }
  if (join_thread) {
    cv_.notify_all();
    thread_.join();
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Quiesce: a clean shutdown persists every epoch that was published
  // before Stop — the crash-loss window exists for crashes, not for
  // orderly exits. One final sweep is not enough: an epoch published
  // between that sweep's catalog scan and its return would be missed, so
  // sweep until a whole sweep finds nothing new. This runs whether or not
  // the background thread was ever started — an autostart=false
  // checkpointer owes Stop the same durability. (The loop assumes the
  // mutation source is wound down around shutdown; a writer that never
  // stops would keep the quiesce honest but busy.)
  while (CheckpointNow() > 0) {
  }
}

void Checkpointer::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    CheckpointNow();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                 [&] { return stop_; });
  }
}

uint64_t Checkpointer::CheckpointNow() {
  std::lock_guard<std::mutex> sweep_lock(sweep_mu_);
  auto event = [this](const char* kind, const std::string& subject,
                      std::string detail) {
    if (opts_.metrics != nullptr) {
      opts_.metrics->events().Append(kind, subject, std::move(detail));
    }
  };
  uint64_t persisted = 0;
  uint64_t delta_persisted = 0;
  uint64_t failures = 0;
  // The compaction decision needs the *on-disk* chain length, not
  // in-memory state: one store catalog read per sweep.
  std::map<std::string, size_t> chain_len;
  for (const DatasetRecord& rec : store_->Datasets()) {
    chain_len[rec.name] = rec.delta_generations.size();
  }
  for (const service::DatasetInfo& info : service_->catalog().List()) {
    auto it = persisted_epoch_.find(info.name);
    const uint64_t last = it != persisted_epoch_.end() ? it->second : 0;
    if (last >= info.epoch) continue;

    // Pin the snapshot *with* its epoch: the registry hands them out
    // consistently, so the pair we persist is a state that was actually
    // published (a swap racing this sweep just moves the work to the
    // next one).
    const service::ServiceCatalog::Registry* registry =
        service_->catalog().Find(info.id);
    if (registry == nullptr) continue;  // unreachable: ids are stable
    uint64_t epoch = 0;
    service::ServiceCatalog::Snapshot snapshot = registry->Acquire(&epoch);
    if (snapshot == nullptr) continue;

    service::MutationJournal* journal =
        service_->catalog().JournalOf(info.id);
    std::string error;
    bool done = false;
    event("checkpoint_begin", info.name, "epoch " + std::to_string(epoch));

    // Delta path: the journal must cover the exact epoch span since the
    // last checkpoint, and the chain must still have room — otherwise
    // this checkpoint compacts with a full Put. `last != 0` keeps a
    // dataset's very first checkpoint full: a delta needs a base.
    auto cl = chain_len.find(info.name);
    const size_t chain = cl != chain_len.end() ? cl->second : 0;
    if (opts_.deltas && journal != nullptr && last != 0 &&
        chain < static_cast<size_t>(opts_.max_delta_chain) &&
        journal->Covers(last, epoch)) {
      std::vector<service::MutationRecord> records =
          journal->Snapshot(last, epoch);
      if (!records.empty() &&
          store_->PutDelta(info.name, records, nullptr, &error)) {
        journal->Prune(epoch);
        persisted_epoch_[info.name] = epoch;
        ++persisted;
        ++delta_persisted;
        done = true;
        event("checkpoint_end", info.name,
              "epoch " + std::to_string(epoch) + ", delta");
      } else if (!records.empty()) {
        std::fprintf(stderr,
                     "[checkpointer] dataset '%s': delta put failed (%s); "
                     "falling back to full snapshot\n",
                     info.name.c_str(), error.c_str());
      }
    }

    if (!done) {
      if (store_->Put(info.name, *snapshot, nullptr, &error)) {
        persisted_epoch_[info.name] = epoch;
        // The full snapshot is the new chain base; whatever the journal
        // held is superseded (and overflow state clears with it).
        if (journal != nullptr) journal->Reset(epoch);
        // A full snapshot of a dropped dataset is just an empty index —
        // the tombstone itself is carried by a trailing drop delta, so a
        // restart rebuilds not only the (empty) data but the typed
        // reject-joins state too.
        if (info.dropped) {
          service::MutationRecord drop;
          drop.kind = service::MutationRecord::Kind::kDrop;
          if (!store_->PutDelta(info.name, {drop}, nullptr, &error)) {
            ++failures;
            std::fprintf(stderr,
                         "[checkpointer] dataset '%s': tombstone delta "
                         "failed: %s\n",
                         info.name.c_str(), error.c_str());
          }
        }
        ++persisted;
        event("checkpoint_end", info.name,
              "epoch " + std::to_string(epoch) + ", full");
      } else {
        ++failures;
        std::fprintf(stderr, "[checkpointer] dataset '%s': put failed: %s\n",
                     info.name.c_str(), error.c_str());
        event("checkpoint_end", info.name,
              "epoch " + std::to_string(epoch) + ", failed: " + error);
      }
    }
  }

  uint64_t removed = 0;
  if (opts_.gc && persisted > 0) {
    removed = static_cast<uint64_t>(store_->GarbageCollect());
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sweeps;
  stats_.checkpoints += persisted;
  stats_.delta_checkpoints += delta_persisted;
  stats_.failures += failures;
  stats_.files_removed += removed;
  return persisted;
}

CheckpointerStats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace actjoin::store
