#include "store/checkpointer.h"

#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "util/check.h"

namespace actjoin::store {

Checkpointer::Checkpointer(SnapshotStore* store,
                           service::JoinService* service,
                           const CheckpointerOptions& opts)
    : store_(store), service_(service), opts_(opts) {
  ACT_CHECK_MSG(store_ != nullptr && service_ != nullptr,
                "Checkpointer requires a store and a service");
  ACT_CHECK_MSG(store_->is_open(), "Checkpointer requires an open store");
  if (opts_.interval_ms < 1) opts_.interval_ms = 1;
  if (opts_.autostart) Start();
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stop_) return;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Final sweep: a clean shutdown persists every epoch that was published
  // before Stop — the crash-loss window exists for crashes, not for
  // orderly exits.
  CheckpointNow();
}

void Checkpointer::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    CheckpointNow();
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(opts_.interval_ms),
                 [&] { return stop_; });
  }
}

uint64_t Checkpointer::CheckpointNow() {
  std::lock_guard<std::mutex> sweep_lock(sweep_mu_);
  uint64_t persisted = 0;
  uint64_t failures = 0;
  for (const service::DatasetInfo& info : service_->catalog().List()) {
    auto it = persisted_epoch_.find(info.name);
    if (it != persisted_epoch_.end() && it->second >= info.epoch) continue;

    // Pin the snapshot *with* its epoch: the registry hands them out
    // consistently, so the pair we persist is a state that was actually
    // published (a swap racing this sweep just moves the work to the
    // next one).
    const service::ServiceCatalog::Registry* registry =
        service_->catalog().Find(info.id);
    if (registry == nullptr) continue;  // unreachable: ids are stable
    uint64_t epoch = 0;
    service::ServiceCatalog::Snapshot snapshot = registry->Acquire(&epoch);
    if (snapshot == nullptr) continue;

    std::string error;
    if (store_->Put(info.name, *snapshot, nullptr, &error)) {
      persisted_epoch_[info.name] = epoch;
      ++persisted;
    } else {
      ++failures;
      std::fprintf(stderr, "[checkpointer] dataset '%s': put failed: %s\n",
                   info.name.c_str(), error.c_str());
    }
  }

  uint64_t removed = 0;
  if (opts_.gc && persisted > 0) {
    removed = static_cast<uint64_t>(store_->GarbageCollect());
  }

  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.sweeps;
  stats_.checkpoints += persisted;
  stats_.failures += failures;
  stats_.files_removed += removed;
  return persisted;
}

CheckpointerStats Checkpointer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace actjoin::store
