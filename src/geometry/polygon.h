// Polygons with optional holes / multiple shells, even-odd interior rule.
//
// A Polygon is a set of rings; a point is interior iff it lies inside an odd
// number of rings, so a single type covers simple polygons, polygons with
// holes, and multi-part polygons (the NYC borough analogs are multi-part).
// Rings are stored open (last vertex != first); the closing edge is
// implicit. Join predicates follow PostGIS ST_Covers: boundary points are
// covered (paper Sec. 3.4).

#ifndef ACTJOIN_GEOMETRY_POLYGON_H_
#define ACTJOIN_GEOMETRY_POLYGON_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace actjoin::geom {

using Ring = std::vector<Point>;

class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(Ring shell) { AddRing(std::move(shell)); }

  /// Appends a ring (shell or hole; the even-odd rule does not distinguish).
  /// Rings must have >= 3 vertices and be stored without a closing duplicate
  /// vertex.
  void AddRing(Ring ring);

  const std::vector<Ring>& rings() const { return rings_; }
  const Rect& mbr() const { return mbr_; }

  uint32_t num_vertices() const { return num_vertices_; }
  /// Total number of edges (== vertices for closed rings).
  uint32_t num_edges() const { return num_vertices_; }

  /// Edge by global index, ordered ring by ring.
  std::pair<Point, Point> Edge(uint32_t e) const;

  /// Signed area (positive for counter-clockwise shells); holes listed as
  /// clockwise rings subtract, matching the even-odd interior.
  double SignedArea() const;
  double Area() const;

  /// O(n^2) self/inter-ring intersection check; intended for tests and
  /// generator validation, not for hot paths.
  bool IsSimple() const;

 private:
  std::vector<Ring> rings_;
  std::vector<uint32_t> ring_edge_offsets_;  // prefix sums for Edge()
  Rect mbr_;
  uint32_t num_vertices_ = 0;
};

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_POLYGON_H_
