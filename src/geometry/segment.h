// Segment predicates shared by point-in-polygon tests, the region coverer's
// cell classification, and the rasterizer.

#ifndef ACTJOIN_GEOMETRY_SEGMENT_H_
#define ACTJOIN_GEOMETRY_SEGMENT_H_

#include "geometry/point.h"
#include "geometry/rect.h"

namespace actjoin::geom {

/// Sign of the orientation of the triangle (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 collinear.
int Orientation(const Point& a, const Point& b, const Point& c);

/// True iff p lies on the closed segment [a, b].
bool OnSegment(const Point& a, const Point& b, const Point& p);

/// True iff closed segments [p1,q1] and [p2,q2] share at least one point
/// (proper crossings, endpoint touches, and collinear overlap all count).
bool SegmentsIntersect(const Point& p1, const Point& q1, const Point& p2,
                       const Point& q2);

/// True iff the segments cross properly: they intersect in exactly one point
/// that is interior to both. Used for crossing-parity counting.
bool SegmentsCrossProperly(const Point& p1, const Point& q1, const Point& p2,
                           const Point& q2);

/// True iff the closed segment [a, b] intersects the closed rectangle.
bool SegmentIntersectsRect(const Point& a, const Point& b, const Rect& r);

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_SEGMENT_H_
