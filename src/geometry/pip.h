// Point-in-polygon tests and polygon/rectangle classification.
//
// ContainsPoint is the "expensive refinement" of the paper: the classic
// ray-tracing (crossing-number) algorithm, O(edges), identical to what the
// R-tree baseline and ACT's exact join use so the comparison is apples to
// apples. Classify() is the build-time primitive behind coverings, precision
// refinement, and index training: it decides whether a cell rectangle is
// outside, on the boundary of, or fully inside a polygon.

#ifndef ACTJOIN_GEOMETRY_PIP_H_
#define ACTJOIN_GEOMETRY_PIP_H_

#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace actjoin::geom {

/// ST_Covers semantics: returns true for interior *and* boundary points.
/// Even-odd (crossing number) rule across all rings.
bool ContainsPoint(const Polygon& poly, const Point& p);

/// Winding-number variant (non-zero rule). For the simple disjoint
/// partitions used in this repo the two rules agree; used as a test oracle.
bool WindingContainsPoint(const Polygon& poly, const Point& p);

/// True iff p lies on some edge of the polygon.
bool OnBoundary(const Polygon& poly, const Point& p);

/// Relation of a closed rectangle to the polygon's interior.
enum class RegionRelation {
  kDisjoint,    // no interior overlap
  kIntersects,  // rectangle straddles the boundary
  kContained,   // rectangle fully inside the polygon (a "true hit" cell)
};

RegionRelation Classify(const Polygon& poly, const Rect& rect);

/// Distance in meters from a geographic point (x=lng, y=lat, degrees) to
/// the polygon; 0 if the point is covered. Uses the local equirectangular
/// metric. This is how the approximate join's precision bound is validated.
double DistanceToPolygonMeters(const Polygon& poly, const Point& p);

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_PIP_H_
