// Per-polygon uniform edge bucketing: a build-time accelerator for the
// O(edges) predicates in pip.h.
//
// Covering computation, precision refinement (paper Sec. 3.2), and index
// training (Sec. 3.3.1) classify millions of cell rectangles against
// polygons; a raw scan over a complex borough boundary (hundreds of edges)
// per cell would dominate the build. The grid buckets edges and additionally
// records, per bucket, whether the bucket center is inside the polygon, so
// containment of any query point can be decided by crossing-parity against
// the local bucket's edges only — the same trick S2ShapeIndex uses.
//
// Join-time refinement deliberately does NOT use this class: the paper's
// exact join performs the classic O(edges) PIP test, and the benchmarks must
// preserve that cost model.

#ifndef ACTJOIN_GEOMETRY_EDGE_GRID_H_
#define ACTJOIN_GEOMETRY_EDGE_GRID_H_

#include <cstdint>
#include <vector>

#include "geometry/pip.h"
#include "geometry/polygon.h"

namespace actjoin::geom {

class EdgeGrid {
 public:
  /// Builds a grid over poly.mbr(); resolution defaults to roughly one
  /// bucket per edge (clamped to [1, 256] per axis).
  explicit EdgeGrid(const Polygon& poly, int resolution = 0);

  const Polygon& polygon() const { return *poly_; }

  /// Equivalent to geom::ContainsPoint but O(edges per bucket).
  bool ContainsPoint(const Point& p) const;

  /// Equivalent to geom::Classify but examining only nearby edges.
  RegionRelation Classify(const Rect& rect) const;

  /// Total number of (edge, bucket) incidences; exposed for tests.
  size_t IncidenceCount() const;

 private:
  struct Bucket {
    std::vector<uint32_t> edges;
    Point center;
    bool center_inside = false;
  };

  int BucketX(double x) const;
  int BucketY(double y) const;
  const Bucket& BucketAt(const Point& p) const;

  // Counts proper crossings of segment [a, b] with the bucket's edges;
  // returns false in *ok if a degenerate configuration (touching a vertex or
  // collinear overlap) makes the parity unreliable.
  int CountCrossings(const Bucket& b, const Point& a, const Point& p,
                     bool* ok) const;

  const Polygon* poly_;
  Rect bounds_;
  int nx_ = 1, ny_ = 1;
  double inv_w_ = 0, inv_h_ = 0;
  std::vector<Bucket> buckets_;
};

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_EDGE_GRID_H_
