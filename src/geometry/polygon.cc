#include "geometry/polygon.h"

#include "geometry/segment.h"
#include "util/check.h"

namespace actjoin::geom {

void Polygon::AddRing(Ring ring) {
  ACT_CHECK_MSG(ring.size() >= 3, "a ring needs at least 3 vertices");
  if (ring_edge_offsets_.empty()) ring_edge_offsets_.push_back(0);
  for (const Point& p : ring) mbr_.Expand(p);
  num_vertices_ += static_cast<uint32_t>(ring.size());
  ring_edge_offsets_.push_back(num_vertices_);
  rings_.push_back(std::move(ring));
}

std::pair<Point, Point> Polygon::Edge(uint32_t e) const {
  ACT_CHECK(e < num_vertices_);
  // Rings are small in number; linear ring lookup is fine and avoids a
  // binary search on every edge access.
  size_t r = 0;
  while (ring_edge_offsets_[r + 1] <= e) ++r;
  const Ring& ring = rings_[r];
  uint32_t local = e - ring_edge_offsets_[r];
  uint32_t next = (local + 1 == ring.size()) ? 0 : local + 1;
  return {ring[local], ring[next]};
}

double Polygon::SignedArea() const {
  double total = 0;
  for (const Ring& ring : rings_) {
    double a = 0;
    for (size_t k = 0; k < ring.size(); ++k) {
      const Point& p = ring[k];
      const Point& q = ring[(k + 1) % ring.size()];
      a += p.Cross(q);
    }
    total += a / 2;
  }
  return total;
}

double Polygon::Area() const {
  double a = SignedArea();
  return a < 0 ? -a : a;
}

bool Polygon::IsSimple() const {
  uint32_t n = num_edges();
  for (uint32_t e1 = 0; e1 < n; ++e1) {
    auto [a1, b1] = Edge(e1);
    for (uint32_t e2 = e1 + 1; e2 < n; ++e2) {
      auto [a2, b2] = Edge(e2);
      // Consecutive edges of the same ring legitimately share a vertex.
      bool adjacent = (a1 == a2) || (a1 == b2) || (b1 == a2) || (b1 == b2);
      if (adjacent) {
        if (SegmentsCrossProperly(a1, b1, a2, b2)) return false;
        continue;
      }
      if (SegmentsIntersect(a1, b1, a2, b2)) return false;
    }
  }
  return true;
}

}  // namespace actjoin::geom
