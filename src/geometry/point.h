// Planar point type for the geometry kernel.
//
// The kernel is projection-agnostic 2D; geographic callers use x = longitude
// and y = latitude in degrees. Point-in-polygon containment is invariant
// under the per-axis monotone map between degrees and the local metric, so
// all predicates can run directly in degree space.

#ifndef ACTJOIN_GEOMETRY_POINT_H_
#define ACTJOIN_GEOMETRY_POINT_H_

namespace actjoin::geom {

struct Point {
  double x = 0;
  double y = 0;

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }

  /// 2D cross product of this and o (z-component of the 3D cross product).
  double Cross(const Point& o) const { return x * o.y - y * o.x; }
  double Dot(const Point& o) const { return x * o.x + y * o.y; }
};

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_POINT_H_
