#include "geometry/poly_poly.h"

#include "geometry/pip.h"
#include "geometry/segment.h"

namespace actjoin::geom {

namespace {

inline bool Covered(const Polygon& poly, const EdgeGrid* grid,
                    const Point& p) {
  return grid != nullptr ? grid->ContainsPoint(p) : ContainsPoint(poly, p);
}

inline Point Midpoint(const Point& a, const Point& b) {
  return {(a.x + b.x) / 2, (a.y + b.y) / 2};
}

/// Any vertex of `of` covered by `by`?
bool AnyVertexCovered(const Polygon& of, const Polygon& by,
                      const EdgeGrid* by_grid) {
  for (const Ring& ring : of.rings()) {
    for (const Point& v : ring) {
      if (Covered(by, by_grid, v)) return true;
    }
  }
  return false;
}

/// Does the closed segment [p, q] lie entirely within one edge of `poly`?
/// Exact where the midpoint probe is not: computing the midpoint of a
/// boundary-coincident edge rounds it off the shared line, after which the
/// crossing-parity test reports an arbitrary side. This test uses only the
/// original vertex coordinates, so coincident edges (the shared-edge and
/// identical-polygon fixtures) are decided exactly.
bool SegmentWithinBoundary(const Polygon& poly, const Point& p,
                           const Point& q) {
  for (uint32_t e = 0; e < poly.num_edges(); ++e) {
    auto [a, b] = poly.Edge(e);
    if (OnSegment(a, b, p) && OnSegment(a, b, q)) return true;
  }
  return false;
}

}  // namespace

bool PolygonsIntersect(const Polygon& a, const Polygon& b,
                       const EdgeGrid* grid_a, const EdgeGrid* grid_b) {
  if (!a.mbr().Intersects(b.mbr())) return false;
  // Containment cases first: they are the cheap batteries, and for the
  // partition-style fixtures most intersecting pairs resolve here.
  if (AnyVertexCovered(b, a, grid_a)) return true;
  if (AnyVertexCovered(a, b, grid_b)) return true;
  // Boundary-boundary: any shared point of two edges proves intersection
  // (SegmentsIntersect is closed, so touches and overlaps count). Prune
  // edge pairs with the other polygon's MBR before the O(1) test.
  const Rect& bm = b.mbr();
  for (uint32_t ea = 0; ea < a.num_edges(); ++ea) {
    auto [p1, q1] = a.Edge(ea);
    if (!SegmentIntersectsRect(p1, q1, bm)) continue;
    for (uint32_t eb = 0; eb < b.num_edges(); ++eb) {
      auto [p2, q2] = b.Edge(eb);
      if (SegmentsIntersect(p1, q1, p2, q2)) return true;
    }
  }
  return false;
}

bool PolygonCovers(const Polygon& a, const Polygon& b, const EdgeGrid* grid_a,
                   const EdgeGrid* grid_b) {
  if (!a.mbr().Contains(b.mbr())) return false;
  // Every vertex of B must lie in the closed region A.
  for (const Ring& ring : b.rings()) {
    for (const Point& v : ring) {
      if (!Covered(a, grid_a, v)) return false;
    }
  }
  // A proper boundary crossing means B's boundary passes from one side of
  // A's boundary to the other — some neighborhood of the crossing is in B
  // but outside A (or in a hole of A).
  const Rect& bm = b.mbr();
  for (uint32_t ea = 0; ea < a.num_edges(); ++ea) {
    auto [p1, q1] = a.Edge(ea);
    if (!SegmentIntersectsRect(p1, q1, bm)) continue;
    for (uint32_t eb = 0; eb < b.num_edges(); ++eb) {
      auto [p2, q2] = b.Edge(eb);
      if (SegmentsCrossProperly(p1, q1, p2, q2)) return false;
    }
  }
  // Midpoints of B's edges must also be covered: a B edge can leave A
  // through a vertex touch that the proper-crossing test ignores. An edge
  // lying within A's boundary is covered by definition — decided from the
  // endpoints because its computed midpoint rounds off the shared line.
  for (uint32_t eb = 0; eb < b.num_edges(); ++eb) {
    auto [p2, q2] = b.Edge(eb);
    if (Covered(a, grid_a, Midpoint(p2, q2))) continue;
    if (!SegmentWithinBoundary(a, p2, q2)) return false;
  }
  // No piece of A's boundary may be strictly interior to B: that would put
  // points on both sides of A's boundary inside B, and one side is not in
  // A (a hole of A inside B, or A's outer boundary slicing through B). An
  // A edge lying within B's boundary is not *strictly* interior — again
  // decided from the endpoints, not the rounded midpoint.
  for (uint32_t ea = 0; ea < a.num_edges(); ++ea) {
    auto [p1, q1] = a.Edge(ea);
    for (const Point& probe : {p1, Midpoint(p1, q1)}) {
      if (!bm.Contains(probe)) continue;
      if (Covered(b, grid_b, probe) && !OnBoundary(b, probe) &&
          !SegmentWithinBoundary(b, p1, q1)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace actjoin::geom
