#include "geometry/segment.h"

#include <algorithm>

namespace actjoin::geom {

int Orientation(const Point& a, const Point& b, const Point& c) {
  double v = (b - a).Cross(c - a);
  if (v > 0) return 1;
  if (v < 0) return -1;
  return 0;
}

bool OnSegment(const Point& a, const Point& b, const Point& p) {
  if (Orientation(a, b, p) != 0) return false;
  return p.x >= std::min(a.x, b.x) && p.x <= std::max(a.x, b.x) &&
         p.y >= std::min(a.y, b.y) && p.y <= std::max(a.y, b.y);
}

bool SegmentsIntersect(const Point& p1, const Point& q1, const Point& p2,
                       const Point& q2) {
  int o1 = Orientation(p1, q1, p2);
  int o2 = Orientation(p1, q1, q2);
  int o3 = Orientation(p2, q2, p1);
  int o4 = Orientation(p2, q2, q1);

  if (o1 != o2 && o3 != o4) return true;

  // Collinear / endpoint-touching cases.
  if (o1 == 0 && OnSegment(p1, q1, p2)) return true;
  if (o2 == 0 && OnSegment(p1, q1, q2)) return true;
  if (o3 == 0 && OnSegment(p2, q2, p1)) return true;
  if (o4 == 0 && OnSegment(p2, q2, q1)) return true;
  return false;
}

bool SegmentsCrossProperly(const Point& p1, const Point& q1, const Point& p2,
                           const Point& q2) {
  int o1 = Orientation(p1, q1, p2);
  int o2 = Orientation(p1, q1, q2);
  int o3 = Orientation(p2, q2, p1);
  int o4 = Orientation(p2, q2, q1);
  return o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0 && o1 != o2 && o3 != o4;
}

bool SegmentIntersectsRect(const Point& a, const Point& b, const Rect& r) {
  if (r.Contains(a) || r.Contains(b)) return true;
  // Quick reject: segment bbox vs rect.
  Rect sb;
  sb.Expand(a);
  sb.Expand(b);
  if (!r.Intersects(sb)) return false;

  Point c0 = r.lo;
  Point c1{r.hi.x, r.lo.y};
  Point c2 = r.hi;
  Point c3{r.lo.x, r.hi.y};
  return SegmentsIntersect(a, b, c0, c1) || SegmentsIntersect(a, b, c1, c2) ||
         SegmentsIntersect(a, b, c2, c3) || SegmentsIntersect(a, b, c3, c0);
}

}  // namespace actjoin::geom
