// Polygon-polygon predicates: the refinement step of the dual-trie
// crossmatch (src/join2/) and its R-tree baseline.
//
// Both predicates treat polygons as closed even-odd regions, consistent
// with the point predicates in pip.h (ST_Covers semantics: boundary points
// belong to the region). They decompose into the segment and PIP
// primitives this library already has:
//
//   Intersects(A, B): the closed regions share at least one point. True
//   iff some vertex of one polygon is covered by the other, or some edge
//   pair intersects (SegmentsIntersect is closed, so shared edges and
//   single-point touches count as intersecting — matching ST_Intersects).
//
//   Covers(A, B): every point of B lies in the closed region A
//   (ST_Covers). Decided by: every vertex and edge midpoint of B covered
//   by A, no proper edge crossing between the boundaries, and no vertex or
//   edge midpoint of A strictly interior to B (which would put boundary of
//   A — and therefore points just outside A — inside B, e.g. a hole of A
//   swallowed by B).
//
// Exactness contract: both predicates are exact for polygons in general
// position and for the common degeneracies the fixtures exercise (shared
// edges, shared vertices, identical polygons, containment with touching
// boundaries). Edges coincident with the other boundary are decided
// exactly from their endpoints (a computed midpoint rounds off the shared
// line, so the parity test cannot be trusted there). Configurations where
// an edge dips into the other region and back *between* sample points
// without properly crossing any edge — possible only through partial
// collinear-overlap chains — may misreport Covers; the midpoint batteries
// exist to close the common cases. All crossmatch
// implementations (dual-trie, R-tree baseline, brute force) share these
// predicates, so their outputs stay byte-comparable by construction.
//
// The optional EdgeGrid parameters accelerate the vertex/midpoint
// containment batteries from O(edges) to O(edges per bucket) per test;
// passing nullptr falls back to the raw pip.h scan. Results are identical
// either way.

#ifndef ACTJOIN_GEOMETRY_POLY_POLY_H_
#define ACTJOIN_GEOMETRY_POLY_POLY_H_

#include "geometry/edge_grid.h"
#include "geometry/polygon.h"

namespace actjoin::geom {

/// True iff the closed regions of `a` and `b` share at least one point.
bool PolygonsIntersect(const Polygon& a, const Polygon& b,
                       const EdgeGrid* grid_a = nullptr,
                       const EdgeGrid* grid_b = nullptr);

/// True iff `a` covers `b`: every point of the closed region `b` lies in
/// the closed region `a` (boundary-on-boundary allowed, so a polygon
/// covers itself).
bool PolygonCovers(const Polygon& a, const Polygon& b,
                   const EdgeGrid* grid_a = nullptr,
                   const EdgeGrid* grid_b = nullptr);

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_POLY_POLY_H_
