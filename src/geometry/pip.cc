#include "geometry/pip.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"

namespace actjoin::geom {

namespace {

// Meters-per-degree constants duplicated from geo/latlng.h to keep the
// geometry kernel free of the geo dependency.
constexpr double kMetersPerDegreeLat = 110574.0;
constexpr double kMetersPerDegreeLngEquator = 111320.0;
constexpr double kDegToRad = 0.017453292519943295;

// Crossing-number contribution of one ring, with exact boundary detection.
// Returns -1 if p is on the ring boundary, else the parity contribution.
int RingCrossings(const Ring& ring, const Point& p) {
  int crossings = 0;
  size_t n = ring.size();
  for (size_t k = 0; k < n; ++k) {
    const Point& a = ring[k];
    const Point& b = ring[(k + 1) % n];
    if (OnSegment(a, b, p)) return -1;
    // Count edges whose y-span straddles p.y (half-open to avoid double
    // counting vertices) and whose crossing with the horizontal ray to +x
    // lies strictly right of p.
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y);
      if (x_int > p.x) ++crossings;
    }
  }
  return crossings;
}

}  // namespace

bool ContainsPoint(const Polygon& poly, const Point& p) {
  if (!poly.mbr().Contains(p)) return false;
  int total = 0;
  for (const Ring& ring : poly.rings()) {
    int c = RingCrossings(ring, p);
    if (c < 0) return true;  // boundary => covered (ST_Covers)
    total += c;
  }
  return (total & 1) != 0;
}

bool WindingContainsPoint(const Polygon& poly, const Point& p) {
  if (!poly.mbr().Contains(p)) return false;
  int winding = 0;
  for (const Ring& ring : poly.rings()) {
    size_t n = ring.size();
    for (size_t k = 0; k < n; ++k) {
      const Point& a = ring[k];
      const Point& b = ring[(k + 1) % n];
      if (OnSegment(a, b, p)) return true;
      if (a.y <= p.y) {
        if (b.y > p.y && Orientation(a, b, p) > 0) ++winding;
      } else {
        if (b.y <= p.y && Orientation(a, b, p) < 0) --winding;
      }
    }
  }
  return winding != 0;
}

bool OnBoundary(const Polygon& poly, const Point& p) {
  for (const Ring& ring : poly.rings()) {
    size_t n = ring.size();
    for (size_t k = 0; k < n; ++k) {
      if (OnSegment(ring[k], ring[(k + 1) % n], p)) return true;
    }
  }
  return false;
}

RegionRelation Classify(const Polygon& poly, const Rect& rect) {
  if (!poly.mbr().Intersects(rect)) return RegionRelation::kDisjoint;
  uint32_t n = poly.num_edges();
  for (uint32_t e = 0; e < n; ++e) {
    auto [a, b] = poly.Edge(e);
    if (SegmentIntersectsRect(a, b, rect)) return RegionRelation::kIntersects;
  }
  // No edge touches the rectangle, so it lies entirely on one side of the
  // boundary; the center decides which.
  return ContainsPoint(poly, rect.Center()) ? RegionRelation::kContained
                                            : RegionRelation::kDisjoint;
}

double DistanceToPolygonMeters(const Polygon& poly, const Point& p) {
  if (ContainsPoint(poly, p)) return 0;
  double mx = kMetersPerDegreeLngEquator * std::cos(p.y * kDegToRad);
  double my = kMetersPerDegreeLat;
  double best_sq = std::numeric_limits<double>::max();
  uint32_t n = poly.num_edges();
  for (uint32_t e = 0; e < n; ++e) {
    auto [a, b] = poly.Edge(e);
    // Point-to-segment distance in the local metric around p.
    double ax = (a.x - p.x) * mx, ay = (a.y - p.y) * my;
    double bx = (b.x - p.x) * mx, by = (b.y - p.y) * my;
    double dx = bx - ax, dy = by - ay;
    double len_sq = dx * dx + dy * dy;
    double t = 0;
    if (len_sq > 0) {
      t = std::clamp(-(ax * dx + ay * dy) / len_sq, 0.0, 1.0);
    }
    double cx = ax + t * dx, cy = ay + t * dy;
    best_sq = std::min(best_sq, cx * cx + cy * cy);
  }
  return std::sqrt(best_sq);
}

}  // namespace actjoin::geom
