// Axis-aligned rectangles (closed) for MBRs and cell extents.

#ifndef ACTJOIN_GEOMETRY_RECT_H_
#define ACTJOIN_GEOMETRY_RECT_H_

#include <algorithm>
#include <limits>

#include "geometry/point.h"

namespace actjoin::geom {

struct Rect {
  Point lo{std::numeric_limits<double>::max(),
           std::numeric_limits<double>::max()};
  Point hi{std::numeric_limits<double>::lowest(),
           std::numeric_limits<double>::lowest()};

  static Rect Of(double x_lo, double y_lo, double x_hi, double y_hi) {
    return Rect{{x_lo, y_lo}, {x_hi, y_hi}};
  }

  bool IsEmpty() const { return lo.x > hi.x || lo.y > hi.y; }

  bool Contains(const Point& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y;
  }

  bool Contains(const Rect& o) const {
    return o.lo.x >= lo.x && o.hi.x <= hi.x && o.lo.y >= lo.y &&
           o.hi.y <= hi.y;
  }

  bool Intersects(const Rect& o) const {
    return lo.x <= o.hi.x && o.lo.x <= hi.x && lo.y <= o.hi.y &&
           o.lo.y <= hi.y;
  }

  void Expand(const Point& p) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }

  void Expand(const Rect& o) {
    if (o.IsEmpty()) return;
    Expand(o.lo);
    Expand(o.hi);
  }

  Point Center() const { return {(lo.x + hi.x) / 2, (lo.y + hi.y) / 2}; }
  double Width() const { return hi.x - lo.x; }
  double Height() const { return hi.y - lo.y; }
  double Area() const { return IsEmpty() ? 0 : Width() * Height(); }

  /// Area of the union MBR minus own area; used by R-tree insertion.
  double Enlargement(const Rect& o) const {
    Rect u = *this;
    u.Expand(o);
    return u.Area() - Area();
  }

  double Perimeter() const { return IsEmpty() ? 0 : 2 * (Width() + Height()); }
};

}  // namespace actjoin::geom

#endif  // ACTJOIN_GEOMETRY_RECT_H_
