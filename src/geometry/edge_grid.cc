#include "geometry/edge_grid.h"

#include <algorithm>
#include <cmath>

#include "geometry/segment.h"
#include "util/check.h"

namespace actjoin::geom {

EdgeGrid::EdgeGrid(const Polygon& poly, int resolution) : poly_(&poly) {
  bounds_ = poly.mbr();
  // Pad the bounds slightly so boundary vertices fall strictly inside and
  // bucket indexing never sees coordinates on the outer edge.
  double pad_x = std::max(bounds_.Width(), 1e-12) * 1e-9;
  double pad_y = std::max(bounds_.Height(), 1e-12) * 1e-9;
  bounds_.lo.x -= pad_x;
  bounds_.lo.y -= pad_y;
  bounds_.hi.x += pad_x;
  bounds_.hi.y += pad_y;

  if (resolution <= 0) {
    resolution = static_cast<int>(std::ceil(std::sqrt(
        static_cast<double>(std::max<uint32_t>(poly.num_edges(), 1)))));
  }
  nx_ = ny_ = std::clamp(resolution, 1, 256);
  inv_w_ = nx_ / bounds_.Width();
  inv_h_ = ny_ / bounds_.Height();
  buckets_.resize(static_cast<size_t>(nx_) * ny_);

  // Insert each edge into every bucket its bounding box overlaps, then
  // refine with an exact segment/rect test to keep bucket lists tight.
  uint32_t n = poly.num_edges();
  for (uint32_t e = 0; e < n; ++e) {
    auto [a, b] = poly.Edge(e);
    int x0 = BucketX(std::min(a.x, b.x));
    int x1 = BucketX(std::max(a.x, b.x));
    int y0 = BucketY(std::min(a.y, b.y));
    int y1 = BucketY(std::max(a.y, b.y));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        Rect cell = Rect::Of(bounds_.lo.x + x / inv_w_,
                             bounds_.lo.y + y / inv_h_,
                             bounds_.lo.x + (x + 1) / inv_w_,
                             bounds_.lo.y + (y + 1) / inv_h_);
        if (SegmentIntersectsRect(a, b, cell)) {
          buckets_[static_cast<size_t>(y) * nx_ + x].edges.push_back(e);
        }
      }
    }
  }

  // Precompute per-bucket center containment with the exact test. If a
  // center happens to lie on an edge, nudge it until it does not; parity
  // walks require an unambiguous anchor.
  for (int y = 0; y < ny_; ++y) {
    for (int x = 0; x < nx_; ++x) {
      Bucket& bkt = buckets_[static_cast<size_t>(y) * nx_ + x];
      Point c{bounds_.lo.x + (x + 0.5) / inv_w_,
              bounds_.lo.y + (y + 0.5) / inv_h_};
      double step_x = 0.01 / inv_w_;
      double step_y = 0.013 / inv_h_;
      for (int attempt = 0; attempt < 8 && OnBoundary(poly, c); ++attempt) {
        c.x += step_x;
        c.y += step_y;
      }
      bkt.center = c;
      bkt.center_inside = geom::ContainsPoint(poly, c) && !OnBoundary(poly, c);
    }
  }
}

int EdgeGrid::BucketX(double x) const {
  int b = static_cast<int>((x - bounds_.lo.x) * inv_w_);
  return std::clamp(b, 0, nx_ - 1);
}

int EdgeGrid::BucketY(double y) const {
  int b = static_cast<int>((y - bounds_.lo.y) * inv_h_);
  return std::clamp(b, 0, ny_ - 1);
}

const EdgeGrid::Bucket& EdgeGrid::BucketAt(const Point& p) const {
  return buckets_[static_cast<size_t>(BucketY(p.y)) * nx_ + BucketX(p.x)];
}

int EdgeGrid::CountCrossings(const Bucket& b, const Point& a, const Point& p,
                             bool* ok) const {
  *ok = true;
  int crossings = 0;
  for (uint32_t e : b.edges) {
    auto [u, v] = poly_->Edge(e);
    if (SegmentsCrossProperly(a, p, u, v)) {
      ++crossings;
      continue;
    }
    if (SegmentsIntersect(a, p, u, v)) {
      // Touching a vertex or collinear overlap: parity would be ambiguous.
      *ok = false;
      return 0;
    }
  }
  return crossings;
}

bool EdgeGrid::ContainsPoint(const Point& p) const {
  if (!poly_->mbr().Contains(p)) return false;
  const Bucket& b = BucketAt(p);
  if (b.edges.empty()) return b.center_inside;
  // Boundary points are covered under ST_Covers.
  for (uint32_t e : b.edges) {
    auto [u, v] = poly_->Edge(e);
    if (OnSegment(u, v, p)) return true;
  }
  bool ok = false;
  int crossings = CountCrossings(b, b.center, p, &ok);
  if (!ok) return geom::ContainsPoint(*poly_, p);  // rare degenerate case
  return b.center_inside == ((crossings & 1) == 0);
}

RegionRelation EdgeGrid::Classify(const Rect& rect) const {
  if (!poly_->mbr().Intersects(rect)) return RegionRelation::kDisjoint;
  int x0 = BucketX(rect.lo.x);
  int x1 = BucketX(rect.hi.x);
  int y0 = BucketY(rect.lo.y);
  int y1 = BucketY(rect.hi.y);
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      const Bucket& b = buckets_[static_cast<size_t>(y) * nx_ + x];
      for (uint32_t e : b.edges) {
        auto [u, v] = poly_->Edge(e);
        if (SegmentIntersectsRect(u, v, rect)) {
          return RegionRelation::kIntersects;
        }
      }
    }
  }
  // The rect touches no edge: uniformly inside or outside.
  return ContainsPoint(rect.Center()) ? RegionRelation::kContained
                                      : RegionRelation::kDisjoint;
}

size_t EdgeGrid::IncidenceCount() const {
  size_t total = 0;
  for (const Bucket& b : buckets_) total += b.edges.size();
  return total;
}

}  // namespace actjoin::geom
