// Dataset-level crossmatch: the dual-trie spatial join (cross_match.h)
// run against two live datasets of a JoinService catalog.
//
// A crossmatch is the first multi-dataset operation the service runs, so
// its snapshot discipline is spelled out: at execution time it Acquires
// *both* datasets' registries — two epoch-pinned snapshots held for the
// duration of one join. Concurrent swaps, deltas, and drops publish new
// snapshots without disturbing the pinned pair; the result is exactly the
// join of the two epochs reported in the outcome. Validation runs twice —
// once at submit (cheap early reject) and again on the worker (the
// authoritative verdict, so a drop that lands while the request is queued
// produces a typed kDatasetDropped instead of joining a tombstoned
// dataset's final snapshot).
//
// Execution rides the service's machinery end to end: requests run on
// JoinService workers via TryRunAsync (service backpressure applies),
// the descent parallelizes on the service's shared pool (or a transient
// threads_per_join-wide pool), both datasets are charged through the
// per-dataset traffic counters, completions feed the slow-query log, and
// per-join figures land in the service's MetricsRegistry.

#ifndef ACTJOIN_JOIN2_DATASET_CROSS_MATCHER_H_
#define ACTJOIN_JOIN2_DATASET_CROSS_MATCHER_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "join2/cross_match.h"
#include "join2/cross_match_trace.h"
#include "service/join_service.h"
#include "util/metrics.h"

namespace actjoin::join2 {

struct CrossMatchRequest {
  uint16_t dataset_a = 0;
  uint16_t dataset_b = 0;
  CrossMatchMode mode = CrossMatchMode::kIntersects;
  /// Echoed into the slow-query log (the wire request id).
  uint64_t request_id = 0;
  /// Request a per-stage trace: CrossMatchOutcome::trace comes back
  /// enabled with the pin/descend/refine breakdown (queue filled from the
  /// submit hop; admission/decode/stream are the network front-end's).
  bool trace = false;
};

enum class CrossMatchStatus : uint8_t {
  kOk = 0,
  /// A side is unassigned or offline (no snapshot published yet).
  kUnknownDataset,
  /// A side is tombstoned by DROP_DATASET.
  kDatasetDropped,
};

const char* ToString(CrossMatchStatus status);

struct CrossMatchOutcome {
  CrossMatchStatus status = CrossMatchStatus::kOk;
  /// On rejection: the dataset id that failed validation (a-side checked
  /// first). Unspecified when status == kOk.
  uint16_t offending_dataset = 0;
  /// Sorted unique (gid_a, gid_b) pairs; see CrossMatch for the contract.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  CrossMatchStats stats;
  /// Epochs of the two pinned snapshots the join ran against.
  uint64_t epoch_a = 0;
  uint64_t epoch_b = 0;
  double queue_wait_us = 0;
  double service_us = 0;
  /// Stage breakdown; enabled iff the request set trace. The matcher
  /// fills queue/pin/descend/refine (refine absorbs the service-wall
  /// leftover so the worker-side stages tile service_us); the network
  /// front-end fills admission/decode/stream around them.
  CrossMatchTrace trace;
};

class DatasetCrossMatcher {
 public:
  /// Registers crossmatch instruments into the service's metrics registry
  /// (when metrics are enabled). The service must outlive the matcher.
  explicit DatasetCrossMatcher(service::JoinService* service);

  /// Synchronous crossmatch on the calling thread (tests, tools). The
  /// same validation + pinning discipline as the async path, without the
  /// queue hop: queue_wait_us stays 0.
  CrossMatchOutcome Run(const CrossMatchRequest& req);

  /// Event-driven submit for the network front-end: on kAccepted, `done`
  /// runs exactly once on the JoinService worker that executed the
  /// crossmatch. On rejection (queue full / shutdown / unknown a-side)
  /// `done` is dropped unrun. `done` must not re-enter the service.
  service::SubmitStatus TryCrossMatchAsync(
      const CrossMatchRequest& req,
      std::function<void(CrossMatchOutcome)> done);

 private:
  CrossMatchOutcome Execute(const CrossMatchRequest& req,
                            double queue_wait_us);
  void RegisterMetrics();

  service::JoinService* service_;

  // Owned-instrument pointers are stable for the registry's lifetime;
  // null when metrics are disabled.
  util::Counter* requests_total_ = nullptr;
  util::Counter* rejected_total_ = nullptr;
  util::Counter* candidate_pairs_total_ = nullptr;
  util::Counter* refined_pairs_total_ = nullptr;
  util::Counter* result_pairs_total_ = nullptr;
  util::Counter* pruned_span_pairs_total_ = nullptr;
  util::Gauge* last_depth_ = nullptr;
  util::Histogram* service_time_us_ = nullptr;
};

}  // namespace actjoin::join2

#endif  // ACTJOIN_JOIN2_DATASET_CROSS_MATCHER_H_
