#include "join2/dataset_cross_matcher.h"

#include <utility>

#include "util/timer.h"

namespace actjoin::join2 {

const char* ToString(CrossMatchStatus status) {
  switch (status) {
    case CrossMatchStatus::kOk:
      return "ok";
    case CrossMatchStatus::kUnknownDataset:
      return "unknown_dataset";
    case CrossMatchStatus::kDatasetDropped:
      return "dataset_dropped";
  }
  return "?";
}

DatasetCrossMatcher::DatasetCrossMatcher(service::JoinService* service)
    : service_(service) {
  RegisterMetrics();
}

void DatasetCrossMatcher::RegisterMetrics() {
  util::MetricsRegistry* m = service_->metrics();
  if (m == nullptr) return;
  requests_total_ = m->GetCounter("crossmatch_requests_total",
                                  "Dataset crossmatch joins completed");
  rejected_total_ =
      m->GetCounter("crossmatch_rejected_total",
                    "Crossmatch requests rejected at dataset validation");
  candidate_pairs_total_ =
      m->GetCounter("crossmatch_candidate_pairs_total",
                    "Candidate polygon pairs emitted by the dual descent");
  refined_pairs_total_ =
      m->GetCounter("crossmatch_refined_pairs_total",
                    "Polygon-polygon predicate evaluations");
  result_pairs_total_ = m->GetCounter("crossmatch_result_pairs_total",
                                      "Crossmatch result pairs returned");
  pruned_span_pairs_total_ =
      m->GetCounter("crossmatch_pruned_span_pairs_total",
                    "Span pairs pruned as disjoint during the descent");
  last_depth_ = m->GetGauge("crossmatch_last_descent_depth",
                            "Deepest span pair of the last crossmatch");
  service_time_us_ = m->GetHistogram("crossmatch_service_time_us",
                                     "Crossmatch service time per request");
}

namespace {

/// Typed validation of one side. kOk means servable *now*; the verdict
/// can only be invalidated by a later drop, which the execution-time
/// re-check catches.
CrossMatchStatus ValidateSide(const service::ServiceCatalog& catalog,
                              uint16_t id) {
  if (catalog.IsDropped(id)) return CrossMatchStatus::kDatasetDropped;
  if (!catalog.Servable(id)) return CrossMatchStatus::kUnknownDataset;
  return CrossMatchStatus::kOk;
}

}  // namespace

CrossMatchOutcome DatasetCrossMatcher::Execute(const CrossMatchRequest& req,
                                               double queue_wait_us) {
  util::WallTimer timer;
  CrossMatchOutcome out;
  out.queue_wait_us = queue_wait_us;
  const service::ServiceCatalog& catalog = service_->catalog();
  for (uint16_t id : {req.dataset_a, req.dataset_b}) {
    const CrossMatchStatus verdict = ValidateSide(catalog, id);
    if (verdict != CrossMatchStatus::kOk) {
      out.status = verdict;
      out.offending_dataset = id;
      if (rejected_total_ != nullptr) rejected_total_->Inc();
      return out;
    }
  }
  // Pin both snapshots for the duration of the join. Servable() was true
  // above, so both registries exist and have published (epoch != 0); a
  // concurrent swap/delta/drop retires neither pinned snapshot.
  service::ServiceCatalog::Snapshot snap_a =
      catalog.Find(req.dataset_a)->Acquire(&out.epoch_a);
  service::ServiceCatalog::Snapshot snap_b =
      catalog.Find(req.dataset_b)->Acquire(&out.epoch_b);

  CrossMatchOptions opts;
  opts.mode = req.mode;
  opts.threads = service_->options().threads_per_join;
  CrossMatchPhaseTimes phases;
  out.pairs = CrossMatchIndexes(*snap_a, *snap_b, opts,
                                service_->shared_pool(), &out.stats,
                                req.trace ? &phases : nullptr);
  out.service_us = timer.ElapsedSeconds() * 1e6;

  if (req.trace) {
    out.trace.enabled = true;
    out.trace.request_id = req.request_id;
    out.trace.at(CrossMatchStage::kQueue) = out.queue_wait_us;
    out.trace.at(CrossMatchStage::kPin) = phases.pin_us;
    out.trace.at(CrossMatchStage::kDescend) = phases.descend_us;
    // Refine absorbs the service-wall leftover (validation, snapshot
    // acquire, result move) so the worker-side stages tile service_us —
    // the same discipline as JOIN_BATCH's merge stage.
    const double leftover =
        out.service_us - phases.pin_us - phases.descend_us - phases.refine_us;
    out.trace.at(CrossMatchStage::kRefine) =
        phases.refine_us + (leftover > 0 ? leftover : 0);
  }

  // Both sides served one request each; the work unit is the polygon set
  // the join scanned on that side (the crossmatch analogue of a point
  // batch's size).
  service_->ChargeDatasetServed(req.dataset_a, snap_a->num_polygons());
  service_->ChargeDatasetServed(req.dataset_b, snap_b->num_polygons());
  // Slow-query entry: dataset_id names the a-side (the routed side on the
  // wire), num_points carries the result-pair count, epoch the a-side
  // epoch — documented in docs/observability-facing docs.
  service_->RecordSlowQuery({.request_id = req.request_id,
                             .dataset_id = req.dataset_a,
                             .num_points = out.stats.result_pairs,
                             .epoch = out.epoch_a,
                             .queue_wait_us = out.queue_wait_us,
                             .service_us = out.service_us});
  if (requests_total_ != nullptr) {
    requests_total_->Inc();
    candidate_pairs_total_->Inc(out.stats.candidate_pairs);
    refined_pairs_total_->Inc(out.stats.refined_pairs);
    result_pairs_total_->Inc(out.stats.result_pairs);
    pruned_span_pairs_total_->Inc(out.stats.pruned_pairs);
    last_depth_->Set(out.stats.max_depth);
    service_time_us_->Record(out.service_us);
  }
  return out;
}

CrossMatchOutcome DatasetCrossMatcher::Run(const CrossMatchRequest& req) {
  return Execute(req, /*queue_wait_us=*/0);
}

service::SubmitStatus DatasetCrossMatcher::TryCrossMatchAsync(
    const CrossMatchRequest& req,
    std::function<void(CrossMatchOutcome)> done) {
  // Early door on the a-side only, mirroring the join door's contract
  // (kUnknownDataset for a never-assigned id). Everything subtler —
  // offline, dropped, b-side anything — enqueues and comes back as the
  // execution-time typed verdict, which is also what decides races with
  // in-queue drops.
  if (!service_->catalog().Contains(req.dataset_a)) {
    return service::SubmitStatus::kUnknownDataset;
  }
  auto started = std::make_shared<util::WallTimer>();
  return service_->TryRunAsync(
      [this, req, started, done = std::move(done)]() {
        const double wait_us = started->ElapsedSeconds() * 1e6;
        done(Execute(req, wait_us));
      });
}

}  // namespace actjoin::join2
