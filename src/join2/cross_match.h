// Dual-trie spatial join: polygon×polygon crossmatch over two cell-trie
// indexes sharing the Hilbert leaf-cell id space.
//
// The point join probes one trie with one leaf cell at a time. The
// crossmatch instead descends *both* indexes' covering structures in
// tandem — the GiST spatial-join idea (a pending page-pair worklist that
// prunes disjoint subtrees and emits result pairs at the leaves) ported to
// the ACT setting, where an index's probe surface flattens into a sorted,
// pairwise-disjoint list of leaf-cell-id intervals, each carrying the
// polygon references of one covering cell:
//
//   1. IntervalView::FromIndex flattens a ShardedIndex: every shard's
//      covering cells are clipped to that shard's Hilbert interval (the
//      per-shard coverings cover each polygon fully, so clipping restores
//      global disjointness) and local polygon ids map to global ids. The
//      flattened list is then *coarsened* — adjacent intervals merge into
//      aligned Hilbert buckets under a per-polygon budget — because the
//      point-join covering is far deeper than a pairwise filter needs and
//      the descent pays per interval (see kDefaultCellsPerPolygon).
//   2. The descent works a pending worklist of interval-span pairs: a
//      span-pair whose bounding id ranges are disjoint is pruned wholesale
//      (the dual-tree win: one comparison discards |A|×|B| potential
//      pairs); a small-enough pair is merge-scanned, emitting the
//      cross-product of references for every overlapping interval pair as
//      *candidate* polygon pairs; anything else splits its larger span at
//      the midpoint.
//   3. Candidates deduplicate (one polygon pair can meet in many cells)
//      and refine through the polygon×polygon predicates in
//      geometry/poly_poly.h — accelerated by the per-polygon edge grids
//      the indexes already own — into the final verdicts. A candidate
//      whose two references are both interior cells skips refinement in
//      intersects mode: two overlapping interior cells already witness a
//      shared point.
//
// Candidate completeness: a point q in polygons a (dataset A) and b (B)
// has leaf(q) routed to a shard indexing a whose covering covers a — so
// some clipped interval referencing a contains leaf(q), and likewise for
// b. Those two intervals overlap at leaf(q), so (a, b) is emitted. The
// same holds for containment (A ⊇ B implies a shared point).
//
// Determinism contract (same as ShardedIndex::Join/JoinPairs): results
// and stats are byte-identical at every thread width. Phases: a serial
// breadth-first expansion fixes the top-level task list; tasks descend
// into per-task slots drained by a util::WorkStealingPool; slots merge in
// fixed task order; the deduplicated candidate list refines in fixed
// chunks whose outputs concatenate in chunk order. Output pairs are
// sorted ascending by (gid_a, gid_b) and unique — the same sorted-pairs
// ordering contract as act::ExecuteJoinPairs — so any two implementations
// of the same predicate are byte-comparable.

#ifndef ACTJOIN_JOIN2_CROSS_MATCH_H_
#define ACTJOIN_JOIN2_CROSS_MATCH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "geometry/edge_grid.h"
#include "geometry/polygon.h"
#include "service/sharded_index.h"
#include "util/work_stealing_pool.h"

namespace actjoin::join2 {

enum class CrossMatchMode : uint8_t {
  kIntersects = 0,  // closed regions share at least one point
  kContains = 1,    // A covers B (every point of B lies in closed A)
};

const char* ToString(CrossMatchMode mode);

struct CrossMatchOptions {
  CrossMatchMode mode = CrossMatchMode::kIntersects;
  /// Library-wide thread convention: 0 => util::DefaultThreadCount().
  /// Ignored when a pool with workers is passed (its width applies).
  int threads = 1;
};

/// Per-join instrumentation. Every counter is deterministic at every
/// thread width: the descent explores a fixed span-pair tree (only *who*
/// processes a subtree varies with width), so prune counts and depths are
/// tree invariants. Only `seconds` is wall time.
struct CrossMatchStats {
  /// Unique candidate polygon pairs emitted by the descent (post-dedup).
  uint64_t candidate_pairs = 0;
  /// Polygon-polygon predicate evaluations (refinement tests run).
  uint64_t refined_pairs = 0;
  /// Span-pairs discarded because their bounding id ranges were disjoint.
  uint64_t pruned_pairs = 0;
  /// Final output pairs.
  uint64_t result_pairs = 0;
  /// Deepest worklist item processed (top-level span-pair = depth 0).
  uint32_t max_depth = 0;
  double seconds = 0;

  friend bool operator==(const CrossMatchStats&,
                         const CrossMatchStats&) = default;
};

/// A ShardedIndex's probe surface flattened for the synchronized descent:
/// sorted, pairwise-disjoint leaf-cell-id intervals with the global-id
/// polygon references of their covering cell, plus per-global-id access
/// to the polygon geometry and its edge-grid accelerator.
///
/// Holds pointers into the source index: the caller must keep the index
/// (typically an epoch-pinned registry snapshot) alive for the view's
/// lifetime.
class IntervalView {
 public:
  struct Ref {
    uint32_t gid = 0;       // global polygon id
    bool interior = false;  // covering cell fully inside the polygon
  };
  struct Interval {
    uint64_t lo = 0;  // inclusive leaf-cell id range
    uint64_t hi = 0;
    uint32_t refs_begin = 0;  // [refs_begin, refs_end) into refs
    uint32_t refs_end = 0;
  };

  /// Default per-polygon interval budget for FromIndex's coarsening pass.
  /// ACT coverings are built for *point*-join precision — hundreds of
  /// cells per polygon — but the crossmatch descent pays per interval on
  /// both sides while its baseline (an R-tree MBR join) pays per polygon.
  /// The crossmatch only needs the covering as a candidate filter, so the
  /// view lifts cells to aligned ancestor buckets until roughly this many
  /// intervals per polygon remain. Completeness is preserved (a bucket
  /// contains its cells, so every cell-level overlap is still an
  /// interval-level overlap); interior flags survive exactly where a
  /// polygon's interior cells tile the merged bucket.
  static constexpr uint32_t kDefaultCellsPerPolygon = 16;

  /// `cells_per_polygon` bounds the coarsened view at roughly that many
  /// intervals per live polygon; 0 keeps the covering at full resolution.
  static IntervalView FromIndex(
      const service::ShardedIndex& index,
      uint32_t cells_per_polygon = kDefaultCellsPerPolygon);

  size_t size() const { return intervals_.size(); }
  const Interval& interval(size_t i) const { return intervals_[i]; }
  std::span<const Ref> refs(const Interval& iv) const {
    return {refs_.data() + iv.refs_begin,
            static_cast<size_t>(iv.refs_end - iv.refs_begin)};
  }

  /// Global polygon-id-space size of the source index.
  size_t num_polygons() const { return locs_.size(); }
  /// Null for an id that appears in no interval (removed polygons).
  const geom::Polygon* polygon(uint32_t gid) const;
  const geom::EdgeGrid* edge_grid(uint32_t gid) const;

 private:
  /// Merges runs of intervals that share an aligned Hilbert bucket until
  /// the view holds at most ~cells_per_polygon intervals per live polygon.
  /// See kDefaultCellsPerPolygon for the rationale and exactness argument.
  void Coarsen(uint32_t cells_per_polygon);

  /// Where gid's geometry lives in the source index (any shard indexing it).
  struct Loc {
    int32_t shard = -1;
    uint32_t local = 0;
  };

  const service::ShardedIndex* index_ = nullptr;
  std::vector<Interval> intervals_;
  std::vector<Ref> refs_;
  std::vector<Loc> locs_;  // indexed by global polygon id
};

/// Wall time per crossmatch phase, microseconds — the request-tracing
/// seam, mirroring ShardedIndex::JoinPhaseTimes. pin covers flattening +
/// coarsening both probe surfaces (CrossMatchIndexes only; CrossMatch over
/// prebuilt views reports 0), descend covers the synchronized descent
/// through candidate dedup, refine covers predicate evaluation and output
/// assembly.
struct CrossMatchPhaseTimes {
  double pin_us = 0;
  double descend_us = 0;
  double refine_us = 0;
};

/// Runs the synchronized descent of `a` against `b` and refines the
/// candidates. Returns sorted unique (gid_a, gid_b) pairs: in kIntersects
/// mode the pairs whose closed regions share a point; in kContains mode
/// the pairs where a's polygon covers b's. Deterministic at every width;
/// see the header comment. A non-null `pool` with workers supplies the
/// parallelism (the caller helps); otherwise opts.threads drives a
/// transient pool. A non-null `phases` receives the per-phase wall
/// breakdown (two extra WallTimer reads — free).
std::vector<std::pair<uint32_t, uint32_t>> CrossMatch(
    const IntervalView& a, const IntervalView& b,
    const CrossMatchOptions& opts, util::WorkStealingPool* pool = nullptr,
    CrossMatchStats* stats = nullptr, CrossMatchPhaseTimes* phases = nullptr);

/// Convenience: builds both views, then runs CrossMatch. The view builds
/// are the pin phase of `phases`.
std::vector<std::pair<uint32_t, uint32_t>> CrossMatchIndexes(
    const service::ShardedIndex& a, const service::ShardedIndex& b,
    const CrossMatchOptions& opts, util::WorkStealingPool* pool = nullptr,
    CrossMatchStats* stats = nullptr, CrossMatchPhaseTimes* phases = nullptr);

/// Index-free oracle: tests every polygon pair (MBR-pruned) with the same
/// predicates. `skip_a` / `skip_b` name global ids to exclude (removed
/// polygons). Output follows the same sorted-unique-pairs contract, so it
/// is byte-comparable with CrossMatch.
std::vector<std::pair<uint32_t, uint32_t>> BruteForceCrossMatch(
    const std::vector<geom::Polygon>& a, const std::vector<geom::Polygon>& b,
    CrossMatchMode mode, std::span<const uint32_t> skip_a = {},
    std::span<const uint32_t> skip_b = {});

}  // namespace actjoin::join2

#endif  // ACTJOIN_JOIN2_CROSS_MATCH_H_
