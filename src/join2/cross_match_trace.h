// Per-request tracing for JOIN_DATASETS crossmatch requests — the
// polygon×polygon analogue of service/trace.h. The seven stages tile the
// request's server-side lifetime: admission check, payload decode, queue
// wait, snapshot pin + probe-surface build, synchronized descent (through
// candidate dedup), predicate refinement, and the response stream's
// encode+delivery. The same acceptance contract as JOIN_BATCH traces
// applies: the sum lands within 10% of a loopback client's wall time.
//
// Lives in its own header (not dataset_cross_matcher.h) so the wire codec
// can carry the trace without pulling the whole matcher in.

#ifndef ACTJOIN_JOIN2_CROSS_MATCH_TRACE_H_
#define ACTJOIN_JOIN2_CROSS_MATCH_TRACE_H_

#include <array>
#include <cstdint>

namespace actjoin::join2 {

enum class CrossMatchStage : uint8_t {
  kAdmission = 0,  // admission-control decision, both sides charged
  kDecode = 1,     // wire payload -> CrossMatchRequest
  kQueue = 2,      // service-queue wait until a worker picks it up
  kPin = 3,        // snapshot pin + IntervalView flatten/coarsen, both sides
  kDescend = 4,    // synchronized dual-trie descent + candidate dedup
  kRefine = 5,     // polygon-polygon predicate evaluation + output assembly
  kStream = 6,     // PAIR_RESULT chunk encode + delivery to the event loop
};

inline constexpr int kNumCrossMatchStages = 7;

inline const char* CrossMatchStageName(CrossMatchStage s) {
  switch (s) {
    case CrossMatchStage::kAdmission: return "admission";
    case CrossMatchStage::kDecode: return "decode";
    case CrossMatchStage::kQueue: return "queue";
    case CrossMatchStage::kPin: return "pin";
    case CrossMatchStage::kDescend: return "descend";
    case CrossMatchStage::kRefine: return "refine";
    case CrossMatchStage::kStream: return "stream";
  }
  return "?";
}

/// Stage breakdown for one crossmatch. Plain data: copied into
/// CrossMatchOutcome and encoded in the final PAIR_RESULT chunk when
/// enabled.
struct CrossMatchTrace {
  uint64_t request_id = 0;
  bool enabled = false;
  /// Wall time per stage, microseconds, indexed by CrossMatchStage.
  std::array<double, kNumCrossMatchStages> stage_us{};

  double& at(CrossMatchStage s) { return stage_us[static_cast<int>(s)]; }
  double at(CrossMatchStage s) const { return stage_us[static_cast<int>(s)]; }

  double TotalMicros() const {
    double total = 0;
    for (double v : stage_us) total += v;
    return total;
  }

  friend bool operator==(const CrossMatchTrace&,
                         const CrossMatchTrace&) = default;
};

}  // namespace actjoin::join2

#endif  // ACTJOIN_JOIN2_CROSS_MATCH_TRACE_H_
