#include "join2/cross_match.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "act/polygon_ref.h"
#include "geometry/poly_poly.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::join2 {

const char* ToString(CrossMatchMode mode) {
  switch (mode) {
    case CrossMatchMode::kIntersects:
      return "intersects";
    case CrossMatchMode::kContains:
      return "contains";
  }
  return "?";
}

IntervalView IntervalView::FromIndex(const service::ShardedIndex& index,
                                     uint32_t cells_per_polygon) {
  IntervalView v;
  v.index_ = &index;
  v.locs_.assign(index.num_polygons(), Loc{});
  const uint64_t ns = static_cast<uint64_t>(index.num_shards());
  for (int s = 0; s < index.num_shards(); ++s) {
    const act::PolygonIndex* shard = index.shard_index(s);
    if (shard == nullptr) continue;
    const std::vector<uint32_t>& gids = index.shard_polygon_ids(s);
    for (uint32_t local = 0; local < gids.size(); ++local) {
      Loc& loc = v.locs_[gids[local]];
      if (loc.shard < 0) loc = {s, local};
    }
    // Shard s owns the leaf-id interval [floor(s*2^64/N), floor((s+1)*
    // 2^64/N)) — the inverse of ShardedIndex::ShardOf. A polygon near a
    // shard boundary is indexed by every shard its covering touches, so
    // its cells appear (clipped) in each; clipping to the owning interval
    // keeps exactly one copy of every leaf id and restores the global
    // disjointness the descent's merge-scan relies on.
    const uint64_t shard_lo = static_cast<uint64_t>(
        (static_cast<unsigned __int128>(s) << 64) / ns);
    const uint64_t shard_hi =  // inclusive
        s + 1 == static_cast<int>(ns)
            ? UINT64_MAX
            : static_cast<uint64_t>(
                  (static_cast<unsigned __int128>(s + 1) << 64) / ns) -
                  1;
    const act::SuperCovering& sc = shard->covering();
    for (size_t i = 0; i < sc.size(); ++i) {
      const geo::CellId& cell = sc.cell(i);
      const uint64_t lo = std::max(cell.range_min().id(), shard_lo);
      const uint64_t hi = std::min(cell.range_max().id(), shard_hi);
      if (lo > hi) continue;  // cell sticks out past the shard entirely
      const act::RefList& refs = sc.refs(i);
      if (refs.empty()) continue;
      const uint32_t rb = static_cast<uint32_t>(v.refs_.size());
      for (const act::PolygonRef& r : refs) {
        v.refs_.push_back({gids[r.polygon_id], r.interior});
      }
      v.intervals_.push_back(
          {lo, hi, rb, static_cast<uint32_t>(v.refs_.size())});
    }
  }
  // Shards emit in id order and per-shard coverings are sorted, but a
  // boundary-straddling cell appears (clipped) in several shards out of
  // order relative to its neighbors — one sort canonicalizes. Intervals
  // stay pairwise disjoint by the clipping argument above.
  std::sort(v.intervals_.begin(), v.intervals_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  v.Coarsen(cells_per_polygon);
  return v;
}

void IntervalView::Coarsen(uint32_t cells_per_polygon) {
  if (cells_per_polygon == 0) return;
  size_t live = 0;
  for (const Loc& loc : locs_) live += loc.shard >= 0 ? 1 : 0;
  // The floor keeps tiny datasets from collapsing into one bucket whose
  // ref cross-products defeat the descent entirely.
  const uint64_t target = std::max<uint64_t>(live * cells_per_polygon, 64);
  if (intervals_.size() <= target) return;

  // An interval fits a bucket iff lo and hi share the top (64 - shift)
  // bits. Source intervals are (shard-clipped) aligned quadtree cells, so
  // a cell at depth >= the bucket depth always fits; a shallower cell
  // spans whole buckets and passes through unmerged — it is already
  // coarse, and splitting it would *grow* the list. Pass-throughs keep
  // disjointness: intervals are sorted and disjoint, members of one
  // bucket are consecutive, and a merged span never reaches past its last
  // member's hi, so output ranges stay sorted and disjoint.
  auto count_at = [&](int shift) {
    size_t count = 0;
    uint64_t cur_bucket = 0;
    bool in_run = false;
    for (const Interval& iv : intervals_) {
      if ((iv.lo >> shift) != (iv.hi >> shift)) {  // spans buckets
        ++count;
        in_run = false;
        continue;
      }
      const uint64_t bucket = iv.lo >> shift;
      if (!in_run || bucket != cur_bucket) {
        ++count;
        cur_bucket = bucket;
        in_run = true;
      }
    }
    return count;
  };
  // Finest bucket depth (smallest shift) that meets the budget; two bits
  // per quadtree level. 62 caps the scan (shifting u64 by 64 is UB).
  int shift = 2;
  while (shift < 62 && count_at(shift) > target) shift += 2;

  std::vector<Interval> out_intervals;
  std::vector<Ref> out_refs;
  out_refs.reserve(refs_.size());
  // One member of a merged bucket, flattened to (gid, interior, leaves).
  // Lengths count *leaf cells*: ids are S2-style (leaves are the odd ids,
  // a cell's inclusive range is [id - (lsb-1), id + (lsb-1)]), so two
  // spatially adjacent cells' ranges are separated by one even id and
  // range arithmetic in raw ids would declare every tiling "gapped".
  struct Piece {
    uint32_t gid = 0;
    bool interior = false;
    uint64_t leaves = 0;
  };
  auto leaves_in = [](uint64_t lo, uint64_t hi) {
    return ((hi - lo) >> 1) + 1;
  };
  std::vector<Piece> pieces;
  auto flush = [&](size_t begin, size_t end) {
    if (begin == end) return;
    if (end - begin == 1) {  // single member: keep verbatim
      const Interval& iv = intervals_[begin];
      const uint32_t rb = static_cast<uint32_t>(out_refs.size());
      for (uint32_t r = iv.refs_begin; r < iv.refs_end; ++r) {
        out_refs.push_back(refs_[r]);
      }
      out_intervals.push_back(
          {iv.lo, iv.hi, rb, static_cast<uint32_t>(out_refs.size())});
      return;
    }
    const uint64_t lo = intervals_[begin].lo;
    const uint64_t hi = intervals_[end - 1].hi;
    const uint64_t span_leaves = leaves_in(lo, hi);
    pieces.clear();
    for (size_t i = begin; i < end; ++i) {
      const Interval& iv = intervals_[i];
      const uint64_t leaves = leaves_in(iv.lo, iv.hi);
      for (uint32_t r = iv.refs_begin; r < iv.refs_end; ++r) {
        pieces.push_back({refs_[r].gid, refs_[r].interior, leaves});
      }
    }
    std::sort(pieces.begin(), pieces.end(),
              [](const Piece& a, const Piece& b) { return a.gid < b.gid; });
    const uint32_t rb = static_cast<uint32_t>(out_refs.size());
    for (size_t i = 0; i < pieces.size();) {
      const uint32_t gid = pieces[i].gid;
      // The merged ref may claim "interior over [lo, hi]" only if this
      // polygon's interior pieces tile the merged span exactly: pieces
      // are globally disjoint, so their leaf counts summing to the span's
      // proves every leaf in it lies inside the polygon. Anything weaker
      // must drop the flag — a false interior2 would let a candidate skip
      // refinement on an unproven overlap.
      bool interior = true;
      uint64_t covered = 0;
      for (; i < pieces.size() && pieces[i].gid == gid; ++i) {
        interior = interior && pieces[i].interior;
        covered += pieces[i].leaves;
      }
      out_refs.push_back({gid, interior && covered == span_leaves});
    }
    out_intervals.push_back(
        {lo, hi, rb, static_cast<uint32_t>(out_refs.size())});
  };

  size_t run_begin = 0;
  uint64_t cur_bucket = 0;
  bool in_run = false;
  for (size_t i = 0; i < intervals_.size(); ++i) {
    const Interval& iv = intervals_[i];
    if ((iv.lo >> shift) != (iv.hi >> shift)) {
      flush(run_begin, i);
      flush(i, i + 1);  // pass the bucket-spanning interval through
      run_begin = i + 1;
      in_run = false;
      continue;
    }
    const uint64_t bucket = iv.lo >> shift;
    if (in_run && bucket == cur_bucket) continue;
    flush(run_begin, i);
    run_begin = i;
    cur_bucket = bucket;
    in_run = true;
  }
  flush(run_begin, intervals_.size());
  intervals_ = std::move(out_intervals);
  refs_ = std::move(out_refs);
}

const geom::Polygon* IntervalView::polygon(uint32_t gid) const {
  const Loc& loc = locs_[gid];
  if (loc.shard < 0) return nullptr;
  return &index_->shard_index(loc.shard)->polygons()[loc.local];
}

const geom::EdgeGrid* IntervalView::edge_grid(uint32_t gid) const {
  const Loc& loc = locs_[gid];
  if (loc.shard < 0) return nullptr;
  return &index_->shard_index(loc.shard)->classifier().edge_grid(loc.local);
}

namespace {

// A contiguous run of one view's intervals plus its bounding leaf-id
// range. Intervals are sorted and disjoint, so the bounds are just the
// endpoints of the first and last interval.
struct Span {
  uint32_t begin = 0;  // [begin, end) into IntervalView::intervals_
  uint32_t end = 0;
  uint64_t lo = 0;  // = interval(begin).lo
  uint64_t hi = 0;  // = interval(end - 1).hi
};

Span MakeSpan(const IntervalView& v, uint32_t begin, uint32_t end) {
  return {begin, end, v.interval(begin).lo, v.interval(end - 1).hi};
}

struct SpanPair {
  Span a, b;
  uint32_t depth = 0;
};

// Below this many intervals on both sides a span-pair merge-scans instead
// of splitting further. Small enough that the scan stays cache-resident,
// large enough that the worklist doesn't degenerate into per-interval
// items.
constexpr uint32_t kLeafSpan = 16;

// A candidate pair: interior2 records whether *both* meeting cells were
// interior cells — in intersects mode such a pair is a proven hit (the
// overlapping cell region lies inside both polygons) and skips
// refinement.
struct Candidate {
  uint32_t a = 0;
  uint32_t b = 0;
  bool interior2 = false;
};

bool CandidateOrder(const Candidate& x, const Candidate& y) {
  // interior2 = true sorts first within a pair so unique() keeps the
  // strongest fact, mirroring act::MergeRef.
  if (x.a != y.a) return x.a < y.a;
  if (x.b != y.b) return x.b < y.b;
  return x.interior2 && !y.interior2;
}

bool CandidateSamePair(const Candidate& x, const Candidate& y) {
  return x.a == y.a && x.b == y.b;
}

// Per-task descent output.
struct TaskResult {
  std::vector<Candidate> candidates;
  uint64_t pruned_pairs = 0;
  uint32_t max_depth = 0;
};

// Merge-scans a leaf span-pair: walks both interval runs in id order and
// emits the ref cross-product of every overlapping interval pair.
// Intervals within one view are disjoint, so two cursors suffice.
void ScanLeaf(const IntervalView& va, const IntervalView& vb, const Span& sa,
              const Span& sb, std::vector<Candidate>* out) {
  uint32_t ia = sa.begin, ib = sb.begin;
  while (ia < sa.end && ib < sb.end) {
    const IntervalView::Interval& a = va.interval(ia);
    const IntervalView::Interval& b = vb.interval(ib);
    if (a.hi < b.lo) {
      ++ia;
    } else if (b.hi < a.lo) {
      ++ib;
    } else {
      for (const IntervalView::Ref& ra : va.refs(a)) {
        for (const IntervalView::Ref& rb : vb.refs(b)) {
          out->push_back({ra.gid, rb.gid, ra.interior && rb.interior});
        }
      }
      // Advance whichever interval ends first; on a tie both are done.
      if (a.hi < b.hi) {
        ++ia;
      } else if (b.hi < a.hi) {
        ++ib;
      } else {
        ++ia;
        ++ib;
      }
    }
  }
}

// Processes one worklist item: prune, scan, or split. Children go back on
// `work`; processing order does not affect the result (candidates are
// canonicalized later), only the depth accounting, which tracks the
// maximum and is order-independent too.
void Step(const IntervalView& va, const IntervalView& vb, const SpanPair& p,
          std::deque<SpanPair>* work, TaskResult* r) {
  r->max_depth = std::max(r->max_depth, p.depth);
  if (p.a.hi < p.b.lo || p.b.hi < p.a.lo) {
    ++r->pruned_pairs;
    return;
  }
  const uint32_t na = p.a.end - p.a.begin;
  const uint32_t nb = p.b.end - p.b.begin;
  if (na <= kLeafSpan && nb <= kLeafSpan) {
    ScanLeaf(va, vb, p.a, p.b, &r->candidates);
    return;
  }
  // Split the larger side at its midpoint; the two children inherit the
  // other side unchanged. Bounds tighten to the actual child endpoints,
  // which is what gives the disjointness prune its power.
  if (na >= nb) {
    const uint32_t mid = p.a.begin + na / 2;
    work->push_back({MakeSpan(va, p.a.begin, mid), p.b, p.depth + 1});
    work->push_back({MakeSpan(va, mid, p.a.end), p.b, p.depth + 1});
  } else {
    const uint32_t mid = p.b.begin + nb / 2;
    work->push_back({p.a, MakeSpan(vb, p.b.begin, mid), p.depth + 1});
    work->push_back({p.a, MakeSpan(vb, mid, p.b.end), p.depth + 1});
  }
}

// Runs a full descent from `root`, returning every candidate beneath it.
TaskResult Descend(const IntervalView& va, const IntervalView& vb,
                   const SpanPair& root) {
  TaskResult r;
  std::deque<SpanPair> work;
  work.push_back(root);
  while (!work.empty()) {
    SpanPair p = work.front();
    work.pop_front();
    Step(va, vb, p, &work, &r);
  }
  // Canonicalize per task so slot merges stay cheap and deterministic.
  std::sort(r.candidates.begin(), r.candidates.end(), CandidateOrder);
  r.candidates.erase(std::unique(r.candidates.begin(), r.candidates.end(),
                                 CandidateSamePair),
                     r.candidates.end());
  return r;
}

}  // namespace

std::vector<std::pair<uint32_t, uint32_t>> CrossMatch(
    const IntervalView& a, const IntervalView& b,
    const CrossMatchOptions& opts, util::WorkStealingPool* pool,
    CrossMatchStats* stats, CrossMatchPhaseTimes* phases) {
  util::WallTimer timer;
  util::WallTimer phase_timer;
  CrossMatchStats local;
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (a.size() != 0 && b.size() != 0) {
    const int width = util::EffectiveWidth(pool, opts.threads);

    // Phase 1 (serial): breadth-first expansion of the root span-pair
    // until there are enough top-level tasks to keep `width` threads fed.
    // The expansion is serial and depth-ordered, so the task list — and
    // with it every downstream merge — is a pure function of the inputs.
    const size_t target_tasks = static_cast<size_t>(width) * 8;
    std::deque<SpanPair> tasks;
    tasks.push_back({MakeSpan(a, 0, static_cast<uint32_t>(a.size())),
                     MakeSpan(b, 0, static_cast<uint32_t>(b.size())), 0});
    TaskResult expansion;  // prunes + depth seen during expansion
    while (tasks.size() < target_tasks) {
      const SpanPair p = tasks.front();
      const uint32_t na = p.a.end - p.a.begin;
      const uint32_t nb = p.b.end - p.b.begin;
      if (na <= kLeafSpan && nb <= kLeafSpan) break;  // nothing splittable
      tasks.pop_front();
      const size_t before = tasks.size();
      Step(a, b, p, &tasks, &expansion);
      if (tasks.size() == before && tasks.empty()) break;  // all pruned
    }

    // Phase 2 (parallel): each task descends into its own slot.
    std::vector<TaskResult> slots(tasks.size());
    auto run_task = [&](uint64_t t) {
      slots[t] = Descend(a, b, tasks[t]);
    };
    if (pool != nullptr && pool->num_workers() > 0) {
      pool->Run(tasks.size(), run_task);
    } else if (width <= 1 || tasks.size() <= 1) {
      for (uint64_t t = 0; t < tasks.size(); ++t) run_task(t);
    } else {
      util::WorkStealingPool transient(width - 1);
      transient.Run(tasks.size(), run_task);
    }

    // Phase 3 (serial): merge slots in task order, canonicalize globally.
    local.pruned_pairs = expansion.pruned_pairs;
    local.max_depth = expansion.max_depth;
    size_t total = 0;
    for (const TaskResult& r : slots) total += r.candidates.size();
    std::vector<Candidate> candidates;
    candidates.reserve(total);
    for (const TaskResult& r : slots) {
      local.pruned_pairs += r.pruned_pairs;
      local.max_depth = std::max(local.max_depth, r.max_depth);
      candidates.insert(candidates.end(), r.candidates.begin(),
                        r.candidates.end());
    }
    std::sort(candidates.begin(), candidates.end(), CandidateOrder);
    candidates.erase(std::unique(candidates.begin(), candidates.end(),
                                 CandidateSamePair),
                     candidates.end());
    local.candidate_pairs = candidates.size();
    // Descend = expansion + parallel descent + dedup (phases 1-3): the
    // filter half of the join; refinement below is the predicate half.
    if (phases != nullptr) {
      phases->descend_us = phase_timer.ElapsedSeconds() * 1e6;
      phase_timer.Restart();
    }

    // Phase 4 (parallel): refine candidates in fixed chunks; chunk outputs
    // concatenate in chunk order, and the input is sorted, so the output
    // is sorted unique pairs without a final sort.
    const bool contains = opts.mode == CrossMatchMode::kContains;
    std::vector<uint8_t> keep(candidates.size(), 0);
    std::atomic<uint64_t> refined{0};
    auto refine = [&](uint64_t i) {
      const Candidate& c = candidates[i];
      if (!contains && c.interior2) {
        keep[i] = 1;  // two overlapping interior cells witness a hit
        return;
      }
      const geom::Polygon* pa = a.polygon(c.a);
      const geom::Polygon* pb = b.polygon(c.b);
      ACT_CHECK(pa != nullptr && pb != nullptr);
      refined.fetch_add(1, std::memory_order_relaxed);
      const bool hit = contains
                           ? geom::PolygonCovers(*pa, *pb, a.edge_grid(c.a),
                                                 b.edge_grid(c.b))
                           : geom::PolygonsIntersect(*pa, *pb,
                                                     a.edge_grid(c.a),
                                                     b.edge_grid(c.b));
      keep[i] = hit ? 1 : 0;
    };
    constexpr uint64_t kRefineChunk = 64;
    const uint64_t n = candidates.size();
    const uint64_t num_chunks = (n + kRefineChunk - 1) / kRefineChunk;
    auto run_chunk = [&](uint64_t chunk) {
      const uint64_t lo = chunk * kRefineChunk;
      const uint64_t hi = std::min(n, lo + kRefineChunk);
      for (uint64_t i = lo; i < hi; ++i) refine(i);
    };
    if (pool != nullptr && pool->num_workers() > 0) {
      pool->Run(num_chunks, run_chunk);
    } else if (width <= 1 || num_chunks <= 1) {
      for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    } else {
      util::WorkStealingPool transient(width - 1);
      transient.Run(num_chunks, run_chunk);
    }
    local.refined_pairs = refined.load(std::memory_order_relaxed);
    for (uint64_t i = 0; i < n; ++i) {
      if (keep[i]) out.emplace_back(candidates[i].a, candidates[i].b);
    }
  }
  local.result_pairs = out.size();
  local.seconds = timer.ElapsedSeconds();
  if (phases != nullptr) phases->refine_us = phase_timer.ElapsedSeconds() * 1e6;
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<std::pair<uint32_t, uint32_t>> CrossMatchIndexes(
    const service::ShardedIndex& a, const service::ShardedIndex& b,
    const CrossMatchOptions& opts, util::WorkStealingPool* pool,
    CrossMatchStats* stats, CrossMatchPhaseTimes* phases) {
  util::WallTimer pin_timer;
  IntervalView view_a = IntervalView::FromIndex(a);
  IntervalView view_b = IntervalView::FromIndex(b);
  if (phases != nullptr) phases->pin_us = pin_timer.ElapsedSeconds() * 1e6;
  return CrossMatch(view_a, view_b, opts, pool, stats, phases);
}

std::vector<std::pair<uint32_t, uint32_t>> BruteForceCrossMatch(
    const std::vector<geom::Polygon>& a, const std::vector<geom::Polygon>& b,
    CrossMatchMode mode, std::span<const uint32_t> skip_a,
    std::span<const uint32_t> skip_b) {
  std::vector<uint8_t> dead_a(a.size(), 0), dead_b(b.size(), 0);
  for (uint32_t id : skip_a) dead_a[id] = 1;
  for (uint32_t id : skip_b) dead_b[id] = 1;
  std::vector<std::pair<uint32_t, uint32_t>> out;
  const bool contains = mode == CrossMatchMode::kContains;
  for (uint32_t i = 0; i < a.size(); ++i) {
    if (dead_a[i]) continue;
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (dead_b[j]) continue;
      const bool hit = contains ? geom::PolygonCovers(a[i], b[j])
                                : geom::PolygonsIntersect(a[i], b[j]);
      if (hit) out.emplace_back(i, j);
    }
  }
  return out;  // (i, j) loop order is already sorted unique
}

}  // namespace actjoin::join2
