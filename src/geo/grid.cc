#include "geo/grid.h"

#include <algorithm>
#include <cmath>

namespace actjoin::geo {

namespace {

// Faces: 2 latitude halves (south 0-2, north 3-5) x 3 longitude slabs of
// 120 degrees each; every face covers 120 x 90 degrees.
constexpr double kFaceWidthDeg = 120.0;
constexpr double kFaceHeightDeg = 90.0;
constexpr uint32_t kLeafCells = uint32_t{1} << CellId::kMaxLevel;

// Clamps a unit-interval coordinate to a valid leaf index.
uint32_t UnitToLeaf(double u) {
  if (u <= 0) return 0;
  double scaled = u * static_cast<double>(kLeafCells);
  if (scaled >= static_cast<double>(kLeafCells)) return kLeafCells - 1;
  return static_cast<uint32_t>(scaled);
}

}  // namespace

int Grid::FaceAt(const LatLng& p) {
  int slab = std::clamp(
      static_cast<int>(std::floor((p.lng + 180.0) / kFaceWidthDeg)), 0, 2);
  int half = p.lat >= 0 ? 1 : 0;
  return half * 3 + slab;
}

void Grid::FaceIJAt(const LatLng& p, int* face, uint32_t* i,
                    uint32_t* j) const {
  *face = FaceAt(p);
  int slab = *face % 3;
  int half = *face / 3;
  double s = (p.lng + 180.0) / kFaceWidthDeg - slab;
  double t = (p.lat + 90.0 - half * kFaceHeightDeg) / kFaceHeightDeg;
  *i = UnitToLeaf(s);
  *j = UnitToLeaf(t);
}

CellId Grid::CellAt(const LatLng& p, int level) const {
  int face;
  uint32_t i, j;
  FaceIJAt(p, &face, &i, &j);
  return CellFromFaceIJ(face, i, j, level);
}

CellId Grid::CellFromFaceIJ(int face, uint32_t i, uint32_t j,
                            int level) const {
  int shift = CellId::kMaxLevel - level;
  uint64_t pos = IJToPos(curve_, level, i >> shift, j >> shift);
  return CellId::FromFaceLevelPos(face, level, pos);
}

LatLngRect Grid::CellRect(const CellId& cell) const {
  ACT_CHECK(cell.is_valid());
  int level = cell.level();
  auto [i, j] = PosToIJ(curve_, level, cell.pos());
  double inv = 1.0 / static_cast<double>(uint64_t{1} << level);
  double s_lo = i * inv;
  double t_lo = j * inv;
  int slab = cell.face() % 3;
  int half = cell.face() / 3;
  LatLngRect r;
  r.lng_lo = slab * kFaceWidthDeg - 180.0 + s_lo * kFaceWidthDeg;
  r.lng_hi = r.lng_lo + inv * kFaceWidthDeg;
  r.lat_lo = -90.0 + half * kFaceHeightDeg + t_lo * kFaceHeightDeg;
  r.lat_hi = r.lat_lo + inv * kFaceHeightDeg;
  return r;
}

double Grid::CellDiagonalMeters(const CellId& cell) const {
  return CellRect(cell).DiagonalMeters();
}

int Grid::LevelForDiagonal(double bound_m, const LatLngRect& region) const {
  // Cell dimensions halve per level; the widest cell in the region sets the
  // bound. Evaluate longitude extent at the latitude closest to the equator.
  double widest_lat = (region.lat_lo <= 0 && region.lat_hi >= 0)
                          ? 0
                          : std::min(std::abs(region.lat_lo),
                                     std::abs(region.lat_hi));
  for (int level = 0; level <= CellId::kMaxLevel; ++level) {
    double inv = 1.0 / static_cast<double>(uint64_t{1} << level);
    double w = inv * kFaceWidthDeg * MetersPerDegreeLng(widest_lat);
    double h = inv * kFaceHeightDeg * kMetersPerDegreeLat;
    if (std::sqrt(w * w + h * h) <= bound_m) return level;
  }
  return CellId::kMaxLevel;
}

}  // namespace actjoin::geo
