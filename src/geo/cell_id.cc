#include "geo/cell_id.h"

namespace actjoin::geo {

std::string CellId::ToString() const {
  if (!is_valid()) return "(invalid)";
  std::string out = std::to_string(face());
  out += '/';
  int l = level();
  for (int k = 1; k <= l; ++k) {
    out += static_cast<char>('0' + child_position(k));
  }
  return out;
}

}  // namespace actjoin::geo
