// Geographic coordinates and the planar (equirectangular) local metric.
//
// The paper's implementation maps lat/lng to Google-S2 cell ids on a cube
// projection. This reproduction keeps the identical 64-bit id scheme but
// projects onto six equirectangular longitude slabs (see geo/grid.h); the
// paper notes (Sec. 3.4) that any quadtree-based space partitioning with
// prefix-hierarchical ids works. Distances are measured with the
// equirectangular approximation, which is accurate to well under 1% at city
// scale — the scale the paper (and its precision bounds of 60/15/4 m)
// targets.

#ifndef ACTJOIN_GEO_LATLNG_H_
#define ACTJOIN_GEO_LATLNG_H_

#include <algorithm>
#include <cmath>

namespace actjoin::geo {

/// Meters per degree of latitude (WGS84 mean).
inline constexpr double kMetersPerDegreeLat = 110574.0;
/// Meters per degree of longitude at the equator.
inline constexpr double kMetersPerDegreeLngEquator = 111320.0;
inline constexpr double kDegToRad = 0.017453292519943295;

/// Meters per degree of longitude at a given latitude.
inline double MetersPerDegreeLng(double lat_deg) {
  return kMetersPerDegreeLngEquator * std::cos(lat_deg * kDegToRad);
}

/// A point on the Earth in degrees. lat in [-90, 90], lng in [-180, 180].
struct LatLng {
  double lat = 0;
  double lng = 0;

  bool operator==(const LatLng& o) const {
    return lat == o.lat && lng == o.lng;
  }
};

/// Approximate ground distance in meters (equirectangular).
inline double DistanceMeters(const LatLng& a, const LatLng& b) {
  double mid_lat = 0.5 * (a.lat + b.lat);
  double dx = (a.lng - b.lng) * MetersPerDegreeLng(mid_lat);
  double dy = (a.lat - b.lat) * kMetersPerDegreeLat;
  return std::sqrt(dx * dx + dy * dy);
}

/// A closed latitude/longitude rectangle.
struct LatLngRect {
  double lat_lo = 0, lat_hi = 0;
  double lng_lo = 0, lng_hi = 0;

  bool Contains(const LatLng& p) const {
    return p.lat >= lat_lo && p.lat <= lat_hi && p.lng >= lng_lo &&
           p.lng <= lng_hi;
  }

  bool Intersects(const LatLngRect& o) const {
    return lat_lo <= o.lat_hi && o.lat_lo <= lat_hi && lng_lo <= o.lng_hi &&
           o.lng_lo <= lng_hi;
  }

  LatLng Center() const {
    return {0.5 * (lat_lo + lat_hi), 0.5 * (lng_lo + lng_hi)};
  }

  double WidthDeg() const { return lng_hi - lng_lo; }
  double HeightDeg() const { return lat_hi - lat_lo; }

  /// Upper bound on the rectangle's diagonal in meters. Longitude width is
  /// evaluated at the latitude closest to the equator inside the rect, where
  /// a degree of longitude is longest.
  double DiagonalMeters() const {
    double widest_lat =
        (lat_lo <= 0 && lat_hi >= 0) ? 0 : std::min(std::abs(lat_lo),
                                                    std::abs(lat_hi));
    double w = WidthDeg() * MetersPerDegreeLng(widest_lat);
    double h = HeightDeg() * kMetersPerDegreeLat;
    return std::sqrt(w * w + h * h);
  }
};

}  // namespace actjoin::geo

#endif  // ACTJOIN_GEO_LATLNG_H_
