// 64-bit hierarchical cell identifiers (S2CellId-compatible layout).
//
// Bit layout (MSB to LSB):
//   [63:61]  face (0..5)
//   [60:..]  2 bits per level of space-filling-curve position
//   sentinel 1-bit marking the level, then zeros
//
// A level-l cell uses 2*l position bits; its sentinel sits at bit
// 2*(kMaxLevel - l). This gives every cell a contiguous id range covering
// exactly its descendants, so containment and ancestor tests are pure
// integer arithmetic — the property both the radix tree and the sorted
// baselines (B-tree, lower_bound) exploit (paper Sec. 2).

#ifndef ACTJOIN_GEO_CELL_ID_H_
#define ACTJOIN_GEO_CELL_ID_H_

#include <cstdint>
#include <string>

#include "util/bitops.h"
#include "util/check.h"

namespace actjoin::geo {

class CellId {
 public:
  static constexpr int kMaxLevel = 30;
  static constexpr int kFaceBits = 3;
  static constexpr int kPosBits = 2 * kMaxLevel + 1;  // 61
  static constexpr int kNumFaces = 6;

  /// Invalid id (id 0 is never a valid cell: its face/sentinel bits are 0).
  constexpr CellId() : id_(0) {}
  constexpr explicit CellId(uint64_t id) : id_(id) {}

  /// The level-0 cell covering an entire face.
  static CellId FromFace(int face) {
    return CellId((static_cast<uint64_t>(face) << kPosBits) |
                  (uint64_t{1} << (kPosBits - 1)));
  }

  /// Cell at `level` whose curve position (2*level bits) is `pos`.
  static CellId FromFaceLevelPos(int face, int level, uint64_t pos) {
    ACT_CHECK(face >= 0 && face < kNumFaces);
    ACT_CHECK(level >= 0 && level <= kMaxLevel);
    uint64_t id = (static_cast<uint64_t>(face) << kPosBits) |
                  (pos << (kPosBits - 2 * level)) |
                  (uint64_t{1} << (2 * (kMaxLevel - level)));
    return CellId(id);
  }

  uint64_t id() const { return id_; }
  bool is_valid() const {
    if (id_ == 0 || face() >= kNumFaces) return false;
    int tz = util::CountTrailingZeros(id_);
    return tz <= 2 * kMaxLevel && (tz % 2) == 0;
  }

  int face() const { return static_cast<int>(id_ >> kPosBits); }

  int level() const {
    return kMaxLevel - util::CountTrailingZeros(id_) / 2;
  }

  bool is_leaf() const { return (id_ & 1) != 0; }
  bool is_face() const { return level() == 0; }

  /// Lowest set bit: encodes the level and half the range width.
  uint64_t lsb() const { return util::LowestSetBit(id_); }

  /// Curve position of the cell: the 2*level() position digits.
  uint64_t pos() const {
    return (id_ & ((uint64_t{1} << kPosBits) - 1)) >>
           (util::CountTrailingZeros(id_) + 1);
  }

  /// Smallest leaf-cell id contained in this cell.
  CellId range_min() const { return CellId(id_ - (lsb() - 1)); }
  /// Largest leaf-cell id contained in this cell.
  CellId range_max() const { return CellId(id_ + (lsb() - 1)); }

  bool contains(const CellId& o) const {
    return o.id_ >= range_min().id_ && o.id_ <= range_max().id_;
  }

  bool intersects(const CellId& o) const {
    return contains(o) || o.contains(*this);
  }

  /// Ancestor at the given (smaller or equal) level.
  CellId parent(int level) const {
    ACT_CHECK(level >= 0 && level <= this->level());
    uint64_t new_lsb = uint64_t{1} << (2 * (kMaxLevel - level));
    return CellId((id_ & (~new_lsb + 1)) | new_lsb);
  }

  CellId parent() const { return parent(level() - 1); }

  /// k-th child in curve order, k in [0, 4).
  CellId child(int k) const {
    ACT_CHECK(!is_leaf());
    ACT_CHECK(k >= 0 && k < 4);
    uint64_t new_lsb = lsb() >> 2;
    return CellId(id_ - lsb() + (2 * static_cast<uint64_t>(k) + 1) * new_lsb);
  }

  /// This cell's index (0..3) among the children of its ancestor at `level`
  /// (level must be in [1, this->level()]).
  int child_position(int level) const {
    ACT_CHECK(level >= 1 && level <= this->level());
    return static_cast<int>((id_ >> (2 * (kMaxLevel - level) + 1)) & 3);
  }

  /// Next/previous cell at this cell's level along the curve (may cross a
  /// face boundary into an invalid id; caller checks is_valid()).
  CellId next() const { return CellId(id_ + (lsb() << 1)); }
  CellId prev() const { return CellId(id_ - (lsb() << 1)); }

  /// Radix-tree key: the face is stripped (each face has its own tree) and
  /// the 2*level() position bits are left-aligned in the 64-bit key.
  /// Returns the key; *length_bits is set to 2 * level().
  uint64_t PathKey(int* length_bits) const {
    *length_bits = 2 * level();
    uint64_t shifted = id_ << kFaceBits;       // drop face, keep sentinel
    return shifted ^ (lsb() << kFaceBits);     // clear sentinel
  }

  bool operator==(const CellId& o) const { return id_ == o.id_; }
  bool operator!=(const CellId& o) const { return id_ != o.id_; }
  bool operator<(const CellId& o) const { return id_ < o.id_; }
  bool operator<=(const CellId& o) const { return id_ <= o.id_; }
  bool operator>(const CellId& o) const { return id_ > o.id_; }
  bool operator>=(const CellId& o) const { return id_ >= o.id_; }

  /// Debug form "f/0123..." (face, then one base-4 digit per level).
  std::string ToString() const;

 private:
  uint64_t id_;
};

}  // namespace actjoin::geo

#endif  // ACTJOIN_GEO_CELL_ID_H_
