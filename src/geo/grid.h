// Projection between geographic coordinates and hierarchical grid cells.
//
// The globe is split into six faces — three 120-degree longitude slabs per
// hemisphere (2 latitude halves x 3 slabs) — mirroring S2's six cube faces
// so the multi-tree code path of the index is exercised (paper Sec. 3.4,
// "Face Nodes"). Each face spans 120 x 90 degrees, which makes cells nearly
// square in meters at mid-latitudes (within ~2% at NYC); like S2, a 4 m
// precision bound corresponds to cell level 22. Within a face, an
// equirectangular map to the unit square is subdivided 30 times into
// quadrants; cells are enumerated with a space-filling curve. The first
// three id bits select the face/tree, exactly as in the paper.

#ifndef ACTJOIN_GEO_GRID_H_
#define ACTJOIN_GEO_GRID_H_

#include <cstdint>

#include "geo/cell_id.h"
#include "geo/curve.h"
#include "geo/latlng.h"

namespace actjoin::geo {

class Grid {
 public:
  explicit Grid(CurveType curve = CurveType::kHilbert) : curve_(curve) {}

  CurveType curve() const { return curve_; }

  /// Face (0..5) containing the coordinate.
  static int FaceAt(const LatLng& p);

  /// Cell containing `p` at the given level (default: leaf level 30).
  CellId CellAt(const LatLng& p, int level = CellId::kMaxLevel) const;

  /// Discrete face/i/j coordinates of `p` at leaf resolution.
  void FaceIJAt(const LatLng& p, int* face, uint32_t* i, uint32_t* j) const;

  /// Cell from face + leaf-resolution (i, j), truncated to `level`.
  CellId CellFromFaceIJ(int face, uint32_t i, uint32_t j, int level) const;

  /// Geographic extent of a cell.
  LatLngRect CellRect(const CellId& cell) const;

  /// Upper bound on the cell's diagonal in meters; this is the paper's
  /// false-positive distance bound sqrt(2)*delta for boundary cells.
  double CellDiagonalMeters(const CellId& cell) const;

  /// Smallest level whose cells have diagonal <= bound_m everywhere inside
  /// `region` (used to size uniform rasters and to report the level that a
  /// precision bound implies). Returns kMaxLevel if even leaves exceed it.
  int LevelForDiagonal(double bound_m, const LatLngRect& region) const;

 private:
  CurveType curve_;
};

}  // namespace actjoin::geo

#endif  // ACTJOIN_GEO_GRID_H_
