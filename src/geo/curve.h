// Space-filling curve enumeration of quadtree cells.
//
// Cell positions along the curve are the radix-tree keys of the whole
// system, so the only property the index relies on is that child cells share
// a 2-bit-per-level prefix with their parent (paper Sec. 2). Both curves
// implemented here have it:
//   * Hilbert (default, what S2 uses): consecutive positions are spatially
//     adjacent, which improves locality of the trie for clustered points.
//   * Morton/Z-order (what Oracle-style schemes use): cheaper conversion,
//     no adjacency. Offered as a build-time choice and as an ablation bench.

#ifndef ACTJOIN_GEO_CURVE_H_
#define ACTJOIN_GEO_CURVE_H_

#include <cstdint>
#include <utility>

namespace actjoin::geo {

enum class CurveType {
  kHilbert,
  kMorton,
};

inline const char* CurveName(CurveType t) {
  return t == CurveType::kHilbert ? "hilbert" : "morton";
}

/// Maps cell coordinates (i, j) in [0, 2^level)^2 to the cell's position in
/// [0, 4^level) along the curve. level in [0, 30].
uint64_t IJToPos(CurveType curve, int level, uint32_t i, uint32_t j);

/// Inverse of IJToPos.
std::pair<uint32_t, uint32_t> PosToIJ(CurveType curve, int level,
                                      uint64_t pos);

}  // namespace actjoin::geo

#endif  // ACTJOIN_GEO_CURVE_H_
