#include "geo/curve.h"

#include "util/check.h"

namespace actjoin::geo {

namespace {

// Reflect/transpose the lower bits of (i, j) for the Hilbert recursion.
// `mask` is the current block size minus one; bits above the block are
// never read again, so flipping them is harmless.
inline void HilbertRotate(uint32_t block, uint32_t* i, uint32_t* j,
                          uint32_t ri, uint32_t rj) {
  if (rj == 0) {
    if (ri == 1) {
      *i = (block - 1) - *i;
      *j = (block - 1) - *j;
    }
    uint32_t t = *i;
    *i = *j;
    *j = t;
  }
}

uint64_t HilbertIJToPos(int level, uint32_t i, uint32_t j) {
  uint64_t pos = 0;
  for (int k = level - 1; k >= 0; --k) {
    uint32_t block = uint32_t{1} << k;
    uint32_t ri = (i & block) ? 1 : 0;
    uint32_t rj = (j & block) ? 1 : 0;
    pos = (pos << 2) | ((3 * ri) ^ rj);
    HilbertRotate(block, &i, &j, ri, rj);
  }
  return pos;
}

std::pair<uint32_t, uint32_t> HilbertPosToIJ(int level, uint64_t pos) {
  uint32_t i = 0, j = 0;
  for (int k = 0; k < level; ++k) {
    uint32_t block = uint32_t{1} << k;
    uint64_t digit = (pos >> (2 * k)) & 3;
    uint32_t ri = static_cast<uint32_t>((digit >> 1) & 1);
    uint32_t rj = static_cast<uint32_t>((digit ^ ri) & 1);
    HilbertRotate(block, &i, &j, ri, rj);
    i += block * ri;
    j += block * rj;
  }
  return {i, j};
}

uint64_t MortonIJToPos(int level, uint32_t i, uint32_t j) {
  uint64_t pos = 0;
  for (int k = level - 1; k >= 0; --k) {
    uint64_t bi = (i >> k) & 1;
    uint64_t bj = (j >> k) & 1;
    pos = (pos << 2) | (bi << 1) | bj;
  }
  return pos;
}

std::pair<uint32_t, uint32_t> MortonPosToIJ(int level, uint64_t pos) {
  uint32_t i = 0, j = 0;
  for (int k = 0; k < level; ++k) {
    i |= static_cast<uint32_t>((pos >> (2 * k + 1)) & 1) << k;
    j |= static_cast<uint32_t>((pos >> (2 * k)) & 1) << k;
  }
  return {i, j};
}

}  // namespace

uint64_t IJToPos(CurveType curve, int level, uint32_t i, uint32_t j) {
  ACT_CHECK(level >= 0 && level <= 30);
  ACT_CHECK(level == 30 || (i >> level) == 0);
  ACT_CHECK(level == 30 || (j >> level) == 0);
  switch (curve) {
    case CurveType::kHilbert:
      return HilbertIJToPos(level, i, j);
    case CurveType::kMorton:
      return MortonIJToPos(level, i, j);
  }
  ACT_UNREACHABLE();
}

std::pair<uint32_t, uint32_t> PosToIJ(CurveType curve, int level,
                                      uint64_t pos) {
  ACT_CHECK(level >= 0 && level <= 30);
  ACT_CHECK((pos >> (2 * level)) == 0 || level == 30);
  switch (curve) {
    case CurveType::kHilbert:
      return HilbertPosToIJ(level, pos);
    case CurveType::kMorton:
      return MortonPosToIJ(level, pos);
  }
  ACT_UNREACHABLE();
}

}  // namespace actjoin::geo
