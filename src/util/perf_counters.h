// Hardware performance counter sampling (paper Table 5 + serving-stage
// attribution).
//
// Table 5 reports cycles, instructions, branch misses, and cache misses per
// probed point. We read them through perf_event_open when the kernel allows
// it; inside unprivileged containers that syscall is typically denied, in
// which case cycles fall back to the TSC and the other counters are reported
// as unavailable. Callers must check the per-counter validity flags.
//
// Two shapes, one fallback story:
//
//   * PerfCounterGroup — start/stop deltas around one measured region (the
//     bench shape: arm, run the workload, read).
//   * StagePerfCounters — a per-thread, permanently-enabled 3-event group
//     (cycles / instructions / LLC misses) read as one group read() at
//     serving-stage boundaries. A serving worker opens it once and charges
//     each trace stage the delta between two Read() calls, so the hot-path
//     cost is one syscall per boundary, not an ioctl dance per request.
//
// Both degrade to `available() == false` (all-zero samples) when
// perf_event_open is denied, and both take a simulate_denied seam that
// forces the open through the kernel's invalid-attr rejection path so the
// fallback is testable on machines where the real open succeeds.

#ifndef ACTJOIN_UTIL_PERF_COUNTERS_H_
#define ACTJOIN_UTIL_PERF_COUNTERS_H_

#include <cstdint>

namespace actjoin::util {

/// One sampled counter value; `valid` is false when the counter could not be
/// programmed (e.g., perf_event_open denied by the container runtime).
struct CounterValue {
  uint64_t value = 0;
  bool valid = false;
};

/// Deltas observed between Start() and Stop().
struct PerfSample {
  CounterValue cycles;
  CounterValue instructions;
  CounterValue branch_misses;
  CounterValue cache_misses;
};

/// Groups the four Table-5 counters. Usage:
///   PerfCounterGroup g;
///   g.Start(); ... workload ...; PerfSample s = g.Stop();
class PerfCounterGroup {
 public:
  struct Options {
    /// Test seam: submit an invalid perf_event_attr so the kernel rejects
    /// every open and the group takes the same unavailable/TSC-fallback
    /// path a denied container does.
    bool simulate_denied = false;
  };

  PerfCounterGroup() : PerfCounterGroup(Options{}) {}
  explicit PerfCounterGroup(const Options& opts);
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True if at least the hardware cycle counter is being read via perf
  /// events (as opposed to the TSC fallback).
  bool UsingHardwareEvents() const;

  void Start();
  /// Deltas since the matching Start(). Without a prior Start() this is a
  /// safe no-op returning an all-invalid sample (no ioctls are issued, no
  /// garbage TSC delta is fabricated).
  PerfSample Stop();

 private:
  int fds_[4];
  uint64_t tsc_start_ = 0;
  bool started_ = false;
};

/// Running totals of one StagePerfCounters group. Deltas between two Read()
/// calls attribute the work done in between to a stage.
struct StageCounterSample {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;

  StageCounterSample operator-(const StageCounterSample& o) const {
    return {cycles - o.cycles, instructions - o.instructions,
            llc_misses - o.llc_misses};
  }
  StageCounterSample& operator+=(const StageCounterSample& o) {
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    return *this;
  }
  friend bool operator==(const StageCounterSample&,
                         const StageCounterSample&) = default;
};

/// Per-thread 3-event counter group (cycles leader + instructions +
/// LLC misses), opened once, enabled for the thread's lifetime, and read
/// with a single group read() per call. Counts only the opening thread —
/// open it on the thread whose stages you are attributing.
///
/// All-or-nothing: if any of the three events fails to open, the whole
/// group reports available() == false and Read() returns zeros, so a
/// partially-programmed group can never mislabel a stage.
class StagePerfCounters {
 public:
  struct Options {
    /// Test seam: see PerfCounterGroup::Options::simulate_denied.
    bool simulate_denied = false;
  };

  StagePerfCounters() : StagePerfCounters(Options{}) {}
  explicit StagePerfCounters(const Options& opts);
  ~StagePerfCounters();

  StagePerfCounters(const StagePerfCounters&) = delete;
  StagePerfCounters& operator=(const StagePerfCounters&) = delete;

  bool available() const { return available_; }

  /// Running totals since open; all-zero when unavailable (or if the
  /// group read itself fails, so a torn read can't fabricate deltas).
  StageCounterSample Read() const;

 private:
  int group_fd_ = -1;
  int member_fds_[2] = {-1, -1};
  bool available_ = false;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_PERF_COUNTERS_H_
