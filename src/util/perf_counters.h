// Hardware performance counter sampling (paper Table 5).
//
// Table 5 reports cycles, instructions, branch misses, and cache misses per
// probed point. We read them through perf_event_open when the kernel allows
// it; inside unprivileged containers that syscall is typically denied, in
// which case cycles fall back to the TSC and the other counters are reported
// as unavailable. Callers must check the per-counter validity flags.

#ifndef ACTJOIN_UTIL_PERF_COUNTERS_H_
#define ACTJOIN_UTIL_PERF_COUNTERS_H_

#include <cstdint>

namespace actjoin::util {

/// One sampled counter value; `valid` is false when the counter could not be
/// programmed (e.g., perf_event_open denied by the container runtime).
struct CounterValue {
  uint64_t value = 0;
  bool valid = false;
};

/// Deltas observed between Start() and Stop().
struct PerfSample {
  CounterValue cycles;
  CounterValue instructions;
  CounterValue branch_misses;
  CounterValue cache_misses;
};

/// Groups the four Table-5 counters. Usage:
///   PerfCounterGroup g;
///   g.Start(); ... workload ...; PerfSample s = g.Stop();
class PerfCounterGroup {
 public:
  PerfCounterGroup();
  ~PerfCounterGroup();

  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// True if at least the hardware cycle counter is being read via perf
  /// events (as opposed to the TSC fallback).
  bool UsingHardwareEvents() const;

  void Start();
  PerfSample Stop();

 private:
  int fds_[4];
  uint64_t start_[4];
  uint64_t tsc_start_ = 0;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_PERF_COUNTERS_H_
