// Log-bucketed latency histogram for the serving layer's p50/p99 stats.
//
// Buckets grow geometrically — 16 buckets per power of two, so each
// bucket is 2^(1/16) ~= 4.4% wider than the last — covering
// 1 us .. ~70 s; quantile error is bounded by the bucket width while
// Record() stays a handful of integer ops. Not thread-safe by
// itself; the serving layer keeps one histogram per worker and merges on
// read, so recording never contends.

#ifndef ACTJOIN_UTIL_LATENCY_HISTOGRAM_H_
#define ACTJOIN_UTIL_LATENCY_HISTOGRAM_H_

#include <array>
#include <cmath>
#include <cstdint>

namespace actjoin::util {

class LatencyHistogram {
 public:
  static constexpr int kBucketsPerOctave = 16;
  static constexpr int kOctaves = 26;  // 1 us * 2^26 ~= 67 s
  static constexpr int kNumBuckets = kBucketsPerOctave * kOctaves;

  void Record(double micros) {
    // Sanitize corrupt samples so one bad measurement cannot poison the
    // aggregates: NaN and negatives count as 0 us (first bucket), +inf
    // saturates to the top bucket's edge. count() still advances — a
    // dropped sample would silently skew QPS-style rates derived from it.
    if (std::isnan(micros) || micros < 0) {
      micros = 0;
    } else if (std::isinf(micros)) {
      micros = BucketUpperMicros(kNumBuckets - 1);
    }
    ++count_;
    sum_micros_ += micros;
    if (micros > max_micros_) max_micros_ = micros;
    ++buckets_[BucketOf(micros)];
  }

  /// Adds another histogram's observations into this one.
  void Merge(const LatencyHistogram& o) {
    count_ += o.count_;
    sum_micros_ += o.sum_micros_;
    if (o.max_micros_ > max_micros_) max_micros_ = o.max_micros_;
    for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += o.buckets_[b];
  }

  uint64_t count() const { return count_; }
  double MeanMicros() const { return count_ == 0 ? 0 : sum_micros_ / count_; }
  double MaxMicros() const { return max_micros_; }

  /// Upper edge of the bucket holding the q-quantile observation (q in
  /// [0, 1]); 0 when empty. The edge over-reports by at most one bucket
  /// width (~4.4%), the conservative direction for a latency SLO.
  double QuantileMicros(double q) const {
    if (count_ == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
    uint64_t seen = 0;
    for (int b = 0; b < kNumBuckets; ++b) {
      seen += buckets_[b];
      if (seen > rank) return BucketUpperMicros(b);
    }
    return BucketUpperMicros(kNumBuckets - 1);
  }

  double P50Micros() const { return QuantileMicros(0.50); }
  double P99Micros() const { return QuantileMicros(0.99); }
  double P999Micros() const { return QuantileMicros(0.999); }

  double sum_micros() const { return sum_micros_; }
  uint64_t bucket_count(int b) const { return buckets_[b]; }

  /// Upper edge of bucket b in microseconds (exposed for the metrics
  /// exporter, which renders cumulative le series from the raw buckets).
  static double BucketUpperEdgeMicros(int b) { return BucketUpperMicros(b); }

  /// Bucket index a sample lands in (exposed for util::Histogram, the
  /// atomic-bucket twin that shares this geometry).
  static int BucketIndexOf(double micros) { return BucketOf(micros); }

  /// Reassembles a histogram from raw parts — the inverse of the accessors
  /// above, used to turn an atomic util::Histogram snapshot back into a
  /// quantile-capable value without re-recording samples.
  static LatencyHistogram FromParts(
      uint64_t count, double sum_micros, double max_micros,
      const std::array<uint64_t, kNumBuckets>& buckets) {
    LatencyHistogram h;
    h.count_ = count;
    h.sum_micros_ = sum_micros;
    h.max_micros_ = max_micros;
    h.buckets_ = buckets;
    return h;
  }

 private:
  static int BucketOf(double micros) {
    if (!(micros > 1.0)) return 0;  // also catches NaN / negatives
    // log2(micros) * kBucketsPerOctave, clamped to the table.
    int b = static_cast<int>(std::log2(micros) * kBucketsPerOctave);
    return b >= kNumBuckets ? kNumBuckets - 1 : b;
  }

  static double BucketUpperMicros(int b) {
    return std::exp2(static_cast<double>(b + 1) / kBucketsPerOctave);
  }

  uint64_t count_ = 0;
  double sum_micros_ = 0;
  double max_micros_ = 0;
  std::array<uint64_t, kNumBuckets> buckets_{};
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_LATENCY_HISTOGRAM_H_
