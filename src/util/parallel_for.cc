#include "util/parallel_for.h"

#include <thread>

namespace actjoin::util {

int DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

}  // namespace actjoin::util
