#include "util/parallel_for.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "util/check.h"

namespace actjoin::util {

int DefaultThreadCount() {
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

void ParallelFor(uint64_t n, int threads, uint64_t batch,
                 const std::function<void(uint64_t, uint64_t, int)>& fn) {
  ACT_CHECK(batch > 0);
  if (threads <= 0) threads = DefaultThreadCount();
  if (n == 0) return;

  if (threads == 1) {
    // Inline execution preserves batching so per-batch overheads are
    // comparable with the multi-threaded path.
    for (uint64_t begin = 0; begin < n; begin += batch) {
      fn(begin, std::min(begin + batch, n), 0);
    }
    return;
  }

  std::atomic<uint64_t> next{0};
  auto worker = [&](int tid) {
    for (;;) {
      uint64_t begin = next.fetch_add(batch, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + batch, n), tid);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& t : pool) t.join();
}

}  // namespace actjoin::util
