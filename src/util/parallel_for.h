// Batched parallel loop used by the probe phase of all joins.
//
// The paper parallelizes index probing by having worker threads fetch
// batches of 16 tuples at a time, synchronizing on a single atomic counter
// (Sec. 3.4). ParallelFor implements exactly that scheme and is reused by
// every join driver and by the covering computation.
//
// ParallelFor is a template over the callable so the per-batch dispatch in
// the hot probe loop is a direct (inlinable) call, not a type-erased
// std::function invocation.

#ifndef ACTJOIN_UTIL_PARALLEL_FOR_H_
#define ACTJOIN_UTIL_PARALLEL_FOR_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "util/check.h"

namespace actjoin::util {

/// Default batch size from the paper: "Individual processing threads fetch
/// batches of 16 tuples at a time and synchronize using an atomic counter."
inline constexpr uint64_t kDefaultBatchSize = 16;

/// Number of worker threads to use when `requested` is 0. This is the
/// library-wide convention: a thread-count option of 0 means "use
/// DefaultThreadCount()" (hardware concurrency), and positive values are
/// taken literally.
int DefaultThreadCount();

/// Runs fn(begin, end, thread_id) over [0, n) in batches of `batch` items.
/// With threads == 1 the loop runs inline on the calling thread (no spawn),
/// which keeps single-threaded measurements clean.
template <typename Fn>
void ParallelFor(uint64_t n, int threads, uint64_t batch, Fn&& fn) {
  ACT_CHECK(batch > 0);
  if (threads <= 0) threads = DefaultThreadCount();
  if (n == 0) return;

  if (threads == 1) {
    // Inline execution preserves batching so per-batch overheads are
    // comparable with the multi-threaded path.
    for (uint64_t begin = 0; begin < n; begin += batch) {
      fn(begin, std::min(begin + batch, n), 0);
    }
    return;
  }

  std::atomic<uint64_t> next{0};
  auto worker = [&](int tid) {
    for (;;) {
      uint64_t begin = next.fetch_add(batch, std::memory_order_relaxed);
      if (begin >= n) return;
      fn(begin, std::min(begin + batch, n), tid);
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int t = 1; t < threads; ++t) pool.emplace_back(worker, t);
  worker(0);
  for (auto& t : pool) t.join();
}

/// Convenience overload with the paper's batch size.
template <typename Fn>
void ParallelFor(uint64_t n, int threads, Fn&& fn) {
  ParallelFor(n, threads, kDefaultBatchSize, fn);
}

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_PARALLEL_FOR_H_
