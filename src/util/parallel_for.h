// Batched parallel loop used by the probe phase of all joins.
//
// The paper parallelizes index probing by having worker threads fetch
// batches of 16 tuples at a time, synchronizing on a single atomic counter
// (Sec. 3.4). ParallelFor implements exactly that scheme and is reused by
// every join driver and by the covering computation.

#ifndef ACTJOIN_UTIL_PARALLEL_FOR_H_
#define ACTJOIN_UTIL_PARALLEL_FOR_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace actjoin::util {

/// Default batch size from the paper: "Individual processing threads fetch
/// batches of 16 tuples at a time and synchronize using an atomic counter."
inline constexpr uint64_t kDefaultBatchSize = 16;

/// Number of worker threads to use when `requested` is 0.
int DefaultThreadCount();

/// Runs fn(begin, end, thread_id) over [0, n) in batches of `batch` items.
/// With threads == 1 the loop runs inline on the calling thread (no spawn),
/// which keeps single-threaded measurements clean.
void ParallelFor(uint64_t n, int threads, uint64_t batch,
                 const std::function<void(uint64_t, uint64_t, int)>& fn);

/// Convenience overload with the paper's batch size.
inline void ParallelFor(uint64_t n, int threads,
                        const std::function<void(uint64_t, uint64_t, int)>& fn) {
  ParallelFor(n, threads, kDefaultBatchSize, fn);
}

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_PARALLEL_FOR_H_
