#include "util/table_printer.h"

#include <cstdio>

#include "util/check.h"

namespace actjoin::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  ACT_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s%s", static_cast<int>(widths[c]), row[c].c_str(),
                  c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total > 2 ? total - 2 : total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv() const {
  auto print_row = [](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%s%s", row[c].c_str(), c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtInt(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string TablePrinter::FmtM(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v / 1e6);
  return buf;
}

}  // namespace actjoin::util
