#include "util/crc32c.h"

namespace actjoin::util {

namespace {

// Reflected Castagnoli polynomial (CRC32C processes bits LSB-first).
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[8][256];

  constexpr Tables() : t{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[0][i] = crc;
    }
    // Slice tables: t[k][b] advances byte b through k extra zero bytes.
    for (int k = 1; k < 8; ++k) {
      for (uint32_t i = 0; i < 256; ++i) {
        t[k][i] = (t[k - 1][i] >> 8) ^ t[0][t[k - 1][i] & 0xFF];
      }
    }
  }
};

constexpr Tables kTables;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  const auto& t = kTables.t;
  while (n >= 8) {
    // Explicit little-endian assembly of the two words keeps the result
    // identical on big-endian hosts (matching the on-disk byte order the
    // rest of the persistence layer uses).
    uint32_t lo = static_cast<uint32_t>(p[0]) |
                  static_cast<uint32_t>(p[1]) << 8 |
                  static_cast<uint32_t>(p[2]) << 16 |
                  static_cast<uint32_t>(p[3]) << 24;
    uint32_t hi = static_cast<uint32_t>(p[4]) |
                  static_cast<uint32_t>(p[5]) << 8 |
                  static_cast<uint32_t>(p[6]) << 16 |
                  static_cast<uint32_t>(p[7]) << 24;
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) crc = (crc >> 8) ^ t[0][(crc ^ *p++) & 0xFF];
  return ~crc;
}

}  // namespace actjoin::util
