// Wall-clock timing helpers for build/probe phase measurements.

#ifndef ACTJOIN_UTIL_TIMER_H_
#define ACTJOIN_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace actjoin::util {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Reads the CPU timestamp counter. Used as a cycles proxy when hardware
/// perf events are unavailable (common in containers).
inline uint64_t ReadTsc() {
#if defined(__x86_64__)
  uint32_t lo, hi;
  asm volatile("rdtsc" : "=a"(lo), "=d"(hi));
  return (static_cast<uint64_t>(hi) << 32) | lo;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_TIMER_H_
