// Unified metrics registry: named counters / gauges / histograms with
// lock-free hot-path recording, plus a bounded structured event log.
//
// Two registration styles, one export surface:
//
//   * Owned instruments — GetCounter/GetGauge/GetHistogram return a stable
//     pointer the hot path records into with one relaxed atomic op (the
//     histogram is the LatencyHistogram bucket geometry with atomic
//     buckets). Create-or-get by (name, labels), so two subsystems naming
//     the same series share it.
//   * Callback instruments — Register*Fn reads a value the owner already
//     maintains (an existing atomic counter, a stats snapshot) at
//     *collection* time, so instrumenting existing code costs the hot
//     path nothing. Family callbacks return a whole label set per
//     collection (e.g. one series per catalog dataset), which is how
//     per-dataset splits appear and disappear without re-registration.
//
// Collect() snapshots every family into plain structs (the wire protocol's
// binary GET_METRICS form); RenderPrometheus() emits the text exposition
// format ("# HELP"/"# TYPE" + samples, histograms as cumulative per-octave
// le buckets in seconds) under the actjoin_ prefix.
//
// Thread safety: registration and collection serialize on one mutex;
// recording into owned instruments is lock-free. Collection callbacks run
// under the registry mutex and must not call back into the registry.

#ifndef ACTJOIN_UTIL_METRICS_H_
#define ACTJOIN_UTIL_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/latency_histogram.h"
#include "util/timer.h"

namespace actjoin::util {

/// Monotonic counter. Inc is one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins double. Stored as IEEE bits in one atomic word.
class Gauge {
 public:
  void Set(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    bits_.store(bits, std::memory_order_relaxed);
  }
  double value() const {
    uint64_t bits = bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::atomic<uint64_t> bits_{0};  // bit pattern of 0.0
};

/// LatencyHistogram's bucket geometry with atomic buckets: Record from any
/// thread without a lock (each sample is a handful of relaxed RMWs; the
/// cross-field snapshot is only approximately consistent, which is fine
/// for an ops endpoint). Samples are in microseconds, like Record there.
class Histogram {
 public:
  void Record(double micros);
  /// Merged plain-histogram view (quantiles, mean, buckets).
  LatencyHistogram Snapshot() const;

 private:
  std::atomic<uint64_t> count_{0};
  /// Sum kept in nanoseconds as an integer so it can be a relaxed add.
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> max_micros_bits_{0};  // CAS-max of double bits
  std::array<std::atomic<uint64_t>, LatencyHistogram::kNumBuckets> buckets_{};
};

enum class MetricKind : uint8_t { kCounter = 0, kGauge = 1, kHistogram = 2 };

/// One label set's worth of a collected metric.
struct MetricSeries {
  /// Rendered inner label list, e.g. `dataset="zones"`; "" for none.
  std::string labels;
  double value = 0;        // counter / gauge
  LatencyHistogram hist;   // histogram only
};

struct CollectedMetric {
  std::string name;  // without the actjoin_ exposition prefix
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  std::vector<MetricSeries> series;
};

/// One structured event (epoch swap, checkpoint, GC, recovery, ...).
struct MetricEvent {
  uint64_t seq = 0;      // 1-based, never reused; gaps reveal ring eviction
  double uptime_s = 0;   // seconds since the event log was created
  std::string kind;      // machine-matchable tag ("swap", "gc", ...)
  std::string subject;   // what it happened to (dataset name, file, ...)
  std::string detail;    // free-form human text

  friend bool operator==(const MetricEvent&, const MetricEvent&) = default;
};

/// Bounded ring of MetricEvents. Appends are rare (epoch swaps,
/// checkpoints), so one mutex is plenty.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 256)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  void Append(std::string kind, std::string subject, std::string detail);

  /// Events still in the ring, oldest first.
  std::vector<MetricEvent> Snapshot() const;

  /// Total ever appended (>= Snapshot().size(); the difference was evicted).
  uint64_t total_appended() const;

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<MetricEvent> ring_;  // ring_[head_] is the oldest once full
  size_t head_ = 0;
  uint64_t last_seq_ = 0;
  WallTimer uptime_;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(size_t event_capacity = 256)
      : events_(event_capacity) {}
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get an owned instrument. The returned pointer is stable for
  /// the registry's lifetime. Re-getting an existing (name, labels) pair
  /// returns the same instrument; the kinds must match (checked).
  Counter* GetCounter(const std::string& name, const std::string& help = "",
                      const std::string& labels = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "",
                  const std::string& labels = "");
  Histogram* GetHistogram(const std::string& name,
                          const std::string& help = "",
                          const std::string& labels = "");

  /// Callback instruments: the function is invoked at collection time
  /// (under the registry mutex — it must not call back into the registry).
  void RegisterCounterFn(const std::string& name, const std::string& help,
                         const std::string& labels,
                         std::function<uint64_t()> fn);
  void RegisterGaugeFn(const std::string& name, const std::string& help,
                       const std::string& labels, std::function<double()> fn);
  void RegisterHistogramFn(const std::string& name, const std::string& help,
                           const std::string& labels,
                           std::function<LatencyHistogram()> fn);

  /// Whole-family callback: returns (labels, value) pairs at collection
  /// time, so series can come and go with runtime state (one per catalog
  /// dataset, one per admission peer, ...).
  using FamilySeries = std::vector<std::pair<std::string, double>>;
  void RegisterCounterFamilyFn(const std::string& name,
                               const std::string& help,
                               std::function<FamilySeries()> fn);
  void RegisterGaugeFamilyFn(const std::string& name, const std::string& help,
                             std::function<FamilySeries()> fn);

  /// One consistent-enough snapshot of every family, in registration
  /// order. The structured form behind the binary GET_METRICS payload.
  std::vector<CollectedMetric> Collect() const;

  /// Prometheus text exposition format (actjoin_ prefix; histogram time
  /// series in seconds with per-octave cumulative le buckets).
  std::string RenderPrometheus() const;

  EventLog& events() { return events_; }
  const EventLog& events() const { return events_; }

 private:
  struct Series {
    std::string labels;
    // Exactly one of the owned instruments or callbacks is set, matching
    // the family kind.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<uint64_t()> counter_fn;
    std::function<double()> gauge_fn;
    std::function<LatencyHistogram()> histogram_fn;
  };
  struct Family {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::vector<Series> series;
    /// When set, the family's series come from this callback instead.
    std::function<FamilySeries()> family_fn;
  };

  /// Finds or creates the family (caller holds mu_). Kind must match.
  Family& FamilyFor(const std::string& name, const std::string& help,
                    MetricKind kind);
  /// Finds a series by labels in a family (caller holds mu_); null if new.
  static Series* FindSeries(Family& family, const std::string& labels);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Family>> families_;  // registration order
  EventLog events_;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_METRICS_H_
