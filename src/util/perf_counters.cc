#include "util/perf_counters.h"

#include <cstring>

#include "util/timer.h"

#if defined(__linux__)
#include <fcntl.h>
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace actjoin::util {

namespace {

#if defined(__linux__)

#ifndef PERF_FLAG_FD_CLOEXEC
#define PERF_FLAG_FD_CLOEXEC (1UL << 3)
#endif

/// Opens one counter for the calling thread. `group_fd` = -1 starts a new
/// group; otherwise the event joins that group (same enable/disable fate,
/// readable in one group read). `read_format` must match the group leader.
/// `simulate_denied` submits a deliberately invalid attr (an impossible
/// event type) so the kernel itself rejects the open — the same -1/-EINVAL
/// surface a denied perf_event_paranoid setting produces.
int OpenCounter(uint32_t type, uint64_t config, int group_fd,
                uint64_t read_format, bool simulate_denied) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = simulate_denied ? 0xffffffffu : type;
  attr.config = config;
  attr.disabled = group_fd < 0 ? 1 : 0;  // members follow the leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = read_format;
  // FD_CLOEXEC at open: counter fds must not leak into forked/exec'd
  // children (a snapshot-shipping helper, a test harness re-exec).
  long fd = syscall(SYS_perf_event_open, &attr, 0, -1, group_fd,
                    PERF_FLAG_FD_CLOEXEC);
  if (fd >= 0) return static_cast<int>(fd);
  // Older kernels without PERF_FLAG_FD_CLOEXEC reject the flag with
  // EINVAL; retry flagless and set the bit via fcntl instead. The
  // simulated-denied path must not retry (the attr is the thing being
  // rejected, and we want the denial).
  if (!simulate_denied) {
    fd = syscall(SYS_perf_event_open, &attr, 0, -1, group_fd, 0);
    if (fd >= 0) fcntl(static_cast<int>(fd), F_SETFD, FD_CLOEXEC);
  }
  return static_cast<int>(fd);
}

uint64_t ReadCounter(int fd) {
  uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}

#endif  // defined(__linux__)

}  // namespace

PerfCounterGroup::PerfCounterGroup(const Options& opts) {
  for (int& fd : fds_) fd = -1;
#if defined(__linux__)
  const bool deny = opts.simulate_denied;
  fds_[0] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1, 0,
                        deny);
  fds_[1] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, -1, 0,
                        deny);
  fds_[2] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, -1, 0,
                        deny);
  fds_[3] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, -1, 0,
                        deny);
#else
  (void)opts;
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

bool PerfCounterGroup::UsingHardwareEvents() const { return fds_[0] >= 0; }

void PerfCounterGroup::Start() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) {
      ioctl(fd, PERF_EVENT_IOC_RESET, 0);
      ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
    }
  }
#endif
  tsc_start_ = ReadTsc();
  started_ = true;
}

PerfSample PerfCounterGroup::Stop() {
  PerfSample s;
  if (!started_) return s;  // no Start(): nothing armed, nothing to read
  started_ = false;
  uint64_t tsc_end = ReadTsc();
#if defined(__linux__)
  CounterValue* out[4] = {&s.cycles, &s.instructions, &s.branch_misses,
                          &s.cache_misses};
  for (int i = 0; i < 4; ++i) {
    if (fds_[i] >= 0) {
      ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
      out[i]->value = ReadCounter(fds_[i]);
      out[i]->valid = true;
    }
  }
#endif
  if (!s.cycles.valid) {
    // TSC fallback: reference cycles rather than core cycles, but preserves
    // the relative ordering across index structures that Table 5 is about.
    s.cycles.value = tsc_end - tsc_start_;
    s.cycles.valid = true;
  }
  return s;
}

StagePerfCounters::StagePerfCounters(const Options& opts) {
#if defined(__linux__)
  const bool deny = opts.simulate_denied;
  // Leader reads the whole group in one syscall; members inherit its
  // enabled state, so one ENABLE arms all three for the thread's lifetime.
  group_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, -1,
                          PERF_FORMAT_GROUP, deny);
  if (group_fd_ >= 0) {
    member_fds_[0] = OpenCounter(PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_INSTRUCTIONS, group_fd_,
                                 PERF_FORMAT_GROUP, deny);
    member_fds_[1] = OpenCounter(PERF_TYPE_HARDWARE,
                                 PERF_COUNT_HW_CACHE_MISSES, group_fd_,
                                 PERF_FORMAT_GROUP, deny);
  }
  if (group_fd_ >= 0 && member_fds_[0] >= 0 && member_fds_[1] >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
    available_ = true;
  } else {
    // All-or-nothing: close any partial opens so a half-programmed group
    // can never report misattributed deltas.
    for (int* fd : {&group_fd_, &member_fds_[0], &member_fds_[1]}) {
      if (*fd >= 0) close(*fd);
      *fd = -1;
    }
  }
#else
  (void)opts;
#endif
}

StagePerfCounters::~StagePerfCounters() {
#if defined(__linux__)
  for (int fd : {member_fds_[0], member_fds_[1], group_fd_}) {
    if (fd >= 0) close(fd);
  }
#endif
}

StageCounterSample StagePerfCounters::Read() const {
  StageCounterSample s;
#if defined(__linux__)
  if (!available_) return s;
  struct {
    uint64_t nr;
    uint64_t values[3];  // leader (cycles), instructions, LLC misses
  } buf;
  ssize_t n = read(group_fd_, &buf, sizeof(buf));
  if (n != static_cast<ssize_t>(sizeof(buf)) || buf.nr != 3) return s;
  s.cycles = buf.values[0];
  s.instructions = buf.values[1];
  s.llc_misses = buf.values[2];
#endif
  return s;
}

}  // namespace actjoin::util
