#include "util/perf_counters.h"

#include <cstring>

#include "util/timer.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace actjoin::util {

namespace {

#if defined(__linux__)
int OpenCounter(uint32_t type, uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

uint64_t ReadCounter(int fd) {
  uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) value = 0;
  return value;
}
#endif

}  // namespace

PerfCounterGroup::PerfCounterGroup() {
  for (int& fd : fds_) fd = -1;
#if defined(__linux__)
  fds_[0] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  fds_[1] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  fds_[2] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  fds_[3] = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES);
#endif
}

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int fd : fds_) {
    if (fd >= 0) close(fd);
  }
#endif
}

bool PerfCounterGroup::UsingHardwareEvents() const { return fds_[0] >= 0; }

void PerfCounterGroup::Start() {
#if defined(__linux__)
  for (int i = 0; i < 4; ++i) {
    if (fds_[i] >= 0) {
      ioctl(fds_[i], PERF_EVENT_IOC_RESET, 0);
      ioctl(fds_[i], PERF_EVENT_IOC_ENABLE, 0);
      start_[i] = 0;
    }
  }
#endif
  tsc_start_ = ReadTsc();
}

PerfSample PerfCounterGroup::Stop() {
  PerfSample s;
  uint64_t tsc_end = ReadTsc();
#if defined(__linux__)
  CounterValue* out[4] = {&s.cycles, &s.instructions, &s.branch_misses,
                          &s.cache_misses};
  for (int i = 0; i < 4; ++i) {
    if (fds_[i] >= 0) {
      ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
      out[i]->value = ReadCounter(fds_[i]);
      out[i]->valid = true;
    }
  }
#endif
  if (!s.cycles.valid) {
    // TSC fallback: reference cycles rather than core cycles, but preserves
    // the relative ordering across index structures that Table 5 is about.
    s.cycles.value = tsc_end - tsc_start_;
    s.cycles.valid = true;
  }
  return s;
}

}  // namespace actjoin::util
