// Fixed-width table output for the benchmark harness.
//
// Each benchmark binary regenerates one table or figure from the paper; the
// printer produces aligned, paste-able rows plus an optional CSV mirror so
// results can be post-processed.

#ifndef ACTJOIN_UTIL_TABLE_PRINTER_H_
#define ACTJOIN_UTIL_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace actjoin::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders the aligned table to stdout.
  void Print() const;

  /// Renders comma-separated rows (header first) to stdout.
  void PrintCsv() const;

  /// Numeric formatting helpers used by all benches.
  static std::string Fmt(double v, int precision = 2);
  static std::string FmtInt(uint64_t v);
  /// Millions with 2 decimals, e.g. 13.96 for 13,960,000.
  static std::string FmtM(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_TABLE_PRINTER_H_
