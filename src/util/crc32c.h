// CRC32C (Castagnoli, polynomial 0x1EDC6F41) for on-disk integrity checks.
//
// The persistence layer (act serialization v2, the snapshot store's
// manifest) frames every section as [tag | length | payload | crc32c] so
// truncation and bit-rot are detected at load time, not at query time.
// CRC32C is the checksum used by ext4 metadata, iSCSI, and RocksDB block
// trailers: 32 bits is plenty for detecting storage corruption (this is
// not an authenticity check), and the Castagnoli polynomial has the best
// known Hamming-distance profile at these lengths.
//
// Implementation: slice-by-8 table lookup, ~1 byte/cycle without any
// special instructions — index files load once per process lifetime, so
// portable beats SSE4.2 dispatch complexity here.

#ifndef ACTJOIN_UTIL_CRC32C_H_
#define ACTJOIN_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace actjoin::util {

/// CRC32C of `n` bytes. Chainable: pass a previous result as `seed` to
/// checksum discontiguous buffers as one logical stream (Crc32c(b, seed =
/// Crc32c(a)) == Crc32c(a ++ b)). Seed 0 with n == 0 returns 0.
uint32_t Crc32c(const void* data, size_t n, uint32_t seed = 0);

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_CRC32C_H_
