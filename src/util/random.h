// Deterministic, seedable random number generation for workload synthesis.
//
// We avoid <random> engines in generator code because their output is not
// guaranteed to be identical across standard library implementations;
// reproducible datasets are a requirement for the benchmark harness.

#ifndef ACTJOIN_UTIL_RANDOM_H_
#define ACTJOIN_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace actjoin::util {

/// SplitMix64: used for seeding and for cheap stateless hashing.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256**: fast, high-quality 64-bit PRNG with explicit state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) {
    uint64_t x = seed;
    for (auto& si : s_) si = (x = SplitMix64(x));
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n) { return Next() % n; }

  /// Standard normal deviate (Box-Muller, one value per call).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_RANDOM_H_
