// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value` and `--name value`; unknown flags, malformed
// values, and missing values abort with a usage message listing the
// registered flags (TryParse offers the same checks without exiting, for
// embedding and for tests). Registering the same flag name twice is a
// programming error and fails an ACT_CHECK. Benchmark binaries use this to
// expose --scale / --points / --threads / --full without pulling in a flags
// dependency.

#ifndef ACTJOIN_UTIL_FLAGS_H_
#define ACTJOIN_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace actjoin::util {

class Flags {
 public:
  /// Registers a flag with a default value and help text. Must be called
  /// before Parse(). Registering a name twice fails an ACT_CHECK.
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv; prints usage and exits 0 on --help, prints the error plus
  /// usage and exits 2 on any parse error.
  void Parse(int argc, char** argv);

  /// Parses argv without exiting (--help is an error here: the caller owns
  /// the response). Returns false and sets *error on: an unknown flag, a
  /// positional argument, a missing value, or a malformed value (int and
  /// double flags require a full numeric parse; bool values must be one of
  /// true/false/1/0).
  bool TryParse(int argc, char** argv, std::string* error);

  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  void PrintUsage(const char* binary) const;

 private:
  enum class Type { kDouble, kInt, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    std::string help;
    double d = 0;
    int64_t i = 0;
    bool b = false;
    std::string s;
  };

  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_FLAGS_H_
