// Minimal command-line flag parsing for benchmark and example binaries.
//
// Supports `--name=value` and `--name value`; unknown flags abort with a
// usage message listing the registered flags. Benchmark binaries use this to
// expose --scale / --points / --threads / --full without pulling in a flags
// dependency.

#ifndef ACTJOIN_UTIL_FLAGS_H_
#define ACTJOIN_UTIL_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace actjoin::util {

class Flags {
 public:
  /// Registers a flag with a default value and help text. Must be called
  /// before Parse().
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv; prints usage and exits on --help or an unknown flag.
  void Parse(int argc, char** argv);

  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  void PrintUsage(const char* binary) const;

 private:
  enum class Type { kDouble, kInt, kBool, kString };
  struct Flag {
    std::string name;
    Type type;
    std::string help;
    double d = 0;
    int64_t i = 0;
    bool b = false;
    std::string s;
  };

  Flag* Find(const std::string& name);
  const Flag* Find(const std::string& name) const;

  std::vector<Flag> flags_;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_FLAGS_H_
