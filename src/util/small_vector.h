// SmallVector<T, N>: a vector with inline storage for up to N elements.
//
// The super covering stores one polygon-reference list per cell; for largely
// disjoint polygon sets the vast majority of cells carry one or two
// references (the paper inlines up to two references into the trie for the
// same reason). Keeping short lists inline avoids one heap allocation per
// cell during the build phase.
//
// Restricted to trivially copyable T, which is all this codebase needs.

#ifndef ACTJOIN_UTIL_SMALL_VECTOR_H_
#define ACTJOIN_UTIL_SMALL_VECTOR_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "util/check.h"

namespace actjoin::util {

template <typename T, uint32_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector requires trivially copyable T");
  static_assert(N >= 1, "inline capacity must be at least 1");

 public:
  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) { CopyFrom(other); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      FreeHeap();
      size_ = 0;
      capacity_ = N;
      CopyFrom(other);
    }
    return *this;
  }

  SmallVector(SmallVector&& other) noexcept { MoveFrom(std::move(other)); }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { FreeHeap(); }

  T* data() { return IsInline() ? InlinePtr() : heap_; }
  const T* data() const { return IsInline() ? InlinePtr() : heap_; }

  uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint32_t capacity() const { return capacity_; }

  T& operator[](uint32_t i) { return data()[i]; }
  const T& operator[](uint32_t i) const { return data()[i]; }

  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }

  T& back() { return data()[size_ - 1]; }
  const T& back() const { return data()[size_ - 1]; }

  void push_back(const T& v) {
    if (size_ == capacity_) Grow(capacity_ * 2);
    data()[size_++] = v;
  }

  void pop_back() {
    ACT_CHECK(size_ > 0);
    --size_;
  }

  void clear() { size_ = 0; }

  void resize(uint32_t n) {
    if (n > capacity_) Grow(n);
    if (n > size_) std::memset(data() + size_, 0, (n - size_) * sizeof(T));
    size_ = n;
  }

  void reserve(uint32_t n) {
    if (n > capacity_) Grow(n);
  }

  bool operator==(const SmallVector& other) const {
    return size_ == other.size_ &&
           std::equal(begin(), end(), other.begin());
  }

 private:
  bool IsInline() const { return capacity_ <= N; }

  T* InlinePtr() { return reinterpret_cast<T*>(inline_); }
  const T* InlinePtr() const { return reinterpret_cast<const T*>(inline_); }

  void Grow(uint32_t new_cap) {
    new_cap = std::max(new_cap, uint32_t{2} * N);
    T* fresh = new T[new_cap];
    std::memcpy(fresh, data(), size_ * sizeof(T));
    FreeHeap();
    heap_ = fresh;
    capacity_ = new_cap;
  }

  void FreeHeap() {
    if (!IsInline()) {
      delete[] heap_;
      heap_ = nullptr;
    }
  }

  void CopyFrom(const SmallVector& other) {
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
  }

  void MoveFrom(SmallVector&& other) noexcept {
    if (other.IsInline()) {
      std::memcpy(inline_, other.inline_, other.size_ * sizeof(T));
      capacity_ = N;  // NOLINT(bugprone-use-after-move): raw byte copy
    } else {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
    }
    size_ = other.size_;
    other.size_ = 0;
    other.capacity_ = N;
  }

  uint32_t size_ = 0;
  uint32_t capacity_ = N;
  union {
    alignas(T) unsigned char inline_[N * sizeof(T)];
    T* heap_;
  };
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_SMALL_VECTOR_H_
