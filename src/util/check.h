// Always-on invariant checking macros.
//
// Unlike assert(), ACT_CHECK* fire in release builds as well. Database index
// code relies on structural invariants (disjointness, sortedness, alignment)
// whose violation silently corrupts query results; failing fast is cheaper
// than debugging a wrong join count.

#ifndef ACTJOIN_UTIL_CHECK_H_
#define ACTJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define ACT_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ACT_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ACT_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ACT_CHECK failed at %s:%d: %s (%s)\n",          \
                   __FILE__, __LINE__, #cond, msg);                         \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

// Documents unreachable code paths.
#define ACT_UNREACHABLE()                                                   \
  do {                                                                      \
    std::fprintf(stderr, "ACT_UNREACHABLE hit at %s:%d\n", __FILE__,        \
                 __LINE__);                                                 \
    std::abort();                                                           \
  } while (0)

#endif  // ACTJOIN_UTIL_CHECK_H_
