#include "util/metrics.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace actjoin::util {

void Histogram::Record(double micros) {
  // Same sanitation as LatencyHistogram::Record, so the two geometries
  // stay sample-for-sample comparable.
  if (std::isnan(micros) || micros < 0) {
    micros = 0;
  } else if (std::isinf(micros)) {
    micros = LatencyHistogram::BucketUpperEdgeMicros(
        LatencyHistogram::kNumBuckets - 1);
  }
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(micros * 1e3),
                       std::memory_order_relaxed);
  // CAS-max over the double's bit pattern: non-negative IEEE doubles order
  // the same as their bits, so a plain integer compare suffices.
  uint64_t bits;
  std::memcpy(&bits, &micros, sizeof(bits));
  uint64_t seen = max_micros_bits_.load(std::memory_order_relaxed);
  while (bits > seen && !max_micros_bits_.compare_exchange_weak(
                            seen, bits, std::memory_order_relaxed)) {
  }
  buckets_[LatencyHistogram::BucketIndexOf(micros)].fetch_add(
      1, std::memory_order_relaxed);
}

LatencyHistogram Histogram::Snapshot() const {
  std::array<uint64_t, LatencyHistogram::kNumBuckets> buckets;
  for (int b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
    buckets[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  uint64_t max_bits = max_micros_bits_.load(std::memory_order_relaxed);
  double max_micros;
  std::memcpy(&max_micros, &max_bits, sizeof(max_micros));
  return LatencyHistogram::FromParts(
      count_.load(std::memory_order_relaxed),
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) / 1e3,
      max_micros, buckets);
}

void EventLog::Append(std::string kind, std::string subject,
                      std::string detail) {
  std::lock_guard<std::mutex> lock(mu_);
  MetricEvent e;
  e.seq = ++last_seq_;
  e.uptime_s = uptime_.ElapsedSeconds();
  e.kind = std::move(kind);
  e.subject = std::move(subject);
  e.detail = std::move(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<MetricEvent> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricEvent> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

uint64_t EventLog::total_appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_seq_;
}

MetricsRegistry::Family& MetricsRegistry::FamilyFor(const std::string& name,
                                                    const std::string& help,
                                                    MetricKind kind) {
  for (auto& family : families_) {
    if (family->name == name) {
      ACT_CHECK_MSG(family->kind == kind,
                    "metric re-registered with a different kind");
      if (family->help.empty()) family->help = help;
      return *family;
    }
  }
  auto family = std::make_unique<Family>();
  family->name = name;
  family->help = help;
  family->kind = kind;
  families_.push_back(std::move(family));
  return *families_.back();
}

MetricsRegistry::Series* MetricsRegistry::FindSeries(
    Family& family, const std::string& labels) {
  for (Series& s : family.series) {
    if (s.labels == labels) return &s;
  }
  return nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kCounter);
  if (Series* s = FindSeries(family, labels)) {
    ACT_CHECK_MSG(s->counter != nullptr,
                  "metric series re-registered with a different style");
    return s->counter.get();
  }
  Series s;
  s.labels = labels;
  s.counter = std::make_unique<Counter>();
  Counter* out = s.counter.get();
  family.series.push_back(std::move(s));
  return out;
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kGauge);
  if (Series* s = FindSeries(family, labels)) {
    ACT_CHECK_MSG(s->gauge != nullptr,
                  "metric series re-registered with a different style");
    return s->gauge.get();
  }
  Series s;
  s.labels = labels;
  s.gauge = std::make_unique<Gauge>();
  Gauge* out = s.gauge.get();
  family.series.push_back(std::move(s));
  return out;
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         const std::string& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kHistogram);
  if (Series* s = FindSeries(family, labels)) {
    ACT_CHECK_MSG(s->histogram != nullptr,
                  "metric series re-registered with a different style");
    return s->histogram.get();
  }
  Series s;
  s.labels = labels;
  s.histogram = std::make_unique<Histogram>();
  Histogram* out = s.histogram.get();
  family.series.push_back(std::move(s));
  return out;
}

void MetricsRegistry::RegisterCounterFn(const std::string& name,
                                        const std::string& help,
                                        const std::string& labels,
                                        std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kCounter);
  Series s;
  s.labels = labels;
  s.counter_fn = std::move(fn);
  family.series.push_back(std::move(s));
}

void MetricsRegistry::RegisterGaugeFn(const std::string& name,
                                      const std::string& help,
                                      const std::string& labels,
                                      std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kGauge);
  Series s;
  s.labels = labels;
  s.gauge_fn = std::move(fn);
  family.series.push_back(std::move(s));
}

void MetricsRegistry::RegisterHistogramFn(const std::string& name,
                                          const std::string& help,
                                          const std::string& labels,
                                          std::function<LatencyHistogram()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kHistogram);
  Series s;
  s.labels = labels;
  s.histogram_fn = std::move(fn);
  family.series.push_back(std::move(s));
}

void MetricsRegistry::RegisterCounterFamilyFn(const std::string& name,
                                              const std::string& help,
                                              std::function<FamilySeries()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kCounter);
  family.family_fn = std::move(fn);
}

void MetricsRegistry::RegisterGaugeFamilyFn(const std::string& name,
                                            const std::string& help,
                                            std::function<FamilySeries()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Family& family = FamilyFor(name, help, MetricKind::kGauge);
  family.family_fn = std::move(fn);
}

std::vector<CollectedMetric> MetricsRegistry::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CollectedMetric> out;
  out.reserve(families_.size());
  for (const auto& family : families_) {
    CollectedMetric m;
    m.name = family->name;
    m.help = family->help;
    m.kind = family->kind;
    for (const Series& s : family->series) {
      MetricSeries ms;
      ms.labels = s.labels;
      switch (family->kind) {
        case MetricKind::kCounter:
          ms.value = s.counter != nullptr
                         ? static_cast<double>(s.counter->value())
                         : static_cast<double>(s.counter_fn());
          break;
        case MetricKind::kGauge:
          ms.value = s.gauge != nullptr ? s.gauge->value() : s.gauge_fn();
          break;
        case MetricKind::kHistogram:
          ms.hist =
              s.histogram != nullptr ? s.histogram->Snapshot() : s.histogram_fn();
          break;
      }
      m.series.push_back(std::move(ms));
    }
    if (family->family_fn) {
      for (auto& [labels, value] : family->family_fn()) {
        MetricSeries ms;
        ms.labels = std::move(labels);
        ms.value = value;
        m.series.push_back(std::move(ms));
      }
    }
    out.push_back(std::move(m));
  }
  return out;
}

namespace {

// Shortest round-trippable-enough representation; exposition format takes
// any Go-parsable float, so %.10g covers counters exactly to 2^33 and
// latencies far below bucket resolution.
std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

// Label *values* must escape backslash, double-quote and newline; our
// label strings are pre-rendered `key="value"` lists built from dataset
// names ([a-z0-9_-]) and peer addresses, so this only guards against
// future label sources.
std::string EscapeLabels(const std::string& labels) {
  std::string out;
  out.reserve(labels.size());
  for (char c : labels) {
    if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

void AppendSample(std::string* out, const std::string& name,
                  const std::string& labels, double value) {
  *out += "actjoin_";
  *out += name;
  if (!labels.empty()) {
    *out += '{';
    *out += EscapeLabels(labels);
    *out += '}';
  }
  *out += ' ';
  *out += FormatValue(value);
  *out += '\n';
}

// One histogram series: cumulative per-octave le buckets (seconds — the
// exposition convention), then _sum and _count. 416 raw buckets would be
// 416 time series per histogram; one per octave keeps the quantile error
// within 2x while staying scrape-friendly.
void AppendHistogram(std::string* out, const std::string& name,
                     const std::string& labels, const LatencyHistogram& h) {
  const std::string escaped = EscapeLabels(labels);
  uint64_t cumulative = 0;
  for (int octave = 0; octave < LatencyHistogram::kOctaves; ++octave) {
    for (int i = 0; i < LatencyHistogram::kBucketsPerOctave; ++i) {
      cumulative += h.bucket_count(
          octave * LatencyHistogram::kBucketsPerOctave + i);
    }
    const double le_seconds = std::exp2(octave + 1) / 1e6;
    *out += "actjoin_";
    *out += name;
    *out += "_bucket{";
    if (!escaped.empty()) {
      *out += escaped;
      *out += ',';
    }
    *out += "le=\"";
    *out += FormatValue(le_seconds);
    *out += "\"} ";
    *out += FormatValue(static_cast<double>(cumulative));
    *out += '\n';
  }
  *out += "actjoin_";
  *out += name;
  *out += "_bucket{";
  if (!escaped.empty()) {
    *out += escaped;
    *out += ',';
  }
  *out += "le=\"+Inf\"} ";
  *out += FormatValue(static_cast<double>(h.count()));
  *out += '\n';
  AppendSample(out, name + "_sum", labels, h.sum_micros() / 1e6);
  AppendSample(out, name + "_count", labels,
               static_cast<double>(h.count()));
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::vector<CollectedMetric> metrics = Collect();
  std::string out;
  for (const CollectedMetric& m : metrics) {
    if (!m.help.empty()) {
      out += "# HELP actjoin_";
      out += m.name;
      out += ' ';
      out += m.help;
      out += '\n';
    }
    out += "# TYPE actjoin_";
    out += m.name;
    out += ' ';
    out += m.kind == MetricKind::kCounter
               ? "counter"
               : (m.kind == MetricKind::kGauge ? "gauge" : "histogram");
    out += '\n';
    for (const MetricSeries& s : m.series) {
      if (m.kind == MetricKind::kHistogram) {
        AppendHistogram(&out, m.name, s.labels, s.hist);
      } else {
        AppendSample(&out, m.name, s.labels, s.value);
      }
    }
  }
  return out;
}

}  // namespace actjoin::util
