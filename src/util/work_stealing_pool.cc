#include "util/work_stealing_pool.h"

#include <algorithm>

#include "util/check.h"
#include "util/parallel_for.h"

namespace actjoin::util {

WorkStealingPool::WorkStealingPool(int workers) {
  workers = std::max(0, workers);
  deques_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    deques_.push_back(std::make_unique<WorkDeque>());
  }
  workers_.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    workers_.emplace_back([this, w] { WorkerMain(w); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkStealingPool::ExecuteTask(const Task& task) {
  task.job->fn(task.job->ctx, task.index);
  // Decrement + notify inside the job mutex. The submitter only returns
  // (and destroys the stack-allocated Job) after passing through this
  // mutex having observed pending == 0, so no finishing thread can still
  // be touching the job once Run() returns — a bare decrement would let
  // the submitter's lock-free re-check race this thread's notify.
  std::lock_guard<std::mutex> lock(task.job->mu);
  if (task.job->pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    task.job->done_cv.notify_all();
  }
}

bool WorkStealingPool::RunOneTask(int self) {
  const int n = static_cast<int>(deques_.size());
  if (n == 0) return false;
  if (self >= 0) {
    WorkDeque& own = *deques_[self];
    std::unique_lock<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      Task task = own.tasks.front();
      own.tasks.pop_front();
      lock.unlock();
      ExecuteTask(task);
      return true;
    }
  }
  for (int i = 0; i < n; ++i) {
    // Start the victim scan just past self so thieves spread out instead
    // of all hammering deque 0 (helpers with self == -1 start at 0).
    WorkDeque& victim = *deques_[(self + 1 + i) % n];
    std::unique_lock<std::mutex> lock(victim.mu);
    if (victim.tasks.empty()) continue;
    Task task = victim.tasks.back();
    victim.tasks.pop_back();
    lock.unlock();
    ExecuteTask(task);
    return true;
  }
  return false;
}

void WorkStealingPool::WorkerMain(int self) {
  for (;;) {
    uint64_t epoch;
    {
      std::lock_guard<std::mutex> lock(idle_mu_);
      if (stop_) return;
      epoch = submit_epoch_;
    }
    if (RunOneTask(self)) continue;
    std::unique_lock<std::mutex> lock(idle_mu_);
    // A submit that landed between the empty scan and this wait bumped
    // the epoch, so the predicate is already true and we re-scan.
    idle_cv_.wait(lock,
                  [&] { return stop_ || submit_epoch_ != epoch; });
    if (stop_) return;
  }
}

void WorkStealingPool::RunImpl(uint64_t num_tasks, void* ctx, TaskFn fn) {
  if (num_tasks == 0) return;
  const int n = static_cast<int>(deques_.size());
  if (n == 0) {
    for (uint64_t i = 0; i < num_tasks; ++i) fn(ctx, i);
    return;
  }

  Job job;
  job.ctx = ctx;
  job.fn = fn;
  job.pending.store(num_tasks, std::memory_order_relaxed);

  // Block-distribute task indices: worker w starts with the contiguous
  // range [w*n/W, (w+1)*n/W) in front-to-back order. The initial layout
  // is the static split; stealing only moves work once a block drains.
  for (int w = 0; w < n; ++w) {
    uint64_t begin = num_tasks * static_cast<uint64_t>(w) / n;
    uint64_t end = num_tasks * (static_cast<uint64_t>(w) + 1) / n;
    if (begin == end) continue;
    std::lock_guard<std::mutex> lock(deques_[w]->mu);
    for (uint64_t i = begin; i < end; ++i) {
      deques_[w]->tasks.push_back(Task{&job, i});
    }
  }
  {
    std::lock_guard<std::mutex> lock(idle_mu_);
    ++submit_epoch_;
  }
  idle_cv_.notify_all();

  // Help drain until every task of this job has *finished* (a stolen task
  // still executing elsewhere keeps pending > 0). Helping may run tasks
  // of other jobs — all of it is join work someone is waiting on.
  while (job.pending.load(std::memory_order_acquire) > 0) {
    if (RunOneTask(/*self=*/-1)) continue;
    std::unique_lock<std::mutex> lock(job.mu);
    job.done_cv.wait(lock, [&] {
      return job.pending.load(std::memory_order_acquire) == 0;
    });
  }
  // The loop can exit on the bare atomic load while the last finisher is
  // still inside its decrement-and-notify critical section. Passing
  // through the mutex once orders this frame's destruction of `job`
  // after that section.
  std::lock_guard<std::mutex> drain(job.mu);
}

int EffectiveWidth(const WorkStealingPool* pool, int threads) {
  if (pool != nullptr && pool->num_workers() > 0) {
    return pool->num_workers() + 1;
  }
  return threads <= 0 ? DefaultThreadCount() : threads;
}

}  // namespace actjoin::util
