// Sampling CPU profiler for the admin plane's /profilez endpoint.
//
// ITIMER_PROF arms a SIGPROF that fires against whichever thread is
// burning CPU; the async-signal-safe handler walks frame pointers from the
// interrupted context into a preallocated ring of raw PCs (no allocation,
// no locks, errno preserved). Stop disarms the timer, waits for in-flight
// handlers to drain, then symbolizes off-signal (dladdr + demangle) and
// aggregates identical stacks into collapsed-stack lines —
// "root;caller;leaf count" — the format flamegraph.pl and speedscope eat
// directly.
//
// The walk needs frame pointers: the build compiles everything with
// -fno-omit-frame-pointer, and CMAKE_ENABLE_EXPORTS (-rdynamic) puts the
// binary's own functions in the dynamic symbol table so dladdr can name
// them. PCs that still don't resolve render as raw hex rather than being
// dropped, so a stack is never silently shortened.
//
// Concurrency contract (the admin server relies on it): ProfileFor
// serializes on a process-wide mutex — concurrent /profilez requests
// queue, they never double-arm the timer. The SIGPROF handler is
// installed once and never restored: SIGPROF's default action terminates
// the process, so uninstalling while one last timer tick is in flight
// would turn a benign late signal into a kill. A disarmed handler returns
// immediately.

#ifndef ACTJOIN_UTIL_CPU_PROFILER_H_
#define ACTJOIN_UTIL_CPU_PROFILER_H_

#include <string>

namespace actjoin::util {

class CpuProfiler {
 public:
  struct Options {
    /// Sampling frequency. 200 Hz ≈ 0.5% overhead on a busy process and
    /// enough samples for a 1-second window to show the hot path.
    int hz = 200;
  };

  /// True when SIGPROF sampling with a frame-pointer walk works on this
  /// platform (Linux on x86-64 / aarch64).
  static bool Supported();

  /// Samples the whole process for `seconds` (clamped to [0.05, 120]) and
  /// returns collapsed-stack text, one "frame;frame;leaf count" line per
  /// distinct stack, highest count first. Empty string when nothing was
  /// on-CPU during the window (an idle process is a valid answer) or the
  /// platform is unsupported. Blocks the calling thread for the duration;
  /// concurrent callers queue on an internal mutex.
  static std::string ProfileFor(double seconds, const Options& opts);
  static std::string ProfileFor(double seconds) {
    return ProfileFor(seconds, Options());
  }

  /// Total samples captured by the last completed ProfileFor (including
  /// ones whose walk found only the leaf PC). For tests and /profilez
  /// headers.
  static int last_sample_count();
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_CPU_PROFILER_H_
