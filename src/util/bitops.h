// Thin wrappers around <bit> for the 64-bit id arithmetic used throughout
// the cell-id and radix-tree code.

#ifndef ACTJOIN_UTIL_BITOPS_H_
#define ACTJOIN_UTIL_BITOPS_H_

#include <bit>
#include <cstdint>

namespace actjoin::util {

/// Number of trailing zero bits; 64 for input 0.
inline int CountTrailingZeros(uint64_t v) { return std::countr_zero(v); }

/// Number of leading zero bits; 64 for input 0.
inline int CountLeadingZeros(uint64_t v) { return std::countl_zero(v); }

/// Lowest set bit of v (0 if v == 0).
inline uint64_t LowestSetBit(uint64_t v) { return v & (~v + 1); }

/// True iff v is a power of two (v != 0).
inline bool IsPowerOfTwo(uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Extracts `count` bits of `v` starting at bit `pos` (LSB = bit 0).
inline uint64_t ExtractBits(uint64_t v, int pos, int count) {
  return (v >> pos) & ((count >= 64) ? ~uint64_t{0} : ((uint64_t{1} << count) - 1));
}

/// Length (in bits) of the common prefix of a and b, viewed as 64-bit
/// strings starting at the MSB.
inline int CommonPrefixLength(uint64_t a, uint64_t b) {
  return CountLeadingZeros(a ^ b);
}

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_BITOPS_H_
