// Bounded multi-producer / multi-consumer queue for the serving layer.
//
// A classic mutex + two-condvar ring: producers block (or fail, with
// TryPush) when the queue is full, consumers block when it is empty, and
// Close() wakes everyone so a service can drain and shut down. Throughput
// is bounded by the mutex, which is fine here: the serving layer enqueues
// *batches* of points, so queue operations are off the per-point hot path
// by construction.

#ifndef ACTJOIN_UTIL_MPMC_QUEUE_H_
#define ACTJOIN_UTIL_MPMC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.h"

namespace actjoin::util {

template <typename T>
class MpmcQueue {
 public:
  explicit MpmcQueue(size_t capacity) : capacity_(capacity) {
    ACT_CHECK(capacity > 0);
  }

  MpmcQueue(const MpmcQueue&) = delete;
  MpmcQueue& operator=(const MpmcQueue&) = delete;

  /// Blocks until there is room; returns false (dropping `item`) when the
  /// queue was closed first.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: false when full or closed.
  bool TryPush(T& item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available; returns nullopt once the queue is
  /// closed *and* drained (a close still delivers everything queued).
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: pushes start failing, pops drain the backlog and
  /// then return nullopt. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_MPMC_QUEUE_H_
