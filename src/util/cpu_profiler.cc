#include "util/cpu_profiler.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <signal.h>
#include <sys/time.h>
#include <time.h>
#include <ucontext.h>
#endif

namespace actjoin::util {

namespace {

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
constexpr bool kSupported = true;
#else
constexpr bool kSupported = false;
#endif

// Sample storage: fixed-depth slots claimed with one atomic increment so
// handlers on different threads never contend on anything but the counter.
// 16k samples x 32 frames x 8 bytes = 4 MiB, allocated lazily on first use
// and kept for the process lifetime (a signal handler cannot allocate).
constexpr int kMaxDepth = 32;
constexpr int kMaxSamples = 16384;

struct Sample {
  int32_t depth;
  uintptr_t pc[kMaxDepth];
};

Sample* g_samples = nullptr;           // allocated before arming, never freed
std::atomic<int> g_count{0};           // slots claimed (may overrun kMaxSamples)
std::atomic<bool> g_armed{false};      // handler captures only while set
std::atomic<int> g_active{0};          // handlers currently inside capture
std::atomic<int> g_last_samples{0};    // result of the last completed run

std::mutex& ProfileMutex() {
  static std::mutex mu;  // serializes ProfileFor: callers queue, never double-arm
  return mu;
}

#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))

/// Extracts the interrupted PC / frame pointer / stack pointer from the
/// signal ucontext. Everything here is async-signal-safe: plain loads.
void ContextRegs(void* uc_raw, uintptr_t* pc, uintptr_t* fp, uintptr_t* sp) {
  ucontext_t* uc = static_cast<ucontext_t*>(uc_raw);
#if defined(__x86_64__)
  *pc = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  *fp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  *sp = static_cast<uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  *pc = static_cast<uintptr_t>(uc->uc_mcontext.pc);
  *fp = static_cast<uintptr_t>(uc->uc_mcontext.regs[29]);
  *sp = static_cast<uintptr_t>(uc->uc_mcontext.sp);
#endif
}

/// SIGPROF handler. Claims one sample slot and walks the frame-pointer
/// chain of the interrupted thread. Every dereference is guarded by
/// monotonicity + window checks against the stack pointer, so a frame
/// built without a frame pointer ends the walk instead of faulting.
void ProfilerSignalHandler(int, siginfo_t*, void* uc_raw) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  g_active.fetch_add(1, std::memory_order_acq_rel);
  // Re-check under the active guard: Stop() clears armed first, then waits
  // for active to drain, so a capture that passes this check finishes
  // before the ring is read.
  if (!g_armed.load(std::memory_order_acquire) || g_samples == nullptr) {
    g_active.fetch_sub(1, std::memory_order_release);
    return;
  }
  int saved_errno = errno;

  int idx = g_count.fetch_add(1, std::memory_order_relaxed);
  if (idx < kMaxSamples) {
    uintptr_t pc = 0, fp = 0, sp = 0;
    ContextRegs(uc_raw, &pc, &fp, &sp);
    Sample& s = g_samples[idx];
    int depth = 0;
    if (pc != 0) s.pc[depth++] = pc;
    // Frame layout on both ABIs: [saved fp][return address] at *fp.
    // Bound the walk to an 8 MiB window above sp (default thread stacks)
    // and require strict monotonic growth so a cycle cannot spin forever.
    const uintptr_t limit = sp + (8u << 20);
    uintptr_t frame = fp;
    while (depth < kMaxDepth && frame >= sp && frame < limit &&
           (frame & 0x7) == 0) {
      const uintptr_t* slot = reinterpret_cast<const uintptr_t*>(frame);
      uintptr_t next = slot[0];
      uintptr_t ret = slot[1];
      if (ret < 0x1000) break;  // not a plausible code address
      s.pc[depth++] = ret;
      if (next <= frame) break;  // must move up the stack
      frame = next;
    }
    s.depth = depth;
  }

  errno = saved_errno;
  g_active.fetch_sub(1, std::memory_order_release);
}

void InstallHandlerOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = ProfilerSignalHandler;
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGPROF, &sa, nullptr);
  });
}

/// Best-effort symbol name for a return address. Uses pc-1 so a call at
/// the end of a function doesn't attribute to the function after it.
std::string Symbolize(uintptr_t pc) {
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(pc - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    std::string name = (status == 0 && demangled) ? demangled : info.dli_sname;
    std::free(demangled);
    // Collapsed format separates frames with ';' and ends with " count";
    // scrub both from the name so downstream parsers don't mis-split.
    for (char& c : name) {
      if (c == ';' || c == ' ') c = '_';
    }
    return name;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%" PRIxPTR, pc);
  return buf;
}

#endif  // supported platform

}  // namespace

bool CpuProfiler::Supported() { return kSupported; }

int CpuProfiler::last_sample_count() {
  return g_last_samples.load(std::memory_order_acquire);
}

std::string CpuProfiler::ProfileFor(double seconds, const Options& opts) {
#if defined(__linux__) && (defined(__x86_64__) || defined(__aarch64__))
  seconds = std::clamp(seconds, 0.05, 120.0);
  const int hz = std::clamp(opts.hz, 1, 4000);

  std::lock_guard<std::mutex> lock(ProfileMutex());
  InstallHandlerOnce();
  if (g_samples == nullptr) g_samples = new Sample[kMaxSamples];

  g_count.store(0, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);

  itimerval timer;
  std::memset(&timer, 0, sizeof(timer));
  timer.it_interval.tv_sec = 0;
  timer.it_interval.tv_usec = std::max(1, 1000000 / hz);
  timer.it_value = timer.it_interval;
  setitimer(ITIMER_PROF, &timer, nullptr);

  // Sleep out the window. ITIMER_PROF only ticks while the process burns
  // CPU, so this thread sleeping costs nothing; SA_RESTART means our own
  // nanosleep is restarted if a sample lands on this thread anyway —
  // hence the absolute-deadline loop.
  timespec deadline;
  clock_gettime(CLOCK_MONOTONIC, &deadline);
  deadline.tv_sec += static_cast<time_t>(seconds);
  deadline.tv_nsec +=
      static_cast<long>((seconds - static_cast<time_t>(seconds)) * 1e9);
  if (deadline.tv_nsec >= 1000000000L) {
    deadline.tv_sec += 1;
    deadline.tv_nsec -= 1000000000L;
  }
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &deadline, nullptr) ==
         EINTR) {
  }

  // Disarm: stop the timer, forbid new captures, then wait for handlers
  // already past the armed check to finish writing their slots. The
  // acquire loads pair with the handler's releasing fetch_sub, making
  // every slot write visible below.
  std::memset(&timer, 0, sizeof(timer));
  setitimer(ITIMER_PROF, &timer, nullptr);
  g_armed.store(false, std::memory_order_release);
  while (g_active.load(std::memory_order_acquire) != 0) {
    timespec ts{0, 100000};  // 100us
    nanosleep(&ts, nullptr);
  }

  const int captured = std::min(g_count.load(std::memory_order_relaxed),
                                kMaxSamples);
  g_last_samples.store(captured, std::memory_order_release);

  // Aggregate identical stacks, then symbolize each distinct PC once.
  std::map<std::vector<uintptr_t>, int> stacks;
  for (int i = 0; i < captured; ++i) {
    const Sample& s = g_samples[i];
    if (s.depth <= 0) continue;
    std::vector<uintptr_t> key(s.pc, s.pc + s.depth);
    ++stacks[key];
  }
  std::unordered_map<uintptr_t, std::string> names;
  for (const auto& [key, _] : stacks) {
    for (uintptr_t pc : key) {
      if (!names.count(pc)) names.emplace(pc, Symbolize(pc));
    }
  }

  struct Line {
    std::string text;
    int count;
  };
  std::vector<Line> lines;
  lines.reserve(stacks.size());
  for (const auto& [key, count] : stacks) {
    // Samples are stored leaf-first (pc[0] is the interrupted address);
    // collapsed format wants root-first with the leaf last.
    std::string text;
    for (auto it = key.rbegin(); it != key.rend(); ++it) {
      if (!text.empty()) text += ';';
      text += names[*it];
    }
    text += ' ';
    text += std::to_string(count);
    lines.push_back({std::move(text), count});
  }
  std::sort(lines.begin(), lines.end(), [](const Line& a, const Line& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.text < b.text;
  });

  std::string out;
  for (const Line& l : lines) {
    out += l.text;
    out += '\n';
  }
  return out;
#else
  (void)seconds;
  (void)opts;
  return std::string();
#endif
}

}  // namespace actjoin::util
