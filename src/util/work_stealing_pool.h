// Work-stealing task pool shared by the serving layer's join executors.
//
// ParallelFor's atomic-counter loop balances one flat range perfectly, but
// the sharded executors need something it cannot give: several *concurrent*
// joins, each decomposed into coarse (shard, sub-range) task units, all
// drawing from one fixed thread budget without nested spawns. A static
// per-shard split of that budget under-widths hot shards on exactly the
// skewed taxi/Twitter-style batches the paper targets (ROADMAP: "work
// stealing across shard executors").
//
// Design: a fixed set of worker threads, one mutex-protected deque per
// worker. A Run(n, fn) call block-distributes its n task indices across
// the worker deques in order — the static split is the starting
// assignment, so the uniform case behaves like before — and the stealing
// only rebalances: a worker pops its own deque from the front (its block,
// in order, so per-task memory access stays sequential) and, when empty,
// steals from the *back* of a victim's deque (the work farthest from what
// the victim will touch next). The submitting thread participates in the
// drain instead of blocking, so a pool of W workers runs a lone job W+1
// wide.
//
// Tasks here are coarse — thousands of probe points each, microseconds to
// milliseconds of work — so a per-deque mutex costs noise; the lock-free
// Chase-Lev refinement is not worth its memory-model subtlety at this
// granularity.
//
// Determinism contract: the pool guarantees every task runs exactly once
// and that all task side effects happen-before Run() returns. Callers that
// need deterministic *results* (the join executors do) have each task
// write to its own pre-allocated slot and merge the slots in fixed task
// order after Run() returns; execution interleaving then cannot be
// observed. See docs/executor.md.
//
// Lifecycle: Run() may be called from any thread, including several
// threads at once (the JoinService worker pool shares one instance).
// Tasks must not call Run() on their own pool. The destructor requires
// all Run() calls to have returned (each Run blocks until its own tasks
// finish, so quiescing the callers quiesces the pool).

#ifndef ACTJOIN_UTIL_WORK_STEALING_POOL_H_
#define ACTJOIN_UTIL_WORK_STEALING_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace actjoin::util {

class WorkStealingPool {
 public:
  /// Spawns `workers` threads (clamped to >= 0). A pool with 0 workers is
  /// valid: Run() then executes every task inline on the calling thread,
  /// preserving the library's "width 1 means no spawn" convention.
  explicit WorkStealingPool(int workers);

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Joins the workers. All Run() calls must have returned.
  ~WorkStealingPool();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(task_index) for every index in [0, num_tasks) and returns when
  /// all of them have finished. The calling thread helps drain the pool
  /// while it waits. Thread-safe: concurrent Run() calls interleave their
  /// tasks over the same workers.
  template <typename Fn>
  void Run(uint64_t num_tasks, Fn&& fn) {
    auto thunk = [](void* ctx, uint64_t index) {
      (*static_cast<std::remove_reference_t<Fn>*>(ctx))(index);
    };
    RunImpl(num_tasks, &fn, thunk);
  }

 private:
  using TaskFn = void (*)(void* ctx, uint64_t task_index);

  /// One Run() call in flight. Lives on the submitting thread's stack;
  /// `pending` counts tasks not yet finished and gates both the caller's
  /// return and the job's destruction.
  struct Job {
    void* ctx = nullptr;
    TaskFn fn = nullptr;
    std::atomic<uint64_t> pending{0};
    std::mutex mu;
    std::condition_variable done_cv;
  };

  struct Task {
    Job* job = nullptr;
    uint64_t index = 0;
  };

  /// Per-worker deque. Owner pops the front; thieves (other workers and
  /// helping submitters) take the back.
  struct WorkDeque {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void RunImpl(uint64_t num_tasks, void* ctx, TaskFn fn);
  void WorkerMain(int self);
  /// Executes one task from self's deque or, failing that, steals one.
  /// `self` is -1 for helping submitters (no own deque, steal only).
  bool RunOneTask(int self);
  static void ExecuteTask(const Task& task);

  std::vector<std::unique_ptr<WorkDeque>> deques_;
  std::vector<std::thread> workers_;

  // Sleep/wake protocol: submit_epoch_ bumps after every task injection,
  // so a worker that saw empty deques before the bump re-scans instead of
  // sleeping through the notify.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  uint64_t submit_epoch_ = 0;  // guarded by idle_mu_
  bool stop_ = false;          // guarded by idle_mu_
};

/// Effective parallel width of a Run() submitted to `pool` — its workers
/// plus the submitting caller — or, when `pool` is null or worker-less,
/// of a transient pool of `threads` (library convention: <= 0 means
/// DefaultThreadCount()). The one place the executors resolve "how wide
/// is this join" from (pool, thread-budget) pairs.
int EffectiveWidth(const WorkStealingPool* pool, int threads);

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_WORK_STEALING_POOL_H_
