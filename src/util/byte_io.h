// Byte-order-independent frame codec helpers for the wire protocol.
//
// ByteWriter appends fixed-width little-endian integers / IEEE doubles to a
// growable buffer; ByteReader consumes them with bounds checking. The
// reader is *totalizing*: a read past the end does not throw or abort, it
// flips a sticky ok() bit and returns 0, so frame decoders can parse an
// attacker-controlled payload straight through and check ok() once at the
// end. Explicit shift-based packing (not memcpy of host integers) keeps the
// encoding identical on big- and little-endian hosts.

#ifndef ACTJOIN_UTIL_BYTE_IO_H_
#define ACTJOIN_UTIL_BYTE_IO_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace actjoin::util {

class ByteWriter {
 public:
  ByteWriter() = default;
  /// Writers that know their frame size up front can avoid regrowth.
  explicit ByteWriter(size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void PutU8(uint8_t v) { buf_.push_back(v); }

  void PutU16(uint16_t v) {
    buf_.push_back(static_cast<uint8_t>(v));
    buf_.push_back(static_cast<uint8_t>(v >> 8));
  }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }

  /// IEEE-754 doubles travel as their 64-bit representation.
  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutBytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  /// Length-prefixed (u32) string.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    PutBytes(s.data(), s.size());
  }

  /// Patches a u32 written earlier (e.g. a payload-length slot) in place.
  void PatchU32(size_t offset, uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  /// Patches a u64 written earlier (the persistence layer's section-length
  /// slots) in place.
  void PatchU64(size_t offset, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_[offset + static_cast<size_t>(i)] = static_cast<uint8_t>(v >> (8 * i));
    }
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> bytes) : bytes_(bytes) {}

  uint8_t U8() {
    if (!Require(1)) return 0;
    return bytes_[pos_++];
  }

  uint16_t U16() {
    if (!Require(2)) return 0;
    uint16_t v = static_cast<uint16_t>(bytes_[pos_] |
                                       (static_cast<uint16_t>(bytes_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }

  uint32_t U32() {
    if (!Require(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }

  uint64_t U64() {
    if (!Require(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
  }

  double F64() {
    uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Length-prefixed string written by PutString. An over-long prefix
  /// (longer than the remaining bytes) fails the reader instead of
  /// allocating attacker-sized buffers.
  std::string String() {
    uint32_t n = U32();
    if (!Require(n)) return {};
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  /// Bulk read into caller storage (e.g. a u64 array payload).
  bool ReadBytes(void* out, size_t n) {
    if (!Require(n)) return false;
    std::memcpy(out, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }

  void Skip(size_t n) {
    if (Require(n)) pos_ += n;
  }

  size_t remaining() const { return bytes_.size() - pos_; }
  /// Sticky: false once any read ran past the end of the buffer.
  bool ok() const { return ok_; }
  /// A fully consumed, error-free payload; decoders use this to reject
  /// trailing garbage as firmly as truncation.
  bool AtEnd() const { return ok_ && pos_ == bytes_.size(); }

 private:
  bool Require(size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const uint8_t> bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace actjoin::util

#endif  // ACTJOIN_UTIL_BYTE_IO_H_
