#include "util/flags.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/check.h"

namespace actjoin::util {

void Flags::AddDouble(const std::string& name, double default_value,
                      const std::string& help) {
  ACT_CHECK_MSG(Find(name) == nullptr, "duplicate flag registration");
  flags_.push_back({name, Type::kDouble, help, default_value, 0, false, ""});
}

void Flags::AddInt(const std::string& name, int64_t default_value,
                   const std::string& help) {
  ACT_CHECK_MSG(Find(name) == nullptr, "duplicate flag registration");
  flags_.push_back({name, Type::kInt, help, 0, default_value, false, ""});
}

void Flags::AddBool(const std::string& name, bool default_value,
                    const std::string& help) {
  ACT_CHECK_MSG(Find(name) == nullptr, "duplicate flag registration");
  flags_.push_back({name, Type::kBool, help, 0, 0, default_value, ""});
}

void Flags::AddString(const std::string& name,
                      const std::string& default_value,
                      const std::string& help) {
  ACT_CHECK_MSG(Find(name) == nullptr, "duplicate flag registration");
  flags_.push_back({name, Type::kString, help, 0, 0, false, default_value});
}

Flags::Flag* Flags::Find(const std::string& name) {
  for (auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

const Flags::Flag* Flags::Find(const std::string& name) const {
  for (const auto& f : flags_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

void Flags::PrintUsage(const char* binary) const {
  std::fprintf(stderr, "usage: %s [flags]\n", binary);
  for (const auto& f : flags_) {
    const char* type = "";
    switch (f.type) {
      case Type::kDouble: type = "double"; break;
      case Type::kInt: type = "int"; break;
      case Type::kBool: type = "bool"; break;
      case Type::kString: type = "string"; break;
    }
    std::fprintf(stderr, "  --%s (%s)  %s\n", f.name.c_str(), type,
                 f.help.c_str());
  }
}

void Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0) {
      PrintUsage(argv[0]);
      std::exit(0);
    }
  }
  std::string error;
  if (!TryParse(argc, argv, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    PrintUsage(argv[0]);
    std::exit(2);
  }
}

bool Flags::TryParse(int argc, char** argv, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      *error = "unexpected argument: " + std::string(arg);
      return false;
    }
    std::string body = arg + 2;
    std::string name;
    std::string value;
    bool has_value = false;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
      has_value = true;
    } else {
      name = body;
    }
    Flag* f = Find(name);
    if (f == nullptr) {
      *error = "unknown flag: --" + name;
      return false;
    }
    if (!has_value) {
      if (f->type == Type::kBool) {
        f->b = true;
        continue;
      }
      if (i + 1 >= argc) {
        *error = "flag --" + name + " requires a value";
        return false;
      }
      value = argv[++i];
    }
    const char* cstr = value.c_str();
    char* end = nullptr;
    switch (f->type) {
      case Type::kDouble:
        f->d = std::strtod(cstr, &end);
        if (value.empty() || *end != '\0') {
          *error = "malformed value for --" + name + ": '" + value + "'";
          return false;
        }
        break;
      case Type::kInt:
        f->i = std::strtoll(cstr, &end, 10);
        if (value.empty() || *end != '\0') {
          *error = "malformed value for --" + name + ": '" + value + "'";
          return false;
        }
        break;
      case Type::kBool:
        if (value == "true" || value == "1") {
          f->b = true;
        } else if (value == "false" || value == "0") {
          f->b = false;
        } else {
          *error = "malformed value for --" + name + ": '" + value +
                   "' (want true/false/1/0)";
          return false;
        }
        break;
      case Type::kString:
        f->s = value;
        break;
    }
  }
  return true;
}

double Flags::GetDouble(const std::string& name) const {
  const Flag* f = Find(name);
  return f ? f->d : 0;
}

int64_t Flags::GetInt(const std::string& name) const {
  const Flag* f = Find(name);
  return f ? f->i : 0;
}

bool Flags::GetBool(const std::string& name) const {
  const Flag* f = Find(name);
  return f ? f->b : false;
}

const std::string& Flags::GetString(const std::string& name) const {
  static const std::string kEmpty;
  const Flag* f = Find(name);
  return f ? f->s : kEmpty;
}

}  // namespace actjoin::util
