#include "workloads/wkt.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace actjoin::wl {

namespace {

// Recursive-descent scanner over the WKT text.
class Scanner {
 public:
  explicit Scanner(std::string_view text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(std::string_view word) {
    SkipSpace();
    if (text_.size() - pos_ < word.size()) return false;
    for (size_t k = 0; k < word.size(); ++k) {
      if (std::toupper(static_cast<unsigned char>(text_[pos_ + k])) !=
          word[k]) {
        return false;
      }
    }
    pos_ += word.size();
    return true;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Number(double* out) {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    auto [ptr, ec] = std::from_chars(begin, end, *out);
    if (ec != std::errc() || ptr == begin) return false;
    pos_ += static_cast<size_t>(ptr - begin);
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

// ( x y, x y, ... )  — returns an open ring (closing duplicate dropped).
bool ParseRing(Scanner* s, geom::Ring* ring) {
  if (!s->Consume('(')) return false;
  do {
    geom::Point p;
    if (!s->Number(&p.x) || !s->Number(&p.y)) return false;
    ring->push_back(p);
  } while (s->Consume(','));
  if (!s->Consume(')')) return false;
  if (ring->size() >= 2 && ring->front() == ring->back()) ring->pop_back();
  return ring->size() >= 3;
}

// ( ring, ring, ... ) appended to *poly.
bool ParseRingList(Scanner* s, geom::Polygon* poly) {
  if (!s->Consume('(')) return false;
  do {
    geom::Ring ring;
    if (!ParseRing(s, &ring)) return false;
    poly->AddRing(std::move(ring));
  } while (s->Consume(','));
  return s->Consume(')');
}

}  // namespace

std::optional<geom::Polygon> ParseWkt(std::string_view text) {
  Scanner s(text);
  geom::Polygon poly;
  if (s.ConsumeKeyword("MULTIPOLYGON")) {
    if (!s.Consume('(')) return std::nullopt;
    do {
      if (!ParseRingList(&s, &poly)) return std::nullopt;
    } while (s.Consume(','));
    if (!s.Consume(')')) return std::nullopt;
  } else if (s.ConsumeKeyword("POLYGON")) {
    if (!ParseRingList(&s, &poly)) return std::nullopt;
  } else {
    return std::nullopt;
  }
  if (!s.AtEnd()) return std::nullopt;
  return poly;
}

std::optional<std::vector<geom::Polygon>> ParseWktCollection(
    std::string_view text, size_t* error_line) {
  std::vector<geom::Polygon> out;
  size_t line_no = 0;
  size_t begin = 0;
  while (begin <= text.size()) {
    size_t end = text.find('\n', begin);
    if (end == std::string_view::npos) end = text.size();
    std::string_view line = text.substr(begin, end - begin);
    ++line_no;
    begin = end + 1;
    // Trim and skip blanks/comments.
    size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos) {
      if (end == text.size()) break;
      continue;
    }
    if (line[first] == '#') continue;
    std::optional<geom::Polygon> poly = ParseWkt(line.substr(first));
    if (!poly.has_value()) {
      if (error_line != nullptr) *error_line = line_no;
      return std::nullopt;
    }
    out.push_back(std::move(*poly));
    if (end == text.size()) break;
  }
  return out;
}

std::string ToWkt(const geom::Polygon& poly) {
  std::string out;
  bool multi = poly.rings().size() != 1;
  out += multi ? "MULTIPOLYGON (" : "POLYGON (";
  bool first_ring = true;
  for (const geom::Ring& ring : poly.rings()) {
    if (!first_ring) out += ", ";
    first_ring = false;
    out += multi ? "((" : "(";
    char buf[64];
    for (const geom::Point& p : ring) {
      std::snprintf(buf, sizeof(buf), "%.9g %.9g, ", p.x, p.y);
      out += buf;
    }
    // Close the ring by repeating the first vertex.
    std::snprintf(buf, sizeof(buf), "%.9g %.9g", ring.front().x,
                  ring.front().y);
    out += buf;
    out += multi ? "))" : ")";
  }
  out += ")";
  return out;
}

}  // namespace actjoin::wl
