#include "workloads/polygon_gen.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace actjoin::wl {

namespace {

using geom::Point;
using geom::Polygon;
using geom::Rect;
using geom::Ring;

// Deterministic per-object seeds derived from the spec seed and an object
// id, so shared edges are identical regardless of which polygon asks.
uint64_t SubSeed(uint64_t seed, uint64_t kind, uint64_t id) {
  return util::SplitMix64(seed ^ (kind * 0x9e3779b97f4a7c15ULL) ^ id);
}

// Recursive midpoint displacement between fixed endpoints. Appends the
// interior vertices of the polyline (excluding both endpoints) to *out.
// The maximum perpendicular excursion is bounded by
// displacement * |b - a| * sum(0.5^k) < displacement * |b - a|,
// so tube widths stay below half a grid cell for displacement < 0.5.
void Subdivide(const Point& a, const Point& b, int depth, double displacement,
               util::Rng* rng, std::vector<Point>* out) {
  if (depth == 0) return;
  Point mid{(a.x + b.x) / 2, (a.y + b.y) / 2};
  double dx = b.x - a.x;
  double dy = b.y - a.y;
  double len = std::sqrt(dx * dx + dy * dy);
  if (len > 0) {
    // Perpendicular offset, uniform in [-displacement, displacement] * len.
    double off = rng->Uniform(-displacement, displacement) * len;
    mid.x += -dy / len * off;
    mid.y += dx / len * off;
  }
  Subdivide(a, mid, depth - 1, displacement / 2, rng, out);
  out->push_back(mid);
  Subdivide(mid, b, depth - 1, displacement / 2, rng, out);
}

}  // namespace

std::vector<Polygon> JitteredPartition(const PartitionSpec& spec) {
  ACT_CHECK(spec.nx >= 1 && spec.ny >= 1);
  ACT_CHECK(!spec.mbr.IsEmpty());
  ACT_CHECK_MSG(spec.vertex_jitter >= 0 && spec.vertex_jitter < 0.5,
                "vertex jitter must stay below half a cell");
  ACT_CHECK_MSG(spec.displacement >= 0 && spec.displacement < 0.45,
                "displacement must keep edge tubes inside cells");

  const int nx = spec.nx, ny = spec.ny;
  const double cw = spec.mbr.Width() / nx;
  const double ch = spec.mbr.Height() / ny;

  // Lattice vertices: boundary vertices stay fixed so the partition tiles
  // the MBR exactly; interior vertices are jittered.
  auto vertex = [&](int gx, int gy) -> Point {
    Point p{spec.mbr.lo.x + gx * cw, spec.mbr.lo.y + gy * ch};
    if (gx > 0 && gx < nx && gy > 0 && gy < ny) {
      util::Rng rng(SubSeed(spec.seed, 1,
                            static_cast<uint64_t>(gy) * (nx + 1) + gx));
      p.x += rng.Uniform(-spec.vertex_jitter, spec.vertex_jitter) * cw;
      p.y += rng.Uniform(-spec.vertex_jitter, spec.vertex_jitter) * ch;
    }
    return p;
  };

  // Shared edge polylines. Edge id encodes orientation and lattice slot;
  // the polyline always runs from the lexicographically smaller endpoint.
  // Straight MBR-boundary edges are not displaced.
  auto edge_polyline = [&](int gx, int gy, bool horizontal) {
    std::vector<Point> pts;
    Point a = vertex(gx, gy);
    Point b = horizontal ? vertex(gx + 1, gy) : vertex(gx, gy + 1);
    bool on_border = horizontal ? (gy == 0 || gy == ny) : (gx == 0 || gx == nx);
    pts.push_back(a);
    if (spec.edge_depth > 0 && (!on_border || spec.subdivide_border)) {
      uint64_t id = (static_cast<uint64_t>(horizontal ? 0 : 1) << 40) |
                    (static_cast<uint64_t>(gy) << 20) |
                    static_cast<uint64_t>(gx);
      util::Rng rng(SubSeed(spec.seed, 2, id));
      // Border edges stay straight (zero displacement) so the partition
      // still tiles the MBR exactly.
      double displacement = on_border ? 0.0 : spec.displacement;
      Subdivide(a, b, spec.edge_depth, displacement, &rng, &pts);
    }
    pts.push_back(b);
    return pts;
  };

  std::vector<Polygon> out;
  out.reserve(static_cast<size_t>(nx) * ny);
  for (int gy = 0; gy < ny; ++gy) {
    for (int gx = 0; gx < nx; ++gx) {
      Ring ring;
      // Counter-clockwise: bottom edge forward, right edge forward, top
      // edge reversed, left edge reversed. Shared polylines are regenerated
      // from the same seed, so adjacent polygons match vertex for vertex.
      auto append = [&](std::vector<Point> pts, bool reverse) {
        if (reverse) std::reverse(pts.begin(), pts.end());
        pts.pop_back();  // next edge contributes the shared corner
        ring.insert(ring.end(), pts.begin(), pts.end());
      };
      append(edge_polyline(gx, gy, /*horizontal=*/true), false);   // bottom
      append(edge_polyline(gx + 1, gy, /*horizontal=*/false), false);  // right
      append(edge_polyline(gx, gy + 1, /*horizontal=*/true), true);    // top
      append(edge_polyline(gx, gy, /*horizontal=*/false), true);       // left

      if (spec.overlap_dilation > 0) {
        Point c{0, 0};
        for (const Point& p : ring) c = c + p;
        c = c * (1.0 / ring.size());
        for (Point& p : ring) {
          p = c + (p - c) * (1.0 + spec.overlap_dilation);
        }
      }
      out.emplace_back(std::move(ring));
    }
  }
  return out;
}

Polygon RandomStarPolygon(const Point& center, double radius, int vertices,
                          uint64_t seed) {
  ACT_CHECK(vertices >= 3);
  util::Rng rng(seed);
  Ring ring;
  ring.reserve(vertices);
  for (int k = 0; k < vertices; ++k) {
    double angle = 2 * 3.141592653589793 * k / vertices;
    double r = radius * rng.Uniform(0.4, 1.0);
    ring.push_back({center.x + r * std::cos(angle),
                    center.y + r * std::sin(angle)});
  }
  return Polygon(std::move(ring));
}

}  // namespace actjoin::wl
