// Minimal WKT (Well-Known Text) polygon I/O.
//
// The paper's polygon inputs are real-world datasets (NYC boroughs,
// neighborhoods, census blocks) that ship as WKT/shapefiles; this reader
// lets users feed such data to the index without extra dependencies.
// Supported: POLYGON and MULTIPOLYGON with optional holes, the subset
// needed for largely disjoint region sets. Coordinates are lng lat (WKT
// x y order), matching the geometry kernel.

#ifndef ACTJOIN_WORKLOADS_WKT_H_
#define ACTJOIN_WORKLOADS_WKT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "geometry/polygon.h"

namespace actjoin::wl {

/// Parses one POLYGON ((...)) or MULTIPOLYGON (((...))) literal. Rings may
/// repeat the first vertex at the end (standard WKT closure); the duplicate
/// is dropped. Returns nullopt on malformed input.
std::optional<geom::Polygon> ParseWkt(std::string_view text);

/// Parses newline-separated WKT polygons, skipping blank lines and lines
/// starting with '#'. Returns nullopt if any line fails to parse (the
/// error line index is written to *error_line if provided).
std::optional<std::vector<geom::Polygon>> ParseWktCollection(
    std::string_view text, size_t* error_line = nullptr);

/// Formats a polygon as POLYGON/MULTIPOLYGON (closing vertex repeated, 9
/// significant digits). Single-ring polygons emit POLYGON; everything else
/// MULTIPOLYGON with one ring per part (holes are not re-associated with
/// shells — even-odd semantics make the flat form equivalent for point
/// containment).
std::string ToWkt(const geom::Polygon& poly);

}  // namespace actjoin::wl

#endif  // ACTJOIN_WORKLOADS_WKT_H_
