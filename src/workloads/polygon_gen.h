// Synthetic polygon datasets (substitute for the paper's NYC shapefiles).
//
// The paper joins against three NYC polygon datasets of increasing
// granularity: boroughs (5 polygons, avg 662 vertices), neighborhoods (289,
// avg 29.6), census blocks (39184, avg 12.5) — same area, very different
// polygon complexity. What the experiments actually exercise is (a) polygon
// count, (b) boundary complexity, (c) an exact spatial partition (largely
// disjoint polygons).
//
// JitteredPartition reproduces those knobs: an nx * ny grid over an MBR
// whose lattice vertices are jittered and whose shared edges are refined by
// midpoint displacement (each shared polyline computed once from an
// edge-specific seed, so neighboring polygons tile exactly with no gaps or
// overlaps). edge_depth d gives 2^d segments per side, i.e. roughly 4*2^d
// vertices per polygon.

#ifndef ACTJOIN_WORKLOADS_POLYGON_GEN_H_
#define ACTJOIN_WORKLOADS_POLYGON_GEN_H_

#include <cstdint>
#include <vector>

#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace actjoin::wl {

struct PartitionSpec {
  geom::Rect mbr;
  int nx = 1;               // grid columns
  int ny = 1;               // grid rows
  int edge_depth = 0;       // midpoint-displacement recursion depth
  double vertex_jitter = 0.35;   // lattice vertex jitter, fraction of cell
  /// Midpoint displacement as a fraction of the current segment length.
  /// Keep small: the displaced boundary meanders within a tube of roughly
  /// +-1.3 * displacement * edge_length, and real administrative borders
  /// have fine detail rather than wide meanders — an overly wide tube
  /// depresses true-hit filtering below anything observed on real data.
  double displacement = 0.08;
  uint64_t seed = 1;
  /// If > 0, every cell polygon is dilated outward around its centroid by
  /// this fraction, producing overlapping polygons (tests the multi-
  /// reference paths of the super covering).
  double overlap_dilation = 0;
  /// Also subdivide the straight MBR-border edges (zero displacement keeps
  /// the partition tiling the MBR exactly). Raises vertex counts — used by
  /// the borough analogs, whose PIP cost must reflect many edges.
  bool subdivide_border = false;
};

/// Generates nx * ny polygons tiling spec.mbr (exactly, when
/// overlap_dilation == 0). Polygon ids are row-major grid order.
std::vector<geom::Polygon> JitteredPartition(const PartitionSpec& spec);

/// Random star-shaped simple polygon around a center; unit-test helper.
geom::Polygon RandomStarPolygon(const geom::Point& center, double radius,
                                int vertices, uint64_t seed);

}  // namespace actjoin::wl

#endif  // ACTJOIN_WORKLOADS_POLYGON_GEN_H_
