// Synthetic point workloads (substitute for NYC taxi pick-ups and
// geo-tagged tweets).
//
// The paper's throughput effects hinge on point skew: real taxi/tweet data
// is highly clustered ("the majority of points located in Manhattan (>90%)
// and around the airports"), which keeps hot trie paths cached, versus
// uniform data which maximizes branch/cache misses. HotspotPoints emulates
// the former with a Gaussian-mixture model (one dominant dense strip plus a
// few satellite clusters over a uniform background); UniformPoints the
// latter.

#ifndef ACTJOIN_WORKLOADS_POINT_GEN_H_
#define ACTJOIN_WORKLOADS_POINT_GEN_H_

#include <cstdint>
#include <vector>

#include "act/join.h"
#include "geo/grid.h"
#include "geometry/point.h"
#include "geometry/rect.h"

namespace actjoin::wl {

/// A materialized point workload: planar coordinates plus precomputed leaf
/// cell ids (the paper converts to cell ids "prior to performing any
/// experiments").
class PointSet {
 public:
  PointSet() = default;
  PointSet(std::vector<geom::Point> points, const geo::Grid& grid);

  uint64_t size() const { return points_.size(); }
  const std::vector<geom::Point>& points() const { return points_; }
  const std::vector<uint64_t>& cell_ids() const { return cell_ids_; }

  act::JoinInput AsJoinInput() const {
    return {cell_ids_, points_};
  }

  /// First n points as a join input (prefix slicing for sweeps).
  act::JoinInput Prefix(uint64_t n) const {
    n = n > size() ? size() : n;
    return {std::span(cell_ids_).subspan(0, n),
            std::span(points_).subspan(0, n)};
  }

 private:
  std::vector<geom::Point> points_;
  std::vector<uint64_t> cell_ids_;
};

/// One Gaussian cluster of a hotspot mixture.
struct Hotspot {
  geom::Point center;
  double sigma_x = 0;  // in the same units as the MBR (degrees)
  double sigma_y = 0;
  double weight = 0;   // relative mass
};

/// n points uniform in the MBR.
PointSet UniformPoints(const geom::Rect& mbr, uint64_t n, uint64_t seed,
                       const geo::Grid& grid);

/// n points from the hotspot mixture; `background_weight` of the mass is
/// uniform over the MBR. Samples falling outside the MBR are re-drawn, so
/// every point lies inside (mirroring the paper's extraction of points by
/// dataset MBR).
PointSet HotspotPoints(const geom::Rect& mbr, uint64_t n, uint64_t seed,
                       const geo::Grid& grid,
                       const std::vector<Hotspot>& hotspots,
                       double background_weight);

/// Default taxi-like mixture for an MBR: one dominant dense strip
/// ("Manhattan", ~75% of mass), two compact satellite clusters
/// ("airports"), 10% uniform background.
std::vector<Hotspot> DefaultCityHotspots(const geom::Rect& mbr);

}  // namespace actjoin::wl

#endif  // ACTJOIN_WORKLOADS_POINT_GEN_H_
