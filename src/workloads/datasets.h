// Named dataset presets mirroring the paper's evaluation workloads.
//
// Polygon datasets (paper Table 1): boroughs (5 polygons, avg 662
// vertices), neighborhoods (289 / 29.6), census (39184 / 12.5) — all over
// the same NYC-sized extent. Twitter city presets (Fig. 9): NYC 289, SF
// 117, LA 160, BOS 42 neighborhood polygons. A global `scale` shrinks the
// polygon counts (and point counts) so benches fit small machines; scale=1
// reproduces the paper's counts.

#ifndef ACTJOIN_WORKLOADS_DATASETS_H_
#define ACTJOIN_WORKLOADS_DATASETS_H_

#include <string>
#include <vector>

#include "workloads/point_gen.h"
#include "workloads/polygon_gen.h"

namespace actjoin::wl {

/// NYC-sized extent (lng, lat degrees): the taxi dataset's home.
geom::Rect NycMbr();

struct PolygonDataset {
  std::string name;
  std::vector<geom::Polygon> polygons;
  geom::Rect mbr;

  double AvgVertices() const {
    if (polygons.empty()) return 0;
    double sum = 0;
    for (const auto& p : polygons) sum += p.num_vertices();
    return sum / polygons.size();
  }
};

/// Boroughs analog: few polygons with very complex boundaries.
PolygonDataset Boroughs(double scale = 1.0, uint64_t seed = 11);
/// Neighborhoods analog: ~289 medium polygons at scale 1.
PolygonDataset Neighborhoods(double scale = 1.0, uint64_t seed = 22);
/// Census analog: tens of thousands of simple polygons at scale 1.
PolygonDataset Census(double scale = 1.0, uint64_t seed = 33);

/// The paper's three NYC datasets, coarse to fine.
std::vector<PolygonDataset> NycDatasets(double scale = 1.0);

/// Twitter-city analog: a neighborhoods-style partition with
/// `polygon_count` polygons over a city-specific extent.
PolygonDataset City(const std::string& name, int polygon_count,
                    uint64_t seed);

/// Fig. 9 presets: {NYC 289, SF 117, LA 160, BOS 42} at scale 1.
std::vector<PolygonDataset> TwitterCities(double scale = 1.0);

/// Taxi-analog points: clustered over the dataset's extent.
PointSet TaxiPoints(const geom::Rect& mbr, uint64_t n, const geo::Grid& grid,
                    uint64_t seed = 7);

/// Uniform synthetic points over the dataset's extent (Fig. 8).
PointSet SyntheticUniformPoints(const geom::Rect& mbr, uint64_t n,
                                const geo::Grid& grid, uint64_t seed = 8);

}  // namespace actjoin::wl

#endif  // ACTJOIN_WORKLOADS_DATASETS_H_
