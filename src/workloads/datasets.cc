#include "workloads/datasets.h"

#include <algorithm>
#include <cmath>

namespace actjoin::wl {

namespace {

// Rounds sqrt(n) to a grid dimension of at least 1.
int GridDim(double n) {
  return std::max(1, static_cast<int>(std::lround(std::sqrt(n))));
}

PolygonDataset FromSpec(const std::string& name, const PartitionSpec& spec) {
  PolygonDataset d;
  d.name = name;
  d.polygons = JitteredPartition(spec);
  d.mbr = spec.mbr;
  return d;
}

}  // namespace

geom::Rect NycMbr() {
  // lng in [-74.26, -73.69], lat in [40.49, 40.92] — the taxi data extent.
  return geom::Rect::Of(-74.26, 40.49, -73.69, 40.92);
}

PolygonDataset Boroughs(double scale, uint64_t seed) {
  // 5 polygons with ~512 vertices each (paper: 5 / avg 662): a 1x5 split
  // with deeply subdivided edges (2^7 = 128 segments per side, border
  // sides straight but vertex-dense, interior sides jagged).
  PartitionSpec spec;
  spec.mbr = NycMbr();
  spec.nx = std::max(2, static_cast<int>(std::lround(5 * scale)));
  spec.ny = 1;
  spec.edge_depth = 7;
  spec.vertex_jitter = 0.3;
  // Borough borders are tens of km long; keep the meander tube narrow
  // (detail-rich but not space-filling) so interior coverings behave like
  // they do on the real polygons.
  spec.displacement = 0.02;
  spec.subdivide_border = true;
  spec.seed = seed;
  return FromSpec("boroughs", spec);
}

PolygonDataset Neighborhoods(double scale, uint64_t seed) {
  // 17x17 = 289 polygons at scale 1; edge_depth 3 => ~32 vertices each
  // (paper: 289 polygons, avg 29.6 vertices).
  PartitionSpec spec;
  spec.mbr = NycMbr();
  spec.nx = spec.ny = GridDim(17 * 17 * scale);
  spec.edge_depth = 3;
  spec.seed = seed;
  return FromSpec("neighborhoods", spec);
}

PolygonDataset Census(double scale, uint64_t seed) {
  // 198x198 = 39204 polygons at scale 1; edge_depth 1 => ~8-12 vertices
  // (paper: 39184 polygons, avg 12.5 vertices).
  PartitionSpec spec;
  spec.mbr = NycMbr();
  spec.nx = spec.ny = GridDim(198.0 * 198.0 * scale);
  spec.edge_depth = 1;
  spec.seed = seed;
  return FromSpec("census", spec);
}

std::vector<PolygonDataset> NycDatasets(double scale) {
  return {Boroughs(scale), Neighborhoods(scale), Census(scale)};
}

PolygonDataset City(const std::string& name, int polygon_count,
                    uint64_t seed) {
  // City extents roughly proportional to the real metros; exact values are
  // immaterial, polygon count is the experimental variable (Fig. 9).
  geom::Rect mbr;
  if (name == "NYC") {
    mbr = NycMbr();
  } else if (name == "SF") {
    mbr = geom::Rect::Of(-122.52, 37.70, -122.35, 37.83);
  } else if (name == "LA") {
    mbr = geom::Rect::Of(-118.67, 33.70, -118.16, 34.34);
  } else {  // BOS
    mbr = geom::Rect::Of(-71.19, 42.23, -70.92, 42.40);
  }
  PartitionSpec spec;
  spec.mbr = mbr;
  spec.nx = spec.ny = GridDim(polygon_count);
  spec.edge_depth = 3;
  spec.seed = seed;
  return FromSpec(name, spec);
}

std::vector<PolygonDataset> TwitterCities(double scale) {
  return {
      City("NYC", std::max(1, static_cast<int>(289 * scale)), 101),
      City("BOS", std::max(1, static_cast<int>(42 * scale)), 102),
      City("LA", std::max(1, static_cast<int>(160 * scale)), 103),
      City("SF", std::max(1, static_cast<int>(117 * scale)), 104),
  };
}

PointSet TaxiPoints(const geom::Rect& mbr, uint64_t n, const geo::Grid& grid,
                    uint64_t seed) {
  return HotspotPoints(mbr, n, seed, grid, DefaultCityHotspots(mbr),
                       /*background_weight=*/0.10);
}

PointSet SyntheticUniformPoints(const geom::Rect& mbr, uint64_t n,
                                const geo::Grid& grid, uint64_t seed) {
  return UniformPoints(mbr, n, seed, grid);
}

}  // namespace actjoin::wl
