#include "workloads/point_gen.h"

#include "util/check.h"
#include "util/random.h"

namespace actjoin::wl {

using geom::Point;
using geom::Rect;

PointSet::PointSet(std::vector<Point> points, const geo::Grid& grid)
    : points_(std::move(points)) {
  cell_ids_.reserve(points_.size());
  for (const Point& p : points_) {
    cell_ids_.push_back(grid.CellAt({p.y, p.x}).id());
  }
}

PointSet UniformPoints(const Rect& mbr, uint64_t n, uint64_t seed,
                       const geo::Grid& grid) {
  ACT_CHECK(!mbr.IsEmpty());
  util::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint64_t k = 0; k < n; ++k) {
    pts.push_back({rng.Uniform(mbr.lo.x, mbr.hi.x),
                   rng.Uniform(mbr.lo.y, mbr.hi.y)});
  }
  return PointSet(std::move(pts), grid);
}

PointSet HotspotPoints(const Rect& mbr, uint64_t n, uint64_t seed,
                       const geo::Grid& grid,
                       const std::vector<Hotspot>& hotspots,
                       double background_weight) {
  ACT_CHECK(!mbr.IsEmpty());
  ACT_CHECK(!hotspots.empty());
  ACT_CHECK(background_weight >= 0 && background_weight <= 1);
  double total = 0;
  for (const Hotspot& h : hotspots) total += h.weight;
  ACT_CHECK(total > 0);

  util::Rng rng(seed);
  std::vector<Point> pts;
  pts.reserve(n);
  while (pts.size() < n) {
    Point p;
    if (rng.NextDouble() < background_weight) {
      p = {rng.Uniform(mbr.lo.x, mbr.hi.x), rng.Uniform(mbr.lo.y, mbr.hi.y)};
    } else {
      double pick = rng.NextDouble() * total;
      const Hotspot* h = &hotspots.back();
      for (const Hotspot& cand : hotspots) {
        if (pick < cand.weight) {
          h = &cand;
          break;
        }
        pick -= cand.weight;
      }
      p = {h->center.x + rng.Gaussian() * h->sigma_x,
           h->center.y + rng.Gaussian() * h->sigma_y};
      if (!mbr.Contains(p)) continue;  // redraw outside the dataset MBR
    }
    pts.push_back(p);
  }
  return PointSet(std::move(pts), grid);
}

std::vector<Hotspot> DefaultCityHotspots(const Rect& mbr) {
  // Real pickup hotspots sit deep inside districts (midtown Manhattan, the
  // airport aprons), not on administrative borders. The centers below are
  // aligned with the centers of the synthetic borough columns (fifths of
  // the extent) so the clustered mass is interior at every dataset
  // granularity, mirroring the paper's ">90% of points in Manhattan".
  double w = mbr.Width();
  double h = mbr.Height();
  Point c = mbr.Center();
  return {
      // Dense elongated downtown strip, ~75% of the clustered mass.
      {{c.x - 0.2 * w, c.y + 0.05 * h}, 0.022 * w, 0.15 * h, 0.75},
      // Two compact satellite clusters ("airports").
      {{c.x + 0.2 * w, c.y - 0.22 * h}, 0.012 * w, 0.012 * h, 0.15},
      {{c.x, c.y + 0.28 * h}, 0.010 * w, 0.010 * h, 0.10},
  };
}

}  // namespace actjoin::wl
