#include "baselines/raster_join.h"

#include <algorithm>
#include <cmath>

#include "geo/latlng.h"
#include "geometry/pip.h"
#include "geometry/segment.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::baselines {

using geom::Point;
using geom::Rect;

RasterJoin::RasterJoin(const std::vector<geom::Polygon>& polygons,
                       const Rect& mbr, const RasterJoinOptions& opts)
    : polygons_(&polygons), mbr_(mbr), opts_(opts) {
  ACT_CHECK(!mbr.IsEmpty());
  ACT_CHECK(opts.native_resolution >= 16);

  // Resolution from the precision bound: pixel diagonal <= bound, with the
  // longitude scale evaluated where degrees are widest (closest to the
  // equator), exactly like the grid's conservative diagonal.
  if (opts_.precision_bound_m > 0) {
    double widest_lat = (mbr.lo.y <= 0 && mbr.hi.y >= 0)
                            ? 0
                            : std::min(std::abs(mbr.lo.y), std::abs(mbr.hi.y));
    double width_m = mbr.Width() * geo::MetersPerDegreeLng(widest_lat);
    double height_m = mbr.Height() * geo::kMetersPerDegreeLat;
    double side = opts_.precision_bound_m / std::sqrt(2.0);
    nx_ = std::max(1, static_cast<int>(std::ceil(width_m / side)));
    ny_ = std::max(1, static_cast<int>(std::ceil(height_m / side)));
  } else {
    nx_ = ny_ = opts_.native_resolution;
  }
  passes_x_ = (nx_ + opts_.native_resolution - 1) / opts_.native_resolution;
  passes_y_ = (ny_ + opts_.native_resolution - 1) / opts_.native_resolution;
  inv_px_ = nx_ / mbr_.Width();
  inv_py_ = ny_ / mbr_.Height();

  util::WallTimer timer;
  Rasterize();
  build_seconds_ = timer.ElapsedSeconds();
}

int RasterJoin::PixelX(double x) const {
  int p = static_cast<int>((x - mbr_.lo.x) * inv_px_);
  return std::clamp(p, 0, nx_ - 1);
}

int RasterJoin::PixelY(double y) const {
  int p = static_cast<int>((y - mbr_.lo.y) * inv_py_);
  return std::clamp(p, 0, ny_ - 1);
}

namespace {

void MergePid(util::SmallVector<uint32_t, 2>* refs, uint32_t pid) {
  for (uint32_t existing : *refs) {
    if (existing == pid) return;
  }
  refs->push_back(pid);
}

}  // namespace

void RasterJoin::Rasterize() {
  rows_.assign(ny_, {});
  double pw = mbr_.Width() / nx_;
  double ph = mbr_.Height() / ny_;

  // Conservative boundary rasterization: recursively split each edge until
  // its pixel bounding box is small, then do exact segment/pixel tests.
  // Guarantees every pixel the boundary touches is marked, which is what
  // makes interior spans trustworthy (a span pixel without a boundary mark
  // is uniformly inside).
  auto mark_boundary = [&](uint32_t pid, Point a, Point b) {
    struct Frame {
      Point a, b;
    };
    std::vector<Frame> stack{{a, b}};
    while (!stack.empty()) {
      Frame f = stack.back();
      stack.pop_back();
      int x0 = PixelX(std::min(f.a.x, f.b.x));
      int x1 = PixelX(std::max(f.a.x, f.b.x));
      int y0 = PixelY(std::min(f.a.y, f.b.y));
      int y1 = PixelY(std::max(f.a.y, f.b.y));
      int64_t pixels =
          static_cast<int64_t>(x1 - x0 + 1) * (y1 - y0 + 1);
      if (pixels > 16) {
        Point mid{(f.a.x + f.b.x) / 2, (f.a.y + f.b.y) / 2};
        stack.push_back({f.a, mid});
        stack.push_back({mid, f.b});
        continue;
      }
      for (int y = y0; y <= y1; ++y) {
        for (int x = x0; x <= x1; ++x) {
          Rect pixel = Rect::Of(mbr_.lo.x + x * pw, mbr_.lo.y + y * ph,
                                mbr_.lo.x + (x + 1) * pw,
                                mbr_.lo.y + (y + 1) * ph);
          if (geom::SegmentIntersectsRect(f.a, f.b, pixel)) {
            MergePid(&boundary_[static_cast<uint64_t>(y) * nx_ + x], pid);
          }
        }
      }
    }
  };

  for (uint32_t pid = 0; pid < polygons_->size(); ++pid) {
    const geom::Polygon& poly = (*polygons_)[pid];
    for (uint32_t e = 0; e < poly.num_edges(); ++e) {
      auto [a, b] = poly.Edge(e);
      mark_boundary(pid, a, b);
    }

    // Interior spans via scanline at pixel-row centers.
    int y_lo = PixelY(poly.mbr().lo.y);
    int y_hi = PixelY(poly.mbr().hi.y);
    std::vector<double> xs;
    for (int y = y_lo; y <= y_hi; ++y) {
      double yc = mbr_.lo.y + (y + 0.5) * ph;
      xs.clear();
      for (uint32_t e = 0; e < poly.num_edges(); ++e) {
        auto [a, b] = poly.Edge(e);
        if ((a.y > yc) != (b.y > yc)) {
          xs.push_back(a.x + (yc - a.y) * (b.x - a.x) / (b.y - a.y));
        }
      }
      if (xs.size() < 2) continue;
      std::sort(xs.begin(), xs.end());
      for (size_t k = 0; k + 1 < xs.size(); k += 2) {
        // Pixels whose center x lies in (xs[k], xs[k+1]).
        double c0 = (xs[k] - mbr_.lo.x) * inv_px_ - 0.5;
        double c1 = (xs[k + 1] - mbr_.lo.x) * inv_px_ - 0.5;
        int p0 = static_cast<int>(std::ceil(c0));
        int p1 = static_cast<int>(std::floor(c1));
        p0 = std::max(p0, 0);
        p1 = std::min(p1, nx_ - 1);
        if (p0 > p1) continue;
        rows_[y].spans.push_back({p0, p1 + 1, pid});
        ++num_spans_;
      }
    }
  }
  for (Row& row : rows_) {
    std::sort(row.spans.begin(), row.spans.end(),
              [](const Span& a, const Span& b) {
                return a.x_begin < b.x_begin;
              });
    row.prefix_max.resize(row.spans.size());
    int32_t running = INT32_MIN;
    for (size_t k = 0; k < row.spans.size(); ++k) {
      running = std::max(running, row.spans[k].x_end);
      row.prefix_max[k] = running;
    }
  }
}

act::JoinStats RasterJoin::Execute(const act::JoinInput& input,
                                   int threads) const {
  if (threads <= 0) threads = util::DefaultThreadCount();
  struct ThreadState {
    std::vector<uint64_t> counts;
    uint64_t matched = 0, pairs = 0, pip_tests = 0, pip_hits = 0;
    uint64_t true_refs = 0, cand_refs = 0, sth = 0;
  };
  std::vector<ThreadState> states(threads);
  for (auto& s : states) s.counts.assign(polygons_->size(), 0);

  const int tile = opts_.native_resolution;
  util::WallTimer timer;
  // One rendering pass per scene tile; every pass scans the full point set
  // and joins only the points in its viewport (the GPU pipeline's behavior
  // once the scene must be split).
  for (int ty = 0; ty < passes_y_; ++ty) {
    for (int tx = 0; tx < passes_x_; ++tx) {
      int vx0 = tx * tile, vx1 = std::min((tx + 1) * tile, nx_);
      int vy0 = ty * tile, vy1 = std::min((ty + 1) * tile, ny_);
      util::ParallelFor(
          input.size(), threads, [&](uint64_t begin, uint64_t end, int tid) {
            ThreadState& st = states[tid];
            for (uint64_t p = begin; p < end; ++p) {
              const Point& pt = input.points[p];
              if (!mbr_.Contains(pt)) {
                if (tx == 0 && ty == 0) ++st.sth;
                continue;
              }
              int px = PixelX(pt.x);
              int py = PixelY(pt.y);
              if (px < vx0 || px >= vx1 || py < vy0 || py >= vy1) continue;

              uint64_t pairs_before = st.pairs;
              bool had_candidate = false;
              // Boundary refs (candidates).
              const BoundaryRefs* brefs = nullptr;
              auto it = boundary_.find(static_cast<uint64_t>(py) * nx_ + px);
              if (it != boundary_.end()) brefs = &it->second;
              if (brefs != nullptr) {
                had_candidate = true;
                for (uint32_t pid : *brefs) {
                  ++st.cand_refs;
                  if (!opts_.accurate) {
                    ++st.counts[pid];
                    ++st.pairs;
                    continue;
                  }
                  ++st.pip_tests;
                  if (geom::ContainsPoint((*polygons_)[pid], pt)) {
                    ++st.pip_hits;
                    ++st.counts[pid];
                    ++st.pairs;
                  }
                }
              }
              // Interior spans (true hits) for polygons without a boundary
              // mark on this pixel.
              const Row& row = rows_[py];
              auto span_it = std::upper_bound(
                  row.spans.begin(), row.spans.end(), px,
                  [](int x, const Span& s) { return x < s.x_begin; });
              while (span_it != row.spans.begin()) {
                --span_it;
                // All spans to the left end at or before prefix_max; once
                // that bound drops below the pixel, nothing can cover it.
                size_t idx = span_it - row.spans.begin();
                if (row.prefix_max[idx] <= px) break;
                if (span_it->x_end <= px) continue;
                uint32_t pid = span_it->polygon_id;
                bool on_boundary_pixel = false;
                if (brefs != nullptr) {
                  for (uint32_t b : *brefs) on_boundary_pixel |= (b == pid);
                }
                if (on_boundary_pixel) continue;  // handled above
                ++st.true_refs;
                ++st.counts[pid];
                ++st.pairs;
              }
              if (st.pairs != pairs_before) ++st.matched;
              if (!had_candidate) ++st.sth;
            }
          });
    }
  }

  act::JoinStats out;
  out.seconds = timer.ElapsedSeconds();
  out.num_points = input.size();
  out.counts.assign(polygons_->size(), 0);
  for (const ThreadState& st : states) {
    out.matched_points += st.matched;
    out.result_pairs += st.pairs;
    out.true_hit_refs += st.true_refs;
    out.candidate_refs += st.cand_refs;
    out.pip_tests += st.pip_tests;
    out.pip_hits += st.pip_hits;
    out.sth_points += st.sth;
    for (size_t k = 0; k < out.counts.size(); ++k) {
      out.counts[k] += st.counts[k];
    }
  }
  return out;
}

uint64_t RasterJoin::MemoryBytes() const {
  uint64_t bytes = num_spans_ * (sizeof(Span) + sizeof(int32_t));
  bytes += boundary_.size() * (sizeof(uint64_t) + sizeof(BoundaryRefs) + 16);
  bytes += rows_.size() * sizeof(Row);
  return bytes;
}

}  // namespace actjoin::baselines
