// Raster join: CPU simulation of the GPU competitor of paper Sec. 4.3
// (Bounded Raster Join / Accurate Raster Join of Tzirita Zacharatou et al.).
//
// The GPU approach rasterizes polygons into a *uniform* grid of equi-sized
// pixels whose resolution is derived from the precision bound, then joins
// points by O(1) pixel lookups. Two variants:
//   * BRJ (bounded): points on boundary pixels are emitted as (bounded-
//     error) hits — no PIP tests, like ACT's approximate join.
//   * ARJ (accurate): boundary pixels trigger exact PIP tests.
//
// Two behaviours of the original are modeled explicitly because Fig. 11
// depends on them:
//   * Uniform grid: resolution depends only on the dataset MBR and the
//     precision bound — not on polygon count (BRJ is "barely affected by
//     the polygon datasets").
//   * Native resolution limit: "once the required resolution is higher than
//     what is natively supported by the GPU, it needs to split the scene
//     and perform more rendering passes" — queries re-scan all points once
//     per scene tile, which is what degrades BRJ at 4 m.
//
// Storage is exact but compressed: interior pixels as per-row spans,
// boundary pixels in a hash map (a dense texture would not fit in host
// memory at fine precisions).

#ifndef ACTJOIN_BASELINES_RASTER_JOIN_H_
#define ACTJOIN_BASELINES_RASTER_JOIN_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "act/join.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"
#include "util/small_vector.h"

namespace actjoin::baselines {

struct RasterJoinOptions {
  /// Pixel diagonal bound in meters (the precision bound). <= 0 means
  /// "exact mode at default resolution" (ARJ still refines boundaries).
  double precision_bound_m = 15.0;
  /// Simulated native GPU raster resolution (pixels per axis per pass).
  int native_resolution = 8192;
  /// true = ARJ (PIP on boundary pixels), false = BRJ (bounded error).
  bool accurate = false;
};

class RasterJoin {
 public:
  RasterJoin(const std::vector<geom::Polygon>& polygons,
             const geom::Rect& mbr, const RasterJoinOptions& opts);

  /// Executes the join over all points. Internally loops over rendering
  /// passes (scene tiles); each pass scans the full point set and processes
  /// the points falling into its tile, mirroring the GPU pipeline.
  act::JoinStats Execute(const act::JoinInput& input, int threads) const;

  int resolution_x() const { return nx_; }
  int resolution_y() const { return ny_; }
  int passes() const { return passes_x_ * passes_y_; }
  double build_seconds() const { return build_seconds_; }
  uint64_t MemoryBytes() const;

 private:
  struct Span {
    int32_t x_begin;  // inclusive pixel x
    int32_t x_end;    // exclusive
    uint32_t polygon_id;
  };
  struct Row {
    std::vector<Span> spans;          // sorted by x_begin
    std::vector<int32_t> prefix_max;  // running max of x_end (stab bound)
  };
  using BoundaryRefs = util::SmallVector<uint32_t, 2>;

  void Rasterize();
  int PixelX(double x) const;
  int PixelY(double y) const;

  const std::vector<geom::Polygon>* polygons_;
  geom::Rect mbr_;
  RasterJoinOptions opts_;
  int nx_ = 0, ny_ = 0;
  int passes_x_ = 1, passes_y_ = 1;
  double inv_px_ = 0, inv_py_ = 0;
  double build_seconds_ = 0;

  std::vector<Row> rows_;  // interior spans per pixel row
  std::unordered_map<uint64_t, BoundaryRefs> boundary_;
  uint64_t num_spans_ = 0;
};

}  // namespace actjoin::baselines

#endif  // ACTJOIN_BASELINES_RASTER_JOIN_H_
