// Cell-id index baselines over the encoded super covering (paper Sec. 4.1,
// "Data Structures"): the Google-B-tree stand-in (GBT) and the binary search
// on a sorted vector (LB).
//
// Both must answer the same prefix lookup as ACT: given the leaf cell id of
// a query point, find the unique covering cell (the covering is disjoint)
// that contains it. With range-encoded cell ids this is the classic
// two-candidate check around lower_bound: the first cell with id >= query
// may be an ancestor (its range_min is below the query), otherwise its
// predecessor may be.

#ifndef ACTJOIN_BASELINES_CELL_INDEXES_H_
#define ACTJOIN_BASELINES_CELL_INDEXES_H_

#include <utility>
#include <vector>

#include "act/super_covering.h"
#include "act/tagged_entry.h"
#include "baselines/btree.h"
#include "geo/cell_id.h"

namespace actjoin::baselines {

/// LB: binary search (std::lower_bound) on the sorted (cell id, entry)
/// vector. "The vector stores pairs of cell ids and tagged entries"; no
/// build cost since the encoded covering is already sorted.
class SortedVectorIndex {
 public:
  explicit SortedVectorIndex(const act::EncodedCovering& enc);

  act::TaggedEntry Probe(uint64_t leaf_cell_id) const;

  uint64_t MemoryBytes() const { return cells_->size() * 16; }

 private:
  const std::vector<std::pair<geo::CellId, act::TaggedEntry>>* cells_;
};

/// GBT: the covering bulk-loaded into the byte-budgeted B+-tree.
class BTreeCellIndex {
 public:
  explicit BTreeCellIndex(const act::EncodedCovering& enc,
                          size_t node_bytes = 256);

  act::TaggedEntry Probe(uint64_t leaf_cell_id) const;

  uint64_t MemoryBytes() const { return tree_.MemoryBytes(); }
  const BTree& tree() const { return tree_; }

 private:
  BTree tree_;
};

}  // namespace actjoin::baselines

#endif  // ACTJOIN_BASELINES_CELL_INDEXES_H_
