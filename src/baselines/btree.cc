#include "baselines/btree.h"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/check.h"

namespace actjoin::baselines {

// Node memory layout: a fixed-size block of node_bytes_ holding a header
// followed by the key array and then the value/child-pointer array.
struct BTree::Node {
  uint16_t count = 0;
  bool is_leaf = false;
};

struct BTree::LeafNode {
  Node h;
  LeafNode* next = nullptr;
  LeafNode* prev = nullptr;

  uint64_t* keys() { return reinterpret_cast<uint64_t*>(this + 1); }
  const uint64_t* keys() const {
    return reinterpret_cast<const uint64_t*>(this + 1);
  }
  uint64_t* values(int cap) { return keys() + cap; }
  const uint64_t* values(int cap) const { return keys() + cap; }
};

struct BTree::InnerNode {
  // h.count = number of children; separators = count - 1. The header is
  // padded to 8 bytes so the separator/child arrays appended at `this + 1`
  // are aligned for uint64_t / Node* access (LeafNode gets this for free
  // from its chain pointers).
  alignas(8) Node h;

  uint64_t* seps() { return reinterpret_cast<uint64_t*>(this + 1); }
  const uint64_t* seps() const {
    return reinterpret_cast<const uint64_t*>(this + 1);
  }
  Node** children(int cap) {
    return reinterpret_cast<Node**>(seps() + (cap - 1));
  }
  Node* const* children(int cap) const {
    return reinterpret_cast<Node* const*>(seps() + (cap - 1));
  }
};

namespace {

int LeafCapacity(size_t node_bytes) {
  size_t avail = node_bytes - sizeof(BTree::LeafNode);
  int cap = static_cast<int>(avail / 16);
  return std::max(cap, 2);
}

int InnerCapacity(size_t node_bytes) {
  // cap children + (cap - 1) separators.
  size_t avail = node_bytes - sizeof(BTree::InnerNode);
  int cap = static_cast<int>((avail + 8) / 16);
  return std::max(cap, 3);
}

}  // namespace

BTree::BTree(size_t target_node_bytes) : node_bytes_(target_node_bytes) {
  ACT_CHECK(target_node_bytes >= 64);
  leaf_capacity_ = LeafCapacity(node_bytes_);
  inner_capacity_ = InnerCapacity(node_bytes_);
}

BTree::~BTree() { Clear(); }

BTree::BTree(BTree&& o) noexcept
    : root_(o.root_),
      first_leaf_(o.first_leaf_),
      size_(o.size_),
      height_(o.height_),
      node_count_(o.node_count_),
      leaf_capacity_(o.leaf_capacity_),
      inner_capacity_(o.inner_capacity_),
      node_bytes_(o.node_bytes_) {
  o.root_ = nullptr;
  o.first_leaf_ = nullptr;
  o.size_ = 0;
  o.height_ = 0;
  o.node_count_ = 0;
}

BTree& BTree::operator=(BTree&& o) noexcept {
  if (this != &o) {
    Clear();
    root_ = o.root_;
    first_leaf_ = o.first_leaf_;
    size_ = o.size_;
    height_ = o.height_;
    node_count_ = o.node_count_;
    leaf_capacity_ = o.leaf_capacity_;
    inner_capacity_ = o.inner_capacity_;
    node_bytes_ = o.node_bytes_;
    o.root_ = nullptr;
    o.first_leaf_ = nullptr;
    o.size_ = 0;
    o.height_ = 0;
    o.node_count_ = 0;
  }
  return *this;
}

namespace {

void DeleteSubtree(BTree::Node* node, int inner_cap) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    auto* inner = reinterpret_cast<BTree::InnerNode*>(node);
    for (int k = 0; k < node->count; ++k) {
      DeleteSubtree(inner->children(inner_cap)[k], inner_cap);
    }
  }
  ::operator delete(node);
}

}  // namespace

void BTree::Clear() {
  DeleteSubtree(root_, inner_capacity_);
  root_ = nullptr;
  first_leaf_ = nullptr;
  size_ = 0;
  height_ = 0;
  node_count_ = 0;
}

BTree::LeafNode* BTree::FindLeaf(uint64_t key) const {
  Node* node = root_;
  if (node == nullptr) return nullptr;
  while (!node->is_leaf) {
    auto* inner = reinterpret_cast<InnerNode*>(node);
    const uint64_t* seps = inner->seps();
    int n_seps = node->count - 1;
    int idx = static_cast<int>(
        std::upper_bound(seps, seps + n_seps, key) - seps);
    node = inner->children(inner_capacity_)[idx];
  }
  return reinterpret_cast<LeafNode*>(node);
}

bool BTree::Find(uint64_t key, uint64_t* value) const {
  LeafNode* leaf = FindLeaf(key);
  if (leaf == nullptr) return false;
  const uint64_t* keys = leaf->keys();
  const uint64_t* end = keys + leaf->h.count;
  const uint64_t* it = std::lower_bound(keys, end, key);
  if (it == end || *it != key) return false;
  *value = leaf->values(leaf_capacity_)[it - keys];
  return true;
}

// ---------------------------------------------------------------------------
// Bulk load
// ---------------------------------------------------------------------------

void BTree::BulkLoad(
    std::span<const std::pair<uint64_t, uint64_t>> sorted_pairs) {
  Clear();
  if (sorted_pairs.empty()) return;
  for (size_t i = 1; i < sorted_pairs.size(); ++i) {
    ACT_CHECK_MSG(sorted_pairs[i - 1].first < sorted_pairs[i].first,
                  "bulk load requires sorted unique keys");
  }

  // Level 0: pack leaves.
  std::vector<Node*> level;
  std::vector<uint64_t> level_min_keys;
  LeafNode* prev = nullptr;
  size_t i = 0;
  while (i < sorted_pairs.size()) {
    auto* leaf = new (::operator new(node_bytes_)) LeafNode();
    ++node_count_;
    leaf->h.is_leaf = true;
    int n = static_cast<int>(std::min<size_t>(leaf_capacity_,
                                              sorted_pairs.size() - i));
    // Avoid a dangling 1-entry final leaf: rebalance the last two.
    if (static_cast<size_t>(n) == sorted_pairs.size() - i &&
        n < leaf_capacity_ / 2 && prev != nullptr) {
      // Final leaf would be underfull: steal the tail of the previous leaf
      // so both satisfy the minimum fill.
      int steal = leaf_capacity_ / 2 - n;
      int pn = prev->h.count;
      for (int k = 0; k < steal; ++k) {
        leaf->keys()[k] = prev->keys()[pn - steal + k];
        leaf->values(leaf_capacity_)[k] =
            prev->values(leaf_capacity_)[pn - steal + k];
      }
      prev->h.count = static_cast<uint16_t>(pn - steal);
      for (int k = 0; k < n; ++k) {
        leaf->keys()[steal + k] = sorted_pairs[i + k].first;
        leaf->values(leaf_capacity_)[steal + k] = sorted_pairs[i + k].second;
      }
      leaf->h.count = static_cast<uint16_t>(steal + n);
    } else {
      for (int k = 0; k < n; ++k) {
        leaf->keys()[k] = sorted_pairs[i + k].first;
        leaf->values(leaf_capacity_)[k] = sorted_pairs[i + k].second;
      }
      leaf->h.count = static_cast<uint16_t>(n);
    }
    i += n;
    leaf->prev = prev;
    if (prev != nullptr) prev->next = leaf;
    if (first_leaf_ == nullptr) first_leaf_ = leaf;
    prev = leaf;
    level.push_back(&leaf->h);
    level_min_keys.push_back(leaf->keys()[0]);
  }
  size_ = sorted_pairs.size();
  height_ = 1;

  // Upper levels: pack inner nodes over children; separators are the min
  // keys of all children but the first.
  while (level.size() > 1) {
    std::vector<Node*> next_level;
    std::vector<uint64_t> next_min_keys;
    size_t j = 0;
    while (j < level.size()) {
      auto* inner = new (::operator new(node_bytes_)) InnerNode();
      ++node_count_;
      inner->h.is_leaf = false;
      int n = static_cast<int>(std::min<size_t>(inner_capacity_,
                                                level.size() - j));
      if (static_cast<size_t>(n) == level.size() - j && n == 1 &&
          !next_level.empty()) {
        // Avoid a single-child inner node: give it a sibling by stealing
        // one child from the previous inner node.
        auto* prev_inner = reinterpret_cast<InnerNode*>(next_level.back());
        int pn = prev_inner->h.count;
        inner->children(inner_capacity_)[0] =
            prev_inner->children(inner_capacity_)[pn - 1];
        uint64_t stolen_min = prev_inner->seps()[pn - 2];
        prev_inner->h.count = static_cast<uint16_t>(pn - 1);
        inner->children(inner_capacity_)[1] = level[j];
        inner->seps()[0] = level_min_keys[j];
        inner->h.count = 2;
        next_level.push_back(&inner->h);
        next_min_keys.push_back(stolen_min);
        ++j;
        continue;
      }
      for (int k = 0; k < n; ++k) {
        inner->children(inner_capacity_)[k] = level[j + k];
        if (k > 0) inner->seps()[k - 1] = level_min_keys[j + k];
      }
      inner->h.count = static_cast<uint16_t>(n);
      next_level.push_back(&inner->h);
      next_min_keys.push_back(level_min_keys[j]);
      j += n;
    }
    level = std::move(next_level);
    level_min_keys = std::move(next_min_keys);
    ++height_;
  }
  root_ = level[0];
}

// ---------------------------------------------------------------------------
// Insertion with splits
// ---------------------------------------------------------------------------

void BTree::Insert(uint64_t key, uint64_t value) {
  if (root_ == nullptr) {
    auto* leaf = new (::operator new(node_bytes_)) LeafNode();
    ++node_count_;
    leaf->h.is_leaf = true;
    leaf->h.count = 1;
    leaf->keys()[0] = key;
    leaf->values(leaf_capacity_)[0] = value;
    root_ = &leaf->h;
    first_leaf_ = leaf;
    size_ = 1;
    height_ = 1;
    return;
  }

  // Descend, remembering the path.
  std::vector<std::pair<InnerNode*, int>> path;
  Node* node = root_;
  while (!node->is_leaf) {
    auto* inner = reinterpret_cast<InnerNode*>(node);
    const uint64_t* seps = inner->seps();
    int idx = static_cast<int>(
        std::upper_bound(seps, seps + node->count - 1, key) - seps);
    path.emplace_back(inner, idx);
    node = inner->children(inner_capacity_)[idx];
  }
  auto* leaf = reinterpret_cast<LeafNode*>(node);
  uint64_t* keys = leaf->keys();
  uint64_t* values = leaf->values(leaf_capacity_);
  int pos = static_cast<int>(
      std::lower_bound(keys, keys + leaf->h.count, key) - keys);
  if (pos < leaf->h.count && keys[pos] == key) {
    values[pos] = value;  // overwrite
    return;
  }

  // Make room (possibly splitting).
  if (leaf->h.count < leaf_capacity_) {
    std::memmove(keys + pos + 1, keys + pos,
                 (leaf->h.count - pos) * sizeof(uint64_t));
    std::memmove(values + pos + 1, values + pos,
                 (leaf->h.count - pos) * sizeof(uint64_t));
    keys[pos] = key;
    values[pos] = value;
    ++leaf->h.count;
    ++size_;
    return;
  }

  // Split the leaf: left keeps half, right gets the rest.
  auto* right = new (::operator new(node_bytes_)) LeafNode();
  ++node_count_;
  right->h.is_leaf = true;
  int left_n = (leaf->h.count + 1) / 2;
  int right_n = leaf->h.count - left_n;
  std::memcpy(right->keys(), keys + left_n, right_n * sizeof(uint64_t));
  std::memcpy(right->values(leaf_capacity_), values + left_n,
              right_n * sizeof(uint64_t));
  right->h.count = static_cast<uint16_t>(right_n);
  leaf->h.count = static_cast<uint16_t>(left_n);
  right->next = leaf->next;
  if (right->next != nullptr) right->next->prev = right;
  right->prev = leaf;
  leaf->next = right;

  // Insert the new entry into the proper half.
  LeafNode* target = key < right->keys()[0] ? leaf : right;
  keys = target->keys();
  values = target->values(leaf_capacity_);
  pos = static_cast<int>(
      std::lower_bound(keys, keys + target->h.count, key) - keys);
  std::memmove(keys + pos + 1, keys + pos,
               (target->h.count - pos) * sizeof(uint64_t));
  std::memmove(values + pos + 1, values + pos,
               (target->h.count - pos) * sizeof(uint64_t));
  keys[pos] = key;
  values[pos] = value;
  ++target->h.count;
  ++size_;

  // Propagate the split upward.
  uint64_t sep = right->keys()[0];
  Node* new_child = &right->h;
  while (!path.empty()) {
    auto [inner, idx] = path.back();
    path.pop_back();
    if (inner->h.count < inner_capacity_) {
      // Shift separators/children right of idx.
      uint64_t* seps = inner->seps();
      Node** children = inner->children(inner_capacity_);
      std::memmove(seps + idx + 1, seps + idx,
                   (inner->h.count - 1 - idx) * sizeof(uint64_t));
      std::memmove(children + idx + 2, children + idx + 1,
                   (inner->h.count - 1 - idx) * sizeof(Node*));
      seps[idx] = sep;
      children[idx + 1] = new_child;
      ++inner->h.count;
      return;
    }
    // Split the inner node.
    auto* right_inner = new (::operator new(node_bytes_)) InnerNode();
    ++node_count_;
    right_inner->h.is_leaf = false;
    // Gather count children + 1 and count separators into temporaries.
    int n = inner->h.count;
    std::vector<uint64_t> all_seps(inner->seps(), inner->seps() + n - 1);
    std::vector<Node*> all_children(inner->children(inner_capacity_),
                                    inner->children(inner_capacity_) + n);
    all_seps.insert(all_seps.begin() + idx, sep);
    all_children.insert(all_children.begin() + idx + 1, new_child);
    int total_children = n + 1;
    int left_c = (total_children + 1) / 2;
    int right_c = total_children - left_c;
    // Left keeps children [0, left_c), separators [0, left_c - 1).
    for (int k = 0; k < left_c - 1; ++k) inner->seps()[k] = all_seps[k];
    for (int k = 0; k < left_c; ++k) {
      inner->children(inner_capacity_)[k] = all_children[k];
    }
    inner->h.count = static_cast<uint16_t>(left_c);
    // Separator promoted to the parent.
    uint64_t promoted = all_seps[left_c - 1];
    // Right gets the rest.
    for (int k = 0; k < right_c - 1; ++k) {
      right_inner->seps()[k] = all_seps[left_c + k];
    }
    for (int k = 0; k < right_c; ++k) {
      right_inner->children(inner_capacity_)[k] = all_children[left_c + k];
    }
    right_inner->h.count = static_cast<uint16_t>(right_c);
    sep = promoted;
    new_child = &right_inner->h;
  }

  // Split reached the root: grow the tree.
  auto* new_root = new (::operator new(node_bytes_)) InnerNode();
  ++node_count_;
  new_root->h.is_leaf = false;
  new_root->h.count = 2;
  new_root->seps()[0] = sep;
  new_root->children(inner_capacity_)[0] = root_;
  new_root->children(inner_capacity_)[1] = new_child;
  root_ = &new_root->h;
  ++height_;
}

// ---------------------------------------------------------------------------
// Iterators
// ---------------------------------------------------------------------------

uint64_t BTree::Iterator::key() const {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  return leaf->keys()[idx_];
}

uint64_t BTree::Iterator::value() const {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  // The value array starts right after the key array of leaf_cap_ slots.
  return leaf->keys()[leaf_cap_ + idx_];
}

void BTree::Iterator::Next() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  if (idx_ + 1 < leaf->h.count) {
    ++idx_;
    return;
  }
  leaf_ = leaf->next;
  idx_ = 0;
}

void BTree::Iterator::Prev() {
  const auto* leaf = static_cast<const LeafNode*>(leaf_);
  if (idx_ > 0) {
    --idx_;
    return;
  }
  leaf_ = leaf->prev;
  if (leaf_ != nullptr) {
    idx_ = static_cast<const LeafNode*>(leaf_)->h.count - 1;
  }
}

BTree::Iterator BTree::Begin() const {
  return Iterator(first_leaf_, 0, leaf_capacity_);
}

BTree::Iterator BTree::LowerBound(uint64_t key) const {
  LeafNode* leaf = FindLeaf(key);
  if (leaf == nullptr) return Iterator(nullptr, 0, leaf_capacity_);
  const uint64_t* keys = leaf->keys();
  int idx = static_cast<int>(
      std::lower_bound(keys, keys + leaf->h.count, key) - keys);
  Iterator it(leaf, idx, leaf_capacity_);
  if (idx == leaf->h.count) it.Next();
  return it;
}

BTree::Iterator BTree::Predecessor(uint64_t key) const {
  Iterator it = LowerBound(key);
  if (it.Valid() && it.key() == key) return it;
  if (!it.Valid()) {
    // All keys are < key (or tree empty): the answer is the last entry.
    LeafNode* leaf = first_leaf_;
    if (leaf == nullptr) return it;
    while (leaf->next != nullptr) leaf = leaf->next;
    return Iterator(leaf, leaf->h.count - 1, leaf_capacity_);
  }
  it.Prev();
  return it;
}

uint64_t BTree::MemoryBytes() const { return node_count_ * node_bytes_; }

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

namespace {

struct CheckResult {
  bool ok = true;
  uint64_t min_key = 0;
  uint64_t max_key = 0;
  int depth = 0;
};

CheckResult CheckSubtree(const BTree::Node* node, int inner_cap,
                         int leaf_cap) {
  CheckResult r;
  if (node->count == 0) {
    r.ok = false;
    return r;
  }
  if (node->is_leaf) {
    const auto* leaf = reinterpret_cast<const BTree::LeafNode*>(node);
    if (node->count > leaf_cap) r.ok = false;
    for (int k = 1; k < node->count; ++k) {
      if (leaf->keys()[k - 1] >= leaf->keys()[k]) r.ok = false;
    }
    r.min_key = leaf->keys()[0];
    r.max_key = leaf->keys()[node->count - 1];
    r.depth = 1;
    return r;
  }
  const auto* inner = reinterpret_cast<const BTree::InnerNode*>(node);
  if (node->count < 2 || node->count > inner_cap) r.ok = false;
  CheckResult first =
      CheckSubtree(inner->children(inner_cap)[0], inner_cap, leaf_cap);
  r = first;
  for (int k = 1; k < node->count; ++k) {
    uint64_t sep = inner->seps()[k - 1];
    CheckResult child =
        CheckSubtree(inner->children(inner_cap)[k], inner_cap, leaf_cap);
    if (!child.ok || child.depth != first.depth) r.ok = false;
    if (child.min_key < sep) r.ok = false;
    if (r.max_key >= child.min_key) r.ok = false;
    r.max_key = child.max_key;
  }
  r.depth = first.depth + 1;
  return r;
}

}  // namespace

bool BTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  CheckResult r = CheckSubtree(root_, inner_capacity_, leaf_capacity_);
  if (!r.ok || r.depth != height_) return false;
  // Leaf chain must enumerate exactly size_ sorted entries.
  size_t n = 0;
  uint64_t prev_key = 0;
  bool first = true;
  for (const LeafNode* leaf = first_leaf_; leaf != nullptr;
       leaf = leaf->next) {
    for (int k = 0; k < leaf->h.count; ++k) {
      if (!first && leaf->keys()[k] <= prev_key) return false;
      prev_key = leaf->keys()[k];
      first = false;
      ++n;
    }
    if (leaf->next != nullptr && leaf->next->prev != leaf) return false;
  }
  return n == size_;
}

}  // namespace actjoin::baselines
