#include "baselines/shape_index.h"

#include <algorithm>

#include "geometry/pip.h"
#include "geometry/segment.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::baselines {

using geo::CellId;
using geom::Point;
using geom::Rect;

namespace {

Rect CellRectOf(const geo::Grid& grid, const CellId& cell) {
  geo::LatLngRect r = grid.CellRect(cell);
  return Rect::Of(r.lng_lo, r.lat_lo, r.lng_hi, r.lat_hi);
}

}  // namespace

ShapeIndex::ShapeIndex(const std::vector<geom::Polygon>& polygons,
                       const geo::Grid& grid, const ShapeIndexOptions& opts)
    : polygons_(&polygons), grid_(&grid), opts_(opts) {
  ACT_CHECK(opts.max_edges_per_cell >= 1);
  // Overall extent of the polygon set decides the seed faces.
  Rect mbr;
  for (const auto& poly : polygons) mbr.Expand(poly.mbr());
  ACT_CHECK(!mbr.IsEmpty());
  int face_lo = geo::Grid::FaceAt({mbr.lo.y, mbr.lo.x});
  int face_hi = geo::Grid::FaceAt({mbr.hi.y, mbr.hi.x});
  for (int f = face_lo; f <= face_hi; ++f) {
    std::vector<BuildShape> shapes;
    for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
      BuildShape s;
      s.polygon_id = pid;
      s.edges.resize(polygons[pid].num_edges());
      for (uint32_t e = 0; e < polygons[pid].num_edges(); ++e) {
        s.edges[e] = e;
      }
      shapes.push_back(std::move(s));
    }
    BuildCell(CellId::FromFace(f), shapes, {});
  }

  // The recursion emits cells in curve order per face and faces in order,
  // so cell_ids_ is sorted; load the B-tree.
  ACT_CHECK(std::is_sorted(cell_ids_.begin(), cell_ids_.end()));
  cell_btree_.BulkLoad(cell_ids_);
}

void ShapeIndex::BuildCell(const CellId& cell,
                           std::vector<BuildShape>& shapes,
                           const std::vector<uint32_t>& contained) {
  Rect rect = CellRectOf(*grid_, cell);

  // Clip each shape's edges to this cell; shapes whose edges vanish are
  // either disjoint (drop) or fully contain the cell (promote to
  // contained).
  std::vector<BuildShape> local;
  std::vector<uint32_t> local_contained = contained;
  size_t total_edges = 0;
  for (BuildShape& s : shapes) {
    const geom::Polygon& poly = (*polygons_)[s.polygon_id];
    BuildShape clipped;
    clipped.polygon_id = s.polygon_id;
    for (uint32_t e : s.edges) {
      auto [a, b] = poly.Edge(e);
      if (geom::SegmentIntersectsRect(a, b, rect)) {
        clipped.edges.push_back(e);
      }
    }
    if (clipped.edges.empty()) {
      // Uniform w.r.t. this polygon: inside or outside.
      if (geom::ContainsPoint(poly, rect.Center())) {
        local_contained.push_back(s.polygon_id);
      }
      continue;
    }
    total_edges += clipped.edges.size();
    local.push_back(std::move(clipped));
  }

  if (local.empty()) {
    if (!local_contained.empty()) EmitCell(cell, local, local_contained);
    return;
  }
  if (total_edges <= static_cast<size_t>(opts_.max_edges_per_cell) ||
      cell.level() >= opts_.max_cell_level || cell.is_leaf()) {
    EmitCell(cell, local, local_contained);
    return;
  }
  for (int k = 0; k < 4; ++k) {
    BuildCell(cell.child(k), local, local_contained);
  }
}

void ShapeIndex::EmitCell(const CellId& cell,
                          const std::vector<BuildShape>& shapes,
                          const std::vector<uint32_t>& contained) {
  CellEntry entry;
  entry.contained_begin = static_cast<uint32_t>(contained_pool_.size());
  entry.contained_len = static_cast<uint32_t>(contained.size());
  contained_pool_.insert(contained_pool_.end(), contained.begin(),
                         contained.end());

  // Pick a parity anchor off all local edges.
  Rect rect = CellRectOf(*grid_, cell);
  Point anchor = rect.Center();
  auto on_any_edge = [&](const Point& q) {
    for (const BuildShape& s : shapes) {
      const geom::Polygon& poly = (*polygons_)[s.polygon_id];
      for (uint32_t e : s.edges) {
        auto [a, b] = poly.Edge(e);
        if (geom::OnSegment(a, b, q)) return true;
      }
    }
    return false;
  };
  double step_x = rect.Width() * 0.0137;
  double step_y = rect.Height() * 0.0173;
  for (int attempt = 0; attempt < 16 && on_any_edge(anchor); ++attempt) {
    anchor.x += step_x;
    anchor.y += step_y;
  }
  entry.anchor = anchor;

  entry.clipped_begin = static_cast<uint32_t>(clipped_pool_.size());
  entry.clipped_len = static_cast<uint32_t>(shapes.size());
  for (const BuildShape& s : shapes) {
    ClippedShape cs;
    cs.polygon_id = s.polygon_id;
    cs.edges_begin = static_cast<uint32_t>(edge_pool_.size());
    cs.edges_len = static_cast<uint32_t>(s.edges.size());
    edge_pool_.insert(edge_pool_.end(), s.edges.begin(), s.edges.end());
    cs.center_inside =
        geom::ContainsPoint((*polygons_)[s.polygon_id], anchor) &&
        !geom::OnBoundary((*polygons_)[s.polygon_id], anchor);
    clipped_pool_.push_back(cs);
  }

  cell_ids_.emplace_back(cell.id(), cells_.size());
  cells_.push_back(entry);
}

bool ShapeIndex::FindCell(uint64_t leaf_cell_id, uint64_t* entry_idx) const {
  BTree::Iterator it = cell_btree_.LowerBound(leaf_cell_id);
  if (it.Valid() &&
      CellId(it.key()).range_min().id() <= leaf_cell_id) {
    *entry_idx = it.value();
    return true;
  }
  if (it.Valid()) {
    it.Prev();
  } else {
    it = cell_btree_.Predecessor(leaf_cell_id);
  }
  if (it.Valid() && CellId(it.key()).range_max().id() >= leaf_cell_id) {
    *entry_idx = it.value();
    return true;
  }
  return false;
}

bool ShapeIndex::CoversViaLocalEdges(const CellEntry& cell,
                                     const ClippedShape& cs,
                                     const Point& p) const {
  const geom::Polygon& poly = (*polygons_)[cs.polygon_id];
  // Boundary points are covered; degenerate anchor-to-point crossings fall
  // back to the full test (rare).
  int crossings = 0;
  for (uint32_t k = 0; k < cs.edges_len; ++k) {
    auto [a, b] = poly.Edge(edge_pool_[cs.edges_begin + k]);
    if (geom::OnSegment(a, b, p)) return true;
    if (geom::SegmentsCrossProperly(cell.anchor, p, a, b)) {
      ++crossings;
      continue;
    }
    if (geom::SegmentsIntersect(cell.anchor, p, a, b)) {
      return geom::ContainsPoint(poly, p);
    }
  }
  return cs.center_inside == ((crossings & 1) == 0);
}

uint64_t ShapeIndex::MemoryBytes() const {
  return cell_btree_.MemoryBytes() + cells_.size() * sizeof(CellEntry) +
         contained_pool_.size() * sizeof(uint32_t) +
         clipped_pool_.size() * sizeof(ClippedShape) +
         edge_pool_.size() * sizeof(uint32_t);
}

int ShapeIndex::MaxEdgesInAnyCell() const {
  int max_edges = 0;
  for (const CellEntry& cell : cells_) {
    int n = 0;
    for (uint32_t k = 0; k < cell.clipped_len; ++k) {
      n += static_cast<int>(clipped_pool_[cell.clipped_begin + k].edges_len);
    }
    max_edges = std::max(max_edges, n);
  }
  return max_edges;
}

act::JoinStats ShapeIndexJoin(const ShapeIndex& index,
                              const std::vector<geom::Polygon>& polygons,
                              const act::JoinInput& input, int threads) {
  if (threads <= 0) threads = util::DefaultThreadCount();
  struct ThreadState {
    std::vector<uint64_t> counts;
    uint64_t matched = 0, pairs = 0, pip_tests = 0, true_refs = 0, sth = 0;
  };
  std::vector<ThreadState> states(threads);
  for (auto& s : states) s.counts.assign(polygons.size(), 0);

  util::WallTimer timer;
  util::ParallelFor(
      input.size(), threads, [&](uint64_t begin, uint64_t end, int tid) {
        ThreadState& st = states[tid];
        for (uint64_t p = begin; p < end; ++p) {
          uint64_t pairs_before = st.pairs;
          int tests = index.Query(
              input.cell_ids[p], input.points[p],
              [&](uint32_t pid, bool covers) {
                if (covers) {
                  ++st.counts[pid];
                  ++st.pairs;
                }
              });
          st.pip_tests += tests;
          if (tests == 0) ++st.sth;
          if (st.pairs != pairs_before) ++st.matched;
        }
      });

  act::JoinStats out;
  out.seconds = timer.ElapsedSeconds();
  out.num_points = input.size();
  out.counts.assign(polygons.size(), 0);
  for (const ThreadState& st : states) {
    out.matched_points += st.matched;
    out.result_pairs += st.pairs;
    out.pip_tests += st.pip_tests;
    out.candidate_refs += st.pip_tests;
    out.sth_points += st.sth;
    for (size_t k = 0; k < out.counts.size(); ++k) {
      out.counts[k] += st.counts[k];
    }
  }
  return out;
}

}  // namespace actjoin::baselines
