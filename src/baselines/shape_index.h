// Shape index: the S2ShapeIndex-style baseline ("SI1" / "SI10").
//
// A hierarchical grid maps cells to the *edges* of polygons intersecting
// them; cells are subdivided until they hold at most max_edges_per_cell
// edges (1 for SI1 — the finest possible — and 10 for SI10, S2's default).
// Cells fully inside a polygon record it as *contained* (true-hit
// filtering), and each cell stores a parity anchor so a query point can be
// classified against a polygon by counting crossings with only the cell's
// local edges — "restricts the [PIP] test to a subset of edges of the
// polygon in question" (paper Sec. 4.2).
//
// The cell -> entry mapping lives in the byte-budgeted B-tree, matching the
// paper's description of S2ShapeIndex ("internally mapping grid cells ...
// to polygon edges using a B-tree").

#ifndef ACTJOIN_BASELINES_SHAPE_INDEX_H_
#define ACTJOIN_BASELINES_SHAPE_INDEX_H_

#include <cstdint>
#include <vector>

#include "act/join.h"
#include "baselines/btree.h"
#include "geo/grid.h"
#include "geometry/point.h"
#include "geometry/polygon.h"

namespace actjoin::baselines {

struct ShapeIndexOptions {
  /// Subdivide until a cell has at most this many edges (SI10 = 10, SI1 = 1).
  int max_edges_per_cell = 10;
  /// Hard stop for subdivision: edges sharing a vertex can never be
  /// separated, so recursion must bottom out.
  int max_cell_level = 18;
};

class ShapeIndex {
 public:
  ShapeIndex(const std::vector<geom::Polygon>& polygons,
             const geo::Grid& grid, const ShapeIndexOptions& opts);

  /// Visits (polygon_id, covers) decisions for every polygon that could
  /// contain the point; `covers` is the exact ST_Covers verdict computed
  /// from local edges. Contained polygons (true hits) are visited with
  /// covers=true and no edge work. Returns the number of clipped-shape
  /// (edge-restricted PIP) tests performed.
  template <typename Fn>
  int Query(uint64_t leaf_cell_id, const geom::Point& p, Fn&& fn) const {
    uint64_t entry_idx;
    if (!FindCell(leaf_cell_id, &entry_idx)) return 0;
    const CellEntry& cell = cells_[entry_idx];
    for (uint32_t k = 0; k < cell.contained_len; ++k) {
      fn(contained_pool_[cell.contained_begin + k], true);
    }
    int tests = 0;
    for (uint32_t k = 0; k < cell.clipped_len; ++k) {
      const ClippedShape& cs = clipped_pool_[cell.clipped_begin + k];
      ++tests;
      fn(cs.polygon_id, CoversViaLocalEdges(cell, cs, p));
    }
    return tests;
  }

  uint64_t MemoryBytes() const;
  size_t num_cells() const { return cells_.size(); }
  size_t num_edge_incidences() const { return edge_pool_.size(); }
  const ShapeIndexOptions& options() const { return opts_; }

  /// Test support: max edges per cell actually observed.
  int MaxEdgesInAnyCell() const;

 private:
  struct ClippedShape {
    uint32_t polygon_id;
    uint32_t edges_begin;
    uint32_t edges_len;
    bool center_inside;
  };
  struct CellEntry {
    geom::Point anchor;  // parity anchor, guaranteed off all local edges
    uint32_t contained_begin, contained_len;
    uint32_t clipped_begin, clipped_len;
  };

  struct BuildShape {
    uint32_t polygon_id;
    std::vector<uint32_t> edges;
  };

  void BuildCell(const geo::CellId& cell, std::vector<BuildShape>& shapes,
                 const std::vector<uint32_t>& contained);
  void EmitCell(const geo::CellId& cell,
                const std::vector<BuildShape>& shapes,
                const std::vector<uint32_t>& contained);
  bool FindCell(uint64_t leaf_cell_id, uint64_t* entry_idx) const;
  bool CoversViaLocalEdges(const CellEntry& cell, const ClippedShape& cs,
                           const geom::Point& p) const;

  const std::vector<geom::Polygon>* polygons_;
  const geo::Grid* grid_;
  ShapeIndexOptions opts_;

  std::vector<std::pair<uint64_t, uint64_t>> cell_ids_;  // (cell id, entry)
  BTree cell_btree_;
  std::vector<CellEntry> cells_;
  std::vector<uint32_t> contained_pool_;
  std::vector<ClippedShape> clipped_pool_;
  std::vector<uint32_t> edge_pool_;
};

/// Join driver: probe the shape index per point. Candidate verdicts come
/// from local-edge tests; stats count them as PIP tests (they are the
/// refinement work SI performs).
act::JoinStats ShapeIndexJoin(const ShapeIndex& index,
                              const std::vector<geom::Polygon>& polygons,
                              const act::JoinInput& input, int threads);

}  // namespace actjoin::baselines

#endif  // ACTJOIN_BASELINES_SHAPE_INDEX_H_
