// R-tree over polygon MBRs: the classic filter-and-refine baseline ("RT").
//
// The paper compares against the boost R-tree with the rstar splitting
// strategy and at most 8 entries per node, probing it with each point to
// obtain candidate polygons and refining every candidate with the full
// ray-tracing PIP test. There is no true-hit filtering, which is exactly why
// it loses badly on complex polygons (Fig. 10): every candidate pays the
// O(edges) refinement.
//
// This implementation offers STR bulk loading (used by the benchmarks) and
// Guttman insertion with quadratic split (used by tests), both with a
// configurable max node fanout (default 8, as in the paper).

#ifndef ACTJOIN_BASELINES_RTREE_H_
#define ACTJOIN_BASELINES_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "act/join.h"
#include "geometry/polygon.h"
#include "geometry/rect.h"

namespace actjoin::baselines {

class RTree {
 public:
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&& o) noexcept
      : root_(o.root_),
        max_entries_(o.max_entries_),
        size_(o.size_),
        height_(o.height_),
        node_count_(o.node_count_) {
    o.root_ = nullptr;
    o.size_ = 0;
    o.height_ = 0;
    o.node_count_ = 0;
  }

  /// Sort-Tile-Recursive bulk load; replaces all contents.
  void BulkLoad(const std::vector<std::pair<geom::Rect, uint32_t>>& entries);

  /// Guttman insertion with quadratic split.
  void Insert(const geom::Rect& rect, uint32_t id);

  struct Node {
    geom::Rect rects[12];
    union Slot {
      Node* child;
      uint32_t id;
    } slots[12];
    int count = 0;
    bool is_leaf = false;

    geom::Rect Mbr() const {
      geom::Rect r;
      for (int k = 0; k < count; ++k) r.Expand(rects[k]);
      return r;
    }
  };

  /// Visits the id of every entry whose MBR contains p.
  template <typename Fn>
  void QueryPoint(const geom::Point& p, Fn&& fn) const {
    if (root_ != nullptr) QueryPointRec(root_, p, fn);
  }

  /// Pairwise crossmatch filter: synchronized descent of this tree
  /// against `other` with a pending node-pair worklist — the classic
  /// R-tree spatial join. A node pair whose MBRs are disjoint prunes its
  /// whole entry cross-product; a leaf/leaf meet emits every overlapping
  /// entry-MBR pair as a candidate (this tree's id first); a mixed pair
  /// descends into the inner node's children. Returns sorted unique
  /// candidate (id, id) pairs — the filter half of the A/B baseline the
  /// dual-trie crossmatch is benched against; the refine half shares
  /// geom::PolygonsIntersect / PolygonCovers so verdicts (and bytes) can
  /// only differ if candidate *recall* differs.
  std::vector<std::pair<uint32_t, uint32_t>> CrossMatchCandidates(
      const RTree& other) const;

  size_t size() const { return size_; }
  int height() const { return height_; }
  uint64_t node_count() const { return node_count_; }
  uint64_t MemoryBytes() const;

  /// Structural invariants for tests: node MBRs tightly contain children,
  /// counts within bounds, uniform leaf depth.
  bool CheckInvariants() const;

 private:
  template <typename Fn>
  void QueryPointRec(const Node* node, const geom::Point& p, Fn&& fn) const {
    for (int k = 0; k < node->count; ++k) {
      if (!node->rects[k].Contains(p)) continue;
      if (node->is_leaf) {
        fn(node->slots[k].id);
      } else {
        QueryPointRec(node->slots[k].child, p, fn);
      }
    }
  }

  Node* NewNode(bool leaf);
  void FreeSubtree(Node* node);

  Node* root_ = nullptr;
  int max_entries_;
  size_t size_ = 0;
  int height_ = 0;
  uint64_t node_count_ = 0;
};

/// Filter-and-refine join: probe the R-tree per point, PIP-test every
/// candidate. Thread batching identical to the ACT join driver.
act::JoinStats RTreeJoin(const RTree& tree,
                         const std::vector<geom::Polygon>& polygons,
                         const act::JoinInput& input, int threads);

/// Builds an R-tree over the polygons' MBRs (entry id = polygon id).
RTree BuildPolygonRTree(const std::vector<geom::Polygon>& polygons,
                        int max_entries = 8);

/// Statistics of one RTreeCrossMatch call (the baseline analog of
/// join2::CrossMatchStats, for the bench's filter-effectiveness columns).
struct RTreeCrossMatchStats {
  uint64_t candidate_pairs = 0;  // leaf/leaf MBR-overlap pairs
  uint64_t result_pairs = 0;     // pairs surviving refinement
  double seconds = 0;            // filter + refine wall time
};

/// The complete A/B baseline: `a` × `b` crossmatch, candidates from the
/// synchronized MBR descent, each refined with the shared geometry
/// predicates (geom::PolygonsIntersect when contains_mode is false,
/// geom::PolygonCovers(a, b) when true). The entry ids of both trees must
/// index into the matching polygon vector. Output carries the sorted
/// unique (id_a, id_b) ordering contract of act::ExecuteJoinPairs, so it
/// is byte-comparable against join2::CrossMatch and the brute-force
/// oracle — this doubles as the second oracle in tests.
std::vector<std::pair<uint32_t, uint32_t>> RTreeCrossMatch(
    const RTree& a, const std::vector<geom::Polygon>& polys_a,
    const RTree& b, const std::vector<geom::Polygon>& polys_b,
    bool contains_mode = false, RTreeCrossMatchStats* stats = nullptr);

}  // namespace actjoin::baselines

#endif  // ACTJOIN_BASELINES_RTREE_H_
