#include "baselines/rtree.h"

#include <algorithm>
#include <cmath>

#include "geometry/pip.h"
#include "geometry/poly_poly.h"
#include "util/check.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::baselines {

using geom::Point;
using geom::Rect;

RTree::RTree(int max_entries) : max_entries_(max_entries) {
  ACT_CHECK(max_entries >= 2 && max_entries <= 12);
}

RTree::~RTree() { FreeSubtree(root_); }

RTree::Node* RTree::NewNode(bool leaf) {
  Node* n = new Node();
  n->is_leaf = leaf;
  ++node_count_;
  return n;
}

void RTree::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  if (!node->is_leaf) {
    for (int k = 0; k < node->count; ++k) FreeSubtree(node->slots[k].child);
  }
  delete node;
  --node_count_;
}

// ---------------------------------------------------------------------------
// STR bulk load
// ---------------------------------------------------------------------------

void RTree::BulkLoad(
    const std::vector<std::pair<Rect, uint32_t>>& entries) {
  FreeSubtree(root_);
  root_ = nullptr;
  size_ = entries.size();
  height_ = 0;
  if (entries.empty()) return;

  // Leaf level: STR tiling of the entries.
  struct Item {
    Rect rect;
    Node::Slot slot;
  };
  std::vector<Item> items;
  items.reserve(entries.size());
  for (const auto& [rect, id] : entries) {
    Item it;
    it.rect = rect;
    it.slot.id = id;
    items.push_back(it);
  }

  bool leaf_level = true;
  while (true) {
    size_t n = items.size();
    size_t pages = (n + max_entries_ - 1) / max_entries_;
    if (pages == 1) {
      Node* node = NewNode(leaf_level);
      for (size_t k = 0; k < n; ++k) {
        node->rects[k] = items[k].rect;
        node->slots[k] = items[k].slot;
      }
      node->count = static_cast<int>(n);
      root_ = node;
      ++height_;
      return;
    }
    // Sort by x-center, slice, sort slices by y-center, pack pages.
    size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(pages))));
    size_t slice_size = ((pages + slices - 1) / slices) * max_entries_;
    std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
      return a.rect.Center().x < b.rect.Center().x;
    });
    std::vector<Item> parents;
    for (size_t s = 0; s * slice_size < n; ++s) {
      size_t lo = s * slice_size;
      size_t hi = std::min(lo + slice_size, n);
      std::sort(items.begin() + lo, items.begin() + hi,
                [](const Item& a, const Item& b) {
                  return a.rect.Center().y < b.rect.Center().y;
                });
      for (size_t p = lo; p < hi; p += max_entries_) {
        size_t cnt = std::min<size_t>(max_entries_, hi - p);
        Node* node = NewNode(leaf_level);
        for (size_t k = 0; k < cnt; ++k) {
          node->rects[k] = items[p + k].rect;
          node->slots[k] = items[p + k].slot;
        }
        node->count = static_cast<int>(cnt);
        Item up;
        up.rect = node->Mbr();
        up.slot.child = node;
        parents.push_back(up);
      }
    }
    items = std::move(parents);
    leaf_level = false;
    ++height_;
  }
}

// ---------------------------------------------------------------------------
// Guttman insertion with quadratic split
// ---------------------------------------------------------------------------

namespace {

// Quadratic pick-seeds: the pair wasting the most area together.
std::pair<int, int> PickSeeds(const std::vector<Rect>& rects) {
  double worst = -1;
  std::pair<int, int> seeds{0, 1};
  for (size_t i = 0; i < rects.size(); ++i) {
    for (size_t j = i + 1; j < rects.size(); ++j) {
      Rect u = rects[i];
      u.Expand(rects[j]);
      double waste = u.Area() - rects[i].Area() - rects[j].Area();
      if (waste > worst) {
        worst = waste;
        seeds = {static_cast<int>(i), static_cast<int>(j)};
      }
    }
  }
  return seeds;
}

}  // namespace

void RTree::Insert(const Rect& rect, uint32_t id) {
  if (root_ == nullptr) {
    root_ = NewNode(true);
    height_ = 1;
  }

  // Descend to the leaf with least enlargement, remembering the path and
  // the child slot taken at each level.
  std::vector<std::pair<Node*, int>> path;  // (node, child index)
  Node* node = root_;
  while (!node->is_leaf) {
    int best = 0;
    double best_enl = std::numeric_limits<double>::max();
    double best_area = std::numeric_limits<double>::max();
    for (int k = 0; k < node->count; ++k) {
      double enl = node->rects[k].Enlargement(rect);
      double area = node->rects[k].Area();
      if (enl < best_enl || (enl == best_enl && area < best_area)) {
        best = k;
        best_enl = enl;
        best_area = area;
      }
    }
    path.emplace_back(node, best);
    node->rects[best].Expand(rect);
    node = node->slots[best].child;
  }

  // Collect overflow entries if the leaf is full.
  std::vector<Rect> rects;
  std::vector<Node::Slot> slots;
  Node::Slot new_slot;
  new_slot.id = id;
  if (node->count < max_entries_) {
    node->rects[node->count] = rect;
    node->slots[node->count] = new_slot;
    ++node->count;
    ++size_;
    return;
  }
  for (int k = 0; k < node->count; ++k) {
    rects.push_back(node->rects[k]);
    slots.push_back(node->slots[k]);
  }
  rects.push_back(rect);
  slots.push_back(new_slot);
  ++size_;

  // Split bottom-up while nodes overflow.
  Node* split_from = node;
  for (;;) {
    auto [s1, s2] = PickSeeds(rects);
    Node* left = split_from;
    Node* right = NewNode(split_from->is_leaf);
    left->count = 0;
    std::vector<bool> assigned(rects.size(), false);
    Rect lbox = rects[s1], rbox = rects[s2];
    auto push = [&](Node* n, int idx) {
      n->rects[n->count] = rects[idx];
      n->slots[n->count] = slots[idx];
      ++n->count;
      assigned[idx] = true;
    };
    push(left, s1);
    push(right, s2);
    int remaining = static_cast<int>(rects.size()) - 2;
    int min_fill = (max_entries_ + 1) / 2;
    while (remaining > 0) {
      // Force-assign if one side must take everything to reach min fill.
      if (left->count + remaining == min_fill) {
        for (size_t k = 0; k < rects.size(); ++k) {
          if (!assigned[k]) {
            lbox.Expand(rects[k]);
            push(left, static_cast<int>(k));
          }
        }
        remaining = 0;
        break;
      }
      if (right->count + remaining == min_fill) {
        for (size_t k = 0; k < rects.size(); ++k) {
          if (!assigned[k]) {
            rbox.Expand(rects[k]);
            push(right, static_cast<int>(k));
          }
        }
        remaining = 0;
        break;
      }
      // Pick-next: the entry with the strongest preference.
      int pick = -1;
      double best_diff = -1;
      for (size_t k = 0; k < rects.size(); ++k) {
        if (assigned[k]) continue;
        double d1 = lbox.Enlargement(rects[k]);
        double d2 = rbox.Enlargement(rects[k]);
        double diff = std::abs(d1 - d2);
        if (diff > best_diff) {
          best_diff = diff;
          pick = static_cast<int>(k);
        }
      }
      double d1 = lbox.Enlargement(rects[pick]);
      double d2 = rbox.Enlargement(rects[pick]);
      bool to_left =
          d1 < d2 ||
          (d1 == d2 && (lbox.Area() < rbox.Area() ||
                        (lbox.Area() == rbox.Area() &&
                         left->count <= right->count)));
      if (to_left) {
        lbox.Expand(rects[pick]);
        push(left, pick);
      } else {
        rbox.Expand(rects[pick]);
        push(right, pick);
      }
      --remaining;
    }

    // Propagate: insert `right` next to `left` in the parent.
    if (path.empty()) {
      Node* new_root = NewNode(false);
      new_root->count = 2;
      new_root->rects[0] = left->Mbr();
      new_root->slots[0].child = left;
      new_root->rects[1] = right->Mbr();
      new_root->slots[1].child = right;
      root_ = new_root;
      ++height_;
      return;
    }
    auto [parent, child_idx] = path.back();
    path.pop_back();
    parent->rects[child_idx] = left->Mbr();
    if (parent->count < max_entries_) {
      parent->rects[parent->count] = right->Mbr();
      parent->slots[parent->count].child = right;
      ++parent->count;
      return;
    }
    // Parent overflows too: gather and split it on the next iteration.
    rects.clear();
    slots.clear();
    for (int k = 0; k < parent->count; ++k) {
      rects.push_back(parent->rects[k]);
      slots.push_back(parent->slots[k]);
    }
    rects.push_back(right->Mbr());
    Node::Slot s;
    s.child = right;
    slots.push_back(s);
    split_from = parent;
  }
}

uint64_t RTree::MemoryBytes() const { return node_count_ * sizeof(Node); }

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

namespace {

struct NodeCheck {
  bool ok = true;
  int depth = 0;
  size_t entries = 0;
};

NodeCheck CheckRec(const RTree::Node* node) {
  NodeCheck r;
  if (node->count == 0) {
    r.ok = false;
    return r;
  }
  if (node->is_leaf) {
    r.depth = 1;
    r.entries = node->count;
    return r;
  }
  int child_depth = -1;
  for (int k = 0; k < node->count; ++k) {
    const RTree::Node* child = node->slots[k].child;
    NodeCheck c = CheckRec(child);
    if (!c.ok) r.ok = false;
    if (child_depth < 0) child_depth = c.depth;
    if (c.depth != child_depth) r.ok = false;
    r.entries += c.entries;
    // The stored rect must contain the child's actual MBR.
    Rect actual = child->Mbr();
    if (!node->rects[k].Contains(actual)) r.ok = false;
  }
  r.depth = child_depth + 1;
  return r;
}

}  // namespace

bool RTree::CheckInvariants() const {
  if (root_ == nullptr) return size_ == 0;
  NodeCheck r = CheckRec(root_);
  return r.ok && r.depth == height_ && r.entries == size_;
}

std::vector<std::pair<uint32_t, uint32_t>> RTree::CrossMatchCandidates(
    const RTree& other) const {
  std::vector<std::pair<uint32_t, uint32_t>> out;
  if (root_ == nullptr || other.root_ == nullptr) return out;
  struct NodePair {
    const Node* a;
    const Node* b;
  };
  const geom::Rect mbr_a = root_->Mbr();
  const geom::Rect mbr_b = other.root_->Mbr();
  if (!mbr_a.Intersects(mbr_b)) return out;
  std::vector<NodePair> pending{{root_, other.root_}};
  while (!pending.empty()) {
    const NodePair p = pending.back();
    pending.pop_back();
    if (p.a->is_leaf && p.b->is_leaf) {
      for (int i = 0; i < p.a->count; ++i) {
        for (int j = 0; j < p.b->count; ++j) {
          if (p.a->rects[i].Intersects(p.b->rects[j])) {
            out.emplace_back(p.a->slots[i].id, p.b->slots[j].id);
          }
        }
      }
    } else if (p.a->is_leaf) {
      // Mixed meet (trees of different heights): keep the leaf whole and
      // descend only the inner side, one pending pair per child whose MBR
      // reaches the leaf at all. No depth bookkeeping needed.
      const geom::Rect am = p.a->Mbr();
      for (int j = 0; j < p.b->count; ++j) {
        if (am.Intersects(p.b->rects[j])) {
          pending.push_back({p.a, p.b->slots[j].child});
        }
      }
    } else if (p.b->is_leaf) {
      const geom::Rect bm = p.b->Mbr();
      for (int i = 0; i < p.a->count; ++i) {
        if (p.a->rects[i].Intersects(bm)) {
          pending.push_back({p.a->slots[i].child, p.b});
        }
      }
    } else {
      for (int i = 0; i < p.a->count; ++i) {
        for (int j = 0; j < p.b->count; ++j) {
          if (p.a->rects[i].Intersects(p.b->rects[j])) {
            pending.push_back({p.a->slots[i].child, p.b->slots[j].child});
          }
        }
      }
    }
  }
  // Entry pairs are emitted exactly once (leaf/leaf meets partition the
  // entry space), but LIFO processing leaves them unordered.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

// ---------------------------------------------------------------------------
// Join driver
// ---------------------------------------------------------------------------

RTree BuildPolygonRTree(const std::vector<geom::Polygon>& polygons,
                        int max_entries) {
  RTree tree(max_entries);
  std::vector<std::pair<Rect, uint32_t>> entries;
  entries.reserve(polygons.size());
  for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
    entries.emplace_back(polygons[pid].mbr(), pid);
  }
  tree.BulkLoad(entries);
  return tree;
}

std::vector<std::pair<uint32_t, uint32_t>> RTreeCrossMatch(
    const RTree& a, const std::vector<geom::Polygon>& polys_a,
    const RTree& b, const std::vector<geom::Polygon>& polys_b,
    bool contains_mode, RTreeCrossMatchStats* stats) {
  util::WallTimer timer;
  std::vector<std::pair<uint32_t, uint32_t>> candidates =
      a.CrossMatchCandidates(b);
  std::vector<std::pair<uint32_t, uint32_t>> out;
  out.reserve(candidates.size());
  for (const auto& [ida, idb] : candidates) {
    ACT_CHECK(ida < polys_a.size() && idb < polys_b.size());
    const bool hit =
        contains_mode
            ? geom::PolygonCovers(polys_a[ida], polys_b[idb])
            : geom::PolygonsIntersect(polys_a[ida], polys_b[idb]);
    if (hit) out.emplace_back(ida, idb);
  }
  // Candidates are already sorted unique; the keep-filter preserves that.
  if (stats != nullptr) {
    stats->candidate_pairs = candidates.size();
    stats->result_pairs = out.size();
    stats->seconds = timer.ElapsedSeconds();
  }
  return out;
}

act::JoinStats RTreeJoin(const RTree& tree,
                         const std::vector<geom::Polygon>& polygons,
                         const act::JoinInput& input, int threads) {
  if (threads <= 0) threads = util::DefaultThreadCount();
  struct ThreadState {
    std::vector<uint64_t> counts;
    uint64_t matched = 0, pairs = 0, pip_tests = 0, pip_hits = 0, sth = 0;
  };
  std::vector<ThreadState> states(threads);
  for (auto& s : states) s.counts.assign(polygons.size(), 0);

  util::WallTimer timer;
  util::ParallelFor(
      input.size(), threads, [&](uint64_t begin, uint64_t end, int tid) {
        ThreadState& st = states[tid];
        for (uint64_t p = begin; p < end; ++p) {
          const Point& pt = input.points[p];
          uint64_t pairs_before = st.pairs;
          uint64_t tests_before = st.pip_tests;
          tree.QueryPoint(pt, [&](uint32_t pid) {
            ++st.pip_tests;
            if (geom::ContainsPoint(polygons[pid], pt)) {
              ++st.pip_hits;
              ++st.counts[pid];
              ++st.pairs;
            }
          });
          if (st.pairs != pairs_before) ++st.matched;
          if (st.pip_tests == tests_before) ++st.sth;
        }
      });

  act::JoinStats out;
  out.seconds = timer.ElapsedSeconds();
  out.num_points = input.size();
  out.counts.assign(polygons.size(), 0);
  for (const ThreadState& st : states) {
    out.matched_points += st.matched;
    out.result_pairs += st.pairs;
    out.pip_tests += st.pip_tests;
    out.pip_hits += st.pip_hits;
    out.candidate_refs += st.pip_tests;
    out.sth_points += st.sth;
    for (size_t k = 0; k < out.counts.size(); ++k) {
      out.counts[k] += st.counts[k];
    }
  }
  return out;
}

}  // namespace actjoin::baselines
