// In-memory B+-tree over 64-bit keys/values (the paper's "GBT" baseline,
// standing in for Google's cpp-btree).
//
// Nodes have a byte budget rather than a fixed arity; the paper found a
// 256-byte target node the most query-efficient configuration for cell-id
// lookups, which is the default here. Leaves are doubly linked so the cell
// probe can inspect the predecessor of a lower_bound in O(1) — the same
// two-candidate check the sorted-vector baseline uses.
//
// Supports bulk loading from sorted input (used for covering indexes) and
// incremental insertion with node splits (exercised by tests).

#ifndef ACTJOIN_BASELINES_BTREE_H_
#define ACTJOIN_BASELINES_BTREE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace actjoin::baselines {

class BTree {
 public:
  // Node types are defined in the .cc; public so file-local helpers there
  // can take them as parameters.
  struct Node;
  struct LeafNode;
  struct InnerNode;

  /// target_node_bytes controls fanout; at 256 bytes a node holds 15 keys.
  explicit BTree(size_t target_node_bytes = 256);
  ~BTree();

  BTree(BTree&&) noexcept;
  BTree& operator=(BTree&&) noexcept;
  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Bulk loads from sorted, unique-keyed pairs. Replaces all contents.
  void BulkLoad(std::span<const std::pair<uint64_t, uint64_t>> sorted_pairs);

  /// Inserts or overwrites a key.
  void Insert(uint64_t key, uint64_t value);

  /// Point lookup. Returns true and sets *value on hit.
  bool Find(uint64_t key, uint64_t* value) const;

  /// Iterator over leaf entries. Valid() is false at end().
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    uint64_t key() const;
    uint64_t value() const;
    void Next();
    void Prev();  // becomes invalid before the first entry

   private:
    friend class BTree;
    Iterator(const void* leaf, int idx, int leaf_cap)
        : leaf_(leaf), idx_(idx), leaf_cap_(leaf_cap) {}
    const void* leaf_;
    int idx_;
    int leaf_cap_;  // all leaves of one tree share a capacity
  };

  Iterator Begin() const;
  /// First entry with key >= `key` (invalid if none).
  Iterator LowerBound(uint64_t key) const;
  /// Last entry with key <= `key` (invalid if none).
  Iterator Predecessor(uint64_t key) const;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  int height() const { return height_; }
  uint64_t node_count() const { return node_count_; }
  /// Total allocated node bytes.
  uint64_t MemoryBytes() const;

  /// Structural invariant check for tests: sorted keys, fill bounds,
  /// consistent child separators.
  bool CheckInvariants() const;

 private:
  void Clear();
  LeafNode* FindLeaf(uint64_t key) const;

  Node* root_ = nullptr;
  LeafNode* first_leaf_ = nullptr;
  size_t size_ = 0;
  int height_ = 0;
  uint64_t node_count_ = 0;
  int leaf_capacity_;
  int inner_capacity_;
  size_t node_bytes_;
};

}  // namespace actjoin::baselines

#endif  // ACTJOIN_BASELINES_BTREE_H_
