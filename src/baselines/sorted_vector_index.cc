#include "baselines/cell_indexes.h"

#include <algorithm>

namespace actjoin::baselines {

using act::EncodedCovering;
using act::TaggedEntry;
using geo::CellId;

SortedVectorIndex::SortedVectorIndex(const EncodedCovering& enc)
    : cells_(&enc.cells) {}

TaggedEntry SortedVectorIndex::Probe(uint64_t leaf_cell_id) const {
  CellId leaf(leaf_cell_id);
  auto it = std::lower_bound(
      cells_->begin(), cells_->end(), leaf,
      [](const auto& pair, const CellId& key) { return pair.first < key; });
  if (it != cells_->end() && it->first.range_min() <= leaf) {
    return it->second;
  }
  if (it != cells_->begin()) {
    --it;
    if (it->first.range_max() >= leaf) return it->second;
  }
  return act::kSentinelEntry;
}

BTreeCellIndex::BTreeCellIndex(const EncodedCovering& enc, size_t node_bytes)
    : tree_(node_bytes) {
  // CellId is a transparent wrapper over uint64_t with matching order, so
  // the pair vector can be bulk loaded by reinterpretation-free copy.
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  pairs.reserve(enc.cells.size());
  for (const auto& [cell, entry] : enc.cells) {
    pairs.emplace_back(cell.id(), entry);
  }
  tree_.BulkLoad(pairs);
}

TaggedEntry BTreeCellIndex::Probe(uint64_t leaf_cell_id) const {
  BTree::Iterator it = tree_.LowerBound(leaf_cell_id);
  if (it.Valid() &&
      CellId(it.key()).range_min().id() <= leaf_cell_id) {
    return it.value();
  }
  // lower_bound missed: predecessor may be an ancestor.
  if (it.Valid()) {
    it.Prev();
  } else {
    it = tree_.Predecessor(leaf_cell_id);
  }
  if (it.Valid() && CellId(it.key()).range_max().id() >= leaf_cell_id) {
    return it.value();
  }
  return act::kSentinelEntry;
}

}  // namespace actjoin::baselines
