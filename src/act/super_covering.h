// Super covering: the merged, disjoint, multi-resolution approximation of an
// entire polygon set (paper Sec. 3.1.1).
//
// "All grid cells are disjoint in the sense that each geographical point is
// covered by at most one cell, even if two (or more) polygons overlap. A
// single cell of the super covering can therefore be associated with
// multiple polygons."
//
// The builder implements the precision-preserving conflict resolution of
// Listing 1 / Fig. 4 (store c2 and d = c1 - c2 instead of c1 and c2),
// generalized: inserting a cell that contains *several* existing cells
// splits the new cell around all of them. The paper's pairwise listing is a
// special case.

#ifndef ACTJOIN_ACT_SUPER_COVERING_H_
#define ACTJOIN_ACT_SUPER_COVERING_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "act/lookup_table.h"
#include "act/polygon_ref.h"
#include "act/tagged_entry.h"
#include "geo/cell_id.h"
#include "geo/grid.h"
#include "geometry/pip.h"

namespace actjoin::act {

/// Classification callback: relation of cell to polygon `polygon_id`.
/// Implemented by PolygonClassifier (see classifier.h); kept abstract here
/// so the covering logic has no dependency on how classification is done.
class CellClassifier {
 public:
  virtual ~CellClassifier() = default;
  virtual geom::RegionRelation Classify(uint32_t polygon_id,
                                        const geo::CellId& cell) const = 0;
};

/// Frozen super covering: cells sorted by id with parallel reference lists.
class SuperCovering {
 public:
  SuperCovering() = default;
  SuperCovering(std::vector<geo::CellId> cells, std::vector<RefList> refs);

  size_t size() const { return cells_.size(); }
  const std::vector<geo::CellId>& cells() const { return cells_; }
  const geo::CellId& cell(size_t i) const { return cells_[i]; }
  const RefList& refs(size_t i) const { return refs_[i]; }

  /// Index of the unique cell containing `id` (cells are disjoint), or -1.
  /// This is the reference probe all index structures must agree with.
  int64_t FindContaining(const geo::CellId& id) const;

  /// Number of cells whose reference list contains at least one candidate
  /// (boundary) reference — the paper's "expensive" cells.
  uint64_t CountExpensiveCells() const;

  /// Verifies pairwise disjointness (test support; O(n)).
  bool IsDisjoint() const;

 private:
  std::vector<geo::CellId> cells_;
  std::vector<RefList> refs_;
};

/// Mutable form used by the builder (Listing 1) and by index training
/// (Sec. 3.3.1), which must see its own refinements while processing
/// training points.
class SuperCoveringBuilder {
 public:
  /// Inserts all cells of one polygon covering. interior=false for the
  /// boundary covering, true for the interior covering (paper Listing 1
  /// processes all coverings first, then all interior coverings).
  void AddCovering(std::span<const geo::CellId> cells, uint32_t polygon_id,
                   bool interior);

  /// General insertion with conflict resolution; exposed for tests.
  void Insert(const geo::CellId& cell, const RefList& refs);

  /// Freezes into the immutable form. The builder is left empty.
  SuperCovering Build();

  size_t size() const { return map_.size(); }

  // --- Training support (paper Sec. 3.3.1) ---------------------------------

  /// Iterator-ish handle to the cell containing `id`, or nullptr.
  const std::pair<const geo::CellId, RefList>* FindContaining(
      const geo::CellId& id) const;

  /// Replaces an expensive cell with its (up to four) direct children,
  /// re-classifying boundary references per child; children with no
  /// remaining references are dropped. Returns the number of cells added
  /// (children kept minus the removed original).
  int64_t SplitCell(const geo::CellId& cell, const CellClassifier& classifier);

 private:
  std::map<geo::CellId, RefList> map_;
};

/// Options mirroring the paper's default covering configuration (Sec. 4).
struct ApproximationOptions {
  int max_covering_cells = 128;
  int max_covering_level = geo::CellId::kMaxLevel;
  int max_interior_cells = 256;
  int max_interior_level = 20;
};

/// Precision-bound refinement (Sec. 3.2): replaces every boundary cell with
/// descendants whose diagonal is at most `bound_m` meters, re-classifying
/// each descendant against its referenced polygons. Cells that end up with
/// no references are removed. Returns a new covering; `in` is unchanged.
SuperCovering RefineToPrecision(const SuperCovering& in, double bound_m,
                                const geo::Grid& grid,
                                const CellClassifier& classifier);

/// Indexable form shared by ACT and the B-tree / sorted-vector baselines:
/// (cell id, tagged entry) pairs sorted by id plus the lookup table.
struct EncodedCovering {
  std::vector<std::pair<geo::CellId, TaggedEntry>> cells;
  LookupTable table;

  size_t RawKeyValueBytes() const { return cells.size() * 16; }
};

/// Encodes reference lists into tagged entries (inlining one or two refs,
/// spilling longer lists to the lookup table). With inline_refs = false all
/// lists go through the table — an ablation knob for the paper's "avoid an
/// unnecessary indirection" design choice.
EncodedCovering Encode(const SuperCovering& sc, bool inline_refs = true);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_SUPER_COVERING_H_
