// Lookup table for cells with three or more polygon references.
//
// Paper Sec. 3.1.2: "The lookup table is encoded as a single 32 bit unsigned
// integer array. ... Each encoded entry contains the number of true hits
// followed by the true hits, the number of candidate hits, and the candidate
// hits." Identical reference lists are stored once ("we only store unique
// polygon reference lists").

#ifndef ACTJOIN_ACT_LOOKUP_TABLE_H_
#define ACTJOIN_ACT_LOOKUP_TABLE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "act/polygon_ref.h"

namespace actjoin::act {

class LookupTable {
 public:
  /// Visits every reference of the entry at `offset` as (polygon_id,
  /// is_true_hit) pairs: true hits first, then candidates.
  template <typename Fn>
  void VisitEntry(uint32_t offset, Fn&& fn) const {
    const uint32_t* p = data_.data() + offset;
    uint32_t n_true = *p++;
    for (uint32_t k = 0; k < n_true; ++k) fn(*p++, true);
    uint32_t n_cand = *p++;
    for (uint32_t k = 0; k < n_cand; ++k) fn(*p++, false);
  }

  uint32_t NumTrueHits(uint32_t offset) const { return data_[offset]; }
  uint32_t NumCandidates(uint32_t offset) const {
    return data_[offset + 1 + data_[offset]];
  }

  size_t SizeBytes() const { return data_.size() * sizeof(uint32_t); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  friend class LookupTableBuilder;
  std::vector<uint32_t> data_;
};

class LookupTableBuilder {
 public:
  /// Adds a reference list (or returns the offset of an identical existing
  /// one). The list may be in any order; storage is true hits first.
  uint32_t AddList(const RefList& refs);

  LookupTable Build() &&;

 private:
  LookupTable table_;
  // Dedup by FNV-1a hash of the encoded list; collisions verified by a full
  // comparison against the stored encoding.
  std::unordered_map<uint64_t, std::vector<uint32_t>> dedup_;
};

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_LOOKUP_TABLE_H_
