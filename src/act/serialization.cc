#include "act/serialization.h"

#include <cmath>
#include <cstdint>
#include <fstream>

#include "util/check.h"
#include "util/crc32c.h"

namespace actjoin::act {

namespace {

constexpr uint32_t kMagic = 0x4a544341;  // "ACTJ"
constexpr uint32_t kVersion = 2;

// Section tags, in file order.
constexpr uint32_t kOptionsTag = 1;
constexpr uint32_t kPolygonsTag = 2;
constexpr uint32_t kCoveringTag = 3;

void Fail(LoadError* error, LoadError what) {
  if (error != nullptr) *error = what;
}

// --- Section payload codecs ------------------------------------------------

void AppendOptions(const PolygonIndex& index, util::ByteWriter* w) {
  w->PutU8(static_cast<uint8_t>(index.grid().curve()));
  const BuildOptions& opts = index.options();
  w->PutU32(static_cast<uint32_t>(opts.approx.max_covering_cells));
  w->PutU32(static_cast<uint32_t>(opts.approx.max_covering_level));
  w->PutU32(static_cast<uint32_t>(opts.approx.max_interior_cells));
  w->PutU32(static_cast<uint32_t>(opts.approx.max_interior_level));
  w->PutU8(opts.precision_bound_m.has_value() ? 1 : 0);
  w->PutF64(opts.precision_bound_m.value_or(0.0));
  w->PutU32(static_cast<uint32_t>(opts.act.bits_per_level));
  w->PutU8(opts.act.use_root_prefix ? 1 : 0);
}

bool ParseOptions(std::span<const uint8_t> payload, geo::Grid* grid,
                  BuildOptions* opts, LoadError* error) {
  util::ByteReader r(payload);
  uint8_t curve = r.U8();
  opts->approx.max_covering_cells = static_cast<int>(r.U32());
  opts->approx.max_covering_level = static_cast<int>(r.U32());
  opts->approx.max_interior_cells = static_cast<int>(r.U32());
  opts->approx.max_interior_level = static_cast<int>(r.U32());
  uint8_t has_bound = r.U8();
  double bound = r.F64();
  int32_t bits = static_cast<int32_t>(r.U32());
  uint8_t root_prefix = r.U8();
  if (!r.AtEnd()) {
    // The CRC passed, so the length is as-written: a size mismatch means
    // the writer and reader disagree about the payload, not truncation.
    Fail(error, LoadError::kBadData);
    return false;
  }
  if (curve > 1 || has_bound > 1 || root_prefix > 1 || bits < 1 || bits > 8 ||
      !std::isfinite(bound)) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  *grid = geo::Grid(static_cast<geo::CurveType>(curve));
  if (has_bound != 0) opts->precision_bound_m = bound;
  opts->act.bits_per_level = bits;
  opts->act.use_root_prefix = root_prefix != 0;
  return true;
}

void AppendPolygons(const std::vector<geom::Polygon>& polygons,
                    util::ByteWriter* w) {
  w->PutU64(polygons.size());
  for (const geom::Polygon& poly : polygons) {
    w->PutU32(static_cast<uint32_t>(poly.rings().size()));
    for (const geom::Ring& ring : poly.rings()) {
      w->PutU32(static_cast<uint32_t>(ring.size()));
      for (const geom::Point& p : ring) {
        w->PutF64(p.x);
        w->PutF64(p.y);
      }
    }
  }
}

bool ParsePolygons(std::span<const uint8_t> payload,
                   std::vector<geom::Polygon>* polygons, LoadError* error) {
  util::ByteReader r(payload);
  uint64_t n_polys = r.U64();
  // The smallest real polygon costs 56 payload bytes (ring count + one
  // 3-vertex ring); bounding the reserve by what actually arrived keeps
  // a forged count's transient allocation at ~file size, not 50x it.
  if (!r.ok() || n_polys > payload.size() / 56 + 1) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  polygons->reserve(n_polys);
  for (uint64_t k = 0; k < n_polys; ++k) {
    uint32_t n_rings = r.U32();
    if (!r.ok() || n_rings == 0 || n_rings > r.remaining()) {
      Fail(error, LoadError::kBadData);
      return false;
    }
    geom::Polygon poly;
    for (uint32_t ring_i = 0; ring_i < n_rings; ++ring_i) {
      uint32_t n_verts = r.U32();
      if (!r.ok() || n_verts < 3 || n_verts > r.remaining() / 16 + 1) {
        Fail(error, LoadError::kBadData);
        return false;
      }
      geom::Ring ring;
      ring.reserve(n_verts);
      for (uint32_t v = 0; v < n_verts; ++v) {
        geom::Point p;
        p.x = r.F64();
        p.y = r.F64();
        if (!r.ok() || !std::isfinite(p.x) || !std::isfinite(p.y)) {
          Fail(error, LoadError::kBadData);
          return false;
        }
        ring.push_back(p);
      }
      poly.AddRing(std::move(ring));
    }
    polygons->push_back(std::move(poly));
  }
  if (!r.AtEnd()) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  return true;
}

void AppendCovering(const SuperCovering& sc, util::ByteWriter* w) {
  w->PutU64(sc.size());
  for (size_t i = 0; i < sc.size(); ++i) {
    w->PutU64(sc.cell(i).id());
    const RefList& refs = sc.refs(i);
    w->PutU32(static_cast<uint32_t>(refs.size()));
    for (const PolygonRef& r : refs) w->PutU32(r.Encode());
  }
}

bool ParseCovering(std::span<const uint8_t> payload, size_t n_polys,
                   SuperCovering* covering, LoadError* error) {
  util::ByteReader r(payload);
  uint64_t n_cells = r.U64();
  // A cell costs >= 16 payload bytes (id + ref count + one ref).
  if (!r.ok() || n_cells > payload.size() / 16 + 1) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  std::vector<geo::CellId> cells;
  std::vector<RefList> refs;
  cells.reserve(n_cells);
  refs.reserve(n_cells);
  for (uint64_t k = 0; k < n_cells; ++k) {
    uint64_t id = r.U64();
    uint32_t n_refs = r.U32();
    if (!r.ok() || n_refs == 0 || n_refs > r.remaining() / 4 + 1) {
      Fail(error, LoadError::kBadData);
      return false;
    }
    geo::CellId cell(id);
    if (!cell.is_valid() || (k > 0 && !(cells.back() < cell))) {  // sorted
      Fail(error, LoadError::kBadData);
      return false;
    }
    RefList list;
    for (uint32_t i = 0; i < n_refs; ++i) {
      PolygonRef ref = PolygonRef::Decode(r.U32());
      if (!r.ok() || ref.polygon_id >= n_polys) {
        Fail(error, LoadError::kBadData);
        return false;
      }
      list.push_back(ref);
    }
    cells.push_back(cell);
    refs.push_back(std::move(list));
  }
  if (!r.AtEnd()) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  *covering = SuperCovering(std::move(cells), std::move(refs));
  if (!covering->IsDisjoint()) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  return true;
}

}  // namespace

void AppendPolygonsBlob(const std::vector<geom::Polygon>& polygons,
                        util::ByteWriter* w) {
  AppendPolygons(polygons, w);
}

bool ParsePolygonsBlob(std::span<const uint8_t> payload,
                       std::vector<geom::Polygon>* polygons,
                       LoadError* error) {
  return ParsePolygons(payload, polygons, error);
}

const char* ToString(LoadError error) {
  switch (error) {
    case LoadError::kNone:
      return "ok";
    case LoadError::kMissing:
      return "missing";
    case LoadError::kTruncated:
      return "truncated";
    case LoadError::kBadMagic:
      return "bad magic";
    case LoadError::kBadVersion:
      return "unsupported version";
    case LoadError::kBadChecksum:
      return "checksum mismatch";
    case LoadError::kBadData:
      return "invalid data";
  }
  return "unknown";
}

size_t BeginSection(util::ByteWriter* w, uint32_t tag) {
  size_t begin = w->size();
  w->PutU32(tag);
  w->PutU64(0);  // payload length, patched by EndSection
  return begin;
}

void EndSection(util::ByteWriter* w, size_t begin) {
  const size_t payload_at = begin + 12;
  ACT_CHECK(payload_at <= w->size());
  const size_t payload_len = w->size() - payload_at;
  w->PatchU64(begin + 4, payload_len);
  w->PutU32(util::Crc32c(w->bytes().data() + payload_at, payload_len));
}

bool ReadSection(std::span<const uint8_t> bytes, size_t* offset,
                 uint32_t expect_tag, std::span<const uint8_t>* payload,
                 LoadError* error) {
  if (bytes.size() - *offset < kSectionOverheadBytes) {
    Fail(error, LoadError::kTruncated);
    return false;
  }
  util::ByteReader r(bytes.subspan(*offset, 12));
  uint32_t tag = r.U32();
  uint64_t len = r.U64();
  if (tag != expect_tag) {
    Fail(error, LoadError::kBadData);
    return false;
  }
  // Subtract, never add: len is untrusted and offset + len could wrap.
  if (len > bytes.size() - *offset - kSectionOverheadBytes) {
    Fail(error, LoadError::kTruncated);
    return false;
  }
  *payload = bytes.subspan(*offset + 12, len);
  util::ByteReader crc_r(bytes.subspan(*offset + 12 + len, 4));
  uint32_t want_crc = crc_r.U32();
  if (util::Crc32c(payload->data(), payload->size()) != want_crc) {
    Fail(error, LoadError::kBadChecksum);
    return false;
  }
  *offset += kSectionOverheadBytes + len;
  return true;
}

void AppendIndexBody(const PolygonIndex& index, util::ByteWriter* w) {
  size_t s = BeginSection(w, kOptionsTag);
  AppendOptions(index, w);
  EndSection(w, s);

  s = BeginSection(w, kPolygonsTag);
  AppendPolygons(index.polygons(), w);
  EndSection(w, s);

  s = BeginSection(w, kCoveringTag);
  AppendCovering(index.covering(), w);
  EndSection(w, s);
}

std::optional<PolygonIndex> ParseIndexBody(std::span<const uint8_t> bytes,
                                           size_t* offset, LoadError* error) {
  std::span<const uint8_t> payload;
  if (!ReadSection(bytes, offset, kOptionsTag, &payload, error)) {
    return std::nullopt;
  }
  geo::Grid grid;
  BuildOptions opts;
  if (!ParseOptions(payload, &grid, &opts, error)) return std::nullopt;

  if (!ReadSection(bytes, offset, kPolygonsTag, &payload, error)) {
    return std::nullopt;
  }
  std::vector<geom::Polygon> polygons;
  if (!ParsePolygons(payload, &polygons, error)) return std::nullopt;

  if (!ReadSection(bytes, offset, kCoveringTag, &payload, error)) {
    return std::nullopt;
  }
  SuperCovering covering;
  if (!ParseCovering(payload, polygons.size(), &covering, error)) {
    return std::nullopt;
  }
  return PolygonIndex::FromComponents(std::move(polygons), grid, opts,
                                      std::move(covering));
}

bool SaveIndex(const PolygonIndex& index, const std::string& path) {
  util::ByteWriter w;
  w.PutU32(kMagic);
  w.PutU32(kVersion);
  AppendIndexBody(index, &w);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(reinterpret_cast<const char*>(w.bytes().data()),
            static_cast<std::streamsize>(w.size()));
  return out.good();
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                   LoadError* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    Fail(error, LoadError::kMissing);
    return false;
  }
  std::streamoff size_off = in.tellg();
  if (size_off < 0) {
    // A path that opens but cannot report a size — a directory, most
    // likely — is "no file here", not a SIZE_MAX allocation.
    Fail(error, LoadError::kMissing);
    return false;
  }
  auto size = static_cast<size_t>(size_off);
  in.seekg(0);
  out->resize(size);
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(out->data()),
               static_cast<std::streamsize>(size))) {
    Fail(error, LoadError::kTruncated);
    return false;
  }
  return true;
}

std::optional<PolygonIndex> LoadIndex(const std::string& path,
                                      LoadError* error) {
  Fail(error, LoadError::kNone);
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes, error)) return std::nullopt;
  if (bytes.size() < 8) {
    Fail(error, LoadError::kTruncated);
    return std::nullopt;
  }
  util::ByteReader r(bytes);
  if (r.U32() != kMagic) {
    Fail(error, LoadError::kBadMagic);
    return std::nullopt;
  }
  if (r.U32() != kVersion) {
    Fail(error, LoadError::kBadVersion);
    return std::nullopt;
  }
  size_t offset = 8;
  std::optional<PolygonIndex> index = ParseIndexBody(bytes, &offset, error);
  if (!index.has_value()) return std::nullopt;
  if (offset != bytes.size()) {
    // Trailing bytes after the last section: as malformed as truncation.
    Fail(error, LoadError::kBadData);
    return std::nullopt;
  }
  return index;
}

}  // namespace actjoin::act
