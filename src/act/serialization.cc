#include "act/serialization.h"

#include <cmath>
#include <cstdint>
#include <fstream>

namespace actjoin::act {

namespace {

constexpr uint32_t kMagic = 0x4a544341;  // "ACTJ"
constexpr uint32_t kVersion = 1;

template <typename T>
void Put(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool Get(std::ifstream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return in.good();
}

}  // namespace

bool SaveIndex(const PolygonIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;

  Put(out, kMagic);
  Put(out, kVersion);

  // Grid + build options.
  Put(out, static_cast<uint8_t>(index.grid().curve()));
  const BuildOptions& opts = index.options();
  Put(out, static_cast<int32_t>(opts.approx.max_covering_cells));
  Put(out, static_cast<int32_t>(opts.approx.max_covering_level));
  Put(out, static_cast<int32_t>(opts.approx.max_interior_cells));
  Put(out, static_cast<int32_t>(opts.approx.max_interior_level));
  Put(out, static_cast<uint8_t>(opts.precision_bound_m.has_value()));
  Put(out, opts.precision_bound_m.value_or(0.0));
  Put(out, static_cast<int32_t>(opts.act.bits_per_level));
  Put(out, static_cast<uint8_t>(opts.act.use_root_prefix));

  // Polygons.
  Put(out, static_cast<uint64_t>(index.polygons().size()));
  for (const geom::Polygon& poly : index.polygons()) {
    Put(out, static_cast<uint32_t>(poly.rings().size()));
    for (const geom::Ring& ring : poly.rings()) {
      Put(out, static_cast<uint32_t>(ring.size()));
      for (const geom::Point& p : ring) {
        Put(out, p.x);
        Put(out, p.y);
      }
    }
  }

  // Covering (includes any precision refinement and training).
  const SuperCovering& sc = index.covering();
  Put(out, static_cast<uint64_t>(sc.size()));
  for (size_t i = 0; i < sc.size(); ++i) {
    Put(out, sc.cell(i).id());
    const RefList& refs = sc.refs(i);
    Put(out, static_cast<uint32_t>(refs.size()));
    for (const PolygonRef& r : refs) Put(out, r.Encode());
  }
  return out.good();
}

std::optional<PolygonIndex> LoadIndex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;

  uint32_t magic = 0, version = 0;
  if (!Get(in, &magic) || magic != kMagic) return std::nullopt;
  if (!Get(in, &version) || version != kVersion) return std::nullopt;

  uint8_t curve = 0;
  if (!Get(in, &curve) || curve > 1) return std::nullopt;
  geo::Grid grid(static_cast<geo::CurveType>(curve));

  BuildOptions opts;
  int32_t i32 = 0;
  uint8_t u8 = 0;
  double f64 = 0;
  if (!Get(in, &i32)) return std::nullopt;
  opts.approx.max_covering_cells = i32;
  if (!Get(in, &i32)) return std::nullopt;
  opts.approx.max_covering_level = i32;
  if (!Get(in, &i32)) return std::nullopt;
  opts.approx.max_interior_cells = i32;
  if (!Get(in, &i32)) return std::nullopt;
  opts.approx.max_interior_level = i32;
  if (!Get(in, &u8)) return std::nullopt;
  if (!Get(in, &f64)) return std::nullopt;
  if (u8 != 0) opts.precision_bound_m = f64;
  if (!Get(in, &i32) || i32 < 1 || i32 > 8) return std::nullopt;
  opts.act.bits_per_level = i32;
  if (!Get(in, &u8)) return std::nullopt;
  opts.act.use_root_prefix = u8 != 0;

  uint64_t n_polys = 0;
  if (!Get(in, &n_polys)) return std::nullopt;
  std::vector<geom::Polygon> polygons;
  polygons.reserve(n_polys);
  for (uint64_t k = 0; k < n_polys; ++k) {
    uint32_t n_rings = 0;
    if (!Get(in, &n_rings) || n_rings == 0) return std::nullopt;
    geom::Polygon poly;
    for (uint32_t r = 0; r < n_rings; ++r) {
      uint32_t n_verts = 0;
      if (!Get(in, &n_verts) || n_verts < 3) return std::nullopt;
      geom::Ring ring;
      ring.reserve(n_verts);
      for (uint32_t v = 0; v < n_verts; ++v) {
        geom::Point p;
        if (!Get(in, &p.x) || !Get(in, &p.y)) return std::nullopt;
        if (!std::isfinite(p.x) || !std::isfinite(p.y)) return std::nullopt;
        ring.push_back(p);
      }
      poly.AddRing(std::move(ring));
    }
    polygons.push_back(std::move(poly));
  }

  uint64_t n_cells = 0;
  if (!Get(in, &n_cells)) return std::nullopt;
  std::vector<geo::CellId> cells;
  std::vector<RefList> refs;
  cells.reserve(n_cells);
  refs.reserve(n_cells);
  for (uint64_t k = 0; k < n_cells; ++k) {
    uint64_t id = 0;
    if (!Get(in, &id)) return std::nullopt;
    geo::CellId cell(id);
    if (!cell.is_valid()) return std::nullopt;
    if (k > 0 && !(cells.back() < cell)) return std::nullopt;  // sorted
    uint32_t n_refs = 0;
    if (!Get(in, &n_refs) || n_refs == 0) return std::nullopt;
    RefList list;
    for (uint32_t r = 0; r < n_refs; ++r) {
      uint32_t enc = 0;
      if (!Get(in, &enc)) return std::nullopt;
      PolygonRef ref = PolygonRef::Decode(enc);
      if (ref.polygon_id >= n_polys) return std::nullopt;
      list.push_back(ref);
    }
    cells.push_back(cell);
    refs.push_back(std::move(list));
  }

  SuperCovering covering(std::move(cells), std::move(refs));
  if (!covering.IsDisjoint()) return std::nullopt;
  return PolygonIndex::FromComponents(std::move(polygons), grid, opts,
                                      std::move(covering));
}

}  // namespace actjoin::act
