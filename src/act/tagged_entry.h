// Tagged 64-bit slot entries (paper Sec. 3.1.2, "Adaptive Cell Trie").
//
// "Using pointer tagging, we differentiate between pointers and values."
// The two least significant bits of an 8-byte-aligned pointer are free, so a
// tagged entry is one of:
//   tag 00  pointer to a child node (entry 0 == the sentinel: a false hit)
//   tag 01  one inlined 31-bit polygon reference
//   tag 10  two inlined 31-bit polygon references
//   tag 11  a 31-bit offset into the lookup table (>= 3 references)

#ifndef ACTJOIN_ACT_TAGGED_ENTRY_H_
#define ACTJOIN_ACT_TAGGED_ENTRY_H_

#include <cstdint>

#include "act/polygon_ref.h"
#include "util/check.h"

namespace actjoin::act {

using TaggedEntry = uint64_t;

inline constexpr TaggedEntry kSentinelEntry = 0;  // false hit / no hit

enum class EntryKind : uint8_t {
  kPointer = 0,
  kOneRef = 1,
  kTwoRefs = 2,
  kTableOffset = 3,
};

inline EntryKind KindOf(TaggedEntry e) {
  return static_cast<EntryKind>(e & 3);
}

inline bool IsValue(TaggedEntry e) { return (e & 3) != 0; }

inline TaggedEntry MakePointer(const TaggedEntry* node) {
  auto bits = reinterpret_cast<uint64_t>(node);
  ACT_CHECK_MSG((bits & 3) == 0, "nodes must be 8-byte aligned");
  return bits;
}

inline const TaggedEntry* PointerOf(TaggedEntry e) {
  return reinterpret_cast<const TaggedEntry*>(e);
}

inline TaggedEntry* MutablePointerOf(TaggedEntry e) {
  return reinterpret_cast<TaggedEntry*>(e);
}

inline TaggedEntry MakeOneRef(const PolygonRef& r) {
  return (static_cast<uint64_t>(r.Encode()) << 2) |
         static_cast<uint64_t>(EntryKind::kOneRef);
}

inline TaggedEntry MakeTwoRefs(const PolygonRef& a, const PolygonRef& b) {
  return (static_cast<uint64_t>(a.Encode()) << 33) |
         (static_cast<uint64_t>(b.Encode()) << 2) |
         static_cast<uint64_t>(EntryKind::kTwoRefs);
}

inline TaggedEntry MakeTableOffset(uint32_t offset) {
  ACT_CHECK(offset <= 0x7FFFFFFFu);
  return (static_cast<uint64_t>(offset) << 2) |
         static_cast<uint64_t>(EntryKind::kTableOffset);
}

inline PolygonRef FirstRefOf(TaggedEntry e) {
  if (KindOf(e) == EntryKind::kTwoRefs) {
    return PolygonRef::Decode(static_cast<uint32_t>((e >> 33) & 0x7FFFFFFFu));
  }
  return PolygonRef::Decode(static_cast<uint32_t>((e >> 2) & 0x7FFFFFFFu));
}

inline PolygonRef SecondRefOf(TaggedEntry e) {
  return PolygonRef::Decode(static_cast<uint32_t>((e >> 2) & 0x7FFFFFFFu));
}

inline uint32_t TableOffsetOf(TaggedEntry e) {
  return static_cast<uint32_t>((e >> 2) & 0x7FFFFFFFu);
}

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_TAGGED_ENTRY_H_
