#include "act/pipeline.h"

#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::act {

SuperCovering BuildSuperCovering(const std::vector<geom::Polygon>& polygons,
                                 const geo::Grid& grid,
                                 const PolygonClassifier& classifier,
                                 const BuildOptions& opts,
                                 BuildTimings* timings) {
  ACT_CHECK(!polygons.empty());
  ACT_CHECK_MSG(polygons.size() <= kMaxPolygonId + uint64_t{1},
                "polygon ids are limited to 30 bits");
  int threads = opts.threads <= 0 ? util::DefaultThreadCount() : opts.threads;

  // Phase 1: individual polygon approximations, parallelized over polygons
  // (paper: "the computation of the individual coverings is parallelized
  // over the number of polygons").
  util::WallTimer timer;
  cover::CovererOptions cover_opts{opts.approx.max_covering_cells,
                                   opts.approx.max_covering_level, 0};
  cover::CovererOptions interior_opts{opts.approx.max_interior_cells,
                                      opts.approx.max_interior_level, 0};
  std::vector<std::vector<geo::CellId>> coverings(polygons.size());
  std::vector<std::vector<geo::CellId>> interiors(polygons.size());
  util::ParallelFor(polygons.size(), threads, /*batch=*/1,
                    [&](uint64_t begin, uint64_t end, int) {
                      for (uint64_t i = begin; i < end; ++i) {
                        cover::Coverer coverer(classifier.edge_grid(
                                                   static_cast<uint32_t>(i)),
                                               grid);
                        coverings[i] = coverer.Covering(cover_opts);
                        interiors[i] = coverer.InteriorCovering(interior_opts);
                      }
                    });
  if (timings != nullptr) {
    timings->individual_coverings_s = timer.ElapsedSeconds();
  }

  // Phase 2: serial merge into the super covering (Listing 1): all
  // coverings first, then all interior coverings.
  timer.Restart();
  SuperCoveringBuilder builder;
  for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
    builder.AddCovering(coverings[pid], pid, /*interior=*/false);
  }
  for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
    builder.AddCovering(interiors[pid], pid, /*interior=*/true);
  }
  SuperCovering covering = builder.Build();
  if (timings != nullptr) timings->super_covering_s = timer.ElapsedSeconds();

  // Phase 3: optional precision-bound refinement (Sec. 3.2).
  if (opts.precision_bound_m.has_value()) {
    timer.Restart();
    covering = RefineToPrecision(covering, *opts.precision_bound_m, grid,
                                 classifier);
    if (timings != nullptr) timings->refine_s = timer.ElapsedSeconds();
  }
  return covering;
}

PolygonIndex PolygonIndex::Build(const std::vector<geom::Polygon>& polygons,
                                 const geo::Grid& grid,
                                 const BuildOptions& opts) {
  PolygonIndex index(grid);
  index.polygons_ = polygons;
  index.opts_ = opts;
  index.RebuildClassifier();
  index.covering_ = BuildSuperCovering(index.polygons_, index.grid_,
                                       *index.classifier_, opts,
                                       &index.timings_);
  index.Reencode();
  return index;
}

PolygonIndex PolygonIndex::FromComponents(std::vector<geom::Polygon> polygons,
                                          const geo::Grid& grid,
                                          const BuildOptions& opts,
                                          SuperCovering covering) {
  PolygonIndex index(grid);
  index.polygons_ = std::move(polygons);
  index.opts_ = opts;
  index.covering_ = std::move(covering);
  index.RebuildClassifier();
  index.Reencode();
  return index;
}

void PolygonIndex::RebuildClassifier() {
  int threads =
      opts_.threads <= 0 ? util::DefaultThreadCount() : opts_.threads;
  classifier_ =
      std::make_unique<PolygonClassifier>(polygons_, grid_, threads);
}

uint32_t PolygonIndex::AddPolygons(
    std::span<const geom::Polygon> new_polygons) {
  uint32_t first_id = static_cast<uint32_t>(polygons_.size());
  ACT_CHECK_MSG(polygons_.size() + new_polygons.size() <=
                    kMaxPolygonId + uint64_t{1},
                "polygon ids are limited to 30 bits");
  for (const geom::Polygon& p : new_polygons) polygons_.push_back(p);
  // The owned vector may have reallocated; the classifier's edge grids
  // reference elements, so rebuild it over the full set.
  RebuildClassifier();

  // Coverings for the new polygons only, in parallel.
  int threads =
      opts_.threads <= 0 ? util::DefaultThreadCount() : opts_.threads;
  cover::CovererOptions cover_opts{opts_.approx.max_covering_cells,
                                   opts_.approx.max_covering_level, 0};
  cover::CovererOptions interior_opts{opts_.approx.max_interior_cells,
                                      opts_.approx.max_interior_level, 0};
  size_t n_new = new_polygons.size();
  std::vector<std::vector<geo::CellId>> coverings(n_new);
  std::vector<std::vector<geo::CellId>> interiors(n_new);
  util::ParallelFor(n_new, threads, /*batch=*/1,
                    [&](uint64_t begin, uint64_t end, int) {
                      for (uint64_t i = begin; i < end; ++i) {
                        uint32_t pid = first_id + static_cast<uint32_t>(i);
                        cover::Coverer coverer(classifier_->edge_grid(pid),
                                               grid_);
                        coverings[i] = coverer.Covering(cover_opts);
                        interiors[i] = coverer.InteriorCovering(interior_opts);
                      }
                    });

  // Insert into the existing covering one cell at a time — the runtime
  // update path the paper sketches; conflict resolution handles overlaps
  // with previously indexed polygons.
  SuperCoveringBuilder builder = ToBuilder(covering_);
  for (size_t i = 0; i < n_new; ++i) {
    uint32_t pid = first_id + static_cast<uint32_t>(i);
    builder.AddCovering(coverings[i], pid, /*interior=*/false);
  }
  for (size_t i = 0; i < n_new; ++i) {
    uint32_t pid = first_id + static_cast<uint32_t>(i);
    builder.AddCovering(interiors[i], pid, /*interior=*/true);
  }
  covering_ = builder.Build();
  if (opts_.precision_bound_m.has_value()) {
    covering_ = RefineToPrecision(covering_, *opts_.precision_bound_m, grid_,
                                  *classifier_);
  }
  Reencode();
  return first_id;
}

void PolygonIndex::RemovePolygons(std::span<const uint32_t> polygon_ids) {
  std::vector<bool> removed(polygons_.size(), false);
  for (uint32_t pid : polygon_ids) {
    ACT_CHECK(pid < polygons_.size());
    removed[pid] = true;
  }
  std::vector<geo::CellId> cells;
  std::vector<RefList> refs;
  cells.reserve(covering_.size());
  refs.reserve(covering_.size());
  for (size_t i = 0; i < covering_.size(); ++i) {
    RefList kept;
    for (const PolygonRef& r : covering_.refs(i)) {
      if (!removed[r.polygon_id]) kept.push_back(r);
    }
    if (kept.empty()) continue;  // cell no longer references anything
    cells.push_back(covering_.cell(i));
    refs.push_back(std::move(kept));
  }
  covering_ = SuperCovering(std::move(cells), std::move(refs));
  Reencode();  // also compacts the lookup table (paper: periodic reorg)
}

void PolygonIndex::Reencode() {
  util::WallTimer timer;
  encoded_ = Encode(covering_);
  timings_.encode_s = timer.ElapsedSeconds();
  timer.Restart();
  trie_ = std::make_unique<AdaptiveCellTrie>(encoded_, opts_.act);
  timings_.trie_build_s = timer.ElapsedSeconds();
}

TrainStats PolygonIndex::Train(const JoinInput& training_points,
                               const TrainOptions& opts) {
  SuperCoveringBuilder builder = ToBuilder(covering_);
  TrainStats stats =
      TrainOnPoints(&builder, training_points, *classifier_, opts);
  covering_ = builder.Build();
  Reencode();
  return stats;
}

}  // namespace actjoin::act
