#include "act/lookup_table.h"

#include <algorithm>

#include "util/check.h"

namespace actjoin::act {

namespace {

uint64_t HashEncoding(const std::vector<uint32_t>& enc) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t v : enc) {
    h ^= v;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint32_t LookupTableBuilder::AddList(const RefList& refs) {
  std::vector<uint32_t> true_hits;
  std::vector<uint32_t> candidates;
  for (const PolygonRef& r : refs) {
    (r.interior ? true_hits : candidates).push_back(r.polygon_id);
  }
  std::sort(true_hits.begin(), true_hits.end());
  std::sort(candidates.begin(), candidates.end());

  std::vector<uint32_t> enc;
  enc.reserve(refs.size() + 2);
  enc.push_back(static_cast<uint32_t>(true_hits.size()));
  enc.insert(enc.end(), true_hits.begin(), true_hits.end());
  enc.push_back(static_cast<uint32_t>(candidates.size()));
  enc.insert(enc.end(), candidates.begin(), candidates.end());

  uint64_t h = HashEncoding(enc);
  auto it = dedup_.find(h);
  bool hash_taken = false;
  if (it != dedup_.end()) {
    // A hash hit must still match content: different lists could collide on
    // the 64-bit hash.
    const std::vector<uint32_t>& existing = it->second;
    if (existing.size() == enc.size() + 1 &&
        std::equal(enc.begin(), enc.end(), existing.begin() + 1)) {
      return existing[0];
    }
    hash_taken = true;
  }

  uint32_t offset = static_cast<uint32_t>(table_.data_.size());
  table_.data_.insert(table_.data_.end(), enc.begin(), enc.end());
  if (!hash_taken) {
    // On the (vanishingly rare) collision the new list is stored but not
    // recorded for dedup; correctness is unaffected.
    std::vector<uint32_t> stored;
    stored.reserve(enc.size() + 1);
    stored.push_back(offset);
    stored.insert(stored.end(), enc.begin(), enc.end());
    dedup_.emplace(h, std::move(stored));
  }
  return offset;
}

LookupTable LookupTableBuilder::Build() && {
  dedup_.clear();
  return std::move(table_);
}

}  // namespace actjoin::act
