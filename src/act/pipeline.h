// End-to-end index construction: the library's main entry point.
//
// Mirrors the paper's build phase: compute per-polygon coverings and
// interior coverings (parallelized over polygons), merge them serially into
// the super covering (Listing 1), optionally refine boundary cells to a
// precision bound (Sec. 3.2) and/or train with historical points
// (Sec. 3.3.1), then encode and load the result into an Adaptive Cell Trie.
//
// Typical use:
//   geo::Grid grid;
//   act::PolygonIndex index = act::PolygonIndex::Build(polygons, grid, opts);
//   act::JoinStats stats = index.Join(points, {.mode = JoinMode::kExact});

#ifndef ACTJOIN_ACT_PIPELINE_H_
#define ACTJOIN_ACT_PIPELINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "act/act.h"
#include "act/classifier.h"
#include "act/join.h"
#include "act/super_covering.h"
#include "act/trainer.h"
#include "cover/coverer.h"
#include "geo/grid.h"
#include "geometry/polygon.h"

namespace actjoin::act {

struct BuildOptions {
  ApproximationOptions approx;   // covering budgets (paper Sec. 4 defaults)
  /// If set, refine to this precision bound in meters (approximate mode
  /// indexes; 60/15/4 m in the paper). Unset => coarse index for the exact
  /// join.
  std::optional<double> precision_bound_m;
  ActOptions act;                // fanout etc.
  /// Library-wide thread convention (same as JoinOptions.threads):
  /// 0 => util::DefaultThreadCount() (hardware concurrency), positive
  /// values are taken literally.
  int threads = 0;
};

struct BuildTimings {
  double individual_coverings_s = 0;  // parallel phase
  double super_covering_s = 0;        // serial merge (paper Table 1)
  double refine_s = 0;
  double encode_s = 0;
  double trie_build_s = 0;
};

/// A fully built polygon index. Owns a copy of the polygons, so the index
/// can outlive (and extend) the input set.
class PolygonIndex {
 public:
  static PolygonIndex Build(const std::vector<geom::Polygon>& polygons,
                            const geo::Grid& grid, const BuildOptions& opts);

  /// Reassembles an index from persisted components (see serialization.h):
  /// the covering is taken as-is; classifier, lookup table, and trie are
  /// rebuilt.
  static PolygonIndex FromComponents(std::vector<geom::Polygon> polygons,
                                     const geo::Grid& grid,
                                     const BuildOptions& opts,
                                     SuperCovering covering);

  /// Trains with historical points and rebuilds the trie (Sec. 3.3.1).
  TrainStats Train(const JoinInput& training_points,
                   const TrainOptions& opts = {});

  // --- Snapshot support (src/service/ serving layer) ------------------------

  /// Cheap independent copy: reuses the already-computed super covering
  /// (the expensive pipeline phase) and re-derives only classifier,
  /// encoding, and trie. The clone shares nothing with the original, so an
  /// updater can Clone a published snapshot, apply AddPolygons /
  /// RemovePolygons / Train to the clone, and publish the result while
  /// readers keep probing the original.
  PolygonIndex Clone() const {
    return FromComponents(polygons_, grid_, opts_, covering_);
  }

  /// Clone() boxed for the snapshot registry (see service/index_registry.h).
  std::shared_ptr<const PolygonIndex> CloneShared() const {
    return std::make_shared<const PolygonIndex>(Clone());
  }

  // --- Updates (the paper's Sec. 3.1.2 outlook: "the same procedure could
  // be used to add new polygons at runtime") ---------------------------------

  /// Adds polygons to the live index: their coverings are computed and
  /// inserted into the mutable super covering one by one (with the usual
  /// conflict resolution), the precision bound — if any — is re-applied,
  /// and the immutable trie is rebuilt. Returns the first id assigned.
  /// Cost: covering work is proportional to the new polygons; classifier
  /// and trie rebuild are proportional to the whole set.
  uint32_t AddPolygons(std::span<const geom::Polygon> new_polygons);

  /// Removes polygons from the join result: their references disappear
  /// from the covering (cells left referencing nothing are dropped) and
  /// the trie is rebuilt. Ids stay stable; removed ids are never returned
  /// again. The paper notes removal "would follow the same logic" plus
  /// periodic lookup-table compaction — the re-encode here compacts.
  void RemovePolygons(std::span<const uint32_t> polygon_ids);

  JoinStats Join(const JoinInput& points, const JoinOptions& opts) const {
    return ExecuteJoin(*trie_, encoded_.table, points, polygons_, opts);
  }

  std::vector<std::pair<uint64_t, uint32_t>> JoinPairs(const JoinInput& points,
                                                       JoinMode mode) const {
    return ExecuteJoinPairs(*trie_, encoded_.table, points, polygons_, mode);
  }

  const AdaptiveCellTrie& trie() const { return *trie_; }
  const SuperCovering& covering() const { return covering_; }
  const EncodedCovering& encoded() const { return encoded_; }
  const PolygonClassifier& classifier() const { return *classifier_; }
  const std::vector<geom::Polygon>& polygons() const { return polygons_; }
  const geo::Grid& grid() const { return grid_; }
  const BuildOptions& options() const { return opts_; }
  const BuildTimings& timings() const { return timings_; }

  /// Index memory: trie nodes + lookup table.
  uint64_t MemoryBytes() const {
    return trie_->stats().memory_bytes + encoded_.table.SizeBytes();
  }

 private:
  explicit PolygonIndex(const geo::Grid& grid) : grid_(grid) {}

  void RebuildClassifier();
  void Reencode();

  std::vector<geom::Polygon> polygons_;
  geo::Grid grid_;
  BuildOptions opts_;
  std::unique_ptr<PolygonClassifier> classifier_;
  SuperCovering covering_;
  EncodedCovering encoded_;
  std::unique_ptr<AdaptiveCellTrie> trie_;
  BuildTimings timings_;
};

/// Lower-level helper used by benchmarks that index the same super covering
/// with several data structures: build just the (optionally refined) super
/// covering plus timings.
SuperCovering BuildSuperCovering(const std::vector<geom::Polygon>& polygons,
                                 const geo::Grid& grid,
                                 const PolygonClassifier& classifier,
                                 const BuildOptions& opts,
                                 BuildTimings* timings);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_PIPELINE_H_
