// Index training with historical points (paper Sec. 3.3.1).
//
// "When a training point hits an expensive cell, for each of its four child
// cells we check whether they intersect, are fully contained in, or do not
// intersect the referenced polygons at all, and update ACT accordingly. ...
// we always replace an expensive cell with its direct children one level
// below" — one level per hit, so popular areas deepen gradually and
// outliers cannot over-refine a region.
//
// Training operates on the mutable super covering so each point observes
// the refinements caused by earlier points, then the (immutable) trie is
// rebuilt once — matching the paper's "all adaptation is performed at build
// time".

#ifndef ACTJOIN_ACT_TRAINER_H_
#define ACTJOIN_ACT_TRAINER_H_

#include <cstdint>

#include "act/join.h"
#include "act/super_covering.h"

namespace actjoin::act {

struct TrainOptions {
  /// Memory budget expressed as a cap on super-covering cells ("in practice,
  /// we would stop refining the index once a user-defined memory budget is
  /// exhausted").
  uint64_t max_cells = UINT64_MAX;
};

struct TrainStats {
  uint64_t points_processed = 0;
  uint64_t expensive_hits = 0;  // training points that hit an expensive cell
  uint64_t cells_split = 0;
  int64_t cells_delta = 0;      // net growth of the covering
  bool budget_exhausted = false;
};

/// Trains the covering in place with the given historical points.
TrainStats TrainOnPoints(SuperCoveringBuilder* covering,
                         const JoinInput& training_points,
                         const CellClassifier& classifier,
                         const TrainOptions& opts = {});

/// Convenience: rebuilds a mutable builder from a frozen covering.
SuperCoveringBuilder ToBuilder(const SuperCovering& sc);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_TRAINER_H_
