// Adaptive Cell Trie (ACT): the paper's radix tree over super-covering cell
// ids (Sec. 3.1.2).
//
// Key properties reproduced from the paper:
//   * Configurable fanout: 2/4/8 bits per radix level give the ACT1/ACT2/
//     ACT4 variants of the evaluation (one/two/four quadtree levels per trie
//     level).
//   * Artificial key extension: indexed cells are replaced by descendants at
//     the next node-aligned granularity so each node stores cells of one
//     level only and a lookup is a single offset access per node.
//   * Combined pointer/value slots with 2-bit tags; disjoint cells guarantee
//     a slot never needs both.
//   * Entries that hold neither child nor value are the sentinel (false
//     hit); a probe returns at most one cell.
//   * One tree per face, selected by the top three id bits; per-face common
//     root prefix to skip shared upper levels.
//
// The trie is immutable after construction (the paper performs all
// adaptation at build time); training rebuilds it from the mutable super
// covering.

#ifndef ACTJOIN_ACT_ACT_H_
#define ACTJOIN_ACT_ACT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "act/super_covering.h"
#include "act/tagged_entry.h"
#include "geo/cell_id.h"

namespace actjoin::act {

struct ActOptions {
  /// Radix bits consumed per tree level: 2 (ACT1), 4 (ACT2), 8 (ACT4).
  int bits_per_level = 8;
  /// Skip the longest common key prefix at the root (paper: "we therefore
  /// only use a common prefix at the root level"). Ablation knob.
  bool use_root_prefix = true;
};

/// Structural statistics (Table 2 sizes, Sec. 4.1 occupancy discussion).
struct ActStats {
  uint64_t node_count = 0;
  uint64_t memory_bytes = 0;       // nodes only
  uint64_t value_slots = 0;        // slots holding values
  uint64_t pointer_slots = 0;      // slots holding child pointers
  double avg_value_depth = 0;      // static mean depth of value slots
  int max_depth = 0;
  /// Occupied-slot fraction per tree depth.
  std::vector<double> occupancy_by_depth;
};

class AdaptiveCellTrie {
 public:
  /// Builds from a sorted, disjoint encoded covering. The lookup table
  /// stays in `enc`; the trie stores offsets into it.
  AdaptiveCellTrie(const EncodedCovering& enc, const ActOptions& opts);

  AdaptiveCellTrie(const AdaptiveCellTrie&) = delete;
  AdaptiveCellTrie& operator=(const AdaptiveCellTrie&) = delete;

  /// Probes with the leaf cell id of a query point. Returns the tagged
  /// value of the unique covering cell containing the point, or
  /// kSentinelEntry if none (paper Listing 2).
  TaggedEntry Probe(uint64_t leaf_cell_id) const {
    const Face& face = faces_[leaf_cell_id >> geo::CellId::kPosBits];
    uint64_t key = (leaf_cell_id << geo::CellId::kFaceBits) & ~uint64_t{15};
    int offset = face.prefix_bits;
    if (offset > 0 && (key >> (64 - offset)) != face.prefix) {
      return kSentinelEntry;
    }
    TaggedEntry entry = face.root;
    while (entry != kSentinelEntry && !IsValue(entry)) {
      uint64_t chunk = (key >> (64 - offset - bits_per_level_)) & slot_mask_;
      entry = PointerOf(entry)[chunk];
      offset += bits_per_level_;
    }
    return entry;
  }

  /// Probe that also reports the number of node accesses (tree traversal
  /// depth, paper Table 4).
  TaggedEntry ProbeCounting(uint64_t leaf_cell_id, int* depth) const;

  /// Batched probe: walks `n` lookups in lockstep so the memory accesses of
  /// independent traversals overlap (the probe phase is "bound by memory
  /// access latencies", Sec. 4.1; the authors' follow-up work attacks the
  /// same bottleneck with SIMD). Results are written to out[0..n).
  void ProbeBatch(const uint64_t* leaf_cell_ids, uint64_t n,
                  TaggedEntry* out) const;

  const ActOptions& options() const { return opts_; }
  const ActStats& stats() const { return stats_; }

 private:
  struct Face {
    TaggedEntry root = kSentinelEntry;  // pointer to root node, or a value
    uint64_t prefix = 0;                // right-aligned prefix_bits bits
    int prefix_bits = 0;
  };

  TaggedEntry* NewNode();
  void InsertCell(const geo::CellId& cell, TaggedEntry value, Face* face);
  void ComputeStats();
  void WalkStats(const TaggedEntry* node, int depth,
                 std::vector<uint64_t>* slots_by_depth,
                 std::vector<uint64_t>* used_by_depth);

  ActOptions opts_;
  int bits_per_level_;
  uint64_t slot_mask_;
  int fanout_;
  Face faces_[geo::CellId::kNumFaces];
  std::vector<std::unique_ptr<TaggedEntry[]>> arena_;
  ActStats stats_;
};

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_ACT_H_
