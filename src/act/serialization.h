// Binary persistence for PolygonIndex.
//
// The paper's deployment model builds the index once over mostly static
// polygons and serves it for a long time; persisting the build avoids
// recomputing coverings on restart. The format stores the inputs plus the
// (possibly refined and trained) super covering; the derived structures
// (classifier, lookup table, trie) are rebuilt at load, which takes
// milliseconds-to-seconds and keeps the format independent of in-memory
// layout choices like the trie fanout.
//
// Format (little-endian): magic "ACTJ", version, grid curve, build options,
// polygons (rings of lng/lat doubles), covering (cell ids + encoded refs).

#ifndef ACTJOIN_ACT_SERIALIZATION_H_
#define ACTJOIN_ACT_SERIALIZATION_H_

#include <optional>
#include <string>

#include "act/pipeline.h"

namespace actjoin::act {

/// Writes the index to `path`. Returns false on I/O failure.
bool SaveIndex(const PolygonIndex& index, const std::string& path);

/// Reads an index written by SaveIndex. Returns nullopt if the file is
/// missing, truncated, or not an index file of a supported version.
std::optional<PolygonIndex> LoadIndex(const std::string& path);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_SERIALIZATION_H_
