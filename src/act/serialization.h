// Binary persistence for PolygonIndex.
//
// The paper's deployment model builds the index once over mostly static
// polygons and serves it for a long time; persisting the build avoids
// recomputing coverings on restart. The format stores the inputs plus the
// (possibly refined and trained) super covering; the derived structures
// (classifier, lookup table, trie) are rebuilt at load, which takes
// milliseconds-to-seconds and keeps the format independent of in-memory
// layout choices like the trie fanout.
//
// Format v2 (little-endian): magic "ACTJ", u32 version, then three
// CRC-framed sections (options, polygons, covering). Every section is
// [u32 tag | u64 payload_len | payload | u32 crc32c(payload)], so
// truncation and bit-rot are detected at load time with a typed LoadError
// instead of surfacing as wrong join results later. The same section
// framing and the index-body codec are reused by the snapshot store
// (src/store/) for its sharded-index container and manifest formats.

#ifndef ACTJOIN_ACT_SERIALIZATION_H_
#define ACTJOIN_ACT_SERIALIZATION_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "act/pipeline.h"
#include "util/byte_io.h"

namespace actjoin::act {

/// Why a load failed. Operators need to tell corruption (checksum, data)
/// from absence (missing) and from version skew — the store and the server
/// log these verbatim. kTruncated covers any stream that ends before the
/// format says it should; kBadChecksum means a CRC-covered section's bytes
/// changed after they were written; kBadData means the bytes are intact
/// (CRC passed) but semantically invalid (the writer was broken, or the
/// file was crafted).
enum class LoadError : uint8_t {
  kNone = 0,
  kMissing,       // file does not exist / cannot be opened
  kTruncated,     // ends mid-header or mid-section
  kBadMagic,      // not an actjoin file at all
  kBadVersion,    // an actjoin file, but not a version this build reads
  kBadChecksum,   // section CRC32C mismatch: bit-rot or torn write
  kBadData,       // CRC-valid bytes that fail semantic validation
};

const char* ToString(LoadError error);

// --- CRC-framed sections ---------------------------------------------------
// [u32 tag][u64 payload_len][payload bytes][u32 crc32c(payload)]
// Shared by this file and the snapshot store's container/manifest formats.

inline constexpr size_t kSectionOverheadBytes = 4 + 8 + 4;

/// Starts a section: writes tag and a zero length placeholder, returns the
/// offset to pass to EndSection. Payload bytes go through `w` in between.
size_t BeginSection(util::ByteWriter* w, uint32_t tag);

/// Patches the section length and appends the CRC32C of the payload bytes.
void EndSection(util::ByteWriter* w, size_t begin);

/// Reads the section at `*offset`, verifies tag and checksum, and points
/// *payload into `bytes`. Advances *offset past the section. On failure
/// fills *error (kTruncated / kBadData for a tag mismatch / kBadChecksum)
/// and leaves *offset unspecified.
bool ReadSection(std::span<const uint8_t> bytes, size_t* offset,
                 uint32_t expect_tag, std::span<const uint8_t>* payload,
                 LoadError* error);

// --- Index body codec ------------------------------------------------------

/// Appends the three v2 sections (options, polygons, covering) for `index`
/// — everything except the file magic/version. The seam the snapshot store
/// uses to embed per-shard indexes inside its own container format.
void AppendIndexBody(const PolygonIndex& index, util::ByteWriter* w);

/// Parses a body written by AppendIndexBody starting at `*offset`;
/// advances *offset past it. nullopt + *error on failure.
std::optional<PolygonIndex> ParseIndexBody(std::span<const uint8_t> bytes,
                                           size_t* offset, LoadError* error);

// --- Polygon blob codec ----------------------------------------------------
// The v2 polygons-section payload, exposed standalone: u64 count, then per
// polygon a u32 ring count and per ring a u32 vertex count followed by f64
// x/y pairs. Reused by the wire protocol's ADD_POLYGONS payload and the
// snapshot store's delta records, so a polygon batch is encoded identically
// whether it travels over the wire, sits in a delta file, or is embedded in
// a full snapshot.

/// Appends the raw polygon blob (no section framing) for `polygons`.
void AppendPolygonsBlob(const std::vector<geom::Polygon>& polygons,
                        util::ByteWriter* w);

/// Parses a blob written by AppendPolygonsBlob. The payload must be exactly
/// one blob (trailing bytes fail as kBadData); vertices are validated
/// (finite, >= 3 per ring) and forged counts are bounded by the payload
/// size before any allocation.
bool ParsePolygonsBlob(std::span<const uint8_t> payload,
                       std::vector<geom::Polygon>* polygons,
                       LoadError* error);

// --- Whole-file API --------------------------------------------------------

/// Writes the index to `path` (format v2). Returns false on I/O failure.
bool SaveIndex(const PolygonIndex& index, const std::string& path);

/// Reads an index written by SaveIndex. Returns nullopt if the file is
/// missing, truncated, corrupt, or not a v2 index file; `*error` (when
/// non-null) says which, so callers can log corruption as corruption and
/// absence as absence.
std::optional<PolygonIndex> LoadIndex(const std::string& path,
                                      LoadError* error = nullptr);

/// Reads a whole file into `*out`. False + *error (kMissing / kTruncated
/// on a read that dies mid-file). Shared with the snapshot store.
bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out,
                   LoadError* error);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_SERIALIZATION_H_
