#include "act/act.h"

#include <algorithm>

#include "util/bitops.h"
#include "util/check.h"

namespace actjoin::act {

using geo::CellId;

AdaptiveCellTrie::AdaptiveCellTrie(const EncodedCovering& enc,
                                   const ActOptions& opts)
    : opts_(opts) {
  ACT_CHECK_MSG(opts.bits_per_level >= 1 && opts.bits_per_level <= 8,
                "bits_per_level must be in [1, 8]");
  bits_per_level_ = opts.bits_per_level;
  fanout_ = 1 << bits_per_level_;
  slot_mask_ = static_cast<uint64_t>(fanout_ - 1);

  size_t n = enc.cells.size();
  size_t i = 0;
  while (i < n) {
    int f = enc.cells[i].first.face();
    size_t j = i;
    while (j < n && enc.cells[j].first.face() == f) ++j;
    Face& face = faces_[f];

    if (opts.use_root_prefix) {
      // Longest common path-key prefix of the face's cells, rounded down to
      // node granularity (the paper stores a common prefix at the root
      // level only). For a single-cell face the prefix is the whole key.
      int len_first = 0, len_last = 0;
      uint64_t key_first = enc.cells[i].first.PathKey(&len_first);
      uint64_t key_last = enc.cells[j - 1].first.PathKey(&len_last);
      int cpl = (j - i == 1)
                    ? len_first
                    : util::CommonPrefixLength(key_first, key_last);
      face.prefix_bits = (cpl / bits_per_level_) * bits_per_level_;
      face.prefix =
          face.prefix_bits == 0 ? 0 : (key_first >> (64 - face.prefix_bits));
    }

    for (size_t k = i; k < j; ++k) {
      InsertCell(enc.cells[k].first, enc.cells[k].second, &face);
    }
    i = j;
  }
  ComputeStats();
}

TaggedEntry* AdaptiveCellTrie::NewNode() {
  auto node = std::make_unique<TaggedEntry[]>(fanout_);
  std::fill_n(node.get(), fanout_, kSentinelEntry);
  TaggedEntry* raw = node.get();
  arena_.push_back(std::move(node));
  return raw;
}

void AdaptiveCellTrie::InsertCell(const CellId& cell, TaggedEntry value,
                                  Face* face) {
  ACT_CHECK(IsValue(value));
  int key_len = 0;
  uint64_t key = cell.PathKey(&key_len);
  int consumed = face->prefix_bits;
  ACT_CHECK(key_len >= consumed);

  if (key_len == consumed) {
    // The cell's entire key is the root prefix: single-cell face (or a
    // face-level cell); the face root itself holds the value.
    ACT_CHECK_MSG(face->root == kSentinelEntry,
                  "value at root would shadow other cells");
    face->root = value;
    return;
  }

  if (face->root == kSentinelEntry) face->root = MakePointer(NewNode());
  ACT_CHECK_MSG(!IsValue(face->root), "root value conflicts with deeper cell");
  TaggedEntry* node = MutablePointerOf(face->root);

  while (key_len - consumed > bits_per_level_) {
    uint64_t chunk = (key >> (64 - consumed - bits_per_level_)) & slot_mask_;
    TaggedEntry entry = node[chunk];
    if (entry == kSentinelEntry) {
      TaggedEntry* child = NewNode();
      node[chunk] = MakePointer(child);
      node = child;
    } else {
      // A value here would mean an ancestor cell exists: disjointness of
      // the super covering rules that out.
      ACT_CHECK_MSG(!IsValue(entry), "ancestor/descendant conflict in trie");
      node = MutablePointerOf(entry);
    }
    consumed += bits_per_level_;
  }

  // Artificial key extension (paper Sec. 3.1.2): a cell whose remaining key
  // is shorter than the node's bit window stands for all its descendants at
  // the node-aligned level; they occupy the contiguous slot range
  // [bits << (bpl - r), (bits + 1) << (bpl - r)).
  int r = key_len - consumed;
  uint64_t bits_r = (key >> (64 - consumed - r)) & ((uint64_t{1} << r) - 1);
  uint64_t base = bits_r << (bits_per_level_ - r);
  uint64_t count = uint64_t{1} << (bits_per_level_ - r);
  for (uint64_t s = base; s < base + count; ++s) {
    ACT_CHECK_MSG(node[s] == kSentinelEntry,
                  "overlapping cells: super covering not disjoint");
    node[s] = value;
  }
}

void AdaptiveCellTrie::ProbeBatch(const uint64_t* leaf_cell_ids, uint64_t n,
                                  TaggedEntry* out) const {
  // Process lookups in groups; within a group all traversals advance one
  // level per round, so the (likely cache-missing) node reads of up to
  // kGroup independent probes are in flight together.
  constexpr int kGroup = 8;
  uint64_t base = 0;
  while (base < n) {
    int m = static_cast<int>(std::min<uint64_t>(kGroup, n - base));
    TaggedEntry entry[kGroup];
    uint64_t key[kGroup];
    int offset[kGroup];
    int live = 0;
    for (int k = 0; k < m; ++k) {
      uint64_t id = leaf_cell_ids[base + k];
      const Face& face = faces_[id >> CellId::kPosBits];
      key[k] = (id << CellId::kFaceBits) & ~uint64_t{15};
      offset[k] = face.prefix_bits;
      if (offset[k] > 0 && (key[k] >> (64 - offset[k])) != face.prefix) {
        entry[k] = kSentinelEntry;
      } else {
        entry[k] = face.root;
        if (entry[k] != kSentinelEntry && !IsValue(entry[k])) ++live;
      }
    }
    while (live > 0) {
      live = 0;
      for (int k = 0; k < m; ++k) {
        TaggedEntry e = entry[k];
        if (e == kSentinelEntry || IsValue(e)) continue;
        uint64_t chunk =
            (key[k] >> (64 - offset[k] - bits_per_level_)) & slot_mask_;
        e = PointerOf(e)[chunk];
        offset[k] += bits_per_level_;
        entry[k] = e;
        if (e != kSentinelEntry && !IsValue(e)) ++live;
      }
    }
    for (int k = 0; k < m; ++k) out[base + k] = entry[k];
    base += m;
  }
}

TaggedEntry AdaptiveCellTrie::ProbeCounting(uint64_t leaf_cell_id,
                                            int* depth) const {
  *depth = 0;
  const Face& face = faces_[leaf_cell_id >> CellId::kPosBits];
  uint64_t key = (leaf_cell_id << CellId::kFaceBits) & ~uint64_t{15};
  int offset = face.prefix_bits;
  if (offset > 0 && (key >> (64 - offset)) != face.prefix) {
    return kSentinelEntry;
  }
  TaggedEntry entry = face.root;
  while (entry != kSentinelEntry && !IsValue(entry)) {
    ++*depth;
    uint64_t chunk = (key >> (64 - offset - bits_per_level_)) & slot_mask_;
    entry = PointerOf(entry)[chunk];
    offset += bits_per_level_;
  }
  return entry;
}

void AdaptiveCellTrie::WalkStats(const TaggedEntry* node, int depth,
                                 std::vector<uint64_t>* slots_by_depth,
                                 std::vector<uint64_t>* used_by_depth) {
  if (static_cast<size_t>(depth) >= slots_by_depth->size()) {
    slots_by_depth->resize(depth + 1, 0);
    used_by_depth->resize(depth + 1, 0);
  }
  (*slots_by_depth)[depth] += fanout_;
  stats_.max_depth = std::max(stats_.max_depth, depth + 1);
  for (int s = 0; s < fanout_; ++s) {
    TaggedEntry e = node[s];
    if (e == kSentinelEntry) continue;
    (*used_by_depth)[depth] += 1;
    if (IsValue(e)) {
      stats_.value_slots += 1;
      stats_.avg_value_depth += depth + 1;
    } else {
      stats_.pointer_slots += 1;
      WalkStats(PointerOf(e), depth + 1, slots_by_depth, used_by_depth);
    }
  }
}

void AdaptiveCellTrie::ComputeStats() {
  stats_ = ActStats{};
  stats_.node_count = arena_.size();
  stats_.memory_bytes =
      arena_.size() * static_cast<uint64_t>(fanout_) * sizeof(TaggedEntry);
  std::vector<uint64_t> slots_by_depth;
  std::vector<uint64_t> used_by_depth;
  for (const Face& face : faces_) {
    if (face.root == kSentinelEntry) continue;
    if (IsValue(face.root)) {
      stats_.value_slots += 1;
      continue;
    }
    WalkStats(PointerOf(face.root), 0, &slots_by_depth, &used_by_depth);
  }
  if (stats_.value_slots > 0) {
    stats_.avg_value_depth /= static_cast<double>(stats_.value_slots);
  }
  stats_.occupancy_by_depth.resize(slots_by_depth.size());
  for (size_t d = 0; d < slots_by_depth.size(); ++d) {
    stats_.occupancy_by_depth[d] =
        slots_by_depth[d] == 0
            ? 0
            : static_cast<double>(used_by_depth[d]) / slots_by_depth[d];
  }
}

}  // namespace actjoin::act
