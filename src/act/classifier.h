// PolygonClassifier: cell-vs-polygon relation tests for a whole polygon set.
//
// Owns one edge-grid accelerator per polygon (built in parallel, reused by
// covering computation, precision refinement, and index training). This is
// build-time machinery only; the join's refinement phase uses the raw
// O(edges) PIP test to keep the paper's cost model.

#ifndef ACTJOIN_ACT_CLASSIFIER_H_
#define ACTJOIN_ACT_CLASSIFIER_H_

#include <memory>
#include <vector>

#include "act/super_covering.h"
#include "geo/grid.h"
#include "geometry/edge_grid.h"
#include "geometry/polygon.h"
#include "util/parallel_for.h"

namespace actjoin::act {

class PolygonClassifier final : public CellClassifier {
 public:
  PolygonClassifier(const std::vector<geom::Polygon>& polygons,
                    const geo::Grid& grid, int threads = 1)
      : polygons_(&polygons), grid_(&grid) {
    edge_grids_.resize(polygons.size());
    util::ParallelFor(
        polygons.size(), threads, /*batch=*/1,
        [&](uint64_t begin, uint64_t end, int) {
          for (uint64_t i = begin; i < end; ++i) {
            edge_grids_[i] = std::make_unique<geom::EdgeGrid>(polygons[i]);
          }
        });
  }

  geom::RegionRelation Classify(uint32_t polygon_id,
                                const geo::CellId& cell) const override {
    geo::LatLngRect r = grid_->CellRect(cell);
    return edge_grids_[polygon_id]->Classify(
        geom::Rect::Of(r.lng_lo, r.lat_lo, r.lng_hi, r.lat_hi));
  }

  const geom::EdgeGrid& edge_grid(uint32_t polygon_id) const {
    return *edge_grids_[polygon_id];
  }

  const std::vector<geom::Polygon>& polygons() const { return *polygons_; }
  const geo::Grid& grid() const { return *grid_; }

 private:
  const std::vector<geom::Polygon>* polygons_;
  const geo::Grid* grid_;
  std::vector<std::unique_ptr<geom::EdgeGrid>> edge_grids_;
};

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_CLASSIFIER_H_
