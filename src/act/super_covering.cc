#include "act/super_covering.h"

#include <algorithm>

#include "cover/cell_union.h"
#include "util/check.h"

namespace actjoin::act {

using geo::CellId;
using geom::RegionRelation;

// ---------------------------------------------------------------------------
// SuperCovering
// ---------------------------------------------------------------------------

SuperCovering::SuperCovering(std::vector<CellId> cells,
                             std::vector<RefList> refs)
    : cells_(std::move(cells)), refs_(std::move(refs)) {
  ACT_CHECK(cells_.size() == refs_.size());
  ACT_CHECK(std::is_sorted(cells_.begin(), cells_.end()));
}

int64_t SuperCovering::FindContaining(const CellId& id) const {
  auto it = std::lower_bound(cells_.begin(), cells_.end(), id);
  if (it != cells_.end() && it->range_min() <= id) {
    return it - cells_.begin();
  }
  if (it != cells_.begin() && std::prev(it)->range_max() >= id) {
    return std::prev(it) - cells_.begin();
  }
  return -1;
}

uint64_t SuperCovering::CountExpensiveCells() const {
  uint64_t n = 0;
  for (const RefList& r : refs_) {
    if (HasCandidate(r)) ++n;
  }
  return n;
}

bool SuperCovering::IsDisjoint() const {
  for (size_t i = 1; i < cells_.size(); ++i) {
    // Sorted + disjoint <=> each cell's range starts after the previous
    // cell's range ends.
    if (cells_[i].range_min() <= cells_[i - 1].range_max()) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// SuperCoveringBuilder (paper Listing 1, generalized)
// ---------------------------------------------------------------------------

void SuperCoveringBuilder::AddCovering(std::span<const CellId> cells,
                                       uint32_t polygon_id, bool interior) {
  RefList refs;
  refs.push_back({polygon_id, interior});
  for (const CellId& c : cells) Insert(c, refs);
}

void SuperCoveringBuilder::Insert(const CellId& cell, const RefList& refs) {
  ACT_CHECK(cell.is_valid());
  // Case 0: the cell already exists — merge reference lists.
  auto exact = map_.find(cell);
  if (exact != map_.end()) {
    MergeRefs(&exact->second, refs);
    return;
  }

  // Case 1: an existing ancestor c1 contains the new cell c2 = cell.
  // Disjointness makes the ancestor (if any) adjacent to `cell` in id
  // order: any id strictly between them would lie inside the ancestor's
  // range and thus violate disjointness.
  auto after = map_.upper_bound(cell);
  auto TryAncestor = [&](std::map<CellId, RefList>::iterator it) -> bool {
    if (it == map_.end() || !it->first.contains(cell)) return false;
    CellId c1 = it->first;
    RefList c1_refs = std::move(it->second);
    map_.erase(it);
    // Fig. 4: store c2 (with c1's refs merged in) and d = c1 - c2 (with
    // c1's refs); c1 itself is dropped.
    std::vector<CellId> diff;
    cover::CellDifference(c1, cell, &diff);
    RefList merged = c1_refs;
    MergeRefs(&merged, refs);
    map_.emplace(cell, std::move(merged));
    for (const CellId& d : diff) {
      // d-cells fall inside c1's former range, which contains no other
      // cells, so plain emplacement is safe.
      map_.emplace(d, c1_refs);
    }
    return true;
  };
  if (TryAncestor(after)) return;
  if (after != map_.begin() && TryAncestor(std::prev(after))) return;

  // Case 2: the new cell contains one or more existing cells. They occupy
  // the contiguous id range [range_min, range_max].
  auto lo = map_.lower_bound(cell.range_min());
  auto hi = map_.upper_bound(cell.range_max());
  if (lo == hi) {
    // Case 3: no conflict at all.
    map_.emplace(cell, refs);
    return;
  }
  std::vector<CellId> holes;
  for (auto it = lo; it != hi; ++it) {
    ACT_CHECK(cell.contains(it->first));
    holes.push_back(it->first);
    MergeRefs(&it->second, refs);  // descendants inherit the new refs
  }
  std::vector<CellId> diff;
  cover::CellDifferenceMulti(cell, holes, &diff);
  for (const CellId& d : diff) {
    map_.emplace(d, refs);
  }
}

SuperCovering SuperCoveringBuilder::Build() {
  std::vector<CellId> cells;
  std::vector<RefList> refs;
  cells.reserve(map_.size());
  refs.reserve(map_.size());
  for (auto& [cell, r] : map_) {
    cells.push_back(cell);
    refs.push_back(std::move(r));
  }
  map_.clear();
  return SuperCovering(std::move(cells), std::move(refs));
}

const std::pair<const CellId, RefList>* SuperCoveringBuilder::FindContaining(
    const CellId& id) const {
  auto it = map_.lower_bound(id);
  if (it != map_.end() && it->first.range_min() <= id) return &*it;
  if (it != map_.begin()) {
    --it;
    if (it->first.range_max() >= id) return &*it;
  }
  return nullptr;
}

int64_t SuperCoveringBuilder::SplitCell(const CellId& cell,
                                        const CellClassifier& classifier) {
  auto it = map_.find(cell);
  ACT_CHECK_MSG(it != map_.end(), "SplitCell: cell not present");
  if (cell.is_leaf()) return 0;
  RefList refs = std::move(it->second);
  map_.erase(it);
  int64_t added = -1;
  for (int k = 0; k < 4; ++k) {
    CellId child = cell.child(k);
    RefList child_refs;
    for (const PolygonRef& r : refs) {
      if (r.interior) {
        // Fully-contained stays fully contained for every descendant.
        child_refs.push_back(r);
        continue;
      }
      switch (classifier.Classify(r.polygon_id, child)) {
        case RegionRelation::kContained:
          child_refs.push_back({r.polygon_id, true});
          break;
        case RegionRelation::kIntersects:
          child_refs.push_back({r.polygon_id, false});
          break;
        case RegionRelation::kDisjoint:
          break;
      }
    }
    if (!child_refs.empty()) {
      map_.emplace(child, std::move(child_refs));
      ++added;
    }
  }
  return added;
}

// ---------------------------------------------------------------------------
// Precision refinement (paper Sec. 3.2)
// ---------------------------------------------------------------------------

namespace {

void RefineCell(const CellId& cell, const RefList& refs, double bound_m,
                const geo::Grid& grid, const CellClassifier& classifier,
                std::vector<CellId>* out_cells, std::vector<RefList>* out_refs) {
  // Interior-only cells are true hits at any size; emit as-is.
  if (!HasCandidate(refs)) {
    out_cells->push_back(cell);
    out_refs->push_back(refs);
    return;
  }
  // Re-classify boundary references against *this* cell before anything
  // else. This is load-bearing for the precision guarantee: difference
  // cells from the conflict resolution (paper Fig. 4) inherit all of c1's
  // references, so a cell can carry a boundary ref for a polygon it does
  // not actually touch; emitting it unchecked would produce false
  // positives arbitrarily far from that polygon.
  RefList live;
  for (const PolygonRef& r : refs) {
    if (r.interior) {
      live.push_back(r);
      continue;
    }
    switch (classifier.Classify(r.polygon_id, cell)) {
      case RegionRelation::kContained:
        live.push_back({r.polygon_id, true});
        break;
      case RegionRelation::kIntersects:
        live.push_back({r.polygon_id, false});
        break;
      case RegionRelation::kDisjoint:
        break;
    }
  }
  if (live.empty()) return;
  // The guarantee: any false positive is at most the diagonal of the
  // largest boundary cell away from the polygon ("a distance of
  // sqrt(2) * delta").
  if (!HasCandidate(live) || cell.is_leaf() ||
      grid.CellDiagonalMeters(cell) <= bound_m) {
    out_cells->push_back(cell);
    out_refs->push_back(live);
    return;
  }
  for (int k = 0; k < 4; ++k) {
    RefineCell(cell.child(k), live, bound_m, grid, classifier, out_cells,
               out_refs);
  }
}

}  // namespace

SuperCovering RefineToPrecision(const SuperCovering& in, double bound_m,
                                const geo::Grid& grid,
                                const CellClassifier& classifier) {
  ACT_CHECK(bound_m > 0);
  std::vector<CellId> cells;
  std::vector<RefList> refs;
  cells.reserve(in.size());
  refs.reserve(in.size());
  // Children are emitted in curve order inside each original cell and
  // original cells are sorted, so the output is sorted by construction.
  for (size_t i = 0; i < in.size(); ++i) {
    RefineCell(in.cell(i), in.refs(i), bound_m, grid, classifier, &cells,
               &refs);
  }
  return SuperCovering(std::move(cells), std::move(refs));
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

EncodedCovering Encode(const SuperCovering& sc, bool inline_refs) {
  EncodedCovering out;
  out.cells.reserve(sc.size());
  LookupTableBuilder builder;
  for (size_t i = 0; i < sc.size(); ++i) {
    const RefList& refs = sc.refs(i);
    ACT_CHECK(!refs.empty());
    TaggedEntry entry;
    if (inline_refs && refs.size() == 1) {
      entry = MakeOneRef(refs[0]);
    } else if (inline_refs && refs.size() == 2) {
      entry = MakeTwoRefs(refs[0], refs[1]);
    } else {
      entry = MakeTableOffset(builder.AddList(refs));
    }
    out.cells.emplace_back(sc.cell(i), entry);
  }
  out.table = std::move(builder).Build();
  return out;
}

}  // namespace actjoin::act
