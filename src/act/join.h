// Point-polygon join drivers (paper Listing 3 and Sec. 3.2/3.3).
//
// The join is an index nested loop: probe the cell index with each point's
// leaf cell id, walk the returned polygon references, and
//   * approximate mode: treat candidate hits as hits (no PIP test; the
//     distance of any false positive to its polygon is bounded by the
//     diagonal of the largest boundary cell), or
//   * exact mode: refine candidate hits with the O(edges) ray-tracing PIP
//     test.
//
// ExecuteJoin is templated over the index so ACT and the B-tree /
// sorted-vector baselines run byte-identical driver code; only Probe()
// differs. Multi-threading follows the paper: worker threads fetch batches
// of 16 points via an atomic counter and keep thread-local per-polygon
// counters that are aggregated at the end.

#ifndef ACTJOIN_ACT_JOIN_H_
#define ACTJOIN_ACT_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "act/lookup_table.h"
#include "act/tagged_entry.h"
#include "geometry/pip.h"
#include "geometry/polygon.h"
#include "util/parallel_for.h"
#include "util/timer.h"

namespace actjoin::act {

enum class JoinMode {
  kApproximate,  // paper Sec. 3.2 (__APPROX branch of Listing 3)
  kExact,        // paper Sec. 3.3
};

struct JoinOptions {
  JoinMode mode = JoinMode::kExact;
  /// Library-wide thread convention (same as BuildOptions.threads):
  /// 0 => util::DefaultThreadCount() (hardware concurrency), positive
  /// values are taken literally. Benchmarks that need a clean
  /// single-threaded measurement pass 1 explicitly.
  int threads = 0;
};

/// Join input: parallel arrays of leaf cell ids and planar coordinates
/// (x = lng, y = lat). Cell ids are precomputed at load time, exactly like
/// the paper's experimental setup.
struct JoinInput {
  std::span<const uint64_t> cell_ids;
  std::span<const geom::Point> points;

  uint64_t size() const { return cell_ids.size(); }
};

struct JoinStats {
  uint64_t num_points = 0;
  uint64_t matched_points = 0;   // points with >= 1 output pair
  uint64_t result_pairs = 0;
  uint64_t true_hit_refs = 0;    // refs answered by true-hit filtering
  uint64_t candidate_refs = 0;   // refs needing refinement (or approx emit)
  uint64_t pip_tests = 0;        // exact mode only
  uint64_t pip_hits = 0;
  uint64_t sth_points = 0;       // points that skipped refinement entirely
  double seconds = 0;
  std::vector<uint64_t> counts;  // per-polygon result counts

  /// Adds `other`'s scalar probe counters into this one — every field
  /// except num_points, seconds, and counts. The shared merge step of the
  /// sharded and cache-assisted executors, whose per-polygon counts need
  /// site-specific id remapping and so stay with the caller.
  void AccumulateCounters(const JoinStats& other) {
    matched_points += other.matched_points;
    result_pairs += other.result_pairs;
    true_hit_refs += other.true_hit_refs;
    candidate_refs += other.candidate_refs;
    pip_tests += other.pip_tests;
    pip_hits += other.pip_hits;
    sth_points += other.sth_points;
  }

  double ThroughputMps() const {
    return seconds > 0 ? num_points / seconds / 1e6 : 0;
  }
  /// Paper Table 7 metric: % of points with no candidate hits.
  double SthPercent() const {
    return num_points == 0 ? 0 : 100.0 * sth_points / num_points;
  }
};

/// Runs the join. `Index` must provide:
///   TaggedEntry Probe(uint64_t leaf_cell_id) const;
template <typename Index>
JoinStats ExecuteJoin(const Index& index, const LookupTable& table,
                      const JoinInput& input,
                      const std::vector<geom::Polygon>& polygons,
                      const JoinOptions& opts) {
  int threads = opts.threads <= 0 ? util::DefaultThreadCount() : opts.threads;
  const bool exact = opts.mode == JoinMode::kExact;
  const uint64_t n = input.size();

  struct ThreadState {
    std::vector<uint64_t> counts;
    uint64_t matched = 0, pairs = 0, true_refs = 0, cand_refs = 0;
    uint64_t pip_tests = 0, pip_hits = 0, sth = 0;
  };
  std::vector<ThreadState> states(threads);
  for (auto& s : states) s.counts.assign(polygons.size(), 0);

  util::WallTimer timer;
  util::ParallelFor(n, threads, [&](uint64_t begin, uint64_t end, int tid) {
    ThreadState& st = states[tid];
    for (uint64_t p = begin; p < end; ++p) {
      TaggedEntry entry = index.Probe(input.cell_ids[p]);
      if (entry == kSentinelEntry) {
        ++st.sth;  // no cell, no refinement needed
        continue;
      }
      uint64_t pairs_before = st.pairs;
      bool had_candidate = false;
      auto visit = [&](uint32_t pid, bool true_hit) {
        if (true_hit) {
          ++st.true_refs;
          ++st.counts[pid];
          ++st.pairs;
          return;
        }
        ++st.cand_refs;
        had_candidate = true;
        if (!exact) {
          // Approximate: emit the candidate as a hit.
          ++st.counts[pid];
          ++st.pairs;
          return;
        }
        ++st.pip_tests;
        if (geom::ContainsPoint(polygons[pid], input.points[p])) {
          ++st.pip_hits;
          ++st.counts[pid];
          ++st.pairs;
        }
      };
      switch (KindOf(entry)) {
        case EntryKind::kOneRef: {
          PolygonRef r = FirstRefOf(entry);
          visit(r.polygon_id, r.interior);
          break;
        }
        case EntryKind::kTwoRefs: {
          PolygonRef a = FirstRefOf(entry);
          PolygonRef b = SecondRefOf(entry);
          visit(a.polygon_id, a.interior);
          visit(b.polygon_id, b.interior);
          break;
        }
        case EntryKind::kTableOffset:
          table.VisitEntry(TableOffsetOf(entry), visit);
          break;
        case EntryKind::kPointer:
          break;  // unreachable: sentinel handled above
      }
      if (st.pairs != pairs_before) ++st.matched;
      if (!had_candidate) ++st.sth;
    }
  });

  JoinStats out;
  out.seconds = timer.ElapsedSeconds();
  out.num_points = n;
  out.counts.assign(polygons.size(), 0);
  for (const ThreadState& st : states) {
    out.matched_points += st.matched;
    out.result_pairs += st.pairs;
    out.true_hit_refs += st.true_refs;
    out.candidate_refs += st.cand_refs;
    out.pip_tests += st.pip_tests;
    out.pip_hits += st.pip_hits;
    out.sth_points += st.sth;
    for (size_t k = 0; k < out.counts.size(); ++k) {
      out.counts[k] += st.counts[k];
    }
  }
  return out;
}

/// Materializing variant used by tests and examples: returns (point
/// index, polygon id) pairs instead of counts. Single-threaded.
///
/// Ordering contract: the output is sorted ascending by (point index,
/// polygon id) and duplicate-free. This is a stable API guarantee, not an
/// implementation detail — ShardedIndex::JoinPairs and the join2 pair
/// producers promise the same shape, so any two producers of the same
/// predicate can be compared byte-for-byte (memcmp of the vectors).
template <typename Index>
std::vector<std::pair<uint64_t, uint32_t>> ExecuteJoinPairs(
    const Index& index, const LookupTable& table, const JoinInput& input,
    const std::vector<geom::Polygon>& polygons, JoinMode mode) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  const bool exact = mode == JoinMode::kExact;
  for (uint64_t p = 0; p < input.size(); ++p) {
    TaggedEntry entry = index.Probe(input.cell_ids[p]);
    if (entry == kSentinelEntry) continue;
    auto visit = [&](uint32_t pid, bool true_hit) {
      if (true_hit || !exact ||
          geom::ContainsPoint(polygons[pid], input.points[p])) {
        out.emplace_back(p, pid);
      }
    };
    switch (KindOf(entry)) {
      case EntryKind::kOneRef: {
        PolygonRef r = FirstRefOf(entry);
        visit(r.polygon_id, r.interior);
        break;
      }
      case EntryKind::kTwoRefs: {
        PolygonRef a = FirstRefOf(entry);
        PolygonRef b = SecondRefOf(entry);
        visit(a.polygon_id, a.interior);
        visit(b.polygon_id, b.interior);
        break;
      }
      case EntryKind::kTableOffset:
        table.VisitEntry(TableOffsetOf(entry), visit);
        break;
      case EntryKind::kPointer:
        break;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Reference (index-free) nested-loop join; the oracle for all tests.
std::vector<std::pair<uint64_t, uint32_t>> BruteForceJoinPairs(
    const JoinInput& input, const std::vector<geom::Polygon>& polygons);

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_JOIN_H_
