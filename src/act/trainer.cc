#include "act/trainer.h"

#include "geo/cell_id.h"

namespace actjoin::act {

SuperCoveringBuilder ToBuilder(const SuperCovering& sc) {
  SuperCoveringBuilder builder;
  for (size_t i = 0; i < sc.size(); ++i) {
    // Cells of a frozen covering are already disjoint: plain insertion never
    // triggers conflict resolution.
    builder.Insert(sc.cell(i), sc.refs(i));
  }
  return builder;
}

TrainStats TrainOnPoints(SuperCoveringBuilder* covering,
                         const JoinInput& training_points,
                         const CellClassifier& classifier,
                         const TrainOptions& opts) {
  TrainStats stats;
  for (uint64_t p = 0; p < training_points.size(); ++p) {
    if (covering->size() >= opts.max_cells) {
      stats.budget_exhausted = true;
      break;
    }
    ++stats.points_processed;
    geo::CellId leaf(training_points.cell_ids[p]);
    const auto* hit = covering->FindContaining(leaf);
    if (hit == nullptr || !HasCandidate(hit->second)) continue;
    ++stats.expensive_hits;
    if (hit->first.is_leaf()) continue;  // cannot split below leaf level
    geo::CellId cell = hit->first;
    stats.cells_delta += covering->SplitCell(cell, classifier);
    ++stats.cells_split;
  }
  return stats;
}

}  // namespace actjoin::act
