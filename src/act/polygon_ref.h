// Polygon references: the per-cell payload of the super covering.
//
// Paper Sec. 3.1.1: "A polygon reference has two attributes: polygon id
// [and an] interior flag [telling] whether the cell is an interior or a
// boundary cell of the polygon." References are encoded as 31-bit values
// (30-bit polygon id + 1 interior bit) when inlined into the trie, which
// caps the polygon count at 2^30.

#ifndef ACTJOIN_ACT_POLYGON_REF_H_
#define ACTJOIN_ACT_POLYGON_REF_H_

#include <cstdint>

#include "util/check.h"
#include "util/small_vector.h"

namespace actjoin::act {

/// Maximum representable polygon id (30 bits, paper Sec. 3.1.2).
inline constexpr uint32_t kMaxPolygonId = (uint32_t{1} << 30) - 1;

struct PolygonRef {
  uint32_t polygon_id = 0;
  /// True: the cell lies fully inside the polygon => a probe hitting it is a
  /// *true hit*. False: boundary cell => *candidate hit*.
  bool interior = false;

  bool operator==(const PolygonRef& o) const {
    return polygon_id == o.polygon_id && interior == o.interior;
  }

  /// 31-bit wire form: (polygon_id << 1) | interior.
  uint32_t Encode() const {
    ACT_CHECK(polygon_id <= kMaxPolygonId);
    return (polygon_id << 1) | (interior ? 1u : 0u);
  }

  static PolygonRef Decode(uint32_t v) {
    return {v >> 1, (v & 1) != 0};
  }
};

/// Reference list of one cell; one or two entries in the common case of
/// largely disjoint polygons, so two slots are kept inline.
using RefList = util::SmallVector<PolygonRef, 2>;

/// Merges `ref` into `list`. An interior reference absorbs a boundary
/// reference of the same polygon: a cell known to lie inside an interior
/// cell of polygon p is provably inside p, so the stronger fact wins.
inline void MergeRef(RefList* list, const PolygonRef& ref) {
  for (PolygonRef& existing : *list) {
    if (existing.polygon_id == ref.polygon_id) {
      existing.interior = existing.interior || ref.interior;
      return;
    }
  }
  list->push_back(ref);
}

inline void MergeRefs(RefList* list, const RefList& other) {
  for (const PolygonRef& r : other) MergeRef(list, r);
}

/// True iff at least one reference is a boundary (candidate) reference —
/// the paper's definition of an "expensive cell" (Sec. 3.3.1).
inline bool HasCandidate(const RefList& list) {
  for (const PolygonRef& r : list) {
    if (!r.interior) return true;
  }
  return false;
}

}  // namespace actjoin::act

#endif  // ACTJOIN_ACT_POLYGON_REF_H_
