#include "act/join.h"

namespace actjoin::act {

std::vector<std::pair<uint64_t, uint32_t>> BruteForceJoinPairs(
    const JoinInput& input, const std::vector<geom::Polygon>& polygons) {
  std::vector<std::pair<uint64_t, uint32_t>> out;
  for (uint64_t p = 0; p < input.size(); ++p) {
    for (uint32_t pid = 0; pid < polygons.size(); ++pid) {
      if (geom::ContainsPoint(polygons[pid], input.points[p])) {
        out.emplace_back(p, pid);
      }
    }
  }
  return out;
}

}  // namespace actjoin::act
