#!/usr/bin/env bash
# One-shot build & verification runner.
#
#   scripts/check.sh              # release build + full ctest suite
#   scripts/check.sh asan         # the same under AddressSanitizer
#   scripts/check.sh ubsan        # the same under UBSan
#   scripts/check.sh tsan         # serving-layer suite under ThreadSanitizer
#   scripts/check.sh all          # release, then asan, then ubsan, then tsan
#
# Any extra arguments are forwarded to ctest, e.g.:
#   scripts/check.sh release -R Serialization
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset=$1; shift
  echo "==> ${preset}: configure"
  cmake --preset "${preset}"
  echo "==> ${preset}: build"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> ${preset}: ctest"
  ctest --preset "${preset}" "$@"
  echo "==> ${preset}: OK"
}

mode=${1:-release}
[ $# -gt 0 ] && shift

case "${mode}" in
  release|debug|asan|ubsan)
    run_preset "${mode}" "$@"
    ;;
  tsan)
    # TSan exists for the concurrent serving layer; the sequential suites
    # triple their runtime under it for no additional coverage. The filter
    # comes last so a forwarded -R cannot accidentally widen the run
    # (ctest honors the last -R).
    run_preset tsan "$@" -R '^(Service|Net|Store|Delta|Metrics|Trace|Observability|Join2|CrossMatch|Subscribe|Async|Admin|Profiler)'
    ;;
  all)
    run_preset release "$@"
    run_preset asan "$@"
    run_preset ubsan "$@"
    run_preset tsan "$@" -R '^(Service|Net|Store|Delta|Metrics|Trace|Observability|Join2|CrossMatch|Subscribe|Async|Admin|Profiler)'
    ;;
  *)
    echo "usage: $0 [release|debug|asan|ubsan|tsan|all] [ctest args...]" >&2
    exit 2
    ;;
esac
