#!/usr/bin/env bash
# One-shot build & verification runner.
#
#   scripts/check.sh              # release build + full ctest suite
#   scripts/check.sh asan         # the same under AddressSanitizer
#   scripts/check.sh ubsan        # the same under UBSan
#   scripts/check.sh all          # release, then asan, then ubsan
#
# Any extra arguments are forwarded to ctest, e.g.:
#   scripts/check.sh release -R Serialization
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset=$1; shift
  echo "==> ${preset}: configure"
  cmake --preset "${preset}"
  echo "==> ${preset}: build"
  cmake --build --preset "${preset}" -j "$(nproc)"
  echo "==> ${preset}: ctest"
  ctest --preset "${preset}" "$@"
  echo "==> ${preset}: OK"
}

mode=${1:-release}
[ $# -gt 0 ] && shift

case "${mode}" in
  release|debug|asan|ubsan)
    run_preset "${mode}" "$@"
    ;;
  all)
    run_preset release "$@"
    run_preset asan "$@"
    run_preset ubsan "$@"
    ;;
  *)
    echo "usage: $0 [release|debug|asan|ubsan|all] [ctest args...]" >&2
    exit 2
    ;;
esac
