#!/usr/bin/env bash
# Promote a build's bench-smoke report into the checked-in perf trajectory.
#
#   scripts/promote_bench.sh 6            # build/bench_smoke.json -> BENCH_6.json
#   scripts/promote_bench.sh 7 build/release
#
# Each BENCH_<n>.json is the verbatim bench_smoke.json of PR <n>: one JSON
# line per bench binary ({"name":...,"throughput_mps":...,"wall_ms":...}),
# written by a full `ctest -L bench_smoke` run (the reset fixture guarantees
# exactly one line per binary). Committing one per PR gives the roadmap's
# perf trajectory an in-repo record that diffs meaningfully across PRs.
set -euo pipefail

cd "$(dirname "$0")/.."

n=${1:?usage: $0 <pr-number> [build-dir]}
build_dir=${2:-build}
src="${build_dir}/bench_smoke.json"
dst="BENCH_${n}.json"

if ! [ -s "${src}" ]; then
  echo "error: ${src} missing or empty — run ctest -L bench_smoke first" >&2
  exit 1
fi
# Every line must be a complete record; a partial line means a bench was
# interrupted mid-append and the report is not trustworthy.
if grep -nv '"name".*"throughput_mps".*"wall_ms"' "${src}" >&2; then
  echo "error: ${src} has malformed lines (above) — re-run the smoke suite" >&2
  exit 1
fi

cp "${src}" "${dst}"
echo "promoted ${src} ($(wc -l <"${src}") benches) -> ${dst}"
