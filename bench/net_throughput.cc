// Network front-end throughput (src/net/): the full loopback path —
// JoinClient -> wire protocol -> epoll JoinServer -> admission control ->
// JoinService -> sharded index — versus the same service driven in-process.
// The delta is the whole cost of the network boundary (framing, syscalls,
// loopback TCP), which is the number the ACT paper's throughput claims
// need before they mean anything to a remote client.
//
//   in-process:  Submit() directly, batches of --batch points
//   loopback xN: N client threads, each with its own connection, driving
//                the same batches through the socket
//
// Extra flags: --shards (default 8), --batch (points per request),
// --clients (loopback client threads), --workers (service worker
// threads; default = --threads), --io_threads (server event loops).

#include <cstdio>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "net/join_client.h"
#include "net/join_server.h"
#include "service/join_service.h"
#include "service/sharded_index.h"
#include "util/timer.h"

namespace actjoin::bench {
namespace {

int Run(int argc, char** argv) {
  util::Flags flags;
  flags.AddInt("shards", 8, "shard count for the served index");
  flags.AddInt("batch", 65536, "points per JOIN_BATCH request");
  flags.AddInt("clients", 4, "loopback client threads");
  flags.AddInt("workers", 0,
               "JoinService worker threads (0 => same as --threads)");
  flags.AddInt("io_threads", 2, "JoinServer event-loop threads");
  BenchEnv env = ParseEnv(argc, argv, &flags);
  if (env.smoke) {
    env.threads = 4;
    env.reps = 3;
  }
  const int shards = std::max(1, static_cast<int>(flags.GetInt("shards")));
  const uint64_t batch_points = std::max<int64_t>(1, flags.GetInt("batch"));
  const int clients = std::max(1, static_cast<int>(flags.GetInt("clients")));
  const int io_threads =
      std::max(1, static_cast<int>(flags.GetInt("io_threads")));
  int workers = static_cast<int>(flags.GetInt("workers"));
  if (workers <= 0) workers = env.threads;

  wl::PolygonDataset ds = wl::Neighborhoods(env.scale);
  wl::PointSet pts = Taxi(env, ds.mbr);
  act::JoinInput input = pts.AsJoinInput();

  service::ShardingOptions sharding;
  sharding.num_shards = shards;
  sharding.build.precision_bound_m = 60.0;
  sharding.build.threads = env.threads;
  auto index = std::make_shared<const service::ShardedIndex>(
      service::ShardedIndex::Build(ds.polygons, env.grid, sharding));

  // Pre-slice the workload once; both configurations replay these batches.
  std::vector<service::QueryBatch> batches;
  for (uint64_t begin = 0; begin < input.size(); begin += batch_points) {
    uint64_t end = std::min(begin + batch_points, input.size());
    service::QueryBatch batch;
    batch.cell_ids.assign(input.cell_ids.begin() + begin,
                          input.cell_ids.begin() + end);
    batch.points.assign(input.points.begin() + begin,
                        input.points.begin() + end);
    batch.mode = act::JoinMode::kApproximate;
    batches.push_back(std::move(batch));
  }

  std::printf(
      "Network front-end throughput: %zu polygons, %llu points in %zu "
      "batches, %d shards, %d workers, %d clients (scale=%.3g)\n\n",
      ds.polygons.size(), static_cast<unsigned long long>(input.size()),
      batches.size(), shards, workers, clients, env.scale);
  util::TablePrinter table(
      {"config", "throughput [M points/s]", "p50 [ms]", "p99 [ms]"});

  double inproc_mps = 0;
  {
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    service::ServiceStats sstats;
    for (int r = 0; r < env.reps; ++r) {
      service::JoinService service(index, sopts);
      std::vector<std::future<service::JoinResult>> futures;
      futures.reserve(batches.size());
      util::WallTimer timer;
      for (const service::QueryBatch& b : batches) {
        futures.push_back(service.Submit(b));
      }
      uint64_t served = 0;
      for (auto& f : futures) served += f.get().stats.num_points;
      double seconds = timer.ElapsedSeconds();
      if (seconds > 0) {
        inproc_mps = std::max(
            inproc_mps, static_cast<double>(served) / seconds / 1e6);
      }
      sstats = service.Stats();
    }
    NoteThroughput(inproc_mps);
    table.AddRow({"in-process", util::TablePrinter::Fmt(inproc_mps, 2),
                  util::TablePrinter::Fmt(sstats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(sstats.service_p99_ms, 2)});
  }

  double loopback_mps = 0;
  {
    service::ServiceOptions sopts;
    sopts.worker_threads = workers;
    service::ServiceStats sstats;
    for (int r = 0; r < env.reps; ++r) {
      service::JoinService service(index, sopts);
      net::ServerOptions nopts;
      nopts.io_threads = io_threads;
      net::JoinServer server(&service, nopts);
      std::string error;
      if (!server.Start(&error)) {
        std::fprintf(stderr, "JoinServer start failed: %s\n", error.c_str());
        return 1;
      }
      // Clients pull batch indices round-robin; every batch is sent once.
      std::vector<std::thread> pool;
      std::vector<uint64_t> served_per_client(
          static_cast<size_t>(clients), 0);
      util::WallTimer timer;
      for (int c = 0; c < clients; ++c) {
        pool.emplace_back([&, c] {
          net::JoinClient client;
          if (!client.Connect(server.host(), server.port())) return;
          uint64_t served = 0;
          for (size_t k = static_cast<size_t>(c); k < batches.size();
               k += static_cast<size_t>(clients)) {
            net::JoinClient::Reply reply = client.Join(batches[k]);
            if (reply.ok) served += reply.result.stats.num_points;
          }
          served_per_client[static_cast<size_t>(c)] = served;
        });
      }
      for (auto& t : pool) t.join();
      double seconds = timer.ElapsedSeconds();
      uint64_t served = 0;
      for (uint64_t s : served_per_client) served += s;
      if (served != input.size()) {
        std::fprintf(stderr, "loopback run served %llu of %llu points\n",
                     static_cast<unsigned long long>(served),
                     static_cast<unsigned long long>(input.size()));
        return 1;
      }
      if (seconds > 0) {
        loopback_mps = std::max(
            loopback_mps, static_cast<double>(served) / seconds / 1e6);
      }
      sstats = server.StatsWithAdmission();
      server.Stop();
    }
    NoteThroughput(loopback_mps);
    char name[64];
    std::snprintf(name, sizeof(name), "loopback x%d", clients);
    table.AddRow({name, util::TablePrinter::Fmt(loopback_mps, 2),
                  util::TablePrinter::Fmt(sstats.service_p50_ms, 2),
                  util::TablePrinter::Fmt(sstats.service_p99_ms, 2)});
  }

  Emit(env, table);
  std::printf("wire-boundary cost at batch=%llu: %.1f%% of in-process "
              "throughput retained\n",
              static_cast<unsigned long long>(batch_points),
              inproc_mps > 0 ? 100.0 * loopback_mps / inproc_mps : 0.0);
  return 0;
}

}  // namespace
}  // namespace actjoin::bench

int main(int argc, char** argv) {
  return actjoin::bench::BenchMain(argc, argv, "net_throughput",
                                   actjoin::bench::Run);
}
